from setuptools import setup

# Configuration lives in pyproject.toml; this shim enables legacy
# editable installs on offline environments without the `wheel` package.
setup()

"""Extension — training goodput vs scale, with and without Astral
monitoring.

Quantifies the paper's motivating claim ("as LLM training scales,
failures become increasingly disruptive") and the monitoring system's
payoff: folding the Figure-10 MTTLF reductions into a
checkpoint/restart goodput model shows automated localization buying
tens of percent of effective training throughput at production scale.
"""

from repro.core import training_goodput

SCALES = (1024, 8192, 65536)


def test_goodput_vs_scale(benchmark, series_printer):
    def sweep():
        rows = {}
        for n_gpus in SCALES:
            rows[n_gpus] = (
                training_goodput(n_gpus, localization="manual"),
                training_goodput(n_gpus, localization="automated"),
            )
        return rows

    rows = benchmark(sweep)
    table = []
    for n_gpus in SCALES:
        manual, auto = rows[n_gpus][0], rows[n_gpus][1]
        table.append((
            f"{n_gpus:,}",
            f"{auto.mtbf_hours:.1f}",
            f"{manual.goodput_fraction:.1%}",
            f"{auto.goodput_fraction:.1%}",
            f"+{auto.goodput_fraction - manual.goodput_fraction:.1%}",
        ))
    series_printer(
        "Training goodput vs scale (manual vs Astral localization)",
        table,
        ["GPUs", "MTBF (h)", "manual MTTLF", "Astral MTTLF", "gain"])

    for n_gpus in SCALES:
        manual, auto = rows[n_gpus]
        assert auto.goodput_fraction > manual.goodput_fraction
    # The monitoring payoff grows with scale across this range.
    gains = [rows[n][1].goodput_fraction - rows[n][0].goodput_fraction
             for n in SCALES]
    assert gains[1] > gains[0]
    # At 8K GPUs (the paper's deployed scale) goodput with Astral
    # localization stays above 90%.
    assert rows[8192][1].goodput_fraction > 0.90

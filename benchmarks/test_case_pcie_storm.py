"""§5 case study — PCIe issue causes PFC storms across the cluster.

"We encountered a dramatic drop in training efficiency to 50% when
multiple customers trained their models simultaneously ... the PCIe of
one machine was broken, which eventually triggered PFC and caused
congestion spreading."  Reproduced in three acts:

1. a broken-PCIe host halves its own tenant's training efficiency;
2. PFC backpressure throttles an innocent flow sharing the pausing
   ToR (the congestion-spreading mechanism);
3. the evolved monitoring system (with the post-incident PCIe detector
   patched in) pinpoints the root cause that the pre-incident system
   could not.
"""

from repro.monitoring import (
    FaultSpec,
    HierarchicalAnalyzer,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    MultiJobRun,
    default_registry,
    pre_incident_registry,
)
from repro.network import Fabric, make_flow, \
    reset_flow_ids
from repro.topology import AstralParams, build_astral

HOSTS_A = ("p0.b0.h0", "p0.b0.h1", "p0.b1.h0", "p0.b1.h1")
HOSTS_B = ("p0.b0.h2", "p0.b0.h3", "p0.b1.h2", "p0.b1.h3")
BROKEN = HOSTS_A[1]


def _co_run(with_fault: bool):
    reset_flow_ids()
    fabric = Fabric(build_astral(AstralParams.small()))
    jobs = [
        JobConfig(name="tenantA", hosts=HOSTS_A, iterations=6),
        JobConfig(name="tenantB", hosts=HOSTS_B, iterations=6),
    ]
    faults = {"tenantA": FaultSpec.pcie_storm(BROKEN, at_iteration=1)} \
        if with_fault else None
    return MultiJobRun(fabric, jobs, faults=faults).run()


def test_case_pcie_storm_halves_tenant(benchmark, series_printer):
    healthy = _co_run(with_fault=False)
    stormy = benchmark.pedantic(_co_run, args=(True,), rounds=1,
                                iterations=1)
    rows = [
        (name, f"{healthy[name].efficiency:.1%}",
         f"{stormy[name].efficiency:.1%}")
        for name in ("tenantA", "tenantB")
    ]
    series_printer(
        "S5 case: multi-tenant efficiency with a broken-PCIe host",
        rows, ["tenant", "healthy", "during PCIe storm"])

    # "Some customers reported their model training efficiency was
    # reduced by half."
    assert stormy["tenantA"].efficiency < 0.7
    assert healthy["tenantA"].efficiency > 0.95


def test_case_pfc_congestion_spreading(benchmark, series_printer):
    """The mechanism: the pausing ToR throttles an innocent flow."""
    reset_flow_ids()
    topology = build_astral(AstralParams.small())
    fabric = Fabric(topology)
    for link in topology.links_of(BROKEN):
        link.capacity_gbps *= 0.1
    topology.version += 1

    storm = [
        make_flow(src, BROKEN, rail=0, size_bits=64e9,
                  src_port=50_000 + index)
        for index, src in enumerate(("p0.b0.h2", "p0.b0.h3"))
    ]
    pausing_tor = fabric.router.path(storm[0]).devices[1]
    victim = None
    for port in range(49152, 49152 + 256):
        candidate = make_flow("p0.b0.h0", "p0.b1.h3", rail=0,
                              size_bits=8e9, src_port=port)
        if pausing_tor in fabric.router.path(candidate).devices:
            victim = candidate
            break
    assert victim is not None

    flows = storm + [victim]
    plain = fabric.complete(list(flows), pfc_spreading=False)
    for flow in flows:
        flow.rate_gbps = 0.0
    spread = benchmark.pedantic(
        fabric.complete, args=(list(flows),),
        kwargs={"pfc_spreading": True}, rounds=1, iterations=1)

    slowdown = spread.finish_times_s[victim.flow_id] \
        / plain.finish_times_s[victim.flow_id]
    series_printer(
        "S5 case: innocent flow through the pausing ToR",
        [("without PFC spreading",
          plain.finish_times_s[victim.flow_id]),
         ("with PFC spreading",
          spread.finish_times_s[victim.flow_id]),
         ("slowdown", f"{slowdown:.2f}x")],
        ["scenario", "victim completion (s)"])
    assert slowdown > 1.2


def test_case_evolved_monitor_finds_root_cause(benchmark,
                                               series_printer):
    reset_flow_ids()
    fabric = Fabric(build_astral(AstralParams.small()))
    fault = FaultSpec.pcie_storm(BROKEN, at_iteration=2)
    result = MonitoredTrainingJob(
        fabric,
        JobConfig(hosts=HOSTS_A + HOSTS_B, iterations=5),
        fault=fault).run()

    def diagnose(registry):
        analyzer = HierarchicalAnalyzer(
            result.store, result.expected_compute_s,
            result.expected_comm_s, detectors=registry)
        return analyzer.diagnose("job0")

    before = diagnose(pre_incident_registry())
    after = benchmark.pedantic(diagnose, args=(default_registry(),),
                               rounds=1, iterations=1)
    series_printer(
        "S5 case: diagnosis before vs after the detector patch",
        [("pre-incident monitor", before.inferred_cause,
          str(before.root_cause_device)),
         ("post-incident monitor", after.inferred_cause,
          str(after.root_cause_device))],
        ["monitoring system", "cause", "device"])

    assert before.inferred_cause != "pcie-anomaly"
    assert after.inferred_cause == "pcie-anomaly"
    assert after.root_cause_device == BROKEN
    assert after.manifestation is Manifestation.FAIL_SLOW

"""Farm throughput: the 50-case fuzz sweep, 1 worker vs N.

The acceptance bar for ``repro.farm`` is twofold: the parallel sweep
must be *bit-identical* to the serial one (the executor is a pure
wall-clock knob), and on a multi-core box it must actually buy that
wall-clock back — ≥2× at 4 workers for the 50-case validation fuzz
sweep.  A warm rerun from the content-addressed cache must execute
zero simulations.

Results are merged into ``BENCH_farm.json`` at the repo root so the
throughput trajectory is recorded run over run.  The speedup
assertion is gated on ``os.cpu_count()`` — a single-core container
cannot speed anything up, but it must still match bit for bit.
"""

import json
import os
import pathlib
import time

from repro.farm import FarmExecutor, ResultCache, TaskSpec

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_farm.json"
N_CASES = 50
SWEEP_WORKERS = 4


def _fuzz_specs():
    return [
        TaskSpec("validation-case",
                 {"seed": 1729, "index": index, "fast": True})
        for index in range(N_CASES)
    ]


def _timed_run(tmp_path, name, workers, use_cache=False):
    cache = ResultCache(root=tmp_path / name)
    t0 = time.perf_counter()
    report = FarmExecutor(workers=workers, use_cache=use_cache,
                          cache=cache).run(_fuzz_specs())
    wall = time.perf_counter() - t0
    assert report.ok, report.failures and report.failures[0].error
    return report, wall


def _record(key, result):
    """Merge one scenario's numbers into the trajectory file."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    data[key] = result
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_fuzz_sweep_throughput(tmp_path, series_printer):
    serial, serial_wall = _timed_run(tmp_path, "serial", workers=1)
    parallel, parallel_wall = _timed_run(
        tmp_path, "parallel", workers=SWEEP_WORKERS)

    # The hard bar first: parallel == serial, bit for bit.
    assert serial.identity() == parallel.identity()

    # Warm rerun against the parallel run's cache: zero simulations.
    warm_cache = ResultCache(root=tmp_path / "parallel")
    t0 = time.perf_counter()
    warm = FarmExecutor(workers=SWEEP_WORKERS, use_cache=True,
                        cache=warm_cache).run(_fuzz_specs())
    warm_wall = time.perf_counter() - t0
    assert warm.n_executed == 0
    assert warm.n_cached == N_CASES
    assert warm.identity() == serial.identity()

    speedup = serial_wall / max(parallel_wall, 1e-9)
    cores = os.cpu_count() or 1
    result = {
        "cases": N_CASES,
        "workers": SWEEP_WORKERS,
        "cpu_count": cores,
        "serial_wall_s": round(serial_wall, 3),
        "serial_cases_per_s": round(N_CASES / serial_wall, 1),
        "parallel_wall_s": round(parallel_wall, 3),
        "parallel_cases_per_s": round(N_CASES / parallel_wall, 1),
        "speedup": round(speedup, 2),
        "warm_wall_s": round(warm_wall, 3),
        "warm_executed": warm.n_executed,
        "warm_cached": warm.n_cached,
    }
    _record("fuzz_sweep_50case", result)
    series_printer(
        f"Farm fuzz sweep ({N_CASES} cases, {SWEEP_WORKERS} workers)",
        [(k, v) for k, v in result.items()], ["metric", "value"])

    # The speedup claim needs cores to claim it on.
    if cores >= SWEEP_WORKERS:
        assert speedup >= 2.0, \
            f"expected >=2x at {SWEEP_WORKERS} workers, got {speedup:.2f}x"
    elif cores >= 2:
        assert speedup >= 1.2, \
            f"expected >=1.2x on {cores} cores, got {speedup:.2f}x"

"""Figure 2 — All-to-all communication throughput.

Paper claims reproduced here:

* fragmented deployment across pods cuts all-to-all collective
  throughput by 19%-37% vs a single-pod placement;
* tier-3 bandwidth oversubscription degrades all-to-all throughput by
  up to ~52% and end-to-end *training* performance by only ~3%
  (because most communication overlaps with computation), with
  MoE models more sensitive than dense ones.
"""

from repro.core import GpuAllocator, PlacementPolicy
from repro.network import Fabric, reset_flow_ids, run_collective
from repro.seer import (
    GPT3_175B,
    HUNYUAN_MOE,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)
from repro.topology import AstralParams, build_astral

N_HOSTS = 16
A2A_BITS = 64e9


def _a2a_throughput(params: AstralParams,
                    policy: PlacementPolicy) -> float:
    reset_flow_ids()
    topology = build_astral(params)
    fabric = Fabric(topology,
                    host_line_rate_gbps=params.nic_port_gbps)
    allocation = GpuAllocator(topology).allocate("j", N_HOSTS, policy)
    result = run_collective(fabric, allocation.endpoints(rail=0),
                            A2A_BITS, "all_to_all")
    return result.algo_bandwidth_gbps


def test_fig02_fragmented_placement_drop(benchmark, series_printer):
    params = AstralParams.small()
    packed = _a2a_throughput(params, PlacementPolicy.PACKED)
    fragmented = benchmark(
        _a2a_throughput, params, PlacementPolicy.FRAGMENTED)
    drop = (packed - fragmented) / packed
    series_printer(
        "Figure 2 (left): all-to-all throughput by placement",
        [("single pod (packed)", packed, "-"),
         ("across pods (fragmented)", fragmented, f"-{drop:.1%}")],
        ["placement", "throughput (Gbps)", "vs packed"])
    # Paper: fragmented deployment decreases A2A by 19%-37%.
    assert 0.15 <= drop <= 0.45


def test_fig02_oversubscription_a2a_drop(benchmark, series_printer):
    params = AstralParams.small()
    def sweep():
        values = {}
        for ratio in (1.0, 2.0, 3.0):
            values[ratio] = _a2a_throughput(
                params.with_oversubscription(ratio),
                PlacementPolicy.FRAGMENTED)
        return values

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = values[1.0]
    rows = [(f"{ratio:.0f}:1", throughput,
             f"-{(baseline - throughput) / baseline:.1%}")
            for ratio, throughput in values.items()]
    series_printer(
        "Figure 2 (right): A2A throughput vs tier-3 oversubscription",
        rows, ["oversub", "throughput (Gbps)", "vs 1:1"])
    worst = float(rows[-1][1])
    drop = (baseline - worst) / baseline
    # Paper: oversubscription degrades A2A by up to ~52%.
    assert drop > 0.3


def test_fig02_training_impact_small(benchmark, series_printer):
    """Training performance loses only a few percent (vs 52% for raw
    A2A) because only ~15% of communication time is exposed."""
    rows = []
    results = {}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for label, model, parallel in (
        ("GPT-3 (dense)", GPT3_175B,
         ParallelismConfig(tp=8, pp=4, dp=2, microbatches=8)),
        ("Hunyuan (MoE)", HUNYUAN_MOE,
         ParallelismConfig(tp=4, pp=4, dp=2, ep=16, microbatches=8)),
    ):
        flat = Seer(gpu="H800", network=NetworkSuite()) \
            .forecast_training(model, parallel)
        oversub = Seer(gpu="H800", network=NetworkSuite(
            tier3_oversubscription=3.0)) \
            .forecast_training(model, parallel)
        loss = (oversub.iteration_time_s - flat.iteration_time_s) \
            / flat.iteration_time_s
        results[label] = loss
        rows.append((label, flat.iteration_time_s,
                     oversub.iteration_time_s, f"{loss:.2%}"))
    series_printer(
        "Figure 2: training impact of tier-3 oversubscription",
        rows, ["model", "iter 1:1 (s)", "iter 3:1 (s)", "loss"])
    # Dense transformers mostly ride same-rail paths and tolerate
    # tier-3 oversubscription; MoE all-to-all crosses Core switches and
    # is clearly more sensitive (paper: -3% training / -52% A2A; our
    # MoE workload is more all-to-all-bound than theirs, so the
    # training-side loss is larger, but the ordering holds).
    assert results["GPT-3 (dense)"] < 0.01
    assert 0.01 < results["Hunyuan (MoE)"] < 0.30
    assert results["Hunyuan (MoE)"] > results["GPT-3 (dense)"]

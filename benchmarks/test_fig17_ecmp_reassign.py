"""Figure 17 (Appendix A) — Effectiveness of the optimized ECMP.

ECN counters on the switches decrease and eventually stabilize as the
centralized controller reassigns UDP source ports of congested flows
over successive five-second polling rounds.  Includes the ablation of
the two-step scheme: sender-side balancing alone vs balancing plus
controller reassignment.
"""

from repro.network import (
    CongestionModel,
    EcmpController,
    Fabric,
    make_flow,
    reset_flow_ids,
)
from repro.topology import AstralParams, build_astral


def _congested_workload(fabric):
    """Polarized flows: many pairs, one colliding source port."""
    return [
        make_flow(f"p0.b0.h{src}", f"p0.b1.h{(src * 3 + k) % 8}",
                  rail=0, size_bits=8e9, src_port=50000)
        for src in range(8) for k in range(2)
    ]


def _total_ecn(fabric, flows):
    loads = fabric.offered_loads(flows)
    return CongestionModel().total_ecn_marks(loads)


def test_fig17_ecn_decreases_and_stabilizes(benchmark, series_printer):
    fabric = Fabric(build_astral(AstralParams.small()))
    flows = _congested_workload(fabric)
    controller = EcmpController(fabric)

    reports = benchmark.pedantic(
        controller.run, args=(flows,), kwargs={"rounds": 8},
        rounds=1, iterations=1)

    series = [(r.round_index, r.total_ecn_marks_before,
               r.total_ecn_marks_after, r.flows_moved)
              for r in reports]
    series_printer(
        "Figure 17: ECN counters across reassignment rounds",
        series, ["round", "ECN before", "ECN after", "flows moved"])

    first = reports[0].total_ecn_marks_before
    last = reports[-1].total_ecn_marks_after
    # The counters decrease...
    assert last < first
    # ...and eventually stabilize (the final round moves nothing).
    assert reports[-1].flows_moved == 0
    # Monotone non-increasing across rounds.
    befores = [r.total_ecn_marks_before for r in reports]
    assert all(b >= a - 1e-6
               for a, b in zip(befores[1:], befores[:-1]))


def _multi_qp_workload():
    """Two QPs per src-dst pair, identical source ports: the hash sends
    both QPs of a pair down one path, overloading its access port and
    ToR uplink — the collision class step 1's pair-local spreading is
    built for, and which the controller can also undo globally."""
    return [
        make_flow(f"p0.b0.h{src}", f"p0.b1.h{(src * 5) % 8}",
                  rail=0, size_bits=8e9, src_port=50000)
        for src in range(8) for _ in range(2)
    ]


def test_fig17_two_step_ablation(benchmark, series_printer):
    """Both halves of the optimized-ECMP scheme independently relieve
    the collision workload; production runs them in tandem (step 1 is
    immediate and sender-local, step 2 covers cross-pair conflicts the
    senders cannot see)."""
    results = {}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # No optimization.
    reset_flow_ids()
    fabric = Fabric(build_astral(AstralParams.small()))
    flows = _multi_qp_workload()
    results["hash only"] = _total_ecn(fabric, flows)

    # Step 1 only (sender-side pair balancing).
    reset_flow_ids()
    fabric = Fabric(build_astral(AstralParams.small()))
    flows = _multi_qp_workload()
    EcmpController(fabric).balance_source_ports(flows)
    results["step 1 (source-port balance)"] = _total_ecn(fabric, flows)

    # Step 2 only (controller reassignment, no sender cooperation).
    reset_flow_ids()
    fabric = Fabric(build_astral(AstralParams.small()))
    flows = _multi_qp_workload()
    EcmpController(fabric).run(flows, rounds=8)
    results["step 2 (controller reassignment)"] = _total_ecn(fabric,
                                                             flows)

    # Both, as deployed.
    reset_flow_ids()
    fabric = Fabric(build_astral(AstralParams.small()))
    flows = _multi_qp_workload()
    controller = EcmpController(fabric)
    controller.balance_source_ports(flows)
    controller.run(flows, rounds=8)
    results["steps 1 + 2 (deployed)"] = _total_ecn(fabric, flows)

    series_printer(
        "Figure 17 ablation: optimized-ECMP steps",
        [(k, v) for k, v in results.items()],
        ["scheme", "total ECN marks / poll"])

    baseline = results["hash only"]
    assert baseline > 0
    assert results["step 1 (source-port balance)"] < baseline
    assert results["step 2 (controller reassignment)"] < baseline
    assert results["steps 1 + 2 (deployed)"] \
        <= min(results["step 1 (source-port balance)"],
               results["step 2 (controller reassignment)"])

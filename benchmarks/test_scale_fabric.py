"""Scale check — a multi-thousand-GPU pod is buildable and routable.

The paper's headline is scale (64K GPUs per pod, 512K per cluster).
The builders are exercised here at a 4096-GPU single-pod configuration
(the same construction, two orders of magnitude below paper scale but
two above the unit-test fixtures) to show the graph model, routing, and
fabric allocation stay fast and structurally correct as dimensions
grow.
"""

import pytest

from repro.core import GpuAllocator, PlacementPolicy
from repro.network import Fabric, reset_flow_ids, run_collective
from repro.topology import AstralParams, DeviceKind, build_astral

#: 1 pod x 16 blocks x 32 hosts x 8 GPUs = 4096 GPUs.
SCALE_PARAMS = AstralParams(
    pods=1, blocks_per_pod=16, hosts_per_block=32, gpus_per_host=8,
    aggs_per_group=16, cores_per_group=16)


@pytest.fixture(scope="module")
def topo():
    return build_astral(SCALE_PARAMS)


def test_scale_build(benchmark, series_printer):
    built = benchmark.pedantic(build_astral, args=(SCALE_PARAMS,),
                               rounds=1, iterations=1)
    series_printer(
        "Scale: 4096-GPU pod construction",
        [("GPUs", built.gpu_count()),
         ("hosts", len(built.hosts())),
         ("ToR switches", len(built.switches(DeviceKind.TOR))),
         ("Agg switches", len(built.switches(DeviceKind.AGG))),
         ("Core switches", len(built.switches(DeviceKind.CORE))),
         ("links", len(built.links))],
        ["element", "count"])
    assert built.gpu_count() == 4096
    # P2 holds at this scale too.
    assert built.oversubscription(DeviceKind.TOR) == pytest.approx(1.0)
    assert built.oversubscription(DeviceKind.AGG) == pytest.approx(1.0)


def test_scale_collective(benchmark, topo, series_printer):
    """A 64-host same-rail all-to-all routes and completes quickly."""
    def run():
        reset_flow_ids()
        fabric = Fabric(topo)
        allocation = GpuAllocator(topo).allocate(
            "big", 64, PlacementPolicy.FRAGMENTED)
        return run_collective(fabric, allocation.endpoints(rail=0),
                              64e9, "all_to_all")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    series_printer(
        "Scale: 64-host all-to-all on the 4096-GPU pod",
        [("flows", 64 * 63),
         ("network time (s)", result.network_time_s),
         ("algo bandwidth (Gbps)", result.algo_bandwidth_gbps)],
        ["metric", "value"])
    assert result.network_time_s > 0
    assert result.run.max_link_utilization() > 0

"""Appendix C — Monitoring system overheads.

ms-level QP monitoring mirrors ~0.8 Mbps per node: ~10 Gbps for a
100K-GPU cluster, ~0.00005% of total link bandwidth; INT pings add
~173 GB/day of storage at 10K GPUs, retained 15 days.
"""

import pytest

from repro.monitoring import MonitoringOverhead


def test_appx_c_overheads(benchmark, series_printer):
    overhead = MonitoringOverhead()
    report = benchmark(overhead.report, 100_000)

    series_printer(
        "Appendix C: monitoring overheads",
        [("mirror traffic @100K GPUs",
          f"{report['mirror_gbps']:.1f} Gbps"),
         ("share of fabric bandwidth",
          f"{report['mirror_fraction']:.7%}"),
         ("INT storage @10K GPUs",
          f"{overhead.int_storage_bytes_per_day(10_000) / 1e9:.0f} "
          "GB/day"),
         ("retained (15 days)",
          f"{overhead.int_storage_bytes_retained(10_000) / 1e12:.2f} "
          "TB")],
        ["overhead", "value"])

    assert report["mirror_gbps"] == pytest.approx(10.0)
    assert report["mirror_fraction"] == pytest.approx(5e-7, rel=0.05)
    assert overhead.int_storage_bytes_per_day(10_000) \
        == pytest.approx(173e9)
    # Negligible by any measure.
    assert report["mirror_fraction"] < 1e-5

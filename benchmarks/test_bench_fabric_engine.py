"""Fabric engine vs epoch-global baseline — solver-work trajectory.

The incremental engine (`repro.network.engine.FabricEngine`) registers
each flow's directed hops once and, on every completion event,
re-solves only the connected component of links the event touched.
The epoch-global baseline (`Fabric.complete_batch`) rebuilds the whole
membership structure and re-runs progressive filling over every
occupied link at every epoch.  Both count their per-link work with the
same ruler (:class:`~repro.network.engine.SolverStats.link_visits`:
hop registrations + capacity reads + per-link share evaluations), so
the ratio is the incremental solver's measured saving.

Since the vectorized solver core landed, every scenario can run under
either backend (``repro.network.solver``): the pure-python reference
or the numpy incidence kernel.  The backends are bit-identical, so the
smoke point runs both and asserts ``==`` on the finish times; the
slow points record each backend's wall clock separately.

Results are merged into ``BENCH_fabric_engine.json`` at the repo root
so the perf trajectory is recorded run over run.  The smoke-scale
scenario runs in CI (``-m "not slow"``); the 256-host and 1024-host
points are ``slow``.  Re-recording the pure-python 256-host point
(the ~1 h historical baseline the vector speedup is measured against)
additionally requires ``REPRO_BENCH_FULL=1``.
"""

import json
import os
import pathlib
import time

import pytest

from repro.core import GpuAllocator, PlacementPolicy
from repro.network import Fabric, reset_flow_ids
from repro.network.collectives import all_to_all_flows
from repro.network.engine import FabricEngine, SolverStats
from repro.network.flows import make_flow
from repro.network.solver import HAVE_NUMPY, use_backend
from repro.topology import AstralParams, build_astral

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_fabric_engine.json"
A2A_BITS = 64e9
#: fan-out window of the 1024-host point (full all-to-all would be
#: ~1M flows; 128 successors keeps the point recordable while still
#: crossing blocks and pods on every host's flow set).
A2A_WINDOW_1024 = 128

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not available")


def _params_1024():
    """1024 hosts across 4 pods (8 blocks x 32 hosts), dual-rail."""
    return AstralParams(pods=4, blocks_per_pod=8, hosts_per_block=32,
                        gpus_per_host=2, aggs_per_group=4,
                        cores_per_group=4)


def _a2a_flows(allocation, rails):
    """All-to-all across the allocation's hosts on each rail plane."""
    flows = []
    for rail in rails:
        flows.extend(
            all_to_all_flows(allocation.endpoints(rail=rail), A2A_BITS))
    return flows


def _windowed_a2a_flows(allocation, rails, window):
    """Each host exchanges with its next *window* hosts (wrap-around).

    Same per-pair sizing as the full all-to-all; the truncated fan-out
    bounds the flow count at ``hosts * window`` per rail.
    """
    flows = []
    for rail in rails:
        endpoints = allocation.endpoints(rail=rail)
        n = len(endpoints)
        per_pair_bits = A2A_BITS / n
        for index, src in enumerate(endpoints):
            for step in range(1, window + 1):
                dst = endpoints[(index + step) % n]
                flows.append(make_flow(
                    src.host, dst.host, dst.rail, per_pair_bits,
                    dst_rail=dst.rail, collective="all_to_all"))
    return flows


def _measure(n_hosts, rails, solver="python", params=None,
             flows_fn=None, run_batch=True):
    """Run the workload through both solve paths under one backend.

    Returns ``(result, engine_finish)`` — the JSON-ready scenario
    record plus the engine's raw finish-time dict, so callers can
    assert exact cross-backend identity.  With ``run_batch=False``
    only the event-driven engine runs (the huge points, where the
    epoch-global baseline is prohibitive).
    """
    topology = build_astral(params or AstralParams.cluster())
    allocation = GpuAllocator(topology).allocate(
        "bench", n_hosts, PlacementPolicy.PACKED)
    flows_fn = flows_fn or _a2a_flows

    result = {"hosts": n_hosts, "rails": len(rails),
              "size_bits": A2A_BITS, "solver": solver}
    with use_backend(solver):
        batch_run = None
        if run_batch:
            reset_flow_ids()
            fabric = Fabric(topology)
            flows = flows_fn(allocation, rails)
            batch_stats = SolverStats()
            t0 = time.perf_counter()
            batch_run = fabric.complete_batch(flows, stats=batch_stats)
            batch_wall = time.perf_counter() - t0
            result["batch"] = {
                "epochs": batch_stats.solves,
                "solver_calls": batch_stats.solves,
                "link_visits": batch_stats.link_visits,
                "wall_s": round(batch_wall, 3),
            }
            result["hops_cache_hits"] = fabric.hops_cache_hits
            result["hops_cache_misses"] = fabric.hops_cache_misses

        reset_flow_ids()
        fabric = Fabric(topology)
        flows = flows_fn(allocation, rails)
        t0 = time.perf_counter()
        engine = FabricEngine(fabric)
        for flow in flows:
            engine.submit(flow, start_time_s=0.0)
        engine_run = engine.run()
        engine_wall = time.perf_counter() - t0

    result["flows"] = len(flows)
    result["engine"] = {
        "solves": engine.stats.solves,
        "components_solved": engine.stats.components_solved,
        "link_visits": engine.stats.link_visits,
        "wall_s": round(engine_wall, 3),
    }
    if batch_run is not None:
        result["max_finish_diff_s"] = max(
            abs(batch_run.finish_times_s[fid]
                - engine_run.finish_times_s[fid])
            for fid in batch_run.finish_times_s)
        result["link_visit_ratio"] = round(
            result["batch"]["link_visits"]
            / max(result["engine"]["link_visits"], 1), 2)
    return result, dict(engine_run.finish_times_s)


def _record(key, result):
    """Merge one scenario's numbers into the trajectory file."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    data[key] = result
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _historical(key):
    if not BENCH_JSON.exists():
        return None
    try:
        return json.loads(BENCH_JSON.read_text()).get(key)
    except (ValueError, OSError):
        return None


def _series(result):
    rows = [("flows", result["flows"])]
    if "batch" in result:
        rows += [
            ("batch epochs", result["batch"]["epochs"]),
            ("batch link visits", result["batch"]["link_visits"]),
            ("batch wall (s)", result["batch"]["wall_s"]),
        ]
    rows += [
        ("engine solves", result["engine"]["solves"]),
        ("engine components", result["engine"]["components_solved"]),
        ("engine link visits", result["engine"]["link_visits"]),
        ("engine wall (s)", result["engine"]["wall_s"]),
    ]
    for key in ("link_visit_ratio", "max_finish_diff_s",
                "engine_speedup_vs_python", "batch_speedup_vs_python"):
        if key in result:
            rows.append((key.replace("_", " "), result[key]))
    return rows


def test_engine_vs_batch_smoke(benchmark, series_printer):
    """64-host dual-rail all-to-all: the CI smoke point.

    The two rail planes are link-disjoint, so their completion events
    interleave and the engine re-solves one plane at a time while the
    baseline re-solves both every epoch — the component restriction
    plus one-time hop registration is the measured ≥2× saving.  When
    numpy is present the same scenario re-runs under the vector
    backend and every finish time must compare ``==`` (bit-identical
    backends), with batch ``link_visits`` identical under the shared
    ruler.
    """
    result, finish_py = benchmark.pedantic(
        _measure, args=(64, (0, 1)), rounds=1, iterations=1)
    _record("alltoall_64host_2rail", result)
    series_printer(
        "Fabric engine vs epoch-global baseline (64 hosts, 2 rails)",
        _series(result), ["metric", "value"])
    # Same fluid model, same finish times.
    assert result["max_finish_diff_s"] < 1e-9
    # The incremental solver does measurably less per-link work.
    assert result["link_visit_ratio"] >= 2.0
    # Hop-memoization guard: directed hops are computed once per flow
    # and re-used across every subsequent epoch.
    assert result["hops_cache_hits"] > 10 * result["hops_cache_misses"]

    if HAVE_NUMPY:
        vec_result, finish_vec = _measure(64, (0, 1), solver="vector")
        _record("alltoall_64host_2rail_vector", vec_result)
        series_printer(
            "Vector backend, same scenario (64 hosts, 2 rails)",
            _series(vec_result), ["metric", "value"])
        # Bit-identity across backends: exact dict equality.  The
        # batch path counts work visit-for-visit identically; the
        # engine paths differ structurally — python merges all dirty
        # components into one progressive fill (scanning every
        # component's links each iteration) while the vector path
        # solves per component — so vector never scans more, and the
        # two stay within a quarter of each other.
        assert finish_vec == finish_py
        assert vec_result["batch"]["link_visits"] \
            == result["batch"]["link_visits"]
        py_visits = result["engine"]["link_visits"]
        vec_visits = vec_result["engine"]["link_visits"]
        assert vec_visits <= py_visits
        assert vec_visits >= 0.75 * py_visits
        assert vec_result["max_finish_diff_s"] < 1e-9


@pytest.mark.slow
def test_engine_vs_batch_256host(benchmark, series_printer):
    """Paper-scale point, pure-python backend: 256-host dual-rail
    all-to-all (130,560 flows).  This is the ~1 h historical baseline
    the vector speedup is measured against, so re-recording it is
    additionally gated behind ``REPRO_BENCH_FULL=1``."""
    if not os.environ.get("REPRO_BENCH_FULL"):
        pytest.skip("set REPRO_BENCH_FULL=1 to re-record the ~1 h "
                    "pure-python 256-host baseline")
    result, _ = benchmark.pedantic(
        _measure, args=(256, (0, 1)), rounds=1, iterations=1)
    _record("alltoall_256host_2rail", result)
    series_printer(
        "Fabric engine vs epoch-global baseline (256 hosts, 2 rails)",
        _series(result), ["metric", "value"])
    assert result["max_finish_diff_s"] < 1e-9
    assert result["link_visit_ratio"] >= 2.0


@pytest.mark.slow
@needs_numpy
def test_engine_vs_batch_256host_vector(benchmark, series_printer):
    """Paper-scale point under the vector backend.

    Same 130,560-flow scenario as ``alltoall_256host_2rail``; the
    recorded speedups divide the historical pure-python walls by this
    run's.  The kernel is required to clear ≥10× on the engine path —
    the head-line win of the vectorization PR."""
    result, _ = benchmark.pedantic(
        _measure, args=(256, (0, 1)), kwargs={"solver": "vector"},
        rounds=1, iterations=1)
    python_point = _historical("alltoall_256host_2rail")
    if python_point:
        result["engine_speedup_vs_python"] = round(
            python_point["engine"]["wall_s"]
            / result["engine"]["wall_s"], 2)
        result["batch_speedup_vs_python"] = round(
            python_point["batch"]["wall_s"]
            / result["batch"]["wall_s"], 2)
    _record("alltoall_256host_2rail_vector", result)
    series_printer(
        "Vector solver backend (256 hosts, 2 rails)",
        _series(result), ["metric", "value"])
    assert result["max_finish_diff_s"] < 1e-9
    assert result["link_visit_ratio"] >= 2.0
    if python_point:
        assert result["engine_speedup_vs_python"] >= 10.0


@pytest.mark.slow
@needs_numpy
def test_engine_1024host_vector(benchmark, series_printer):
    """1024-host single-rail windowed all-to-all, vector engine only.

    The scale point the vectorization unlocks: four times the hosts of
    the paper-scale scenario on a 4-pod fabric.  Full fan-out at this
    size would be ~1M flows, so each host exchanges with its 128
    successors (131,072 flows — the same order as the 256-host full
    all-to-all, but routed across a 4× larger link universe).  The
    epoch-global baseline is prohibitive here; only the event-driven
    engine runs."""
    result, _ = benchmark.pedantic(
        _measure, args=(1024, (0,)),
        kwargs={"solver": "vector", "params": _params_1024(),
                "flows_fn": lambda alloc, rails: _windowed_a2a_flows(
                    alloc, rails, A2A_WINDOW_1024),
                "run_batch": False},
        rounds=1, iterations=1)
    result["window"] = A2A_WINDOW_1024
    _record("a2a_w128_1024host_1rail_vector", result)
    series_printer(
        "Vector engine, 1024 hosts (window-128 all-to-all, 1 rail)",
        _series(result), ["metric", "value"])
    assert result["flows"] == 1024 * A2A_WINDOW_1024
    assert result["engine"]["solves"] > 0

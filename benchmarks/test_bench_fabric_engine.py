"""Fabric engine vs epoch-global baseline — solver-work trajectory.

The incremental engine (`repro.network.engine.FabricEngine`) registers
each flow's directed hops once and, on every completion event,
re-solves only the connected component of links the event touched.
The epoch-global baseline (`Fabric.complete_batch`) rebuilds the whole
membership structure and re-runs progressive filling over every
occupied link at every epoch.  Both count their per-link work with the
same ruler (:class:`~repro.network.engine.SolverStats.link_visits`:
hop registrations + capacity reads + per-link share evaluations), so
the ratio is the incremental solver's measured saving.

Results are merged into ``BENCH_fabric_engine.json`` at the repo root
so the perf trajectory is recorded run over run.  The smoke-scale
scenario runs in CI (``-m "not slow"``); the paper-scale 256-host
all-to-all is ``slow``.
"""

import json
import pathlib
import time

import pytest

from repro.core import GpuAllocator, PlacementPolicy
from repro.network import Fabric, reset_flow_ids
from repro.network.collectives import all_to_all_flows
from repro.network.engine import FabricEngine, SolverStats
from repro.topology import AstralParams, build_astral

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_fabric_engine.json"
A2A_BITS = 64e9


def _a2a_flows(allocation, rails):
    """All-to-all across the allocation's hosts on each rail plane."""
    flows = []
    for rail in rails:
        flows.extend(
            all_to_all_flows(allocation.endpoints(rail=rail), A2A_BITS))
    return flows


def _measure(n_hosts, rails):
    """Run the same all-to-all through both solvers, count the work."""
    topology = build_astral(AstralParams.cluster())
    allocation = GpuAllocator(topology).allocate(
        "bench", n_hosts, PlacementPolicy.PACKED)

    reset_flow_ids()
    fabric = Fabric(topology)
    flows = _a2a_flows(allocation, rails)
    batch_stats = SolverStats()
    t0 = time.perf_counter()
    batch_run = fabric.complete_batch(flows, stats=batch_stats)
    batch_wall = time.perf_counter() - t0
    cache_hits = fabric.hops_cache_hits
    cache_misses = fabric.hops_cache_misses

    reset_flow_ids()
    fabric = Fabric(topology)
    flows = _a2a_flows(allocation, rails)
    t0 = time.perf_counter()
    engine = FabricEngine(fabric)
    for flow in flows:
        engine.submit(flow, start_time_s=0.0)
    engine_run = engine.run()
    engine_wall = time.perf_counter() - t0

    max_diff = max(
        abs(batch_run.finish_times_s[fid] - engine_run.finish_times_s[fid])
        for fid in batch_run.finish_times_s)
    return {
        "hosts": n_hosts,
        "rails": len(rails),
        "flows": len(flows),
        "size_bits": A2A_BITS,
        "batch": {
            "epochs": batch_stats.solves,
            "solver_calls": batch_stats.solves,
            "link_visits": batch_stats.link_visits,
            "wall_s": round(batch_wall, 3),
        },
        "engine": {
            "solves": engine.stats.solves,
            "components_solved": engine.stats.components_solved,
            "link_visits": engine.stats.link_visits,
            "wall_s": round(engine_wall, 3),
        },
        "link_visit_ratio": round(
            batch_stats.link_visits / max(engine.stats.link_visits, 1), 2),
        "max_finish_diff_s": max_diff,
        "hops_cache_hits": cache_hits,
        "hops_cache_misses": cache_misses,
    }


def _record(key, result):
    """Merge one scenario's numbers into the trajectory file."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    data[key] = result
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _series(result):
    return [
        ("flows", result["flows"]),
        ("batch epochs", result["batch"]["epochs"]),
        ("batch link visits", result["batch"]["link_visits"]),
        ("batch wall (s)", result["batch"]["wall_s"]),
        ("engine solves", result["engine"]["solves"]),
        ("engine components", result["engine"]["components_solved"]),
        ("engine link visits", result["engine"]["link_visits"]),
        ("engine wall (s)", result["engine"]["wall_s"]),
        ("link-visit ratio", result["link_visit_ratio"]),
        ("max finish diff (s)", result["max_finish_diff_s"]),
    ]


def test_engine_vs_batch_smoke(benchmark, series_printer):
    """64-host dual-rail all-to-all: the CI smoke point.

    The two rail planes are link-disjoint, so their completion events
    interleave and the engine re-solves one plane at a time while the
    baseline re-solves both every epoch — the component restriction
    plus one-time hop registration is the measured ≥2× saving.
    """
    result = benchmark.pedantic(
        _measure, args=(64, (0, 1)), rounds=1, iterations=1)
    _record("alltoall_64host_2rail", result)
    series_printer(
        "Fabric engine vs epoch-global baseline (64 hosts, 2 rails)",
        _series(result), ["metric", "value"])
    # Same fluid model, same finish times.
    assert result["max_finish_diff_s"] < 1e-9
    # The incremental solver does measurably less per-link work.
    assert result["link_visit_ratio"] >= 2.0
    # Hop-memoization guard: directed hops are computed once per flow
    # and re-used across every subsequent epoch.
    assert result["hops_cache_hits"] > 10 * result["hops_cache_misses"]


@pytest.mark.slow
def test_engine_vs_batch_256host(benchmark, series_printer):
    """Paper-scale point: 256-host all-to-all, dual-rail (130,560
    flows).  Takes tens of minutes: the epoch-global baseline is the
    cost being measured."""
    result = benchmark.pedantic(
        _measure, args=(256, (0, 1)), rounds=1, iterations=1)
    _record("alltoall_256host_2rail", result)
    series_printer(
        "Fabric engine vs epoch-global baseline (256 hosts, 2 rails)",
        _series(result), ["metric", "value"])
    assert result["max_finish_diff_s"] < 1e-9
    assert result["link_visit_ratio"] >= 2.0

"""Hierarchical fold at paper scale — wall-clock and memory trajectory.

The scale bar from the roadmap: simulate the paper's full 512K-GPU
deployment (65,536 hosts, thousands of tenants) in minutes on a
laptop.  The flat engine tops out around 256 hosts; the symmetry fold
(`repro.hierarchy`) solves one representative block per equivalence
class and replicates, so the engine-simulated host count — and the
wall clock — depends on the number of *distinct* pod/block shapes,
not the cluster size.

Each scale point records wall time, peak RSS, and the fold statistics
into ``BENCH_hierarchy.json`` at the repo root, so the perf trajectory
is tracked run over run.  All three points run in CI: the whole ladder
is seconds, which is the result being recorded.
"""

import json
import pathlib
import resource
import time

from repro.hierarchy import (HierarchicalRun, place_jobs, preset_params,
                             uniform_jobs)
from repro.resilience import FaultDomain, expand_domains

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_hierarchy.json"

#: scale -> hosts per tenant (divides hosts_per_block, so every job is
#: single-block and the block fold applies; 512k lands at 2048 jobs).
_HOSTS_PER_JOB = {"4k": 64, "64k": 64, "512k": 32}


def _peak_rss_mb() -> float:
    # ru_maxrss is KiB on Linux (bytes on macOS, where this bench is
    # not the CI target); a process-lifetime high-water mark.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _measure(scale: str) -> dict:
    params = preset_params(scale)
    jobs = uniform_jobs(params, _HOSTS_PER_JOB[scale], iterations=4,
                        tail_shapes=2)
    t0 = time.perf_counter()
    run = HierarchicalRun(params, jobs)
    run.run()
    wall_s = time.perf_counter() - t0
    report = run.report
    return {
        "gpus": params.total_gpus,
        "hosts": params.pods * params.blocks_per_pod
        * params.hosts_per_block,
        "jobs": report.n_jobs,
        "pod_classes": report.n_pod_classes,
        "engine_sims": report.n_engine_sims,
        "engine_hosts": report.engine_hosts,
        "fold_factor": round(report.fold_factor, 1),
        "exact": report.exact,
        "mean_efficiency": round(report.mean_efficiency, 4),
        "wall_s": round(wall_s, 3),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def _record(key, result):
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    data[key] = result
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")


def _series(result):
    return [(key, result[key]) for key in (
        "gpus", "hosts", "jobs", "pod_classes", "engine_sims",
        "engine_hosts", "fold_factor", "exact", "mean_efficiency",
        "wall_s", "peak_rss_mb")]


def _bench(scale, benchmark, series_printer, wall_budget_s):
    result = benchmark.pedantic(
        _measure, args=(scale,), rounds=1, iterations=1)
    _record(scale, result)
    series_printer(f"Hierarchical fold at {scale} GPUs",
                   _series(result), ["metric", "value"])
    assert result["exact"]
    assert result["wall_s"] < wall_budget_s
    return result


def test_hierarchy_4k(benchmark, series_printer):
    """Laptop sanity scale: 4,096 GPUs, 8 tenants."""
    result = _bench("4k", benchmark, series_printer, wall_budget_s=60)
    assert result["fold_factor"] >= 4


def test_hierarchy_64k(benchmark, series_printer):
    """Datacenter-hall scale: 65,536 GPUs, 128 tenants."""
    result = _bench("64k", benchmark, series_printer, wall_budget_s=120)
    assert result["fold_factor"] >= 32


def test_hierarchy_512k(benchmark, series_printer):
    """The paper's full deployment: 524,288 GPUs, 2,048 tenants.

    The roadmap bar is five minutes; the fold delivers it with minutes
    to spare because only one representative block per class (two
    classes with ``tail_shapes=2``) ever touches the engine.
    """
    result = _bench("512k", benchmark, series_printer,
                    wall_budget_s=300)
    assert result["jobs"] == 2048
    assert result["fold_factor"] >= 256


def test_hierarchy_512k_faulted(benchmark, series_printer):
    """Full 512K deployment surviving a correlated optics-batch fault.

    One hard optics-batch domain event breaks a pod's symmetry;
    bounded refinement unfolds only the blast-radius-touched block
    (plus the shared uplink tier) instead of the whole 8,192-host pod.
    The economy is the result: engine-billed refinement hosts must
    beat the whole-pod unfold by at least 5x, inside the same
    five-minute budget as the fault-free point.
    """
    scale = "512k"
    params = preset_params(scale)
    jobs = uniform_jobs(params, _HOSTS_PER_JOB[scale], iterations=4,
                        tail_shapes=2)
    # Hard mode keeps the fault inside the block-level exactness
    # certificate (fail-stop NIC: flows stay pinned at line rate);
    # the gray crawl would escalate to pod scope by design.
    domain = FaultDomain("optics-batch", pod=3, block=7, size=1,
                         mode="hard", seed="bench-512k")
    faults = expand_domains(params, place_jobs(params, jobs), [domain])
    assert len(faults) == 1

    def measure():
        t0 = time.perf_counter()
        run = HierarchicalRun(params, jobs, faults=faults,
                              refine="bounded")
        run.run()
        wall_s = time.perf_counter() - t0
        report = run.report
        return {
            "gpus": params.total_gpus,
            "jobs": report.n_jobs,
            "fault": "optics-batch[hard] pod 3 block 7 size 1",
            "refine_levels": dict(report.refine_levels),
            "refine_engine_hosts": report.n_refine_engine_hosts,
            "full_unfold_hosts": report.n_full_unfold_hosts,
            "unfold_economy": round(report.n_full_unfold_hosts
                                    / report.n_refine_engine_hosts, 1),
            "wall_s": round(wall_s, 3),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    _record("512k-faulted", result)
    series_printer("Hierarchical fold at 512k GPUs, faulted",
                   [(key, result[key]) for key in (
                       "gpus", "jobs", "fault", "refine_levels",
                       "refine_engine_hosts", "full_unfold_hosts",
                       "unfold_economy", "wall_s", "peak_rss_mb")],
                   ["metric", "value"])
    assert result["refine_levels"] == {"block": 1}
    assert result["unfold_economy"] >= 5.0
    assert result["wall_s"] < 300

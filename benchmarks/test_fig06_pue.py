"""Figure 6 — Evolution of PUE in production.

The cooling-generation series (2006 direct expansion, 2010 chilled
water, 2018 distributed AHU) monotonically improves, and the Astral
air-liquid + HVDC configuration improves average PUE by ~16.34% over
the traditional infrastructure.
"""

import pytest

from repro.power import astral_vs_traditional, pue_evolution


def test_fig06_pue_evolution(benchmark, series_printer):
    reports = benchmark(pue_evolution)
    comparison = astral_vs_traditional()

    rows = [(report.label, report.chain_name, report.pue)
            for report in reports]
    rows.append(("improvement vs traditional", "-",
                 comparison["improvement_frac"]))
    series_printer("Figure 6: PUE evolution", rows,
                   ["configuration", "power chain", "PUE"])

    pues = [report.pue for report in reports]
    assert pues == sorted(pues, reverse=True)
    assert all(pue > 1.0 for pue in pues)
    # Headline: average PUE improved by (up to) 16.34%.
    assert comparison["improvement_frac"] == pytest.approx(0.1634,
                                                           abs=0.015)

"""Table 1 (Appendix) — Computation, memory access, and communication
operators used by LLaMA 3 in Seer.

The detail-granularity graph builder must emit exactly the published
operator inventory with the right comp/mem/comm type tags, and the
resulting timeline must schedule every one of them.
"""

from repro.seer import (
    LLAMA3_70B,
    LLAMA3_OPERATOR_TABLE,
    NetworkSuite,
    OpType,
    ParallelismConfig,
    Seer,
    build_training_graph,
)

PARALLEL = ParallelismConfig(tp=2, pp=2, dp=1, microbatches=2)


def test_tab01_operator_inventory(benchmark, series_printer):
    graph = benchmark(build_training_graph, LLAMA3_70B, PARALLEL,
                      NetworkSuite(), True)

    rows = []
    for section, operators in LLAMA3_OPERATOR_TABLE.items():
        for op_name, op_type in operators:
            rows.append((section, op_name, op_type.value))
    series_printer("Table 1: LLaMA-3 operators in Seer", rows,
                   ["section", "operator", "type"])

    by_base_name = {}
    for op in graph:
        base = op.name.split(".")[0]
        by_base_name.setdefault(base, []).append(op)

    # Every Table-1 operator appears in the generated graph with the
    # published type tag.
    for section, operators in LLAMA3_OPERATOR_TABLE.items():
        for op_name, op_type in operators:
            matches = [
                op for base, ops in by_base_name.items()
                for op in ops if op_name in base
            ]
            assert matches, f"missing operator {op_name}"
            if op_type is not OpType.MIXED:
                typed = [op for op in matches
                         if op.op_type is op_type]
                assert typed, f"{op_name} lacks type {op_type}"

    counts = graph.counts_by_type()
    assert counts[OpType.COMPUTE] > 0
    assert counts[OpType.MEMORY] > 0
    assert counts[OpType.COMMUNICATION] > 0


def test_tab01_detail_timeline_schedules_all(benchmark):
    seer = Seer(gpu="H800", network=NetworkSuite(), corrected=True)
    graph = build_training_graph(LLAMA3_70B, PARALLEL, NetworkSuite(),
                                 detail=True)
    timeline = benchmark(seer.forecast_graph, graph)
    assert len(timeline.entries) == len(graph)
    assert timeline.total_time_s > 0

"""Headline — Seer forecasts at the paper's 512K-GPU cluster scale.

"Astral ... is capable of interconnecting half a million GPUs" and
"Seer forecasts the performance of LLM training and inference within
seconds."  Both at once: a full training-iteration forecast for a
524,288-GPU deployment (TP8 x PP16 x DP4096) completes in well under
the paper's seconds budget, where packet-level simulators took a day
for 1K GPUs (§5).
"""

import time

from repro.seer import (
    HUNYUAN_MOE,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)

PAPER_SCALE = ParallelismConfig(tp=8, pp=16, dp=4096, ep=16,
                                microbatches=64)


def test_headline_half_million_gpu_forecast(benchmark, series_printer):
    seer = Seer(gpu="H800", network=NetworkSuite())

    start = time.monotonic()
    forecast = benchmark.pedantic(
        seer.forecast_training, args=(HUNYUAN_MOE, PAPER_SCALE),
        rounds=1, iterations=1)
    elapsed = time.monotonic() - start

    series_printer(
        "Headline: Seer at 512K-GPU scale (Hunyuan-MoE)",
        [("world size", f"{PAPER_SCALE.world_size:,} GPUs"),
         ("iteration time", f"{forecast.iteration_time_s:.3f} s"),
         ("cluster tokens/s", f"{forecast.tokens_per_s:,.0f}"),
         ("scheduled operators", len(forecast.timeline.entries)),
         ("forecast wall-clock", f"{elapsed:.2f} s")],
        ["metric", "value"])

    assert PAPER_SCALE.world_size == 524_288
    assert forecast.iteration_time_s > 0
    # "within seconds": far below the minute, let alone ASTRA-sim's day.
    assert elapsed < 30.0

    # Per-GPU efficiency at 512K remains within a few percent of the
    # small-cluster baseline (near-linear scaling, Figure 19's limit).
    small = seer.forecast_training(
        HUNYUAN_MOE, ParallelismConfig(tp=8, pp=16, dp=1, ep=16,
                                       microbatches=64))
    efficiency = forecast.throughput_per_gpu / small.throughput_per_gpu
    assert efficiency > 0.95

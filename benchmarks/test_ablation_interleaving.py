"""Ablation - interleaved (virtual-stage) pipeline scheduling.

The paper's Seer exists to explore framework evolutions like overlap
and scheduling strategies (S4.1 goal 3).  This ablation uses it on one:
Megatron-style interleaved 1F1B, which trades extra PP messages for
smaller pipeline bubbles.  The win is largest when microbatches are
scarce relative to pipeline depth and vanishes as microbatches grow.
"""

from repro.seer import (
    GPT3_175B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)


def test_ablation_interleaved_pipeline(benchmark, series_printer):
    seer = Seer(gpu="H800", network=NetworkSuite())

    def sweep():
        table = {}
        for microbatches in (8, 32):
            for virtual in (1, 2, 4):
                parallel = ParallelismConfig(
                    tp=8, pp=8, dp=1, microbatches=microbatches,
                    virtual_stages=virtual)
                table[(microbatches, virtual)] = \
                    seer.forecast_training(
                        GPT3_175B, parallel).iteration_time_s
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for microbatches in (8, 32):
        base = table[(microbatches, 1)]
        for virtual in (1, 2, 4):
            t = table[(microbatches, virtual)]
            rows.append((microbatches, virtual, f"{t:.3f}",
                         f"{base / t:.2f}x"))
    series_printer(
        "Ablation: interleaved 1F1B (GPT-3, PP=8)",
        rows, ["microbatches", "virtual stages", "iteration (s)",
               "speedup"])

    # Few microbatches: interleaving wins, monotonically.
    assert table[(8, 2)] < table[(8, 1)]
    assert table[(8, 4)] < table[(8, 2)]
    # Many microbatches: bubbles are already amortized, the win shrinks.
    gain_scarce = table[(8, 1)] / table[(8, 4)]
    gain_ample = table[(32, 1)] / table[(32, 4)]
    assert gain_scarce > gain_ample

"""Appendix B — Cross-datacenter fabric and fiber economics.

The flow-level counterpart to the Seer study of Figure 18: cross-DC
flows on the stitched topology traverse exactly one DCI pair, the
long-haul link caps their aggregate rate by the oversubscription ratio,
and the fiber rental model reproduces the paper's ~250 K$/year record
for a 300 km run.
"""

import pytest

from repro.network import Fabric, make_flow, reset_flow_ids
from repro.topology import (
    CrossDcParams,
    DeviceKind,
    FiberCostModel,
    build_cross_dc,
)


def _aggregate_cross_dc_gbps(fiber_gbps: float) -> float:
    reset_flow_ids()
    params = CrossDcParams(fiber_gbps=fiber_gbps,
                           dci_per_datacenter=2)
    topology = build_cross_dc(params)
    fabric = Fabric(topology)
    flows = [
        make_flow(f"dc0.p{p}.b{b}.h{h}", f"dc1.p{p}.b{b}.h{h}",
                  rail=0, size_bits=8e9, src_port=50_000 + h + 8 * b)
        for p in range(2) for b in range(2) for h in range(2)
    ]
    paths = {flow.flow_id: fabric.router.path(flow, max_hops=24)
             for flow in flows}
    rates = fabric.max_min_rates(flows, paths)
    return sum(rates.values())


def test_appx_b_long_haul_caps_throughput(benchmark, series_printer):
    wide = _aggregate_cross_dc_gbps(fiber_gbps=1600.0)
    narrow = benchmark(_aggregate_cross_dc_gbps, 200.0)

    series_printer(
        "Appendix B: aggregate cross-DC throughput vs fiber capacity",
        [("2 x 1600G fibers", wide), ("2 x 200G fibers", narrow)],
        ["long-haul provisioning", "aggregate Gbps"])

    assert narrow < wide
    # The narrow case is fiber-bound: total <= DCI pairs x capacity.
    assert narrow <= 2 * 200.0 + 1e-6


def test_appx_b_cross_dc_flows_use_one_dci_pair(benchmark):
    reset_flow_ids()
    topology = build_cross_dc(CrossDcParams())
    fabric = Fabric(topology)

    def route():
        reset_flow_ids()
        flow = make_flow("dc0.p0.b0.h0", "dc1.p0.b0.h0", rail=0,
                         size_bits=8e9)
        return fabric.router.path(flow, max_hops=24)

    path = benchmark(route)
    dci_hops = [d for d in path.devices
                if topology.devices[d].kind is DeviceKind.DCI]
    assert len(dci_hops) == 2
    assert {topology.devices[d].datacenter for d in dci_hops} == {0, 1}


def test_appx_b_fiber_economics(benchmark, series_printer):
    model = FiberCostModel()
    yearly = benchmark(model.yearly_cost_usd, 300.0)
    fibers_needed = model.fibers_for_bandwidth(1600.0)
    series_printer(
        "Appendix B: long-distance fiber rental",
        [("300 km, 1 fiber, yearly", f"${yearly:,.0f}"),
         ("fibers for 1.6 Tbps @400G", fibers_needed),
         ("300 km, 1.6 Tbps, yearly",
          f"${model.yearly_cost_usd(300.0, fibers_needed):,.0f}")],
        ["item", "value"])
    # Paper's record: ~250 K$ for 300 km per year.
    assert yearly == pytest.approx(250_000.0, rel=0.05)

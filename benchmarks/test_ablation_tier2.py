"""Ablation — Same-rail aggregation at tier 2 vs full interconnection.

The paper's own deployment history (§5): Astral first tried a fully
interconnected tier 2 (as Alibaba HPN does) and abandoned it because it
reduced the number of GPUs reachable over same-rail paths and worsened
hash polarization.  The ablation compares same-rail (cross-block,
same-rank) collective throughput and hop counts on both designs, plus
the rail-only variant's missing cross-rail connectivity.
"""

from repro.network import (
    Endpoint,
    Fabric,
    make_flow,
    reset_flow_ids,
    run_collective,
)
from repro.topology import (
    AstralParams,
    DeviceKind,
    build_astral,
    build_full_interconnect_tier2,
    build_rail_only,
)

PARAMS = AstralParams.small()
HOSTS = [f"p0.b{b}.h{h}" for b in range(2) for h in range(8)]


def _same_rail_throughput(topology) -> float:
    reset_flow_ids()
    fabric = Fabric(topology, host_line_rate_gbps=PARAMS.nic_port_gbps)
    endpoints = [Endpoint(host, 0) for host in HOSTS]
    result = run_collective(fabric, endpoints, 64e9, "all_to_all")
    return result.algo_bandwidth_gbps


def test_ablation_tier2_same_rail_throughput(benchmark, series_printer):
    astral = _same_rail_throughput(build_astral(PARAMS))
    full = benchmark(
        _same_rail_throughput, build_full_interconnect_tier2(PARAMS))

    series_printer(
        "Ablation: tier-2 design vs same-rail A2A throughput",
        [("Astral (same-rail aggregation)", astral),
         ("fully interconnected tier 2", full)],
        ["tier-2 design", "throughput (Gbps)"])

    # Same-rail aggregation must not lose to full interconnection on
    # same-rail traffic (it is what the design is optimized for).
    assert astral >= full * 0.99


def test_ablation_rail_only_loses_cross_rail(benchmark):
    """Meta's rail-only design cannot carry cross-rail traffic on the
    fabric at all — the limitation §2.1 calls out for MoE all-to-all."""
    rail_only = benchmark(build_rail_only, PARAMS)
    fabric = Fabric(rail_only)
    cross_rail = make_flow("p0.b0.h0", "p0.b0.h1", rail=0,
                           size_bits=8e9, dst_rail=1)
    assert not fabric.router.reachable(cross_rail)

    astral = build_astral(PARAMS)
    fabric = Fabric(astral)
    reset_flow_ids()
    cross_rail = make_flow("p0.b0.h0", "p0.b0.h1", rail=0,
                           size_bits=8e9, dst_rail=1)
    assert fabric.router.reachable(cross_rail)


def test_ablation_same_rail_hop_count(benchmark):
    """Astral same-rail cross-block paths use exactly 3 switch hops
    (ToR-Agg-ToR) and never touch Core."""
    topology = build_astral(PARAMS)
    fabric = Fabric(topology)

    def hops():
        reset_flow_ids()
        flow = make_flow("p0.b0.h0", "p0.b1.h0", rail=0,
                         size_bits=8e9)
        return fabric.router.path(flow)

    path = benchmark(hops)
    assert path.switch_hops == 3
    kinds = [topology.devices[d].kind for d in path.devices]
    assert DeviceKind.CORE not in kinds

"""Digital-twin session throughput at the 64K-GPU preset.

One persistent :class:`~repro.twin.session.TwinSession` over the
8,192-host 64K fabric is driven through a scripted operator loop —
cordon/uncordon pairs applied at every boundary — and then replayed
from its action log.  The point records how fast the twin absorbs
operator actions and cuts telemetry snapshots at paper scale, and
asserts the replay lands on the live digest bit-for-bit, into
``BENCH_twin.json`` at the repo root so the trajectory is tracked run
over run.
"""

import json
import pathlib
import time

from repro.twin import TwinConfig, TwinSession, replay

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_twin.json"

_BOUNDARIES = 10
_DT_S = 60.0


def _measure() -> dict:
    config = TwinConfig(kind="cluster", scale="64k", jobs=32,
                        probe_interval_s=3600.0)
    t0 = time.perf_counter()
    session = TwinSession(config)
    build_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    n_actions = 0
    for step in range(_BOUNDARIES):
        hosts = [f"p0.b0.h{2 * step}", f"p0.b0.h{2 * step + 1}"]
        session.submit({"kind": "cordon", "hosts": hosts})
        session.submit({"kind": "uncordon", "hosts": hosts})
        n_actions += 2
        session.advance(_DT_S)
    drive_s = time.perf_counter() - t1

    t2 = time.perf_counter()
    replayed = replay(config, session.action_log)
    replay_s = time.perf_counter() - t2

    return {
        "scale": "64k",
        "hosts": session.stack.total_hosts,
        "boundaries": _BOUNDARIES,
        "virtual_s": _BOUNDARIES * _DT_S,
        "actions": n_actions,
        "build_s": round(build_s, 3),
        "drive_s": round(drive_s, 3),
        "replay_s": round(replay_s, 3),
        "actions_per_s": round(n_actions / drive_s, 1),
        "snapshots_per_s": round(_BOUNDARIES / drive_s, 1),
        "replay_match": replayed.digest() == session.digest(),
    }


def _record(result: dict) -> None:
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    data["64k-session"] = result
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_bench_twin_64k_session():
    result = _measure()
    _record(result)

    # The wall budget: standing up an 8K-host world stays interactive,
    # and the operator loop turns around far faster than real time.
    assert result["build_s"] < 30.0
    assert result["drive_s"] < 30.0
    assert result["replay_s"] < 60.0
    assert result["actions_per_s"] > 1.0
    assert result["snapshots_per_s"] > 1.0
    # The determinism bar holds at paper scale, not just in unit tests.
    assert result["replay_match"] is True
    print("\n64k twin session:")
    for key, value in result.items():
        print(f"  {key:<16} {value}")

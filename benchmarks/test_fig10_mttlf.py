"""Figure 10 — Stability improvement after deploying the monitoring
system.

A one-year-style fault campaign is run through the monitored cluster;
for each fault we measure the localization cost of the manual workflow
(pre-deployment) and of the hierarchical analyzer (post-deployment).
Claims: fail-stop and fail-hang MTTLF drop to minutes — up to 12x and
25x reductions — and fail-slow shortens by nearly 5x.
"""

from repro.monitoring import (
    FaultSpec,
    HierarchicalAnalyzer,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    MttlfModel,
    MttlfReport,
    RootCause,
)
from repro.network import Fabric, reset_flow_ids
from repro.topology import AstralParams, build_astral

HOSTS = tuple(f"p0.b0.h{i}" for i in range(6))

#: A representative slice of the campaign: one scenario per
#: manifestation class (each runs a full monitored job).
SCENARIOS = [
    (RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP, HOSTS[1]),
    (RootCause.NIC_ERROR, Manifestation.FAIL_STOP, HOSTS[2]),
    (RootCause.MEMORY, Manifestation.FAIL_STOP, HOSTS[3]),
    (RootCause.CCL_BUG, Manifestation.FAIL_HANG, HOSTS[0]),
    (RootCause.GPU_HARDWARE, Manifestation.FAIL_HANG, HOSTS[4]),
    (RootCause.SWITCH_CONFIG, Manifestation.FAIL_SLOW,
     "p0.b0.r0.g0.tor"),
    (RootCause.NIC_ERROR, Manifestation.FAIL_SLOW, HOSTS[5]),
]


def _run_campaign() -> MttlfReport:
    model = MttlfModel(n_hosts=64, jitter_frac=0.05, seed=11)
    report = MttlfReport()
    for cause, manifestation, target in SCENARIOS:
        reset_flow_ids()
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        fault = FaultSpec(cause, manifestation, target, at_iteration=2)
        result = MonitoredTrainingJob(
            fabric, JobConfig(hosts=HOSTS, iterations=5),
            fault=fault).run()
        diagnosis = HierarchicalAnalyzer(
            result.store, result.expected_compute_s,
            result.expected_comm_s).diagnose("job0")
        report.samples.append(model.sample(manifestation, diagnosis))
    return report


def test_fig10_mttlf_reductions(benchmark, series_printer):
    report = benchmark(_run_campaign)

    rows = []
    for manifestation in (Manifestation.FAIL_STOP,
                          Manifestation.FAIL_HANG,
                          Manifestation.FAIL_SLOW):
        manual = report.mean_hours(manifestation, "manual")
        automated = report.mean_hours(manifestation, "automated")
        rows.append((manifestation.value, manual, automated,
                     f"{manual / automated:.1f}x"))
    series_printer(
        "Figure 10: mean time to locate failure (hours)",
        rows, ["manifestation", "before (manual)", "after (monitor)",
               "reduction"])

    stop = report.mean_speedup(Manifestation.FAIL_STOP)
    hang = report.mean_speedup(Manifestation.FAIL_HANG)
    slow = report.mean_speedup(Manifestation.FAIL_SLOW)
    # Paper: up to 12x (stop), up to 25x (hang), nearly 5x (slow).
    assert 6 <= stop <= 14
    assert 15 <= hang <= 28
    assert 3 <= slow <= 7
    # Stop/hang localization lands in the minutes range (< 1.5 h).
    assert report.mean_hours(Manifestation.FAIL_STOP, "automated") < 1.0
    assert report.mean_hours(Manifestation.FAIL_HANG, "automated") < 1.5


def test_fig10_full_taxonomy_campaign(benchmark, series_printer):
    """A compressed production year: faults sampled from the Figure-7
    taxonomy, one monitored job each, scored against ground truth."""
    from repro.monitoring import FaultCampaign

    result = benchmark.pedantic(
        lambda: FaultCampaign(seed=23).run(40), rounds=1, iterations=1)

    rows = []
    for manifestation, records in sorted(
            result.by_manifestation().items(),
            key=lambda kv: kv[0].value):
        localized = sum(r.localized_correctly for r in records)
        rows.append((manifestation.value, len(records),
                     f"{localized}/{len(records)}"))
    rows.append(("overall detection",
                 f"{result.detection_rate:.0%}", ""))
    rows.append(("overall localization",
                 f"{result.localization_accuracy:.0%}", ""))
    series_printer(
        "Figure 10 campaign: localization over the taxonomy",
        rows, ["manifestation", "faults", "localized"])

    # The paper's operational claim: the correlation system resolves
    # (nearly) all taxonomy faults automatically.
    assert result.localization_accuracy >= 0.85
    assert result.detection_rate >= 0.8
    assert result.mttlf.mean_speedup(Manifestation.FAIL_STOP) > 5

"""Extension — inference serving under load (Figures 14c/d context).

The prefill/decode costs Seer forecasts become serving metrics once a
continuous-batching engine interleaves them: TTFT stays flat until the
deployment saturates, then queueing explodes it, while token throughput
saturates at the decode-bound ceiling.
"""

from repro.seer import (
    HUNYUAN_MOE,
    NetworkSuite,
    ParallelismConfig,
    Seer,
    ServingConfig,
    ServingSimulator,
)

PARALLEL = ParallelismConfig(tp=8, pp=1, dp=1, ep=16)
RATES = (0.5, 2.0, 8.0, 16.0)


def test_serving_load_sweep(benchmark, series_printer):
    seer = Seer(gpu="H800", network=NetworkSuite())

    def sweep():
        reports = {}
        for rate in RATES:
            config = ServingConfig(arrival_rate_per_s=rate,
                                   duration_s=120.0, batch_max=16,
                                   output_len_mean=128)
            reports[rate] = ServingSimulator(
                seer, HUNYUAN_MOE, PARALLEL, config).run()
        return reports

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (rate,
         f"{reports[rate].mean_ttft_s():.2f}",
         f"{reports[rate].p99_ttft_s():.2f}",
         f"{reports[rate].mean_tpot_s() * 1e3:.1f}",
         f"{reports[rate].output_tokens_per_s():.0f}")
        for rate in RATES
    ]
    series_printer(
        "Serving metrics vs offered load (Hunyuan-MoE, TP8, batch 16)",
        rows, ["req/s", "TTFT mean (s)", "TTFT p99 (s)",
               "TPOT (ms)", "tokens/s"])

    light, heavy = reports[RATES[0]], reports[RATES[-1]]
    # Below saturation TTFT is flat and small.
    assert reports[2.0].mean_ttft_s() < 3 * light.mean_ttft_s()
    # Past saturation TTFT blows up but throughput has saturated.
    assert heavy.mean_ttft_s() > 10 * light.mean_ttft_s()
    assert heavy.output_tokens_per_s() \
        < 1.5 * reports[8.0].output_tokens_per_s()
    # Everything offered is eventually served (closed horizon).
    for report in reports.values():
        assert report.completion_rate == 1.0

"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation: it runs the workload, prints the same rows/series the paper
reports (so the bench output IS the reproduced artifact), and asserts
the qualitative shape — who wins, by roughly what factor, where the
crossovers fall.  Absolute numbers differ from the paper's testbed; the
assertions encode the claims, not the constants.
"""

import pytest

from repro.network import reset_flow_ids


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def print_series(title, rows, headers):
    """Render one figure's data series as an aligned text table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(headers[i])),
            max((len(_fmt(row[i])) for row in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@pytest.fixture()
def series_printer():
    return print_series

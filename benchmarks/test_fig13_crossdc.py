"""Figure 13 — Training efficiency across datacenters (§4.4 Case #1).

Two questions Seer answers for cross-DC deployments:

* which traffic should cross datacenters? PP and plain DP both tolerate
  it (DP is low-frequency and overlaps well despite its volume), while
  memory-optimized ZeRO-DP performs worst due to its extremely heavy,
  poorly-overlappable traffic;
* what bandwidth oversubscription is acceptable? Efficiency does not
  drop significantly until the intra:cross ratio reaches ~16:1.
"""

from repro.seer import (
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)

MODEL = LLAMA3_70B
BASE_PAR = dict(tp=8, pp=4, dp=4, microbatches=16)


def _efficiency(cross_dim: str, zero_stage: int,
                oversubscription: float) -> float:
    baseline = Seer(gpu="H800", network=NetworkSuite()) \
        .forecast_training(MODEL, ParallelismConfig(**BASE_PAR)) \
        .iteration_time_s
    network = NetworkSuite().with_cross_dc(oversubscription,
                                           rtt_ms=3.0)
    parallel = ParallelismConfig(**BASE_PAR, zero_stage=zero_stage,
                                 cross_dc_dimension=cross_dim)
    crossed = Seer(gpu="H800", network=network) \
        .forecast_training(MODEL, parallel).iteration_time_s
    return baseline / crossed


def test_fig13_which_traffic_crosses(benchmark, series_printer):
    def measure():
        return {
            "PP across DC": _efficiency("pp", 0, 8.0),
            "DP across DC": _efficiency("dp", 0, 8.0),
            "ZeRO-DP across DC": _efficiency("dp", 3, 8.0),
        }

    results = benchmark(measure)
    series_printer(
        "Figure 13 (left): which traffic crosses the DC (8:1)",
        [(k, f"{v:.1%}") for k, v in results.items()],
        ["cross-DC dimension", "training efficiency"])

    # PP and DP both stay near baseline; ZeRO-DP is clearly the worst.
    assert results["PP across DC"] > 0.90
    assert results["DP across DC"] > 0.90
    assert results["ZeRO-DP across DC"] \
        < min(results["PP across DC"], results["DP across DC"])


def test_fig13_oversubscription_knee(benchmark, series_printer):
    ratios = (1, 2, 4, 8, 16, 32)

    def sweep():
        return {ratio: _efficiency("dp", 0, float(ratio))
                for ratio in ratios}

    efficiency = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(f"{ratio}:1", f"{efficiency[ratio]:.1%}")
            for ratio in ratios]
    series_printer(
        "Figure 13 (right): cross-DC oversubscription sweep (DP)",
        rows, ["intra:cross ratio", "training efficiency"])

    # "Does not drop significantly until the ratio reaches 16:1."
    assert efficiency[8] > 0.95
    drop_16 = efficiency[8] - efficiency[16]
    drop_8 = efficiency[4] - efficiency[8]
    assert drop_16 > drop_8          # the knee sits at ~16:1
    assert efficiency[32] < efficiency[16] <= efficiency[8]

"""Figure 19 (Appendix) — Training performance at scale.

Hunyuan-MoE training efficiency stays almost consistent with GPU-scale
expansion: the paper reports only a 0.6% performance loss at 8K GPUs.
The per-GPU throughput is swept over data-parallel scale-out and
normalized to the smallest deployment.
"""

from repro.seer import (
    HUNYUAN_MOE,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)

DP_SWEEP = (1, 2, 4, 8, 16, 32, 64)


def _scaling_series():
    seer = Seer(gpu="H800", network=NetworkSuite())
    series = []
    for dp in DP_SWEEP:
        parallel = ParallelismConfig(tp=4, pp=4, dp=dp, ep=16,
                                     microbatches=8)
        forecast = seer.forecast_training(HUNYUAN_MOE, parallel)
        series.append((parallel.world_size,
                       forecast.throughput_per_gpu))
    return series


def test_fig19_near_linear_scaling(benchmark, series_printer):
    series = benchmark(_scaling_series)
    base = series[0][1]
    rows = [(gpus, per_gpu, f"{per_gpu / base:.2%}",
             f"{1 - per_gpu / base:.2%}")
            for gpus, per_gpu in series]
    series_printer(
        "Figure 19: Hunyuan-MoE training efficiency at scale",
        rows, ["GPUs", "tokens/s/GPU", "efficiency", "loss"])

    efficiencies = [per_gpu / base for _, per_gpu in series]
    # Sub-3% loss at the largest scale (paper: 0.6% at 8K GPUs).
    assert efficiencies[-1] > 0.97
    # The marginal loss flattens: scaling out further costs almost
    # nothing once the DP sync pattern is established.
    increments = [a - b for a, b in zip(efficiencies[1:-1],
                                        efficiencies[2:])]
    assert all(increment < 0.01 for increment in increments)
    # Efficiency is monotone non-increasing with scale.
    assert all(b <= a + 1e-9
               for a, b in zip(efficiencies, efficiencies[1:]))

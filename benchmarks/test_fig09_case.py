"""Figure 9 — Anomaly localization with the hierarchical analyzer.

Reproduces the paper's real fail-slow case end to end:

* Step 1 (Fig. 9a): the NCCL timeline shows communication times far
  above the Seer-derived threshold;
* Step 2 (Fig. 9b/9c): specific QPs run below 50% of the link
  bandwidth; INT per-hop delay shows ~0.6 us at healthy hops and
  hundreds of microseconds at the congested hop;
* Step 3 (Fig. 9d): the congested switch's PFC pause counters far
  exceed the normal range, pinpointing persistent downstream
  congestion.
"""

from repro.monitoring import (
    FaultSpec,
    HierarchicalAnalyzer,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    RootCause,
)
from repro.network import Fabric
from repro.topology import AstralParams, build_astral

HOSTS = tuple(f"p0.b0.h{i}" for i in range(4)) \
    + ("p0.b1.h0", "p0.b1.h1")
CONGESTED_TOR = "p0.b0.r0.g0.tor"


def _run_case():
    topology = build_astral(AstralParams.small())
    fabric = Fabric(topology)
    fault = FaultSpec(RootCause.SWITCH_CONFIG, Manifestation.FAIL_SLOW,
                      CONGESTED_TOR, at_iteration=2)
    config = JobConfig(hosts=HOSTS, iterations=5)
    result = MonitoredTrainingJob(fabric, config, fault=fault).run()
    analyzer = HierarchicalAnalyzer(
        result.store, result.expected_compute_s,
        result.expected_comm_s)
    return result, analyzer.diagnose(config.name)


def test_fig09_hierarchical_localization(benchmark, series_printer):
    result, diagnosis = benchmark(_run_case)
    store = result.store

    # Fig 9a: per-host comm time in the last iteration vs expectation.
    last = max(r.iteration for r in store.nccl_timeline)
    timeline = store.timeline_for("job0", iteration=last)
    series_printer(
        "Figure 9a: NCCL timeline (last iteration)",
        [(r.host, r.compute_time_s, r.comm_time_s) for r in timeline],
        ["host", "compute (s)", "comm (s)"])
    threshold = result.expected_comm_s * 1.5
    assert any(r.comm_time_s > threshold for r in timeline)

    # Fig 9b: QP rates; some drop below 50% of the 200G port rate.
    latest_rates = {}
    for record in store.qp_rates:
        latest_rates[record.qp] = record.rate_gbps
    slow_qps = [qp for qp, rate in latest_rates.items()
                if 0 < rate < 100.0]
    series_printer(
        "Figure 9b: latest QP rates",
        sorted(latest_rates.items()),
        ["qp", "rate (Gbps)"])
    assert slow_qps

    # Fig 9c: INT per-hop latency heatmap rows for the slow flows.
    hop_rows = []
    congested_hop_seen = healthy_hop_seen = False
    for record in store.int_pings[-len(HOSTS):]:
        hop_rows.append((str(record.devices),
                         str(tuple(round(l, 1)
                                   for l in record.hop_latencies_us))))
        for latency in record.hop_latencies_us:
            if latency > 100.0:
                congested_hop_seen = True
            if latency < 1.0:
                healthy_hop_seen = True
    series_printer("Figure 9c: INT per-hop latency (us)", hop_rows,
                   ["path", "hop latencies"])
    assert congested_hop_seen and healthy_hop_seen

    # Fig 9d: PFC pause counters far above normal on the faulty device.
    pfc = [record for record in store.switch_counters
           if record.pfc_pause > 0]
    series_printer(
        "Figure 9d: PFC pause counters",
        [(r.device, r.link_id, r.pfc_pause) for r in pfc[:8]],
        ["device", "link", "pfc pauses"])
    assert pfc

    # The analyzer walks the full stack and lands on the right device.
    assert diagnosis.manifestation is Manifestation.FAIL_SLOW
    assert diagnosis.root_cause_device == CONGESTED_TOR
    assert diagnosis.inferred_cause == "switch-config"
    evidence = " ".join(diagnosis.evidence)
    for marker in ("NCCL timeline", "QP", "INT", "PFC"):
        assert marker in evidence, marker
    print("\nDiagnosis evidence chain:")
    for step in diagnosis.evidence:
        print(f"  -> {step}")

"""Scheduler shoot-out — topology-aware placement vs plain FIFO.

A loaded 256-host trace (cluster-scale Astral topology) is replayed
under each scheduling policy.  The claim under test: topology-aware
best-fit both packs jobs into fewer pods (less cross-pod traffic on the
3.2:1-oversubscribed tier 3) and keeps utilization higher (no
head-of-line blocking while a large job waits for space).
"""

import pytest

from repro.cluster import ClusterScheduler, WorkloadConfig, WorkloadGenerator
from repro.topology.astral import AstralParams, build_astral

# Heavy enough that the 256-host cluster actually queues: mean arrival
# every 2 min, sizes up to half the cluster, hour-long mean service.
LOADED = WorkloadConfig(
    mean_interarrival_s=120.0,
    host_sizes=(4, 8, 16, 32, 64, 128),
    size_weights=(0.2, 0.2, 0.25, 0.15, 0.12, 0.08),
    mean_duration_s=3600.0,
)
N_JOBS = 50
SEED = 0


def _run(policy):
    topo = build_astral(AstralParams.cluster())
    specs = WorkloadGenerator(seed=SEED, config=LOADED).generate(
        N_JOBS, max_hosts=256)
    return ClusterScheduler(topo, specs, policy=policy,
                            seed=SEED).run()


def test_topology_policy_beats_fifo(benchmark, series_printer):
    fifo = _run("fifo")
    topo = benchmark(_run, "topology")
    series_printer(
        "Scheduler comparison: 256 hosts, 60-job loaded trace",
        [(policy, report.utilization, report.mean_pods_spanned,
          report.mean_queue_delay_s / 60.0,
          report.mean_jct_s / 3600.0)
         for policy, report in (("fifo", fifo), ("topology", topo))],
        ["policy", "utilization", "pods spanned", "queue delay (min)",
         "mean JCT (h)"])

    # Everyone finishes; the policies differ only in when and where.
    assert fifo.status_counts() == {"completed": N_JOBS}
    assert topo.status_counts() == {"completed": N_JOBS}
    # The headline claims: strictly fewer pods spanned per placement
    # AND strictly higher cluster utilization.
    assert topo.mean_pods_spanned < fifo.mean_pods_spanned
    assert topo.utilization > fifo.utilization


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_topology_win_is_seed_robust(seed, series_printer):
    topo_model = build_astral(AstralParams.cluster())
    specs = WorkloadGenerator(seed=seed, config=LOADED).generate(
        N_JOBS, max_hosts=256)

    def run(policy):
        return ClusterScheduler(topo_model, specs, policy=policy,
                                seed=seed).run()

    fifo, topo = run("fifo"), run("topology")
    series_printer(
        f"Scheduler comparison, seed={seed}",
        [(policy, report.utilization, report.mean_pods_spanned)
         for policy, report in (("fifo", fifo), ("topology", topo))],
        ["policy", "utilization", "pods spanned"])
    assert topo.mean_pods_spanned < fifo.mean_pods_spanned
    assert topo.utilization > fifo.utilization

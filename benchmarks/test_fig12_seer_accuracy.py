"""Figure 12 — Timeline comparison: Seer foresight vs testbed result.

One training iteration of the Hunyuan-class MoE model is forecast by
the self-corrected Seer and compared against the ground-truth
("testbed") execution of the same operator graph.  Claims: the
deviation is ~0.3% for Hunyuan, acceptable across dense models, higher
for DeepSeek-class MoE (unpredictable expert selection), and the
forecast completes within seconds.
"""

import time

import pytest

from repro.seer import (
    DEEPSEEK_MOE,
    GPT3_175B,
    HUNYUAN_MOE,
    LLAMA2_70B,
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)

CONFIGS = {
    "Hunyuan-MoE": (HUNYUAN_MOE,
                    ParallelismConfig(tp=4, pp=4, dp=8, ep=16,
                                      microbatches=8)),
    "GPT-3-175B": (GPT3_175B,
                   ParallelismConfig(tp=8, pp=8, dp=16,
                                     microbatches=16)),
    "LLaMA-2-70B": (LLAMA2_70B,
                    ParallelismConfig(tp=8, pp=4, dp=4,
                                      microbatches=8)),
    "LLaMA-3-70B": (LLAMA3_70B,
                    ParallelismConfig(tp=8, pp=4, dp=4,
                                      microbatches=8)),
    "DeepSeek-MoE": (DEEPSEEK_MOE,
                     ParallelismConfig(tp=1, pp=1, dp=8, ep=8,
                                       microbatches=8)),
}


@pytest.fixture(scope="module")
def seer():
    return Seer(gpu="H800", network=NetworkSuite(), corrected=True)


def test_fig12_accuracy_deviation(benchmark, seer, series_printer):
    deviations = {}

    def measure():
        for name, (model, parallel) in CONFIGS.items():
            deviations[name] = seer.accuracy_deviation(model, parallel)
        return deviations

    benchmark(measure)
    rows = []
    for name, (model, parallel) in CONFIGS.items():
        forecast = seer.forecast_training(model, parallel)
        testbed = seer.testbed_training(model, parallel)
        rows.append((name, forecast.iteration_time_s,
                     testbed.iteration_time_s,
                     f"{deviations[name]:.3%}"))
    series_printer(
        "Figure 12: Seer foresight vs testbed (one iteration)",
        rows, ["model", "forecast (s)", "testbed (s)", "deviation"])

    # Hunyuan: ~0.3% class deviation.
    assert deviations["Hunyuan-MoE"] < 0.01
    # Dense models stay within acceptable accuracy.
    for dense in ("GPT-3-175B", "LLaMA-2-70B", "LLaMA-3-70B"):
        assert deviations[dense] < 0.02
    # DeepSeek-class MoE deviates more than Hunyuan (expert selection).
    assert deviations["DeepSeek-MoE"] > deviations["Hunyuan-MoE"]


def test_fig12_operator_timeline_alignment(benchmark, seer,
                                            series_printer):
    """Operator-level view: the per-device timelines line up closely."""
    model, parallel = HUNYUAN_MOE, ParallelismConfig(
        tp=4, pp=2, dp=2, ep=16, microbatches=4)
    forecast = benchmark(seer.forecast_training, model, parallel)
    testbed = seer.testbed_training(model, parallel)

    rows = []
    forecast_ops = forecast.timeline.entries_for("stage0")[:10]
    testbed_ops = testbed.timeline.entries_for("stage0")[:10]
    for f_op, t_op in zip(forecast_ops, testbed_ops):
        rows.append((f_op.name, f_op.start_s, t_op.start_s,
                     f_op.duration_s, t_op.duration_s))
    series_printer(
        "Figure 12: first stage-0 operators (forecast vs testbed)",
        rows, ["operator", "fc start", "tb start", "fc dur", "tb dur"])

    assert [entry.name for entry in forecast_ops] \
        == [entry.name for entry in testbed_ops]
    for f_op, t_op in zip(forecast_ops, testbed_ops):
        if t_op.duration_s > 1e-4:
            assert f_op.duration_s \
                == pytest.approx(t_op.duration_s, rel=0.15)

    from repro.seer import render_comparison
    print("\n" + render_comparison(forecast.timeline, testbed.timeline,
                                   width=64, devices=["stage0"]))


def test_fig12_forecast_latency_seconds(benchmark, seer):
    """Seer generates timelines within seconds (ASTRA-sim took a day;
    SimAI hours, §5)."""
    def both():
        seer.forecast_training(*CONFIGS["GPT-3-175B"])
        seer.forecast_training(*CONFIGS["Hunyuan-MoE"])
    start = time.monotonic()
    benchmark.pedantic(both, rounds=1, iterations=1)
    assert time.monotonic() - start < 30.0

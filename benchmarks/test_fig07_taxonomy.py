"""Figure 7 — Anomalies identified in the Astral network.

A large fault-injection campaign drawn from the taxonomy must
reproduce the published joint distribution: fail-stop 66%, fail-hang
17%, fail-slow 13%, fail-on-start 4%; with host environment &
configuration as the dominant root cause (32%).
"""

from collections import Counter

import pytest

from repro.monitoring import (
    MANIFESTATION_PREVALENCE,
    Manifestation,
    ROOT_CAUSE_PREVALENCE,
    RootCause,
    sample_faults,
)

CAMPAIGN = 5000


def test_fig07_taxonomy_distribution(benchmark, series_printer):
    faults = benchmark(sample_faults, CAMPAIGN, 42)

    manifestation_counts = Counter(f.manifestation for f in faults)
    cause_counts = Counter(f.cause for f in faults)

    rows = [
        (m.value, f"{MANIFESTATION_PREVALENCE[m]:.0%}",
         f"{manifestation_counts[m] / CAMPAIGN:.1%}")
        for m in Manifestation
    ]
    series_printer("Figure 7 (outer): failure manifestations", rows,
                   ["manifestation", "paper", "measured"])

    rows = [
        (c.value, f"{ROOT_CAUSE_PREVALENCE[c]:.1%}",
         f"{cause_counts[c] / CAMPAIGN:.1%}")
        for c in sorted(RootCause,
                        key=lambda c: -ROOT_CAUSE_PREVALENCE[c])
    ]
    series_printer("Figure 7 (inner): root causes", rows,
                   ["root cause", "paper", "measured"])

    for manifestation, expected in MANIFESTATION_PREVALENCE.items():
        observed = manifestation_counts[manifestation] / CAMPAIGN
        assert observed == pytest.approx(expected, abs=0.05)
    for cause, expected in ROOT_CAUSE_PREVALENCE.items():
        observed = cause_counts[cause] / CAMPAIGN
        assert observed == pytest.approx(expected, abs=0.03)
    # Ordering claims: fail-stop dominates; host env/config leads.
    assert manifestation_counts[Manifestation.FAIL_STOP] \
        == max(manifestation_counts.values())
    assert cause_counts[RootCause.HOST_ENV_CONFIG] \
        == max(cause_counts.values())

"""Figure 18 (Appendix B) — Training performance across datacenters
with PP traffic on the long-haul link.

Paper: an intra:cross bandwidth oversubscription of 8:1 does not affect
performance, while 32:1 causes a ~4.6% degradation.
"""

from repro.seer import (
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)

#: fewer microbatches leave less room to hide the boundary transfers,
#: matching the production schedule this experiment ran with.
PAR = dict(tp=8, pp=8, dp=2, microbatches=8)


def _pp_efficiency(oversubscription: float) -> float:
    baseline = Seer(gpu="H800", network=NetworkSuite()) \
        .forecast_training(LLAMA3_70B, ParallelismConfig(**PAR)) \
        .iteration_time_s
    network = NetworkSuite().with_cross_dc(oversubscription,
                                           rtt_ms=3.0)
    crossed = Seer(gpu="H800", network=network).forecast_training(
        LLAMA3_70B,
        ParallelismConfig(**PAR, cross_dc_dimension="pp")) \
        .iteration_time_s
    return baseline / crossed


def test_fig18_pp_oversubscription(benchmark, series_printer):
    ratios = (1, 8, 16, 32)

    def measure():
        return {ratio: _pp_efficiency(float(ratio))
                for ratio in ratios}

    efficiency = benchmark(measure)
    series_printer(
        "Figure 18: cross-DC PP training vs oversubscription",
        [(f"{r}:1", f"{efficiency[r]:.2%}",
          f"{1 - efficiency[r]:.2%}") for r in ratios],
        ["intra:cross ratio", "efficiency", "degradation"])

    # 8:1 does not affect performance (loss within ~1.5%).
    assert 1 - efficiency[8] < 0.015
    # 32:1 causes a visible degradation (paper: 4.6%), monotone in
    # the ratio.
    assert 1 - efficiency[32] > 1 - efficiency[8]
    assert 1 - efficiency[32] > 0.005

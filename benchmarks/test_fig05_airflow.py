"""Figure 5 — Temperature distribution with air cooling.

Side intake (traditional) yields an inter-rack variation of ~1 degC;
the optimized bottom-up airflow brings it down to ~0.11 degC and lowers
the overall rack temperature.
"""

import numpy as np

from repro.cooling import (
    AirflowConfig,
    rack_temperatures,
    temperature_spread,
)

RACK_LOAD_W = 20_000.0
N_RACKS = 16


def test_fig05_airflow_optimization(benchmark, series_printer):
    loads = np.full(N_RACKS, RACK_LOAD_W)
    side = AirflowConfig.side()
    bottom = AirflowConfig.bottom_up()

    side_spread = temperature_spread(loads, side)
    bottom_spread = benchmark(temperature_spread, loads, bottom)
    side_max = float(np.max(rack_temperatures(loads, side)))
    bottom_max = float(np.max(rack_temperatures(loads, bottom)))

    series_printer(
        "Figure 5: rack temperature distribution",
        [("(a) side intake", side.duct_velocity_ms, side_spread,
          side_max),
         ("(b) bottom-up intake", bottom.duct_velocity_ms,
          bottom_spread, bottom_max)],
        ["airflow", "duct velocity (m/s)", "spread (degC)",
         "max temp (degC)"])

    # Paper: ~1 degC spread with side intake, 0.11 degC bottom-up.
    assert 0.8 <= side_spread <= 1.3
    assert 0.05 <= bottom_spread <= 0.2
    assert bottom_spread < side_spread / 5
    # Bottom-up also lowers the overall rack temperature.
    assert bottom_max < side_max

"""Figure 15 — GPU power usage over multiple iterations.

(a) Training: peak power reaches the GPU's TDP during forward and
backward computation and drops in the communication phase.
(b) Inference: power peaks near TDP during prefill and sits well below
TDP during decoding.  Peaks reaching/exceeding TDP motivate the 30%
rack power elasticity of the distributed HVDC system.
"""

import numpy as np
from repro.power import (
    GpuSpec,
    inference_request_phases,
    synthesize_trace,
    training_iteration_phases,
)

GPU = GpuSpec(name="H20-class", tdp_watts=500.0)


def test_fig15a_training_power(benchmark, series_printer):
    trace = benchmark(synthesize_trace, GPU,
                      training_iteration_phases(), 4)
    series_printer(
        "Figure 15a: GPU power during training iterations",
        [("peak (W)", trace.peak_watts),
         ("mean (W)", trace.mean_watts),
         ("TDP (W)", trace.tdp_watts),
         ("peak/TDP", trace.peak_watts / trace.tdp_watts)],
        ["metric", "value"])
    # Peak power goes up to (and beyond) TDP during compute phases.
    assert trace.exceeds_tdp
    assert trace.peak_watts < 1.4 * GPU.tdp_watts
    # Communication dips pull the mean well below peak.
    assert trace.mean_watts < 0.95 * trace.peak_watts


def test_fig15a_communication_dip(benchmark):
    trace = benchmark(synthesize_trace, GPU,
                      training_iteration_phases(), 1, 100.0, 0.0)
    comm_window = (trace.times_s > 0.72) & (trace.times_s < 0.82)
    compute_window = trace.times_s < 0.55
    assert np.mean(trace.watts[comm_window]) \
        < 0.7 * np.mean(trace.watts[compute_window])


def test_fig15b_inference_power(benchmark, series_printer):
    trace = benchmark(synthesize_trace, GPU,
                      inference_request_phases(), 3, 100.0, 0.0)
    prefill = trace.watts[trace.times_s % 1.4 < 0.15]
    decode = trace.watts[(trace.times_s % 1.4 > 0.6)
                         & (trace.times_s % 1.4 < 1.3)]
    series_printer(
        "Figure 15b: GPU power during inference",
        [("prefill mean (W)", float(np.mean(prefill))),
         ("decode mean (W)", float(np.mean(decode))),
         ("TDP (W)", GPU.tdp_watts)],
        ["phase", "power"])
    # Prefill approaches TDP; decoding sits far below it.
    assert np.mean(prefill) > 0.85 * GPU.tdp_watts
    assert np.mean(decode) < 0.5 * GPU.tdp_watts

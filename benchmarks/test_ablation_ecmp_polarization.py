"""Ablation — Hash polarization from identical per-hop ECMP hashing.

With every switch computing the identical hash (no per-device salt),
consecutive hops make correlated choices: ``h % 2 == 0`` at the host
forces ``h % 4`` into {0, 2} at the ToR, so half of the Agg switches
are unreachable for any flow — the pathology that motivates minimizing
hops (P1/P2) and that per-device hash seeds mitigate.
"""

from repro.network import EcmpHasher, EcmpRouter, make_flow, \
    reset_flow_ids
from repro.topology import AstralParams, build_astral


def _distinct_paths(per_device_salt: bool) -> int:
    reset_flow_ids()
    topology = build_astral(AstralParams.small())
    router = EcmpRouter(topology,
                        EcmpHasher(per_device_salt=per_device_salt))
    paths = set()
    for port in range(49152, 49152 + 256):
        flow = make_flow("p0.b0.h0", "p0.b1.h0", rail=0,
                         size_bits=8e9, src_port=port)
        paths.add(tuple(router.path(flow).link_ids))
    return len(paths)


def test_ablation_hash_polarization(benchmark, series_printer):
    salted = _distinct_paths(per_device_salt=True)
    polarized = benchmark(_distinct_paths, False)

    # Astral small: 2 ToR groups x 4 Aggs = 8 distinct same-rail paths.
    total_paths = 8
    series_printer(
        "Ablation: reachable ECMP paths (of 8) over 256 source ports",
        [("per-device hash salt", salted),
         ("identical hash everywhere (polarized)", polarized)],
        ["hashing", "distinct paths"])

    assert salted == total_paths
    # Polarization: the correlated modulo chain halves the choices.
    assert polarized <= total_paths // 2

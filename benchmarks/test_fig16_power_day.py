"""Figure 16 — GPU power usage over a day (tidal effect).

Inference power is high during the day and gradually declines between
22:00 and 08:00 (interactive use drops overnight).  The operator signed
a constant-power utility contract, so training is scheduled into the
nightly trough — the night-discount sales model — which flattens total
consumption.
"""

import numpy as np
import pytest

from repro.power import (
    NightTrainingScheduler,
    TidalProfile,
    daily_inference_power,
)

PROFILE = TidalProfile(peak_mw=100.0, trough_frac=0.35)
HOURS = np.linspace(0.0, 24.0, 24 * 60, endpoint=False)


def test_fig16_tidal_pattern(benchmark, series_printer):
    power = benchmark(daily_inference_power, PROFILE, HOURS)
    sample_hours = range(0, 24, 3)
    series_printer(
        "Figure 16: inference power over a day (MW)",
        [(f"{h:02d}:00", float(power[h * 60])) for h in sample_hours],
        ["hour", "inference MW"])

    noon = power[(HOURS > 11) & (HOURS < 14)]
    night = power[(HOURS > 1) & (HOURS < 6)]
    # Daytime plateau vs deep-night trough.
    assert np.min(noon) == pytest.approx(PROFILE.peak_mw)
    assert np.max(night) == pytest.approx(
        PROFILE.peak_mw * PROFILE.trough_frac)
    # Decline begins at 22:00: 23:30 already below 21:30.
    assert power[int(23.5 * 60)] < power[int(21.5 * 60)]


def test_fig16_night_training_flattens(benchmark, series_printer):
    scheduler = NightTrainingScheduler(PROFILE)
    schedule = benchmark(scheduler.schedule, HOURS)
    flatness = scheduler.flatness(HOURS)
    inference_cv = float(np.std(schedule["inference_mw"])
                         / np.mean(schedule["inference_mw"]))
    series_printer(
        "Figure 16: constant-power scheduling",
        [("inference-only CV", inference_cv),
         ("with night training CV", flatness),
         ("peak total (MW)", float(np.max(schedule["total_mw"]))),
         ("training energy share",
          float(np.sum(schedule["training_mw"])
                / np.sum(schedule["total_mw"])))],
        ["metric", "value"])

    # Night training flattens total consumption by >10x.
    assert flatness < inference_cv / 10
    # The contract line is never exceeded.
    assert np.max(schedule["total_mw"]) \
        <= scheduler.contract_mw + 1e-9
    # Training lands predominantly at night (cheap-rate window).
    night_mask = np.array([PROFILE.is_night(h) for h in HOURS])
    night_training = float(np.sum(schedule["training_mw"][night_mask]))
    day_training = float(np.sum(schedule["training_mw"][~night_mask]))
    assert night_training > 5 * day_training

"""Figure 14 — Performance impacts of the intra-host network scale
(§4.4 Case #2).

Sweeping the high-bandwidth (NVSwitch) domain from 8 to 64 GPUs:

* (a) GPT-3-175B training gains modestly;
* (b) MoE training gains more (all-to-all moves onto NVLink);
* (c)/(d) MoE inference prefill and decoding both improve.
"""

from repro.seer import (
    DEEPSEEK_MOE,
    GPT3_175B,
    HUNYUAN_MOE,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)

HB_SIZES = (8, 16, 32, 64)

GPT3_PAR = ParallelismConfig(tp=8, pp=4, dp=2, microbatches=8)
MOE_PAR = ParallelismConfig(tp=4, pp=4, dp=2, ep=16, microbatches=8)
#: high-sparsity MoE: EP=64 keeps gaining all the way to HB=64.
DEEP_PAR = ParallelismConfig(tp=1, pp=1, dp=2, ep=64, microbatches=8)
MOE_INFER_PAR = ParallelismConfig(tp=8, pp=1, dp=1, ep=16)


def _seer(hb_size: int) -> Seer:
    return Seer(gpu="H800",
                network=NetworkSuite().with_intra_host_size(hb_size))


def _sweep():
    results = {"gpt3": {}, "moe": {}, "deep_moe": {}, "prefill": {},
               "decode": {}}
    for hb in HB_SIZES:
        seer = _seer(hb)
        results["gpt3"][hb] = seer.forecast_training(
            GPT3_175B, GPT3_PAR).tokens_per_s
        results["moe"][hb] = seer.forecast_training(
            HUNYUAN_MOE, MOE_PAR).tokens_per_s
        results["deep_moe"][hb] = seer.forecast_training(
            DEEPSEEK_MOE, DEEP_PAR).tokens_per_s
        inference = seer.forecast_inference(
            HUNYUAN_MOE, MOE_INFER_PAR, batch=16, context_len=2048)
        results["prefill"][hb] = inference.prefill_tokens_per_s
        results["decode"][hb] = inference.decode_tokens_per_s
    return results


def test_fig14_intra_host_scale(benchmark, series_printer):
    results = benchmark(_sweep)

    def norm(series):
        base = series[HB_SIZES[0]]
        return {hb: value / base for hb, value in series.items()}

    rows = []
    for hb in HB_SIZES:
        rows.append((
            hb,
            f"{norm(results['gpt3'])[hb]:.3f}",
            f"{norm(results['moe'])[hb]:.3f}",
            f"{norm(results['deep_moe'])[hb]:.3f}",
            f"{norm(results['prefill'])[hb]:.3f}",
            f"{norm(results['decode'])[hb]:.3f}",
        ))
    series_printer(
        "Figure 14: throughput vs intra-host network scale "
        "(normalized to HB=8)",
        rows, ["HB size", "(a) GPT-3 train", "(b) MoE train",
               "(b') EP64 MoE", "(c) MoE prefill", "(d) MoE decode"])

    for series in results.values():
        values = [series[hb] for hb in HB_SIZES]
        # Larger intra-host networks never hurt.
        assert all(b >= a * 0.999 for a, b in zip(values, values[1:]))

    gpt3_gain = norm(results["gpt3"])[64] - 1.0
    moe_gain = norm(results["moe"])[64] - 1.0
    deep_gain = norm(results["deep_moe"])[64] - 1.0
    # (b) vs (a): the MoE model benefits more from a large HB domain.
    assert moe_gain > gpt3_gain
    # The higher the EP degree, the longer the gains continue.
    assert deep_gain > moe_gain
    assert norm(results["deep_moe"])[64] > norm(results["deep_moe"])[16]
    # (c)/(d): inference also gains.
    assert norm(results["prefill"])[64] > 1.0
    assert norm(results["decode"])[64] >= 1.0

"""Diurnal serving co-schedule at 64K-GPU scale — the fold's dividend.

A full simulated day of planetary inference demand (~130M requests
across three continents) plus a 96-job training tenant runs through
the whole pipeline — trace, autoscale, folded pool simulations, KV
co-simulation, cap-enforcing scheduler, power roll-up — in well under
a second, because every (pair, bucket, replica) cell collapses onto a
handful of distinct per-replica rate classes.

The point records wall time, fold factor, SLO percentiles, and the
tidal flattening metrics into ``BENCH_serving.json`` at the repo root
so the trajectory is tracked run over run.
"""

import json
import pathlib
import time

from repro.serving import ServingRun, ServingScenario

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_serving.json"


def _measure() -> dict:
    scenario = ServingScenario(preset="64k")
    t0 = time.perf_counter()
    report = ServingRun(scenario).run()
    wall_s = time.perf_counter() - t0
    slo = report.slo
    return {
        "preset": "64k",
        "requests": report.trace["total_requests"],
        "n_buckets": report.trace["n_buckets"],
        "replica_buckets": report.fold["replica_buckets"],
        "pool_sims": report.fold["n_pool_sims"],
        "fold_factor": round(report.fold["fold_factor"], 1),
        "ttft_p50_ms": round(slo["ttft_p50_s"] * 1e3, 3),
        "ttft_p99_ms": round(slo["ttft_p99_s"] * 1e3, 3),
        "tpot_p50_ms": round(slo["tpot_p50_s"] * 1e3, 3),
        "goodput_fraction": slo["goodput_fraction"],
        "training_efficiency": report.cosim["training_efficiency"],
        "preemptions": report.training["preemptions"],
        "cv_serving": report.power["flatness_cv_serving"],
        "cv_total": report.power["flatness_cv_total"],
        "trough_fill": report.power["trough_fill_fraction"],
        "wall_s": round(wall_s, 3),
    }


def _record(result: dict) -> None:
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    data["64k-diurnal"] = result
    BENCH_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_bench_serving_diurnal_64k():
    result = _measure()
    _record(result)

    # A simulated day at 64K GPUs stays interactive.
    assert result["wall_s"] < 30.0
    # The fold is what makes that possible: thousands of
    # replica-buckets collapse onto tens of pool simulations.
    assert result["fold_factor"] > 50.0
    # The co-scheduled day holds its SLOs and flattens the tide:
    # training fills the serving trough almost completely.
    assert result["goodput_fraction"] > 0.95
    assert result["ttft_p50_ms"] < 1000.0
    assert result["trough_fill"] > 0.5
    assert result["cv_total"] < 1.0
    print("\n64k diurnal serving:")
    for key, value in result.items():
        print(f"  {key:<20} {value}")

"""Ablation — Dual-ToR NIC wiring (P3) under optical-module failure.

Each NIC port lands on a different same-rail ToR, so a ToR (or all of
one ToR's optics) failing never strands a GPU: traffic rides the
surviving port.  A single-ToR design (simulated by failing the second
port's links) loses connectivity outright.
"""

from repro.network import Fabric, make_flow, reset_flow_ids
from repro.topology import AstralParams, build_astral


def _fail_tor(topology, tor_name: str) -> None:
    for link in topology.links_of(tor_name):
        topology.fail_link(link.link_id)


def test_ablation_dual_tor_survives_tor_loss(benchmark,
                                             series_printer):
    params = AstralParams.tiny()

    def survivors_with_dual_tor():
        reset_flow_ids()
        topology = build_astral(params)
        fabric = Fabric(topology)
        _fail_tor(topology, "p0.b0.r0.g0.tor")
        flows = [
            make_flow("p0.b0.h0", f"p0.b{b}.h{h}", rail=0,
                      size_bits=8e9)
            for b in range(params.blocks_per_pod)
            for h in range(params.hosts_per_block)
            if (b, h) != (0, 0)
        ]
        return sum(fabric.router.reachable(flow) for flow in flows), \
            len(flows)

    reachable, total = benchmark(survivors_with_dual_tor)

    # Single-ToR: additionally sever every host's group-1 uplink.
    reset_flow_ids()
    topology = build_astral(params)
    fabric = Fabric(topology)
    _fail_tor(topology, "p0.b0.r0.g0.tor")
    _fail_tor(topology, "p0.b0.r0.g1.tor")
    flows = [
        make_flow("p0.b0.h0", f"p0.b{b}.h{h}", rail=0, size_bits=8e9)
        for b in range(params.blocks_per_pod)
        for h in range(params.hosts_per_block)
        if (b, h) != (0, 0)
    ]
    single_reachable = sum(fabric.router.reachable(f) for f in flows)

    series_printer(
        "Ablation: rail-0 reachability after ToR loss",
        [("dual-ToR (P3)", f"{reachable}/{total}"),
         ("single-ToR equivalent", f"{single_reachable}/{total}")],
        ["wiring", "reachable same-rail peers"])

    # P3: every peer remains reachable through the surviving ToR.
    assert reachable == total
    # Without the redundant ToR, the host is stranded on its rail.
    assert single_reachable == 0


def test_ablation_blast_radius_table(benchmark, series_printer):
    """Single-device failure containment per switch class."""
    from repro.topology import blast_radius_table, build_astral

    topology = build_astral(AstralParams.tiny())
    table = benchmark.pedantic(blast_radius_table, args=(topology,),
                               rounds=1, iterations=1)
    rows = [(kind.value, radius.device, radius.stranded_gpus,
             "contained" if radius.contained else "STRANDS GPUs")
            for kind, radius in table.items()]
    series_printer(
        "Ablation: blast radius of one device failure (Astral)",
        rows, ["class", "failed device", "stranded GPU-rails",
               "verdict"])
    assert all(radius.contained for radius in table.values())

"""Ablation — Seer with vs without self-correcting modeling (§5).

"In the beginning, we only constructed basic modeling without
correction that used the full GPU FLOPs, HBM bandwidth, and network
bandwidth... Seer's results could deviate from the testbed results by
more than 5% when communications become a bottleneck."  The ablation
quantifies the deviation of the basic vs corrected model against the
testbed stand-in across workloads.
"""

from repro.seer import (
    GPT3_175B,
    HUNYUAN_MOE,
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)

CONFIGS = {
    "GPT-3-175B": (GPT3_175B,
                   ParallelismConfig(tp=8, pp=8, dp=16,
                                     microbatches=16)),
    "LLaMA-3-70B": (LLAMA3_70B,
                    ParallelismConfig(tp=8, pp=4, dp=4,
                                      microbatches=8)),
    "Hunyuan-MoE": (HUNYUAN_MOE,
                    ParallelismConfig(tp=4, pp=4, dp=8, ep=16,
                                      microbatches=8)),
}


def _deviations():
    corrected = Seer(gpu="H800", network=NetworkSuite(),
                     corrected=True)
    basic = Seer(gpu="H800", network=NetworkSuite(), corrected=False)
    rows = {}
    for name, (model, parallel) in CONFIGS.items():
        testbed = corrected.testbed_training(model, parallel) \
            .iteration_time_s
        t_basic = basic.forecast_training(model, parallel) \
            .iteration_time_s
        t_corrected = corrected.forecast_training(model, parallel) \
            .iteration_time_s
        rows[name] = (
            abs(t_basic - testbed) / testbed,
            abs(t_corrected - testbed) / testbed,
        )
    return rows


def test_ablation_self_correction(benchmark, series_printer):
    rows = benchmark.pedantic(_deviations, rounds=1, iterations=1)
    series_printer(
        "Ablation: Seer deviation vs testbed, basic vs corrected",
        [(name, f"{basic:.1%}", f"{corrected:.3%}")
         for name, (basic, corrected) in rows.items()],
        ["model", "basic (uncorrected)", "self-corrected"])

    for name, (basic, corrected) in rows.items():
        # Basic modeling deviates >5% (far more on this substrate).
        assert basic > 0.05, name
        # Correction brings it to the sub-2% regime.
        assert corrected < 0.02, name
        assert corrected < basic / 5, name

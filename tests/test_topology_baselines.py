"""Tests for the comparison architectures (CLOS, HPN-style, rail-only)."""

import pytest

from repro.topology import (
    AstralParams,
    ClosParams,
    DeviceKind,
    build_clos,
    build_full_interconnect_tier2,
    build_rail_only,
)


class TestClos:
    @pytest.fixture(scope="class")
    def topo(self):
        return build_clos(ClosParams.tiny())

    def test_tors_are_rail_oblivious(self, topo):
        for tor in topo.switches(DeviceKind.TOR):
            assert tor.rail is None

    def test_tor_carries_mixed_rails(self, topo):
        """A CLOS ToR serves NIC ports from more than one rail."""
        params = ClosParams.tiny()
        tor = topo.switches(DeviceKind.TOR)[0]
        rails = set()
        for link, neighbor in topo.neighbors(tor.name):
            if neighbor.kind is DeviceKind.HOST:
                # Recover the rail from the host-side port number.
                port = link.endpoint(neighbor.name).port
                rails.add(port // params.nic_ports)
        assert len(rails) >= 1  # striping may isolate at tiny scale

    def test_tier3_is_oversubscribed(self, topo):
        assert topo.oversubscription(DeviceKind.AGG) \
            == pytest.approx(ClosParams.tiny().tier3_oversubscription)

    def test_gpu_count(self, topo):
        params = ClosParams.tiny()
        expected = (params.pods * params.blocks_per_pod
                    * params.hosts_per_block * params.gpus_per_host)
        assert topo.gpu_count() == expected

    def test_aggs_reach_all_pod_tors(self, topo):
        params = ClosParams.tiny()
        agg = topo.switches(DeviceKind.AGG)[0]
        tors = [
            neighbor for _, neighbor in topo.neighbors(agg.name)
            if neighbor.kind is DeviceKind.TOR
        ]
        assert len(tors) == params.blocks_per_pod * params.tors_per_block


class TestFullInterconnectTier2:
    @pytest.fixture(scope="class")
    def topo(self):
        return build_full_interconnect_tier2(AstralParams.tiny())

    def test_aggs_are_not_rail_dedicated(self, topo):
        for agg in topo.switches(DeviceKind.AGG):
            assert agg.rail is None

    def test_every_tor_reaches_every_pod_agg(self, topo):
        params = AstralParams.tiny()
        aggs_per_pod = (params.rails * params.tor_groups
                        * params.aggs_per_group)
        for tor in topo.switches(DeviceKind.TOR)[:4]:
            uplinks = [
                neighbor for _, neighbor in topo.neighbors(tor.name)
                if neighbor.kind is DeviceKind.AGG
            ]
            assert len(uplinks) == aggs_per_pod

    def test_preserves_hosts_and_tors(self, topo):
        astral_like = AstralParams.tiny()
        assert topo.gpu_count() == astral_like.total_gpus
        tors = topo.switches(DeviceKind.TOR)
        assert all(t.rail is not None for t in tors)


class TestRailOnly:
    @pytest.fixture(scope="class")
    def topo(self):
        return build_rail_only(AstralParams.tiny())

    def test_no_core_switches(self, topo):
        assert topo.switches(DeviceKind.CORE) == []

    def test_same_rail_structure_kept(self, topo):
        for agg in topo.switches(DeviceKind.AGG):
            assert agg.rail is not None

    def test_agg_has_no_uplinks(self, topo):
        agg = topo.switches(DeviceKind.AGG)[0]
        uplinks = [
            neighbor for _, neighbor in topo.neighbors(agg.name)
            if neighbor.tier > agg.tier
        ]
        assert uplinks == []

"""Tests for failure blast-radius analysis (the P3 reliability claim)."""

import pytest

from repro.topology import (
    AstralParams,
    DeviceKind,
    blast_radius_table,
    build_astral,
    device_blast_radius,
)


@pytest.fixture(scope="module")
def astral():
    return build_astral(AstralParams.tiny())


class TestAstralContainment:
    def test_every_single_switch_failure_contained(self, astral):
        """P3 + path diversity: no single ToR/Agg/Core failure strands
        any GPU."""
        for kind, radius in blast_radius_table(astral).items():
            assert radius.contained, kind
            assert radius.stranded_gpus == 0

    def test_links_restored_after_analysis(self, astral):
        tor = astral.switches(DeviceKind.TOR)[0]
        device_blast_radius(astral, tor.name)
        assert all(link.healthy for link in astral.links_of(tor.name))

    def test_double_tor_failure_strands_the_rail(self, astral):
        """Losing BOTH same-rail ToRs of a block is the failure P3
        cannot absorb: that block's rail goes dark."""
        g0 = "p0.b0.r0.g0.tor"
        g1 = "p0.b0.r0.g1.tor"
        failed = []
        for tor in (g0,):
            for link in astral.links_of(tor):
                astral.fail_link(link.link_id)
                failed.append(link.link_id)
        radius = device_blast_radius(astral, g1,
                                     probe_host="p1.b0.h0")
        for link_id in failed:
            astral.restore_link(link_id)
        assert radius.stranded_gpus > 0

    def test_host_failure_affects_only_itself(self, astral):
        radius = device_blast_radius(astral, "p0.b0.h0")
        assert radius.stranded_gpus == 0  # peers unaffected


class TestComparisonWithSingleTor:
    def test_single_tor_design_strands_a_block_rail(self):
        """The single-ToR equivalent (one NIC port) loses a whole
        block's rail per ToR failure — the design IBM/Alibaba/Astral
        all moved away from."""
        params = AstralParams(
            pods=2, blocks_per_pod=2, hosts_per_block=2,
            gpus_per_host=2, aggs_per_group=2, cores_per_group=2,
            nic_ports=1)
        topo = build_astral(params)
        tor = topo.switches(DeviceKind.TOR)[0]
        radius = device_blast_radius(topo, tor.name,
                                     probe_host="p1.b0.h0")
        assert not radius.contained
        # Every host of that block loses the ToR's rail.
        assert radius.stranded_gpus == params.hosts_per_block


class TestFailedDeviceContextManager:
    def test_yields_cut_and_restores_on_exit(self, astral):
        from repro.topology.blast_radius import failed_device
        tor = astral.switches(DeviceKind.TOR)[0]
        before = {l.link_id: l.healthy
                  for l in astral.links_of(tor.name)}
        with failed_device(astral, tor.name) as cut:
            assert sorted(cut) == sorted(before)
            assert all(not link.healthy
                       for link in astral.links_of(tor.name))
        assert {l.link_id: l.healthy
                for l in astral.links_of(tor.name)} == before

    def test_restores_even_when_body_raises(self, astral):
        from repro.topology.blast_radius import failed_device
        tor = astral.switches(DeviceKind.TOR)[0]
        with pytest.raises(RuntimeError, match="mid-analysis"):
            with failed_device(astral, tor.name):
                raise RuntimeError("mid-analysis")
        assert all(link.healthy for link in astral.links_of(tor.name))

    def test_restores_only_links_it_failed(self, astral):
        """A link that was already down stays down: the context manager
        must not 'repair' pre-existing damage on exit."""
        from repro.topology.blast_radius import failed_device
        tor = astral.switches(DeviceKind.TOR)[0]
        pre_dead = astral.links_of(tor.name)[0].link_id
        astral.fail_link(pre_dead)
        try:
            with failed_device(astral, tor.name) as cut:
                assert pre_dead not in cut
            assert not astral.links[pre_dead].healthy
        finally:
            astral.restore_link(pre_dead)

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit):
            main(["forecast", "--model", "bert-base"])

    def test_all_commands_registered(self):
        parser = build_parser()
        # argparse stores subparser choices on the last action.
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        assert set(sub.choices) == {
            "describe", "forecast", "inference", "memory", "pue",
            "sweep", "taxonomy", "overhead", "goodput",
            "diagnose-demo", "cluster", "resilience", "validate",
            "farm", "scale", "serve", "twin",
        }

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        # Either the installed version or the pyproject dev fallback.
        assert any(ch.isdigit() for ch in out)


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "total_gpus" in out

    def test_describe_paper_scale(self, capsys):
        assert main(["describe", "--paper-scale"]) == 0
        out = capsys.readouterr().out
        assert "524,288" in out

    def test_forecast(self, capsys):
        assert main(["forecast", "--model", "llama3-70b", "--tp", "4",
                     "--pp", "2", "--dp", "2",
                     "--microbatches", "4"]) == 0
        out = capsys.readouterr().out
        assert "iteration time" in out
        assert "deviation" in out

    def test_forecast_uncorrected_skips_deviation(self, capsys):
        assert main(["forecast", "--model", "llama3-70b", "--tp", "4",
                     "--pp", "2", "--dp", "1", "--microbatches", "4",
                     "--uncorrected"]) == 0
        out = capsys.readouterr().out
        assert "deviation" not in out

    def test_inference(self, capsys):
        assert main(["inference", "--model", "llama3-70b",
                     "--batch", "4", "--context", "512"]) == 0
        out = capsys.readouterr().out
        assert "decode tokens/s" in out

    def test_memory(self, capsys):
        assert main(["memory", "--model", "gpt3-175b", "--tp", "8",
                     "--pp", "8", "--dp", "16"]) == 0
        out = capsys.readouterr().out
        assert "optimizer" in out
        assert "GB" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--model", "llama3-70b", "--gpus", "64",
                     "--microbatches", "8", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top layouts" in out
        assert "tok/s" in out

    def test_sweep_no_feasible_layout(self, capsys):
        # 70B params on 16 GPUs cannot fit 80 GB parts.
        assert main(["sweep", "--model", "llama3-70b", "--gpus", "16",
                     "--microbatches", "4"]) == 1
        assert "no feasible layout" in capsys.readouterr().out

    def test_pue(self, capsys):
        assert main(["pue"]) == 0
        out = capsys.readouterr().out
        assert "improvement vs traditional" in out

    def test_taxonomy(self, capsys):
        assert main(["taxonomy", "--count", "200", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fail-stop" in out
        assert "host-env-config" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "--gpus", "10000"]) == 0
        out = capsys.readouterr().out
        assert "INT storage" in out

    def test_goodput(self, capsys):
        assert main(["goodput", "--gpus", "1024", "8192"]) == 0
        out = capsys.readouterr().out
        assert "MTBF" in out
        assert "8,192" in out

    def test_diagnose_demo(self, capsys):
        assert main(["diagnose-demo"]) == 0
        out = capsys.readouterr().out
        assert "localized to" in out
        assert "gpu-hardware" in out

    def test_cluster(self, capsys):
        assert main(["cluster", "--scale", "tiny", "--jobs", "5",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "job-000" in out

    def test_cluster_is_deterministic(self, capsys):
        args = ["cluster", "--scale", "tiny", "--jobs", "8",
                "--seed", "2", "--policy", "priority"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_cluster_contention(self, capsys):
        assert main(["cluster", "--scale", "tiny", "--jobs", "6",
                     "--seed", "0", "--contention"]) == 0
        out = capsys.readouterr().out
        assert "contention" in out
        assert "efficiency" in out


class TestTopLevelPackage:
    def test_lazy_exports(self):
        import repro
        assert repro.AstralParams().total_gpus == 524_288
        assert repro.Seer is not None
        assert repro.AstralInfrastructure is not None
        assert repro.FaultSpec is not None

    def test_unknown_attribute_raises(self):
        import repro
        with pytest.raises(AttributeError):
            repro.not_a_thing


class TestScaleCommand:
    _DIMS = ["--pods", "2", "--blocks-per-pod", "2",
             "--hosts-per-block", "4", "--gpus-per-host", "2",
             "--aggs-per-group", "2", "--cores-per-group", "2"]

    def test_explicit_dims_smoke(self, capsys):
        assert main(["scale", *self._DIMS, "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "32 GPUs" in out
        assert "EXACT" in out

    def test_fault_refines_and_caps_split_classes(self, capsys):
        assert main(["scale", *self._DIMS, "--iterations", "3",
                     "--faults", "1", "--power-cap", "1=0.8"]) == 0
        out = capsys.readouterr().out
        assert "1 refined groups" in out

    def test_bad_power_cap_exits(self):
        with pytest.raises(SystemExit):
            main(["scale", *self._DIMS, "--power-cap", "one=fast"])

    def test_json_report(self, capsys, tmp_path):
        import json
        path = tmp_path / "scale.json"
        assert main(["scale", *self._DIMS, "--iterations", "3",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["fold"]["exact"] is True
        assert data["scenario"]["total_gpus"] == 32
        assert data["jobs"]

    def test_farm_route_caches(self, capsys, tmp_path):
        args = ["scale", *self._DIMS, "--iterations", "3",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "1 executed, 0 from cache" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 executed, 1 from cache" in warm
        # The folded numbers themselves must agree bit-for-bit.
        assert cold.splitlines()[1:-1] == warm.splitlines()[1:-1]


class TestServeCommand:
    _FAST = ["serve", "--preset", "4k", "--duration", "7200",
             "--users-scale", "0.05", "--train-jobs", "8"]

    def test_smoke(self, capsys):
        assert main(self._FAST) == 0
        out = capsys.readouterr().out
        assert "TTFT" in out
        assert "pod pair" in out

    def test_farm_route_caches(self, capsys, tmp_path):
        args = [*self._FAST, "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "1 executed, 0 from cache" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 executed, 1 from cache" in warm
        # The simulated numbers themselves must agree bit-for-bit
        # (only the farm/wall lines may differ).
        def _body(text):
            return [line for line in text.splitlines()
                    if not line.startswith("farm:")
                    and "wall" not in line]
        assert _body(cold) == _body(warm)

    def test_json_report(self, tmp_path, capsys):
        import json
        path = tmp_path / "serve.json"
        assert main([*self._FAST, "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["slo"]["goodput_fraction"] is not None
        assert data["power"]["contract_mw"] is not None
        assert data["fold"]["n_pool_sims"] >= 1

    def test_negative_cap_disables_contract(self, tmp_path, capsys):
        import json
        path = tmp_path / "serve.json"
        assert main([*self._FAST, "--power-cap-frac", "-1",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["power"]["contract_mw"] is None


class TestResilienceCommand:
    def test_resilience_json_smoke(self, capsys):
        import json
        assert main(["resilience", "--iterations", "30",
                     "--fault-at", "120", "--checkpoint-interval",
                     "600", "--seed", "3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["wedged_jobs"] == []
        assert data["n_faults"] == 1
        assert data["fault_log"]
        assert data["jobs"][0]["completed_s"] is not None

    def test_resilience_human_output(self, capsys):
        assert main(["resilience", "--iterations", "30",
                     "--fault-at", "120", "--checkpoint-interval",
                     "600", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "fault" in out.lower()

"""Tests for ECMP routing over the fabric graphs."""

import pytest

from repro.network import EcmpRouter, RoutingError, make_flow, reset_flow_ids
from repro.topology import (
    AstralParams,
    DeviceKind,
    build_astral,
    build_clos,
    build_rail_only,
    ClosParams,
)


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


@pytest.fixture(scope="module")
def astral_small():
    return build_astral(AstralParams.small())


@pytest.fixture()
def router(astral_small):
    return EcmpRouter(astral_small)


def _host(pod, block, host):
    return f"p{pod}.b{block}.h{host}"


class TestAstralPathShapes:
    def test_same_block_same_rail_one_switch(self, router):
        """Intra-block same-rail: host -> ToR -> host (1 switch hop)."""
        flow = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                         size_bits=8e9)
        path = router.path(flow)
        assert path.switch_hops == 1
        kinds = [router.topology.devices[d].kind for d in path.devices]
        assert kinds == [DeviceKind.HOST, DeviceKind.TOR, DeviceKind.HOST]

    def test_cross_block_same_rail_stays_below_core(self, router):
        """Same-rail cross-block: ToR -> Agg -> ToR, never Core (P1)."""
        flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=1,
                         size_bits=8e9)
        path = router.path(flow)
        kinds = [router.topology.devices[d].kind for d in path.devices]
        assert DeviceKind.CORE not in kinds
        assert kinds == [DeviceKind.HOST, DeviceKind.TOR, DeviceKind.AGG,
                         DeviceKind.TOR, DeviceKind.HOST]

    def test_cross_pod_traverses_core(self, router):
        flow = make_flow(_host(0, 0, 0), _host(1, 0, 0), rail=0,
                         size_bits=8e9)
        path = router.path(flow)
        kinds = [router.topology.devices[d].kind for d in path.devices]
        assert DeviceKind.CORE in kinds
        assert path.switch_hops == 5  # ToR-Agg-Core-Agg-ToR

    def test_cross_rail_same_block_traverses_core(self, router):
        """Without PXN, cross-rail traffic must climb to the Core tier."""
        flow = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                         size_bits=8e9, dst_rail=2)
        path = router.path(flow)
        kinds = [router.topology.devices[d].kind for d in path.devices]
        assert DeviceKind.CORE in kinds

    def test_path_respects_source_rail(self, router):
        flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=3,
                         size_bits=8e9)
        path = router.path(flow)
        first_tor = router.topology.devices[path.devices[1]]
        assert first_tor.rail == 3

    def test_path_respects_destination_rail(self, router):
        flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=2,
                         size_bits=8e9)
        path = router.path(flow)
        last_tor = router.topology.devices[path.devices[-2]]
        assert last_tor.rail == 2

    def test_path_never_transits_hosts(self, router):
        flow = make_flow(_host(0, 0, 0), _host(1, 1, 3), rail=0,
                         size_bits=8e9)
        path = router.path(flow)
        for name in path.devices[1:-1]:
            assert router.topology.devices[name].kind is not DeviceKind.HOST

    def test_deterministic_paths(self, router):
        flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=0,
                         size_bits=8e9)
        assert router.path(flow).devices == router.path(flow).devices

    def test_different_src_ports_spread_paths(self, router):
        """ECMP: varying the source port changes the chosen Agg."""
        aggs = set()
        for port in range(49152, 49152 + 64):
            flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=0,
                             size_bits=8e9, src_port=port)
            path = router.path(flow)
            aggs.add(path.devices[2])
        assert len(aggs) > 1


class TestFailureRerouting:
    def test_reroutes_around_failed_tor_uplink(self):
        topo = build_astral(AstralParams.tiny())
        router = EcmpRouter(topo)
        flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=0,
                         size_bits=8e9)
        path = router.path(flow)
        # Fail the first ToR->Agg link on the path.
        failed = path.link_ids[1]
        topo.fail_link(failed)
        new_path = router.path(flow)
        assert failed not in new_path.link_ids

    def test_dual_tor_survives_tor_isolation(self):
        """P3: with one ToR's host links all failed, the other carries."""
        topo = build_astral(AstralParams.tiny())
        router = EcmpRouter(topo)
        flow = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                         size_bits=8e9)
        tor0 = "p0.b0.r0.g0.tor"
        for link in topo.links_of(tor0):
            topo.fail_link(link.link_id)
        path = router.path(flow)
        assert tor0 not in path.devices

    def test_unreachable_raises(self):
        topo = build_astral(AstralParams.tiny())
        router = EcmpRouter(topo)
        flow = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                         size_bits=8e9)
        # Sever the destination host from rail 0 completely.
        dst = _host(0, 0, 1)
        for link in topo.links_of(dst):
            other = topo.devices[link.other(dst)]
            if other.rail == 0:
                topo.fail_link(link.link_id)
        with pytest.raises(RoutingError):
            router.path(flow)

    def test_min_hops_unreachable_raises(self):
        topo = build_rail_only(AstralParams.tiny())
        router = EcmpRouter(topo)
        # Cross-rail flow on a rail-only fabric has no route at all.
        flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=0,
                         size_bits=8e9, dst_rail=1)
        assert not router.reachable(flow)
        with pytest.raises(RoutingError):
            router.min_hops(flow)


class TestClosRouting:
    def test_any_pair_routes(self):
        topo = build_clos(ClosParams.tiny())
        router = EcmpRouter(topo)
        flow = make_flow("p0.b0.h0", "p1.b1.h1", rail=0, size_bits=8e9)
        path = router.path(flow)
        assert path.devices[0] == "p0.b0.h0"
        assert path.devices[-1] == "p1.b1.h1"

    def test_same_rail_gets_no_shortcut(self):
        """In CLOS, same-rail cross-block still climbs to the Agg tier
        shared by all rails (no same-rail dedication)."""
        topo = build_clos(ClosParams.tiny())
        router = EcmpRouter(topo)
        flow = make_flow("p0.b0.h0", "p0.b1.h0", rail=0, size_bits=8e9)
        path = router.path(flow)
        kinds = [topo.devices[d].kind for d in path.devices]
        assert DeviceKind.AGG in kinds
        aggs = [topo.devices[d] for d in path.devices
                if topo.devices[d].kind is DeviceKind.AGG]
        assert all(agg.rail is None for agg in aggs)


class TestRouterCaching:
    def test_cache_invalidated_on_failure(self):
        topo = build_astral(AstralParams.tiny())
        router = EcmpRouter(topo)
        flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=0,
                         size_bits=8e9)
        router.path(flow)
        assert router._dist_cache
        topo.fail_link(0)
        router.path(flow)
        assert router._cache_version == topo.version

"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simcore import Resource, SimulationError, Simulator, Store


class TestSimulatorBasics:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []

        def worker(tag, delay):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(worker("late", 3.0))
        sim.process(worker("early", 1.0))
        sim.process(worker("mid", 2.0))
        sim.run()
        assert order == ["early", "mid", "late"]

    def test_equal_timestamps_fire_in_insertion_order(self):
        sim = Simulator()
        order = []

        def worker(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.process(worker(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_past_last_event_advances_to_until(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run(until=9.0)
        assert sim.now == 9.0

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_peek_returns_next_timestamp(self):
        sim = Simulator()
        sim.timeout(2.5)
        assert sim.peek() == 2.5

    def test_peek_empty_returns_none(self):
        assert Simulator().peek() is None


class TestProcesses:
    def test_process_return_value_propagates(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            return 42

        def parent(results):
            value = yield sim.process(child())
            results.append(value)

        results = []
        sim.process(parent(results))
        sim.run()
        assert results == [42]

    def test_process_chain_accumulates_time(self):
        sim = Simulator()

        def seq():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            yield sim.timeout(3.0)

        sim.process(seq())
        sim.run()
        assert sim.now == 6.0

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield "not an event"

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_all_of_waits_for_slowest(self):
        sim = Simulator()
        done_at = []

        def parent():
            yield sim.all_of([sim.timeout(1.0), sim.timeout(5.0)])
            done_at.append(sim.now)

        sim.process(parent())
        sim.run()
        assert done_at == [5.0]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        done = []

        def parent():
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(parent())
        sim.run()
        assert done == [0.0]

    def test_any_of_fires_on_fastest(self):
        sim = Simulator()
        done_at = []

        def parent():
            yield sim.any_of([sim.timeout(4.0), sim.timeout(1.5)])
            done_at.append(sim.now)

        sim.process(parent())
        sim.run()
        assert done_at == [1.5]

    def test_event_succeed_twice_raises(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()


class TestResource:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        spans = []

        def worker(tag):
            yield resource.request()
            start = sim.now
            yield sim.timeout(2.0)
            resource.release()
            spans.append((tag, start, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]

    def test_capacity_two_runs_in_parallel(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        finished = []

        def worker(tag):
            yield resource.request()
            yield sim.timeout(3.0)
            resource.release()
            finished.append((tag, sim.now))

        for tag in "abc":
            sim.process(worker(tag))
        sim.run()
        # a and b run together; c waits for the first release.
        assert finished == [("a", 3.0), ("b", 3.0), ("c", 6.0)]

    def test_release_without_request_raises(self):
        sim = Simulator()
        resource = Resource(sim)
        with pytest.raises(SimulationError):
            resource.release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_cancel_preserves_fifo_order_of_survivors(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        starts = []
        cancelled = {}

        def holder():
            yield resource.request()
            yield sim.timeout(1.0)
            resource.release()

        def worker(tag):
            grant = resource.request()
            cancelled[tag] = grant
            yield grant
            starts.append((tag, sim.now))
            yield sim.timeout(1.0)
            resource.release()

        def canceller():
            yield sim.timeout(0.5)
            assert resource.cancel(cancelled["c"]) is True

        sim.process(holder())
        for tag in "bcd":
            sim.process(worker(tag))
        sim.process(canceller())
        sim.run()
        # c leaves the queue; b and d keep their relative FIFO order.
        assert starts == [("b", 1.0), ("d", 2.0)]

    def test_cancel_granted_request_returns_false(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        outcome = []

        def worker():
            grant = resource.request()
            yield grant
            outcome.append(resource.cancel(grant))
            resource.release()

        sim.process(worker())
        sim.run()
        assert outcome == [False]

    def test_cancel_foreign_event_returns_false(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        assert resource.cancel(sim.event("stranger")) is False

    def test_preempt_is_an_alias_for_cancel(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        released = []

        def holder():
            yield resource.request()
            yield sim.timeout(1.0)
            resource.release()

        def victim():
            grant = resource.request()
            assert resource.preempt(grant) is True
            yield sim.timeout(0.0)

        def survivor():
            yield resource.request()
            released.append(sim.now)
            resource.release()

        sim.process(holder())
        sim.process(victim())
        sim.process(survivor())
        sim.run()
        # The preempted waiter never consumes the grant: the survivor
        # gets the resource at the holder's release, not after.
        assert released == [1.0]


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        store.put("x")
        sim.process(consumer())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(3.0, "late")]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(consumer())
        sim.run()
        assert got == [1, 2, 3]

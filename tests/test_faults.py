"""Tests for the failure taxonomy and fault sampling (Figure 7)."""

from collections import Counter

import pytest

from repro.monitoring import (
    CAUSE_PROFILES,
    MANIFESTATION_PREVALENCE,
    Manifestation,
    ROOT_CAUSE_PREVALENCE,
    RootCause,
    FaultSpec,
    sample_faults,
)


class TestTaxonomy:
    def test_manifestation_prevalence_sums_to_one(self):
        assert sum(MANIFESTATION_PREVALENCE.values()) \
            == pytest.approx(1.0)

    def test_root_cause_prevalence_sums_to_one(self):
        assert sum(ROOT_CAUSE_PREVALENCE.values()) == pytest.approx(1.0)

    def test_paper_percentages(self):
        """Fig. 7 inner ring (normalized from the published 101%)."""
        assert ROOT_CAUSE_PREVALENCE[RootCause.HOST_ENV_CONFIG] \
            == pytest.approx(32 / 101)
        assert ROOT_CAUSE_PREVALENCE[RootCause.NIC_ERROR] \
            == pytest.approx(15 / 101)

    def test_every_cause_has_profile(self):
        for cause in RootCause:
            assert cause in CAUSE_PROFILES
            profile = CAUSE_PROFILES[cause]
            assert sum(profile.manifestation_weights.values()) \
                == pytest.approx(1.0)

    def test_silent_failures_lack_fatal_logs(self):
        """§3.1: fail-slow/fail-hang causes tend not to log explicitly;
        the hang-prone CCL bug and congestion-prone switch config must
        be silent."""
        assert not CAUSE_PROFILES[RootCause.CCL_BUG].fatal_log
        assert not CAUSE_PROFILES[RootCause.SWITCH_CONFIG].fatal_log

    def test_hardware_failures_have_fatal_logs(self):
        assert CAUSE_PROFILES[RootCause.GPU_HARDWARE].fatal_log
        assert CAUSE_PROFILES[RootCause.MEMORY].fatal_log


class TestSampling:
    def test_sample_count(self):
        assert len(sample_faults(50, seed=1)) == 50

    def test_deterministic(self):
        a = sample_faults(20, seed=42)
        b = sample_faults(20, seed=42)
        assert a == b

    def test_cause_marginal_matches_figure7(self):
        faults = sample_faults(3000, seed=7)
        counts = Counter(f.cause for f in faults)
        for cause, expected in ROOT_CAUSE_PREVALENCE.items():
            observed = counts[cause] / len(faults)
            assert observed == pytest.approx(expected, abs=0.03)

    def test_manifestation_marginal_roughly_matches_figure7(self):
        faults = sample_faults(3000, seed=7)
        counts = Counter(f.manifestation for f in faults)
        for manifestation, expected in MANIFESTATION_PREVALENCE.items():
            observed = counts[manifestation] / len(faults)
            assert observed == pytest.approx(expected, abs=0.06)

    def test_fail_on_start_at_iteration_zero(self):
        faults = sample_faults(300, seed=3)
        for fault in faults:
            if fault.manifestation is Manifestation.FAIL_ON_START:
                assert fault.at_iteration == 0
            else:
                assert fault.at_iteration >= 1

    def test_targets_drawn_from_pools(self):
        faults = sample_faults(
            200, seed=5, hosts=["hA", "hB"], switches=["sA"],
            link_ids=[7, 9])
        for fault in faults:
            kind = fault.profile.target_kind
            if kind == "host":
                assert fault.target in ("hA", "hB")
            elif kind == "switch":
                assert fault.target == "sA"
            elif kind == "link":
                assert fault.target in ("link:7", "link:9")

    def test_syslog_message_renders(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP, "h0", detail="79")
        assert "Xid" in fault.syslog_message()
        assert "h0" in fault.syslog_message()


class TestSpecValidation:
    """Malformed specs fail at construction with the field named."""

    def test_negative_at_time_s_rejected(self):
        with pytest.raises(ValueError, match="at_time_s"):
            FaultSpec(RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
                      "h0", at_time_s=-1.0)

    def test_negative_at_iteration_rejected(self):
        with pytest.raises(ValueError, match="at_iteration"):
            FaultSpec(RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
                      "h0", at_iteration=-3)

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            FaultSpec(RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
                      "")

    def test_malformed_link_reference_rejected(self):
        with pytest.raises(ValueError, match="link:<id>"):
            FaultSpec(RootCause.OPTICAL_FIBER, Manifestation.FAIL_STOP,
                      "link:banana")

    def test_link_effect_requires_link_target(self):
        # OPTICAL_FIBER manifests as LINK_DOWN — a host target is a
        # category error the constructor must catch.
        with pytest.raises(ValueError, match="requires a 'link:<id>'"):
            FaultSpec(RootCause.OPTICAL_FIBER, Manifestation.FAIL_STOP,
                      "p0.b0.h0")

    def test_device_effect_rejects_link_target(self):
        with pytest.raises(ValueError, match="cannot strike a link"):
            FaultSpec(RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
                      "link:3")

    def test_validate_rejects_unknown_device(self):
        from repro.topology import AstralParams, build_astral
        topology = build_astral(AstralParams.tiny())
        spec = FaultSpec(RootCause.SWITCH_BUG, Manifestation.FAIL_STOP,
                         "no.such.tor")
        with pytest.raises(ValueError, match="unknown device"):
            spec.validate(topology=topology)

    def test_validate_rejects_unknown_link_id(self):
        from repro.topology import AstralParams, build_astral
        topology = build_astral(AstralParams.tiny())
        spec = FaultSpec(RootCause.OPTICAL_FIBER,
                         Manifestation.FAIL_STOP, "link:999999")
        with pytest.raises(ValueError, match="unknown link id"):
            spec.validate(topology=topology)

    def test_validate_passes_and_chains_on_known_targets(self):
        from repro.topology import AstralParams, build_astral
        topology = build_astral(AstralParams.tiny())
        link_id = next(iter(topology.links))
        spec = FaultSpec(RootCause.OPTICAL_FIBER,
                         Manifestation.FAIL_STOP, f"link:{link_id}")
        assert spec.validate(topology=topology) is spec


class TestCrossProcessDeterminism:
    """String-seeded draws must agree across interpreter processes
    (different ``PYTHONHASHSEED``), or campaign replays diverge."""

    @staticmethod
    def _digest_script():
        return """
import hashlib, json, sys
sys.path.insert(0, "src")
from repro.cluster.recovery import RecoveryManager
from repro.monitoring.faults import sample_faults

faults = sample_faults(25, seed="campaign-7",
                       hosts=["h0", "h1"], switches=["s0"],
                       link_ids=[1, 2, 3])
recovery = RecoveryManager(seed=7)
payload = {
    "faults": [(f.cause.value, f.manifestation.value, f.target,
                f.at_iteration) for f in faults],
    "fail": [recovery.failure_delay_s("job0", a, 32)
             for a in range(4)],
    "repair": [recovery.repair_delay_s("p0.b0.r0.g0.tor", o)
               for o in range(4)],
}
print(hashlib.sha256(
    json.dumps(payload, sort_keys=True).encode()).hexdigest())
"""

    def test_draws_stable_across_hash_seeds(self):
        import os
        import subprocess
        import sys

        digests = set()
        for hash_seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            out = subprocess.run(
                [sys.executable, "-c", self._digest_script()],
                capture_output=True, text=True, env=env, check=True,
                cwd=os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__))))
            digests.add(out.stdout.strip())
        assert len(digests) == 1

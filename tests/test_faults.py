"""Tests for the failure taxonomy and fault sampling (Figure 7)."""

from collections import Counter

import pytest

from repro.monitoring import (
    CAUSE_PROFILES,
    MANIFESTATION_PREVALENCE,
    Manifestation,
    ROOT_CAUSE_PREVALENCE,
    RootCause,
    FaultSpec,
    sample_faults,
)


class TestTaxonomy:
    def test_manifestation_prevalence_sums_to_one(self):
        assert sum(MANIFESTATION_PREVALENCE.values()) \
            == pytest.approx(1.0)

    def test_root_cause_prevalence_sums_to_one(self):
        assert sum(ROOT_CAUSE_PREVALENCE.values()) == pytest.approx(1.0)

    def test_paper_percentages(self):
        """Fig. 7 inner ring (normalized from the published 101%)."""
        assert ROOT_CAUSE_PREVALENCE[RootCause.HOST_ENV_CONFIG] \
            == pytest.approx(32 / 101)
        assert ROOT_CAUSE_PREVALENCE[RootCause.NIC_ERROR] \
            == pytest.approx(15 / 101)

    def test_every_cause_has_profile(self):
        for cause in RootCause:
            assert cause in CAUSE_PROFILES
            profile = CAUSE_PROFILES[cause]
            assert sum(profile.manifestation_weights.values()) \
                == pytest.approx(1.0)

    def test_silent_failures_lack_fatal_logs(self):
        """§3.1: fail-slow/fail-hang causes tend not to log explicitly;
        the hang-prone CCL bug and congestion-prone switch config must
        be silent."""
        assert not CAUSE_PROFILES[RootCause.CCL_BUG].fatal_log
        assert not CAUSE_PROFILES[RootCause.SWITCH_CONFIG].fatal_log

    def test_hardware_failures_have_fatal_logs(self):
        assert CAUSE_PROFILES[RootCause.GPU_HARDWARE].fatal_log
        assert CAUSE_PROFILES[RootCause.MEMORY].fatal_log


class TestSampling:
    def test_sample_count(self):
        assert len(sample_faults(50, seed=1)) == 50

    def test_deterministic(self):
        a = sample_faults(20, seed=42)
        b = sample_faults(20, seed=42)
        assert a == b

    def test_cause_marginal_matches_figure7(self):
        faults = sample_faults(3000, seed=7)
        counts = Counter(f.cause for f in faults)
        for cause, expected in ROOT_CAUSE_PREVALENCE.items():
            observed = counts[cause] / len(faults)
            assert observed == pytest.approx(expected, abs=0.03)

    def test_manifestation_marginal_roughly_matches_figure7(self):
        faults = sample_faults(3000, seed=7)
        counts = Counter(f.manifestation for f in faults)
        for manifestation, expected in MANIFESTATION_PREVALENCE.items():
            observed = counts[manifestation] / len(faults)
            assert observed == pytest.approx(expected, abs=0.06)

    def test_fail_on_start_at_iteration_zero(self):
        faults = sample_faults(300, seed=3)
        for fault in faults:
            if fault.manifestation is Manifestation.FAIL_ON_START:
                assert fault.at_iteration == 0
            else:
                assert fault.at_iteration >= 1

    def test_targets_drawn_from_pools(self):
        faults = sample_faults(
            200, seed=5, hosts=["hA", "hB"], switches=["sA"],
            link_ids=[7, 9])
        for fault in faults:
            kind = fault.profile.target_kind
            if kind == "host":
                assert fault.target in ("hA", "hB")
            elif kind == "switch":
                assert fault.target == "sA"
            elif kind == "link":
                assert fault.target in ("link:7", "link:9")

    def test_syslog_message_renders(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP, "h0", detail="79")
        assert "Xid" in fault.syslog_message()
        assert "h0" in fault.syslog_message()

"""Content-addressed result cache: hits, misses, invalidation rules."""

import json

import pytest

from repro.farm import (FarmExecutor, ResultCache, TaskSpec,
                        code_fingerprint)

OK_SPEC = TaskSpec("farm-selftest", {"mode": "ok", "value": 7})


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


class TestCacheKeying:
    def test_miss_then_hit_on_identical_spec(self, cache):
        assert cache.get(OK_SPEC) is None
        cache.put(OK_SPEC, {"value": 7, "squared": 49}, elapsed_s=0.1)
        entry = cache.get(OK_SPEC)
        assert entry["result"] == {"value": 7, "squared": 49}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_any_spec_field_change_misses(self, cache):
        cache.put(OK_SPEC, {"value": 7})
        assert cache.get(
            TaskSpec("farm-selftest", {"mode": "ok", "value": 8})) \
            is None

    def test_code_fingerprint_change_misses(self, tmp_path):
        root = tmp_path / "cache"
        live = ResultCache(root=root)
        live.put(OK_SPEC, {"value": 7})
        assert live.get(OK_SPEC) is not None
        # Same spec, different code generation: a guaranteed miss.
        other = ResultCache(root=root, fingerprint="0" * 64)
        assert other.get(OK_SPEC) is None
        assert other.entry_path(OK_SPEC) != live.entry_path(OK_SPEC)

    def test_live_fingerprint_covers_every_source_file(self):
        fingerprint = code_fingerprint()
        assert len(fingerprint) == 64
        # Stable within a process.
        assert fingerprint == code_fingerprint()


class TestCacheDurability:
    def test_corrupt_entry_reads_as_miss(self, cache):
        cache.put(OK_SPEC, {"value": 7})
        path = cache.entry_path(OK_SPEC)
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(OK_SPEC) is None

    def test_wrong_hash_inside_entry_reads_as_miss(self, cache):
        cache.put(OK_SPEC, {"value": 7})
        path = cache.entry_path(OK_SPEC)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["spec_hash"] = "f" * 64
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(OK_SPEC) is None

    def test_entries_are_self_describing(self, cache):
        cache.put(OK_SPEC, {"value": 7}, elapsed_s=0.5)
        entry = json.loads(cache.entry_path(OK_SPEC).read_text(
            encoding="utf-8"))
        assert entry["spec"] == OK_SPEC.to_dict()
        assert entry["elapsed_s"] == 0.5

    def test_clear_removes_current_generation(self, cache):
        cache.put(OK_SPEC, {"value": 7})
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestExecutorIntegration:
    def test_warm_rerun_executes_zero_tasks(self, cache):
        specs = [TaskSpec("farm-selftest", {"mode": "ok", "value": v})
                 for v in range(4)]
        cold = FarmExecutor(workers=1, cache=cache).run(specs)
        assert cold.n_executed == 4 and cold.n_cached == 0
        warm_cache = ResultCache(root=cache.root)
        warm = FarmExecutor(workers=1, cache=warm_cache).run(specs)
        assert warm.n_executed == 0 and warm.n_cached == 4
        assert warm_cache.stats.hits == 4
        assert warm.identity() == cold.identity()

    def test_no_cache_bypasses_reads_but_still_warms(self, cache):
        specs = [TaskSpec("farm-selftest", {"mode": "ok", "value": 1})]
        FarmExecutor(workers=1, use_cache=False, cache=cache).run(specs)
        # The run above never read, but it wrote.
        fresh = ResultCache(root=cache.root)
        assert fresh.get(specs[0]) is not None

    def test_failed_tasks_are_never_cached(self, cache):
        spec = TaskSpec("farm-selftest", {"mode": "fail"})
        report = FarmExecutor(workers=1, cache=cache).run([spec])
        assert report.results[0].status == "error"
        assert ResultCache(root=cache.root).get(spec) is None

"""Unit tests of the invariant oracles — including that they *detect*.

A validation harness that cannot fail is decoration: for every oracle
there is one test that it passes on a legitimate artifact and one that
it fires on a deliberately corrupted artifact.
"""

import pytest

from repro.network import Fabric, make_flow, reset_flow_ids
from repro.topology import AstralParams, build_astral
from repro.validation import (
    TracingSimulator,
    Violation,
    check_clock_monotonic,
    check_max_min_bottleneck,
    check_rate_feasibility,
    check_same_result,
    check_solution,
    check_work_conservation,
    replay_conservation,
)


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


@pytest.fixture()
def fabric():
    return Fabric(build_astral(AstralParams.tiny()))


def _flows(fabric, count=4):
    hosts = sorted(host.name for host in fabric.topology.hosts())
    flows = []
    for index in range(count):
        src = hosts[index % len(hosts)]
        dst = hosts[(index + 1) % len(hosts)]
        flows.append(make_flow(src, dst, rail=0, size_bits=8e9))
    return flows


class TestRateOracles:
    def test_legitimate_solution_is_clean(self, fabric):
        flows = _flows(fabric)
        assert check_solution(fabric, flows) == []

    def test_feasibility_fires_on_overallocation(self, fabric):
        flows = _flows(fabric)
        paths = fabric.resolve_paths(flows)
        # Hand every flow the full line rate: shared links overflow.
        rates = {flow.flow_id: fabric.host_line_rate_gbps * 4
                 for flow in flows}
        violations = check_rate_feasibility(fabric, flows, paths, rates)
        assert violations
        assert all(v.oracle == "rate-feasibility" for v in violations)

    def test_work_conservation_fires_on_starved_flow(self, fabric):
        flows = _flows(fabric)
        rates = {flow.flow_id: 100.0 for flow in flows}
        rates[flows[0].flow_id] = 0.0
        violations = check_work_conservation(flows, rates)
        assert [v.oracle for v in violations] == ["work-conservation"]
        assert str(flows[0].flow_id) in violations[0].detail

    def test_kkt_fires_on_underallocated_flow(self, fabric):
        flows = _flows(fabric)
        paths = fabric.resolve_paths(flows)
        rates = fabric.max_min_rates(flows, paths)
        assert check_max_min_bottleneck(fabric, flows, paths,
                                        rates) == []
        # Halve one flow's rate: it is now below line rate with no
        # saturated link where it is maximal — not max-min optimal.
        victim = flows[0].flow_id
        rates[victim] = rates[victim] / 2
        violations = check_max_min_bottleneck(fabric, flows, paths,
                                              rates)
        assert any(v.oracle == "max-min-kkt"
                   and str(victim) in v.detail for v in violations)

    def test_capacity_factors_respected(self, fabric):
        flows = _flows(fabric, count=2)
        paths = fabric.resolve_paths(flows)
        hop = fabric.directed_hops(paths[flows[0].flow_id])[0]
        factors = {hop: 0.5}
        rates = fabric.max_min_rates(flows, paths,
                                     capacity_factors=factors)
        assert check_solution(fabric, flows, paths, rates,
                              capacity_factors=factors) == []
        # The same rates judged against unscaled capacity also pass
        # (factor only shrinks the budget), but judged against a
        # tighter factor they overflow.
        tight = {hop: rates[flows[0].flow_id]
                 / (2 * fabric.topology.links[hop[0]].capacity_gbps)}
        assert check_rate_feasibility(fabric, flows, paths, rates,
                                      capacity_factors=tight)


class TestByteConservation:
    def test_batch_run_conserves_bytes(self, fabric):
        flows = _flows(fabric)
        paths = fabric.resolve_paths(flows)
        run = fabric.complete(flows, paths=paths)
        assert replay_conservation(fabric, flows, run.finish_times_s,
                                   paths) == []

    def test_fires_on_corrupted_finish_time(self, fabric):
        flows = _flows(fabric)
        paths = fabric.resolve_paths(flows)
        run = fabric.complete(flows, paths=paths)
        finish = dict(run.finish_times_s)
        victim = flows[0].flow_id
        finish[victim] = finish[victim] * 0.5
        violations = replay_conservation(fabric, flows, finish, paths,
                                         check_epochs=False)
        assert any(v.oracle == "byte-conservation"
                   and str(victim) in v.detail for v in violations)

    def test_fires_on_missing_finish_time(self, fabric):
        flows = _flows(fabric)
        paths = fabric.resolve_paths(flows)
        run = fabric.complete(flows, paths=paths)
        finish = dict(run.finish_times_s)
        del finish[flows[-1].flow_id]
        violations = replay_conservation(fabric, flows, finish, paths,
                                         check_epochs=False)
        assert any("no recorded finish" in v.detail
                   for v in violations)

    def test_degraded_capacity_epochs(self, fabric):
        """A mid-run degrade is folded into the replay's epochs."""
        from repro.network.engine import FabricEngine
        from repro.simcore import Simulator
        flows = _flows(fabric, count=3)
        engine = FabricEngine(fabric, sim=Simulator())
        paths = fabric.resolve_paths(flows)
        for flow in flows:
            engine.submit(flow, path=paths[flow.flow_id],
                          start_time_s=0.0)
        hop_link = paths[flows[0].flow_id].link_ids[0]
        at_s, factor = 0.01, 0.5
        engine.set_capacity_factor(hop_link, factor, at=at_s)
        run = engine.run()
        assert replay_conservation(
            fabric, flows, run.finish_times_s, paths,
            capacity_events=[(at_s, hop_link, factor)]) == []


class TestClockAndDeterminism:
    def test_tracing_simulator_is_monotone(self):
        sim = TracingSimulator()
        for delay in (3.0, 1.0, 2.0, 1.0):
            sim.timeout(delay)
        sim.run()
        assert len(sim.trace) == 4
        assert check_clock_monotonic(sim.trace) == []

    def test_fires_on_backwards_clock(self):
        violations = check_clock_monotonic([0.0, 1.0, 0.5])
        assert [v.oracle for v in violations] == ["clock-monotonic"]

    def test_same_result_passes_on_pure_function(self):
        assert check_same_result(lambda: {"a": 1.0}) == []

    def test_same_result_fires_on_drift(self):
        state = {"calls": 0}

        def drifting():
            state["calls"] += 1
            return state["calls"]

        violations = check_same_result(drifting, label="drifty")
        assert [v.oracle for v in violations] == \
            ["bit-identical-replay"]
        assert "drifty" in violations[0].detail


class TestViolation:
    def test_renders_oracle_and_detail(self):
        violation = Violation("rate-feasibility", "link 3 overflows")
        assert str(violation) == "[rate-feasibility] link 3 overflows"

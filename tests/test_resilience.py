"""Tests for live failure injection and the closed recovery loop.

Covers the tentpole end to end: mid-flight routing failover on the
fabric engine (reroute, flap dampening, stranding and the
:class:`PartitionError` cut set), the :class:`FailureInjector`'s
scheduled topology mutations, the :class:`RecoveryPipeline`'s
detect → localize → cordon → requeue → repair loop, the
:class:`ClusterScheduler` interrupt hook, graceful collective
degradation, and the seeded end-to-end campaign whose measured goodput
penalty must land within 10% of the analytic
:func:`failure_penalty_s` prediction.
"""

import pytest

from repro.cluster import ClusterScheduler, JobSpec, RecoveryManager
from repro.core.placement import GpuAllocator
from repro.core.reliability import CheckpointPolicy, failure_penalty_s
from repro.monitoring import FaultSpec, Manifestation, RootCause
from repro.monitoring.mttlf import MttlfModel
from repro.network import (
    Endpoint,
    Fabric,
    FabricEngine,
    make_flow,
    reset_flow_ids,
    run_collective_timed,
)
from repro.network.collectives import repair_ring
from repro.network.routing import PartitionError, RoutingError
from repro.resilience import (
    FailureInjector,
    RecoveryPipeline,
    ResilienceCampaign,
)
from repro.topology import AstralParams, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def _engine(params=None):
    topology = build_astral(params or AstralParams.small())
    return FabricEngine(Fabric(topology))


class TestRoutingFailover:
    def test_tor_kill_reroutes_in_flight_flow(self):
        """A flow crossing a dying ToR moves to a surviving ECMP path
        mid-transfer and still finishes."""
        engine = _engine()
        topology = engine.fabric.topology
        flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0, size_bits=2e12)
        engine.submit(flow)
        injector = FailureInjector(engine)
        path = engine.fabric.router.path(flow)
        tor = path.devices[1]
        injector.kill_device(tor, at=2.0)
        run = engine.run()
        assert engine.reroutes[flow.flow_id] == 1
        assert flow.flow_id in run.finish_times_s
        # The adopted path avoids the dead ToR entirely.
        assert tor not in run.paths[flow.flow_id].devices
        assert all(not link.healthy
                   for link in topology.links_of(tor))

    def test_flap_causes_at_most_one_reroute_per_flow(self):
        """Down/up inside the dampening window: the rerouted flow stays
        on its new healthy path, so the flap costs one reroute, not
        two."""
        engine = _engine()
        flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0, size_bits=4e12)
        engine.submit(flow)
        path = engine.fabric.router.path(flow)
        injector = FailureInjector(engine, dampening_s=10.0)
        injector.flap_link(path.link_ids[0], at=2.0, down_s=1.0)
        run = engine.run()
        assert flow.flow_id in run.finish_times_s
        assert engine.reroutes.get(flow.flow_id, 0) <= 1
        # The link did come back (after the hold-down).
        assert engine.fabric.topology.links[path.link_ids[0]].healthy
        restores = [e for e in injector.log if e.action == "restore-link"]
        assert restores and restores[0].at_s == pytest.approx(12.0)

    def test_partitioned_flow_raises_partition_error_with_cut(self):
        """Killing every link of the destination host strands the flow;
        the error names the cut set."""
        engine = _engine()
        topology = engine.fabric.topology
        flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0, size_bits=2e12)
        engine.submit(flow)
        injector = FailureInjector(engine)
        injector.kill_device("p0.b0.h1", at=2.0)
        with pytest.raises(PartitionError) as excinfo:
            engine.run()
        exc = excinfo.value
        assert exc.dst == "p0.b0.h1"
        host_links = {l.link_id for l in topology.links_of("p0.b0.h1")}
        assert set(exc.cut) == host_links
        assert "cut links" in str(exc)

    def test_stranded_handler_enables_graceful_cancel(self):
        """With an on_stranded handler the simulation survives: the
        handler cancels the orphan and the run drains cleanly."""
        engine = _engine()
        flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0, size_bits=2e12)
        done = engine.submit(flow)
        injector = FailureInjector(engine)
        injector.kill_device("p0.b0.h1", at=2.0)
        seen = []

        def handler(stranded_flow, exc):
            seen.append((stranded_flow.flow_id, exc))
            engine.cancel(stranded_flow.flow_id)

        engine.on_stranded(handler)
        run = engine.run()
        assert seen and seen[0][0] == flow.flow_id
        assert isinstance(seen[0][1], RoutingError)
        assert done.triggered and done.value is None
        assert flow.flow_id not in run.finish_times_s

    def test_unaffected_flows_do_not_reroute(self):
        engine = _engine()
        flow = make_flow("p1.b0.h0", "p1.b0.h1", rail=1, size_bits=2e12)
        engine.submit(flow)
        victim = make_flow("p0.b0.h0", "p0.b0.h1", rail=0,
                           size_bits=2e12)
        engine.submit(victim)
        injector = FailureInjector(engine)
        path = engine.fabric.router.path(victim)
        injector.kill_device(path.devices[1], at=2.0)
        engine.run()
        assert flow.flow_id not in engine.reroutes


class TestPartitionCut:
    def test_partition_cut_none_when_reachable(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        cut = fabric.router.partition_cut("p0.b0.h0", "p0.b0.h1")
        assert cut is None

    def test_partition_cut_names_dead_frontier(self):
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        dead = topology.fail_device("p0.b0.h1")
        cut = fabric.router.partition_cut("p0.b0.h0", "p0.b0.h1")
        assert cut is not None and set(cut) == set(dead)


class TestFailureInjector:
    def test_degrade_link_halves_throughput(self):
        engine = _engine()
        flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0, size_bits=2e12)
        engine.submit(flow)
        path = engine.fabric.router.path(flow)
        injector = FailureInjector(engine)
        injector.degrade_link(path.link_ids[0], factor=0.5, at=5.0)
        run = engine.run()
        # 5 s at 200 Gbps then 1e12 bits at 100 Gbps: t = 15 s.
        assert run.finish_times_s[flow.flow_id] == pytest.approx(15.0)

    def test_schedule_maps_link_down_spec(self):
        engine = _engine()
        topology = engine.fabric.topology
        link_id = topology.links_of("p0.b0.h0")[0].link_id
        spec = FaultSpec(
            cause=RootCause.OPTICAL_FIBER,
            manifestation=Manifestation.FAIL_STOP,
            target=f"link:{link_id}", at_time_s=3.0)
        injector = FailureInjector(engine)
        injector.schedule(spec)
        engine.sim.run()
        assert not topology.links[link_id].healthy
        assert injector.log[0].action == "kill-link"
        assert injector.log[0].at_s == 3.0

    def test_schedule_rejects_unknown_target(self):
        engine = _engine()
        spec = FaultSpec(
            cause=RootCause.SWITCH_BUG,
            manifestation=Manifestation.FAIL_STOP,
            target="no.such.switch", at_time_s=1.0)
        with pytest.raises(ValueError, match="unknown device"):
            FailureInjector(engine).schedule(spec)

    def test_repair_device_restores_links(self):
        engine = _engine()
        topology = engine.fabric.topology
        injector = FailureInjector(engine)
        injector.kill_device("p0.b0.r0.g0.tor")
        assert any(not l.healthy for l in topology.links.values())
        injector.repair("p0.b0.r0.g0.tor")
        engine.sim.run()
        assert all(l.healthy for l in topology.links.values())


class TestRecoveryPipeline:
    def test_detect_localize_cordon_repair_cycle(self):
        engine = _engine()
        topology = engine.fabric.topology
        allocator = GpuAllocator(topology)
        injector = FailureInjector(engine)
        mttlf = MttlfModel(n_hosts=32, jitter_frac=0.0)
        pipeline = RecoveryPipeline(
            engine, allocator, mttlf=mttlf,
            recovery=RecoveryManager(seed=5, ttr_hours=0.5),
            probe_interval_s=30.0)
        pipeline.start()
        injector.kill_device("p0.b0.r0.g0.tor", at=95.0)

        def stopper():
            yield engine.sim.timeout(30_000.0)
            pipeline.stop()

        engine.sim.process(stopper(), name="stopper")
        engine.sim.run()
        assert len(pipeline.records) == 1
        record = pipeline.records[0]
        assert record.target == "p0.b0.r0.g0.tor"
        # Detected at the first probe after injection.
        assert record.detected_s == 120.0
        # Localization takes exactly the modeled MTTLF delay.
        assert record.localized_s - record.detected_s == pytest.approx(
            mttlf.localization_delay_s(Manifestation.FAIL_STOP))
        # Blast radius: every host of the block (dual-ToR redundancy
        # loss), cordoned then returned after repair.
        assert record.cordoned_hosts == [
            f"p0.b0.h{i}" for i in range(8)]
        assert record.repaired_s is not None
        assert allocator.cordoned_hosts == []
        assert all(l.healthy for l in topology.links.values())

    def test_single_link_fault_localizes_to_link(self):
        engine = _engine()
        topology = engine.fabric.topology
        allocator = GpuAllocator(topology)
        injector = FailureInjector(engine)
        host_link = topology.links_of("p0.b0.h3")[0].link_id
        pipeline = RecoveryPipeline(
            engine, allocator,
            recovery=RecoveryManager(seed=5, ttr_hours=0.5),
            probe_interval_s=30.0)
        pipeline.start()
        injector.kill_link(host_link, at=10.0)

        def stopper():
            yield engine.sim.timeout(30_000.0)
            pipeline.stop()

        engine.sim.process(stopper(), name="stopper")
        engine.sim.run()
        assert len(pipeline.records) == 1
        record = pipeline.records[0]
        assert record.target == f"link:{host_link}"
        # Only the host endpoint of the link gets cordoned.
        assert record.cordoned_hosts == ["p0.b0.h3"]


class TestSchedulerInterrupt:
    def test_interrupt_job_requeues_through_recovery_manager(self):
        topology = build_astral(AstralParams.small())
        recovery = RecoveryManager(
            failure_scale=0.0,
            checkpoint=CheckpointPolicy(interval_s=600.0), seed=0)
        scheduler = ClusterScheduler(
            topology,
            [JobSpec(name="train", submit_s=0.0, n_hosts=4,
                     duration_s=4000.0)],
            recovery=recovery)

        def fail_it():
            yield scheduler.sim.timeout(1000.0)
            assert scheduler.interrupt_job("train") is True

        scheduler.sim.process(fail_it(), name="fault")
        report = scheduler.run()
        record = report.records[0]
        assert record.status == "completed"
        assert record.failures == 1
        # Rolled back to the checkpoint at t=600: 400 s of work lost.
        assert record.lost_s == pytest.approx(400.0)
        # Makespan pays lost work + restart on top of the service time.
        assert record.end_s == pytest.approx(
            4000.0 + 400.0 + recovery.checkpoint.restart_s)

    def test_interrupt_unknown_job_is_a_noop(self):
        topology = build_astral(AstralParams.tiny())
        scheduler = ClusterScheduler(
            topology, [JobSpec(name="a", submit_s=0.0, n_hosts=1,
                               duration_s=10.0)])
        assert scheduler.interrupt_job("nope") is False
        scheduler.run()


class TestCollectiveDegradation:
    def test_repair_ring_preserves_order(self):
        ring = [Endpoint(f"h{i}", 0) for i in range(5)]
        repaired = repair_ring(ring, ["h1", "h3"])
        assert [ep.host for ep in repaired] == ["h0", "h2", "h4"]

    def test_timed_collective_repairs_around_dead_member(self):
        engine = _engine()
        hosts = [f"p0.b0.h{i}" for i in range(4)]
        endpoints = [Endpoint(host, 0) for host in hosts]
        dead = set()

        def alive(host):
            return host not in dead

        proc = run_collective_timed(
            engine, endpoints, size_bits=4e11,
            collective="allreduce", alive=alive)

        def killer():
            yield engine.sim.timeout(0.5)
            dead.add(hosts[1])
            # Cancel the dead member's in-flight transfers the way the
            # strand handler would.
            for flow in list(engine.active_flows()):
                if hosts[1] in (flow.src_host, flow.dst_host):
                    engine.cancel(flow.flow_id)

        engine.sim.process(killer(), name="killer")
        engine.sim.run()
        result = proc.value
        assert result.repairs == 1
        assert result.n_endpoints == 3
        assert result.network_time_s > 0


def _tor_fault(at_time_s):
    return FaultSpec(
        cause=RootCause.SWITCH_BUG,
        manifestation=Manifestation.FAIL_STOP,
        target="p0.b0.r0.g0.tor",
        at_time_s=at_time_s)


def _campaign(seed=11):
    # Iteration = 20 s compute + 1.5 s collective = 21.5 s exactly
    # (dedicated host uplinks, no contention).  The fault lands inside
    # iteration 84's collective window [1826.0, 1827.5] — mid-transfer
    # — and half a checkpoint interval (1800 s) after the t=0
    # checkpoint, which is what the analytic penalty model assumes in
    # expectation.
    return ResilienceCampaign(
        params=AstralParams.small(),
        faults=[_tor_fault(1826.7)],
        n_jobs=1, hosts_per_job=4, n_iterations=180,
        compute_s=20.0, collective_bits=2e11,
        checkpoint_interval_s=3600.0,
        probe_interval_s=30.0,
        seed=seed)


@pytest.mark.slow
class TestEndToEndScenario:
    """The acceptance scenario: ToR dies mid-collective, the job
    survives it through the whole recovery loop, and the measured
    goodput penalty matches the analytic model."""

    def test_tor_kill_recovery_and_goodput(self):
        report = _campaign().run()
        data = report.to_dict()

        # Survivors rerouted mid-transfer; nothing was stranded.
        assert report.reroutes >= 1
        assert report.stranded == 0

        # Detect -> localize on the modeled clock.
        assert len(report.recoveries) == 1
        record = report.recoveries[0]
        assert record["target"] == "p0.b0.r0.g0.tor"
        assert 1826.7 <= record["detected_s"] <= 1826.7 + 30.0
        mttlf = MttlfModel(n_hosts=32, jitter_frac=0.0)
        assert record["localized_s"] - record["detected_s"] == \
            pytest.approx(
                mttlf.localization_delay_s(Manifestation.FAIL_STOP))

        # Blast radius cordoned, job interrupted and requeued.
        assert record["cordoned_hosts"] == [
            f"p0.b0.h{i}" for i in range(8)]
        assert record["interrupted_jobs"] == ["job0"]
        job = report.jobs[0]
        assert job.restarts == 1 and not job.gave_up
        assert report.faulted_completion_s["job0"] is not None
        assert report.wedged_jobs == []

        # The requeued attempt landed outside the cordon.
        placements = [entry for _, entry in job.timeline
                      if entry.startswith("placed:")]
        assert len(placements) == 2
        second = set(placements[1][len("placed:"):].split(","))
        assert not second & set(record["cordoned_hosts"])

        # Fault healed: repair recorded after the TTR draw.
        assert record["repaired_s"] > record["localized_s"]

        # Measured goodput penalty within 10% of the analytic model.
        predicted = failure_penalty_s(
            3600.0,
            mttlf.automated_hours(Manifestation.FAIL_STOP),
            CheckpointPolicy().restart_s)
        assert report.predicted_penalty_s == pytest.approx(predicted)
        assert report.measured_penalty_s == pytest.approx(
            report.predicted_penalty_s, rel=0.10)

        # Same seed => identical campaign, timestamp for timestamp.
        repeat = _campaign().run().to_dict()
        assert repeat == data

    def test_different_seed_same_structure(self):
        report = _campaign(seed=12).run()
        assert report.wedged_jobs == []
        assert report.jobs[0].restarts == 1


class TestCampaignGuards:
    def test_allocation_retry_gives_up_cleanly(self):
        """A job that can never be placed finishes as given-up instead
        of wedging the simulation."""
        topology = build_astral(AstralParams.tiny())
        engine = FabricEngine(Fabric(topology))
        allocator = GpuAllocator(topology)
        from repro.resilience.campaign import ResilientJob
        job = ResilientJob(
            "greedy", engine, allocator,
            n_hosts=len(topology.hosts()) + 1,
            n_iterations=2, compute_s=1.0, collective_bits=1e9,
            max_alloc_retries=3, alloc_retry_s=1.0)
        engine.sim.process(job.run(), name="job")
        engine.sim.run()
        assert job.gave_up
        assert job.completed_s is None
        assert job.finished.triggered

"""Tests for the optimized-ECMP controller (source-port balancing and
ECN-driven reassignment, §2.1 footnote 1 / Figure 17)."""

import pytest

from repro.network import (
    EcmpController,
    Endpoint,
    Fabric,
    all_to_all_flows,
    make_flow,
    reset_flow_ids,
)
from repro.topology import AstralParams, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


@pytest.fixture()
def fabric():
    return Fabric(build_astral(AstralParams.small()))


def _host(pod, block, host):
    return f"p{pod}.b{block}.h{host}"


def _congested_flows():
    """Flows from many block-0 hosts to distinct block-1 hosts, all with
    one source port: hash collisions pile several 200G flows onto single
    400G ToR-Agg uplinks — the Figure-17 polarization scenario."""
    return [
        make_flow(_host(0, 0, src), _host(0, 1, (src * 3 + k) % 8),
                  rail=0, size_bits=8e9, src_port=50000)
        for src in range(8) for k in range(2)
    ]


class TestBalanceSourcePorts:
    def test_pair_flows_get_distinct_paths(self, fabric):
        # 6 flows of one pair, colliding source ports.
        flows = [
            make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=0,
                      size_bits=8e9, src_port=50000)
            for _ in range(6)
        ]
        controller = EcmpController(fabric)
        changed = controller.balance_source_ports(flows)
        assert changed > 0
        paths = {tuple(fabric.router.path(f).link_ids) for f in flows}
        assert len(paths) == len(flows)

    def test_idempotent(self, fabric):
        flows = [
            make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=0,
                      size_bits=8e9, src_port=50000)
            for _ in range(6)
        ]
        controller = EcmpController(fabric)
        controller.balance_source_ports(flows)
        assert controller.balance_source_ports(flows) == 0

    def test_noop_for_single_path_flows(self, fabric):
        # Intra-block same-rail flows have fan-out 2 (dual ToR) at the
        # host, but a host-local pair has no multi-hop collision risk;
        # balancing still succeeds without error.
        flows = [
            make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                      size_bits=8e9, src_port=50000)
            for _ in range(3)
        ]
        controller = EcmpController(fabric)
        controller.balance_source_ports(flows)  # must not raise


class TestReassignment:
    def test_round_reduces_ecn_marks(self, fabric):
        flows = _congested_flows()
        controller = EcmpController(fabric)
        report = controller.reassignment_round(flows)
        assert report.total_ecn_marks_before > 0
        assert report.total_ecn_marks_after \
            <= report.total_ecn_marks_before

    def test_run_converges_and_stabilizes(self, fabric):
        """Figure 17: ECN counters decrease and eventually stabilize."""
        flows = _congested_flows()
        controller = EcmpController(fabric)
        reports = controller.run(flows, rounds=6)
        assert reports  # at least one round happened
        series = [r.total_ecn_marks_before for r in reports] \
            + [reports[-1].total_ecn_marks_after]
        # Decreasing-then-stable, as in Figure 17.
        assert series[-1] < series[0]
        assert reports[-1].flows_moved == 0

    def test_no_congestion_no_moves(self, fabric):
        flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=0,
                         size_bits=8e9)
        controller = EcmpController(fabric)
        report = controller.reassignment_round([flow])
        assert report.flows_moved == 0
        assert report.total_ecn_marks_before == 0.0

    def test_moves_take_effect_via_source_port(self, fabric):
        flows = _congested_flows()
        before_ports = [f.five_tuple.src_port for f in flows]
        controller = EcmpController(fabric)
        report = controller.reassignment_round(flows)
        after_ports = [f.five_tuple.src_port for f in flows]
        if report.flows_moved:
            assert before_ports != after_ports


class TestOnCollectiveTraffic:
    def test_a2a_congestion_relieved(self, fabric):
        endpoints = [Endpoint(_host(0, b, h), 0)
                     for b in range(2) for h in range(4)]
        flows = all_to_all_flows(endpoints, size_bits=64e9)
        # Force collisions: all flows use the same source port.
        for flow in flows:
            flow.five_tuple = flow.five_tuple.with_src_port(50000)
        controller = EcmpController(fabric)
        reports = controller.run(flows, rounds=5)
        first = reports[0].total_ecn_marks_before
        last = reports[-1].total_ecn_marks_after
        assert last <= first

"""Packet-level validation of the fluid congestion model.

The flow-level fabric prices congestion with a fluid queue model; this
suite checks the abstraction against a packet-granular simulation of
the same egress queue, in the three regimes that matter: underloaded
(no queue, no marks), near capacity (transient queues only), and
persistently overloaded (buffer-bound queue, heavy marking, hundreds of
microseconds of sojourn — the Figure 9c magnitude).
"""

import pytest

from repro.network.congestion import CongestionModel
from repro.network.fabric import LinkLoad
from repro.network.packetsim import PacketQueueSim

CAPACITY = 400.0


def _packet(offered, seed=0, duration=0.02):
    return PacketQueueSim(CAPACITY, offered, seed=seed).run(duration)


def _fluid(offered):
    load = LinkLoad(link_dir=(0, True), capacity_gbps=CAPACITY,
                    offered_gbps=offered,
                    carried_gbps=min(offered, CAPACITY))
    return CongestionModel().evaluate(load)


class TestUnderloaded:
    def test_no_marks_either_level(self):
        packet = _packet(200.0)
        fluid = _fluid(200.0)
        assert packet.mark_fraction == 0.0
        assert fluid.ecn_marks_per_poll == 0.0

    def test_queues_negligible(self):
        packet = _packet(200.0)
        fluid = _fluid(200.0)
        assert packet.mean_queue_bytes < 0.01 * 16e6
        assert fluid.queue_bytes == 0.0

    def test_latency_is_base_forwarding(self):
        packet = _packet(200.0)
        fluid = _fluid(200.0)
        # Packet sojourn is sub-us; fluid adds the fixed 0.6 us base.
        assert packet.mean_sojourn_us < fluid.hop_latency_us


class TestNearCapacity:
    def test_transient_queues_but_no_sustained_marking(self):
        packet = _packet(0.95 * CAPACITY)
        assert packet.mark_fraction < 0.02
        assert packet.mean_queue_bytes < 0.05 * 16e6

    def test_fluid_agrees_no_congestion_at_capacity(self):
        fluid = _fluid(CAPACITY)
        assert fluid.ecn_marks_per_poll == 0.0


class TestOverloaded:
    def test_both_levels_mark_heavily(self):
        packet = _packet(2 * CAPACITY)
        fluid = _fluid(2 * CAPACITY)
        assert packet.mark_fraction > 0.2
        assert fluid.ecn_marks_per_poll > 0

    def test_queue_pinned_at_buffer_both_levels(self):
        packet = _packet(2 * CAPACITY)
        fluid = _fluid(2 * CAPACITY)
        assert packet.max_queue_bytes == pytest.approx(16e6, rel=0.05)
        assert fluid.queue_bytes == pytest.approx(16e6, rel=0.05)

    def test_sojourn_in_figure9c_magnitude(self):
        """Hundreds of microseconds at the congested hop, both levels
        (paper: 179/266 us vs 0.6 us healthy)."""
        packet = _packet(2 * CAPACITY)
        fluid = _fluid(2 * CAPACITY)
        assert 100.0 < packet.mean_sojourn_us < 1000.0
        assert 100.0 < fluid.hop_latency_us < 1000.0
        # The two levels agree within a small factor.
        ratio = packet.mean_sojourn_us / fluid.hop_latency_us
        assert 0.3 < ratio < 3.0

    def test_lossless_fluid_vs_lossy_packet_tail(self):
        """The packet queue drops once the buffer fills (no PFC in the
        micro-sim); the fluid fabric instead throttles senders — both
        express the same 'cannot exceed the buffer' physics."""
        packet = _packet(2 * CAPACITY)
        assert packet.drops > 0


class TestSimulatorProperties:
    def test_deterministic_with_seed(self):
        a = _packet(600.0, seed=4)
        b = _packet(600.0, seed=4)
        assert a.mean_queue_bytes == b.mean_queue_bytes
        assert a.mark_fraction == b.mark_fraction

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PacketQueueSim(0.0, 100.0)
        with pytest.raises(ValueError):
            PacketQueueSim(400.0, -1.0)

    def test_zero_offered_is_empty(self):
        stats = PacketQueueSim(400.0, 0.0).run(0.01)
        assert stats.packets == 0
        assert stats.mean_queue_bytes == 0.0

"""Tests for maintenance-record change correlation (the §5 driver
war story)."""

import pytest

from repro.monitoring import (
    ChangeRecord,
    FaultSpec,
    HierarchicalAnalyzer,
    JobConfig,
    MaintenanceLog,
    Manifestation,
    MonitoredTrainingJob,
    RootCause,
)
from repro.network import Fabric, reset_flow_ids
from repro.topology import AstralParams, build_astral

DAY = 86400.0
HOSTS = tuple(f"p0.b0.h{i}" for i in range(6))


def _log_with_driver_rollout():
    log = MaintenanceLog()
    log.record(ChangeRecord(0.0, "cabling",
                            "re-seated optics in pod 3",
                            hosts=["pX.bY.hZ"]))
    log.record(ChangeRecord(5 * DAY, "driver",
                            "NVIDIA driver 535.161 fleet rollout"))
    log.record(ChangeRecord(20 * DAY, "nccl",
                            "NCCL 2.21.5 on tenant B",
                            hosts=["p9.b9.h9"]))
    return log


class TestSuspectRanking:
    def test_changes_after_onset_excluded(self):
        log = _log_with_driver_rollout()
        suspects = log.suspects(onset_s=6 * DAY, affected_hosts=HOSTS)
        descriptions = [s.change.description for s in suspects]
        assert all("NCCL" not in d for d in descriptions)

    def test_stale_changes_age_out(self):
        log = _log_with_driver_rollout()
        suspects = log.suspects(onset_s=30 * DAY,
                                affected_hosts=HOSTS)
        assert all(s.change.category != "cabling" for s in suspects)

    def test_fleet_wide_change_covers_everything(self):
        log = _log_with_driver_rollout()
        suspects = log.suspects(onset_s=6 * DAY, affected_hosts=HOSTS)
        driver = next(s for s in suspects
                      if s.change.category == "driver")
        assert driver.coverage == 1.0

    def test_scoped_change_scores_by_overlap(self):
        log = MaintenanceLog()
        log.record(ChangeRecord(1 * DAY, "firmware", "NIC fw on h0-h2",
                                hosts=list(HOSTS[:3])))
        suspects = log.suspects(onset_s=2 * DAY,
                                affected_hosts=HOSTS)
        assert suspects[0].coverage == pytest.approx(0.5)

    def test_only_suspicious_change_found(self):
        """The §5 outcome: the driver rollout is the only change that
        covers all affected hosts and dominates the ranking."""
        log = _log_with_driver_rollout()
        suspect = log.only_suspicious_change(onset_s=6 * DAY,
                                             affected_hosts=HOSTS)
        assert suspect is not None
        assert suspect.change.category == "driver"

    def test_no_clear_suspect_when_crowded(self):
        log = MaintenanceLog()
        log.record(ChangeRecord(5 * DAY, "driver", "driver A"))
        log.record(ChangeRecord(5.1 * DAY, "nccl", "nccl B"))
        assert log.only_suspicious_change(6 * DAY, HOSTS) is None

    def test_empty_log(self):
        assert MaintenanceLog().suspects(10.0) == []
        assert MaintenanceLog().only_suspicious_change(10.0) is None


class TestDriverWarStory:
    def test_undiagnosable_hang_traced_to_rollout(self):
        """Replay §5: a fail-hang with no abnormal logs defeats the
        hierarchical analyzer; the maintenance log names the rollout."""
        reset_flow_ids()
        fabric = Fabric(build_astral(AstralParams.small()))
        fault = FaultSpec(RootCause.CCL_BUG, Manifestation.FAIL_HANG,
                          HOSTS[0], at_iteration=2)
        result = MonitoredTrainingJob(
            fabric, JobConfig(hosts=HOSTS, iterations=5),
            fault=fault).run()
        diagnosis = HierarchicalAnalyzer(
            result.store, result.expected_compute_s,
            result.expected_comm_s).diagnose("job0")
        # Online analysis stops at "library-level hang, no device".
        assert diagnosis.root_cause_device is None

        log = _log_with_driver_rollout()
        suspect = log.only_suspicious_change(
            onset_s=6 * DAY, affected_hosts=diagnosis.abnormal_hosts
            or HOSTS)
        assert suspect is not None
        assert "driver" in suspect.change.category

"""Property tests driving the max-min solver core directly.

Hypothesis generates raw incidence problems — flows crossing random
subsets of capacitated links, including zero-capacity (dead) links,
loose links that leave flows line-rate-capped, and tight links that
force real contention — and checks, per problem:

* the reference backend's allocation satisfies the max-min oracles
  (:func:`~repro.validation.check_incidence_solution`: feasibility,
  work conservation, KKT bottleneck condition);
* the vector backend returns a bit-identical allocation (``==`` on
  the rate dicts, no tolerance) with identical ``link_visits``;
* repeated solves of the same problem are deterministic.

Crafted edge cases (all links tied at one share, everything
line-rate-capped, flows through dead links) pin the exact values.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.solver import (
    HAVE_NUMPY,
    SolverStats,
    fill_rates_python,
    solve_incidence_vector,
)
from repro.validation import check_incidence_solution

LINE_RATE = 100.0

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not available")


# --------------------------------------------------------------------------
# Problem generator
# --------------------------------------------------------------------------

@st.composite
def incidence_problems(draw):
    """A random incidence problem: ``(hops_of, capacity)``.

    Links are drawn from three regimes — dead (zero capacity), tight
    (forces shares below the line rate), loose (leaves members
    line-rate-capped) — and flows cross 0..4 of them.  Flat shares
    like 16.0 make exact ties across links likely, exercising the
    tie-group freeze path.
    """
    n_hops = draw(st.integers(min_value=1, max_value=8))
    hops = [f"l{i}" for i in range(n_hops)]
    capacity = {}
    for hop in hops:
        regime = draw(st.sampled_from(["dead", "tight", "loose"]))
        if regime == "dead":
            capacity[hop] = 0.0
        elif regime == "tight":
            # Mix of round numbers (tie-prone) and arbitrary floats.
            capacity[hop] = draw(st.one_of(
                st.sampled_from([16.0, 32.0, 48.0, 64.0]),
                st.floats(min_value=1.0, max_value=80.0,
                          allow_nan=False, allow_infinity=False)))
        else:
            capacity[hop] = draw(st.floats(
                min_value=150.0 * n_hops, max_value=4000.0,
                allow_nan=False, allow_infinity=False))
    n_flows = draw(st.integers(min_value=1, max_value=12))
    hops_of = {}
    for fid in range(n_flows):
        k = draw(st.integers(min_value=0, max_value=min(4, n_hops)))
        chosen = draw(st.sets(st.sampled_from(hops),
                              min_size=k, max_size=k)) if k else set()
        hops_of[fid] = tuple(sorted(chosen))
    return hops_of, capacity


def solve_python(hops_of, capacity, stats=None):
    """Run the reference backend on a raw incidence problem."""
    remaining = dict(capacity)
    members = {hop: set() for hop in capacity}
    for fid, hops in hops_of.items():
        for hop in hops:
            members[hop].add(fid)
    return fill_rates_python(remaining, members, hops_of,
                             LINE_RATE, stats)


# --------------------------------------------------------------------------
# Randomized properties
# --------------------------------------------------------------------------

class TestReferenceBackend:

    @given(incidence_problems())
    @settings(max_examples=120, deadline=None)
    def test_oracles_hold(self, problem):
        hops_of, capacity = problem
        rates = solve_python(hops_of, capacity)
        assert set(rates) == set(hops_of)
        violations = check_incidence_solution(
            hops_of, capacity, LINE_RATE, rates)
        assert violations == []

    @given(incidence_problems())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, problem):
        hops_of, capacity = problem
        assert solve_python(hops_of, capacity) \
            == solve_python(hops_of, capacity)


@needs_numpy
class TestVectorBackend:

    @given(incidence_problems())
    @settings(max_examples=120, deadline=None)
    def test_bit_identical_to_python(self, problem):
        hops_of, capacity = problem
        py_stats = SolverStats()
        vec_stats = SolverStats()
        py_rates = solve_python(hops_of, capacity, py_stats)
        vec_rates = solve_incidence_vector(hops_of, capacity,
                                           LINE_RATE, vec_stats)
        # Exact equality: same keys, same float bit patterns.
        assert vec_rates == py_rates
        assert vec_stats.link_visits == py_stats.link_visits
        assert vec_stats.solves == py_stats.solves

    @given(incidence_problems())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, problem):
        hops_of, capacity = problem
        first = solve_incidence_vector(hops_of, capacity, LINE_RATE)
        again = solve_incidence_vector(hops_of, capacity, LINE_RATE)
        assert first == again


# --------------------------------------------------------------------------
# Crafted edge cases, exact values
# --------------------------------------------------------------------------

def both_backends(hops_of, capacity):
    results = [solve_python(hops_of, capacity)]
    if HAVE_NUMPY:
        vec = solve_incidence_vector(hops_of, capacity, LINE_RATE)
        assert vec == results[0]
        results.append(vec)
    return results[0]


class TestEdgeCases:

    def test_all_tied_single_bottleneck(self):
        # Five flows through one link: everyone gets capacity / 5.
        hops_of = {fid: ("l0",) for fid in range(5)}
        rates = both_backends(hops_of, {"l0": 40.0})
        assert rates == {fid: 8.0 for fid in range(5)}

    def test_all_links_tied_at_same_share(self):
        # Two disjoint links with identical fair share freeze in one
        # tie group; all four flows land on the exact same rate.
        hops_of = {0: ("l0",), 1: ("l0",), 2: ("l1",), 3: ("l1",)}
        rates = both_backends(hops_of, {"l0": 32.0, "l1": 32.0})
        assert rates == {0: 16.0, 1: 16.0, 2: 16.0, 3: 16.0}

    def test_line_rate_capped(self):
        # Loose links everywhere: every flow gets exactly LINE_RATE.
        hops_of = {0: ("l0",), 1: ("l0", "l1"), 2: ()}
        rates = both_backends(hops_of, {"l0": 1000.0, "l1": 900.0})
        assert rates == {0: LINE_RATE, 1: LINE_RATE, 2: LINE_RATE}

    def test_dead_link_kills_crossing_flows_only(self):
        # A flow through a zero-capacity link gets exactly 0.0 and
        # stops charging its other hops, so the survivor on the
        # shared live link takes the whole capacity (line-rate cap).
        hops_of = {0: ("l0", "l1"), 1: ("l1",)}
        rates = both_backends(hops_of, {"l0": 0.0, "l1": 80.0})
        assert rates == {0: 0.0, 1: 80.0}

    def test_flow_without_hops_gets_line_rate(self):
        rates = both_backends({0: ()}, {"l0": 7.0})
        assert rates == {0: LINE_RATE}

    def test_cascaded_bottlenecks(self):
        # Classic max-min ladder: flow 0 shares l0 with flow 1 and l1
        # with flow 2.  l0 bottlenecks first (share 10), then flow 2
        # gets the rest of l1.
        hops_of = {0: ("l0", "l1"), 1: ("l0",), 2: ("l1",)}
        rates = both_backends(hops_of, {"l0": 20.0, "l1": 60.0})
        assert rates == {0: 10.0, 1: 10.0, 2: 50.0}

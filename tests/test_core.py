"""Tests for the core facade: placement and the infrastructure object."""

import pytest

from repro.core import (
    AllocationError,
    AstralInfrastructure,
    GpuAllocator,
    PlacementPolicy,
)
from repro.monitoring import FaultSpec, Manifestation, RootCause
from repro.network import reset_flow_ids
from repro.seer import LLAMA3_70B, ParallelismConfig
from repro.topology import AstralParams, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


class TestGpuAllocator:
    @pytest.fixture()
    def allocator(self):
        return GpuAllocator(build_astral(AstralParams.small()))

    def test_packed_stays_in_one_block(self, allocator):
        allocation = allocator.allocate("j", 4, PlacementPolicy.PACKED)
        blocks = {
            (allocator.topology.devices[h].pod,
             allocator.topology.devices[h].block)
            for h in allocation.hosts
        }
        assert len(blocks) == 1

    def test_fragmented_spans_pods(self, allocator):
        allocator.allocate("j", 8, PlacementPolicy.FRAGMENTED)
        assert allocator.pods_spanned("j") == 2

    def test_double_allocation_rejected(self, allocator):
        allocator.allocate("j", 2)
        with pytest.raises(AllocationError):
            allocator.allocate("j", 2)

    def test_exhaustion_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate("j", 10_000)

    def test_release_returns_hosts(self, allocator):
        before = allocator.free_hosts
        allocator.allocate("j", 4)
        assert allocator.free_hosts == before - 4
        allocator.release("j")
        assert allocator.free_hosts == before

    def test_release_unknown_job(self, allocator):
        with pytest.raises(AllocationError):
            allocator.release("ghost")

    def test_endpoints_on_rail(self, allocator):
        allocation = allocator.allocate("j", 3)
        endpoints = allocation.endpoints(rail=2)
        assert all(e.rail == 2 for e in endpoints)
        assert len(endpoints) == 3

    def test_all_endpoints_cover_every_gpu(self, allocator):
        allocation = allocator.allocate("j", 2)
        assert len(allocation.all_endpoints()) == allocation.n_gpus

    def test_contiguous_prefers_tightest_fitting_pod(self, allocator):
        # Leave 6 free in pod 0 and 16 free in pod 1: a 5-host ask
        # should best-fit into pod 0's remnant, not crack open pod 1.
        allocator.allocate("resident", 10, PlacementPolicy.CONTIGUOUS)
        allocation = allocator.allocate(
            "tenant", 5, PlacementPolicy.CONTIGUOUS)
        pods = {allocator.topology.devices[h].pod
                for h in allocation.hosts}
        assert pods == {0}

    def test_contiguous_spans_fewest_pods_when_forced(self, allocator):
        # 10 busy in pod 0; a 20-host ask cannot fit one pod (16) so it
        # must span — fullest-first spanning uses pods {0, 1} only.
        allocator.allocate("resident", 10, PlacementPolicy.CONTIGUOUS)
        allocation = allocator.allocate(
            "tenant", 20, PlacementPolicy.CONTIGUOUS)
        assert len(allocation.hosts) == 20
        assert allocator.pods_spanned("tenant") == 2

    def test_contiguous_beats_packed_after_fragmentation(self,
                                                         allocator):
        # PACKED walks hosts in topology order, so a 10-host resident
        # leaves it straddling the pod boundary; CONTIGUOUS relocates.
        allocator.allocate("resident", 10, PlacementPolicy.PACKED)
        allocator.allocate("packed", 8, PlacementPolicy.PACKED)
        packed_pods = allocator.pods_spanned("packed")
        allocator.release("packed")
        allocator.allocate("contig", 8, PlacementPolicy.CONTIGUOUS)
        assert allocator.pods_spanned("contig") < packed_pods

    def test_free_hosts_by_pod_view(self, allocator):
        view = allocator.free_hosts_by_pod()
        assert sorted(view) == [0, 1]
        assert all(len(hosts) == 16 for hosts in view.values())
        allocator.allocate("j", 3, PlacementPolicy.CONTIGUOUS)
        view = allocator.free_hosts_by_pod()
        assert sum(len(hosts) for hosts in view.values()) == 29
        # The view is a snapshot of free capacity, not a live handle.
        for hosts in view.values():
            for host in hosts:
                assert host not in allocator.allocation("j").hosts

    def test_release_reports_freed_hosts(self, allocator):
        allocation = allocator.allocate("j", 4)
        freed = allocator.release("j")
        assert freed == list(allocation.hosts)
        assert allocator.free_hosts == 32


class TestInfrastructure:
    @pytest.fixture(scope="class")
    def infra(self):
        return AstralInfrastructure(params=AstralParams.small())

    def test_describe_scale(self, infra):
        info = infra.describe()
        assert info["total_gpus"] == AstralParams.small().total_gpus
        assert info["tier3_oversubscription"] == 1.0

    def test_forecast_training(self, infra):
        forecast = infra.forecast_training(
            LLAMA3_70B, ParallelismConfig(tp=4, pp=2, dp=2,
                                          microbatches=4))
        assert forecast.iteration_time_s > 0

    def test_forecast_inference(self, infra):
        forecast = infra.forecast_inference(
            LLAMA3_70B, ParallelismConfig(tp=4, pp=1, dp=1),
            batch=4, context_len=1024)
        assert forecast.decode_tokens_per_s > 0

    def test_monitored_job_and_diagnosis_loop(self):
        infra = AstralInfrastructure(params=AstralParams.small())
        allocation = infra.allocate("train1", 4)
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP,
                          allocation.hosts[0], at_iteration=2)
        result = infra.run_monitored_job("train1", fault=fault,
                                         iterations=4)
        assert result.aborted
        diagnosis = infra.diagnose("train1")
        assert diagnosis.root_cause_device == allocation.hosts[0]
        assert diagnosis.inferred_cause == "gpu-hardware"

    def test_diagnose_without_run_raises(self, infra):
        with pytest.raises(ValueError):
            infra.diagnose("never-ran")

    def test_run_without_allocation_raises(self, infra):
        with pytest.raises(ValueError):
            infra.run_monitored_job("ghost")

    def test_commission_clean_fleet(self):
        infra = AstralInfrastructure(params=AstralParams.tiny())
        hosts = [h.name for h in infra.topology.hosts()][:4]
        report = infra.commission(hosts)
        assert report.ready_for_delivery

    def test_commission_catches_defect(self):
        from repro.monitoring import HostHealth
        infra = AstralInfrastructure(params=AstralParams.tiny())
        hosts = [h.name for h in infra.topology.hosts()][:4]
        report = infra.commission(
            hosts, health={hosts[1]: HostHealth(gpu_defect=True)})
        assert not report.ready_for_delivery
        assert report.stress_failures[0].host == hosts[1]

    def test_pue_report(self, infra):
        report = infra.pue_report()
        assert report["improvement_frac"] == pytest.approx(0.1634,
                                                           abs=0.01)
        assert len(report["evolution"]) == 4


class TestInfrastructureFleetHealth:
    def test_pingmesh_sweep(self):
        infra = AstralInfrastructure(params=AstralParams.tiny())
        report = infra.pingmesh_sweep(max_pairs=20)
        assert report.reachability == 1.0
        assert len(report.probes) == 20

    def test_health_report_after_job(self):
        infra = AstralInfrastructure(params=AstralParams.small())
        infra.allocate("hj", 4)
        infra.run_monitored_job("hj", iterations=3)
        report = infra.health_report("hj")
        assert report.jobs[0].job == "hj"
        assert report.healthy

    def test_health_report_without_run_raises(self):
        infra = AstralInfrastructure(params=AstralParams.tiny())
        with pytest.raises(ValueError):
            infra.health_report("ghost")

    def test_goodput_defaults_to_deployment_scale(self):
        infra = AstralInfrastructure(params=AstralParams.small())
        report = infra.goodput()
        assert report.n_gpus == AstralParams.small().total_gpus
        assert 0.0 < report.goodput_fraction <= 1.0

    def test_goodput_regimes_ordered(self):
        infra = AstralInfrastructure(params=AstralParams.small())
        auto = infra.goodput(n_gpus=8192, localization="automated")
        manual = infra.goodput(n_gpus=8192, localization="manual")
        assert auto.goodput_fraction > manual.goodput_fraction


class TestMaintenanceCorrelation:
    def test_undiagnosable_hang_names_the_rollout(self):
        from repro.monitoring import ChangeRecord
        infra = AstralInfrastructure(params=AstralParams.small())
        infra.maintenance.record(ChangeRecord(
            1000.0, "driver", "NVIDIA driver 535.161 fleet rollout"))
        allocation = infra.allocate("hangjob", 4)
        fault = FaultSpec(RootCause.CCL_BUG, Manifestation.FAIL_HANG,
                          allocation.hosts[0], at_iteration=2)
        infra.run_monitored_job("hangjob", fault=fault, iterations=5)
        diagnosis = infra.diagnose("hangjob")
        assert diagnosis.inferred_cause == "suspect-change:driver"
        assert "roll back" in diagnosis.recommended_action
        assert any("maintenance-record" in note
                   for note in diagnosis.evidence)

    def test_localized_diagnosis_ignores_changelog(self):
        from repro.monitoring import ChangeRecord
        infra = AstralInfrastructure(params=AstralParams.small())
        infra.maintenance.record(ChangeRecord(
            1000.0, "driver", "NVIDIA driver rollout"))
        allocation = infra.allocate("gpu", 4)
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP,
                          allocation.hosts[1], at_iteration=2)
        infra.run_monitored_job("gpu", fault=fault, iterations=4)
        diagnosis = infra.diagnose("gpu")
        assert diagnosis.inferred_cause == "gpu-hardware"

    def test_empty_changelog_leaves_diagnosis_untouched(self):
        infra = AstralInfrastructure(params=AstralParams.small())
        allocation = infra.allocate("hang2", 4)
        fault = FaultSpec(RootCause.CCL_BUG, Manifestation.FAIL_HANG,
                          allocation.hosts[0], at_iteration=2)
        infra.run_monitored_job("hang2", fault=fault, iterations=5)
        diagnosis = infra.diagnose("hang2")
        assert diagnosis.inferred_cause == "ccl-bug"

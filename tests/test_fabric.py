"""Tests for the flow-level fabric simulator (max-min sharing, fluid
completion) and the congestion observables built on it."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    CongestionConfig,
    CongestionModel,
    Fabric,
    make_flow,
    reset_flow_ids,
)
from repro.network.fabric import LinkLoad
from repro.topology import AstralParams, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


@pytest.fixture(scope="module")
def topo():
    return build_astral(AstralParams.small())


@pytest.fixture()
def fabric(topo):
    return Fabric(topo)


def _host(pod, block, host):
    return f"p{pod}.b{block}.h{host}"


class TestMaxMinRates:
    def test_single_flow_gets_line_rate(self, fabric):
        flow = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                         size_bits=8e9)
        rates = fabric.max_min_rates([flow])
        assert rates[flow.flow_id] == pytest.approx(200.0)
        assert flow.rate_gbps == pytest.approx(200.0)

    def test_two_flows_sharing_one_port_split_evenly(self, fabric):
        # Same src/dst pair, same src port => same path; they share the
        # 200G host uplink max-min fairly.
        f1 = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                       size_bits=8e9, src_port=50000)
        f2 = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                       size_bits=8e9, src_port=50000)
        rates = fabric.max_min_rates([f1, f2])
        assert rates[f1.flow_id] == pytest.approx(100.0)
        assert rates[f2.flow_id] == pytest.approx(100.0)

    def test_disjoint_flows_both_get_line_rate(self, fabric):
        f1 = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                       size_bits=8e9)
        f2 = make_flow(_host(0, 0, 2), _host(0, 0, 3), rail=1,
                       size_bits=8e9)
        rates = fabric.max_min_rates([f1, f2])
        assert all(r == pytest.approx(200.0) for r in rates.values())

    def test_rates_never_exceed_line_rate(self, fabric):
        flows = [
            make_flow(_host(0, 0, i), _host(0, 1, i), rail=0,
                      size_bits=8e9)
            for i in range(4)
        ]
        rates = fabric.max_min_rates(flows)
        assert all(r <= 200.0 + 1e-9 for r in rates.values())

    @given(n_flows=st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_no_link_oversubscribed_after_allocation(self, topo, n_flows):
        """Invariant: allocated rates never exceed any link capacity."""
        reset_flow_ids()
        fabric = Fabric(topo)
        flows = [
            make_flow(_host(0, 0, i % 8), _host(0, 1, (i * 3) % 8),
                      rail=i % 4, size_bits=8e9, src_port=50000 + i)
            for i in range(n_flows)
        ]
        paths = fabric.resolve_paths(flows)
        rates = fabric.max_min_rates(flows, paths)
        usage = {}
        for flow in flows:
            for hop in fabric._directed_hops(paths[flow.flow_id]):
                usage[hop] = usage.get(hop, 0.0) + rates[flow.flow_id]
        for (link_id, _), used in usage.items():
            assert used <= topo.links[link_id].capacity_gbps + 1e-6


class TestCompletion:
    def test_single_flow_completion_time(self, fabric):
        flow = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                         size_bits=200e9)  # 1 second at 200G
        run = fabric.complete([flow])
        assert run.total_time_s == pytest.approx(1.0)

    def test_zero_size_flow_finishes_immediately(self, fabric):
        flow = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                         size_bits=0)
        run = fabric.complete([flow])
        assert run.finish_times_s[flow.flow_id] == 0.0

    def test_shared_then_released_bandwidth(self, fabric):
        """A short flow finishes first; the long one then speeds up."""
        short = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                          size_bits=100e9, src_port=50000)
        long = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                         size_bits=300e9, src_port=50000)
        run = fabric.complete([short, long])
        # Sharing 200G: both at 100G. Short (100Gb) done at 1s. Long has
        # 200Gb left, now at 200G: +1s => 2s total.
        assert run.finish_times_s[short.flow_id] == pytest.approx(1.0)
        assert run.finish_times_s[long.flow_id] == pytest.approx(2.0)

    def test_throughput_helper(self, fabric):
        flow = make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                         size_bits=200e9)
        run = fabric.complete([flow])
        assert run.throughput_gbps(200e9) == pytest.approx(200.0)

    def test_finish_times_monotone_with_size(self, fabric):
        flows = [
            make_flow(_host(0, 0, 0), _host(0, 0, 1), rail=0,
                      size_bits=s, src_port=50000)
            for s in (50e9, 100e9, 150e9)
        ]
        run = fabric.complete(flows)
        times = [run.finish_times_s[f.flow_id] for f in flows]
        assert times == sorted(times)


class TestLinkLoads:
    def test_offered_loads_account_all_hops(self, fabric):
        flow = make_flow(_host(0, 0, 0), _host(0, 1, 0), rail=0,
                         size_bits=8e9)
        paths = fabric.resolve_paths([flow])
        loads = fabric.offered_loads([flow], paths)
        assert len(loads) == paths[flow.flow_id].hops
        for load in loads.values():
            assert load.offered_gbps == pytest.approx(200.0)
            assert flow.flow_id in load.flow_ids

    def test_utilization_property(self):
        load = LinkLoad(link_dir=(0, True), capacity_gbps=400.0,
                        offered_gbps=600.0)
        assert load.utilization == pytest.approx(1.5)


class TestCongestionModel:
    def test_idle_link_base_latency(self):
        model = CongestionModel()
        load = LinkLoad(link_dir=(0, True), capacity_gbps=400.0,
                        offered_gbps=100.0, carried_gbps=100.0)
        state = model.evaluate(load)
        assert state.hop_latency_us == pytest.approx(0.6)
        assert state.ecn_marks_per_poll == 0.0
        assert state.pfc_pause_events == 0.0

    def test_overloaded_link_has_hundreds_of_us_latency(self):
        """Persistent overload pins the queue: ~320 us at 400G/16MB,
        the magnitude of the paper's INT heatmap (179/266 us)."""
        model = CongestionModel()
        load = LinkLoad(link_dir=(0, True), capacity_gbps=400.0,
                        offered_gbps=800.0, carried_gbps=400.0)
        state = model.evaluate(load)
        assert 100.0 < state.hop_latency_us < 1000.0
        assert state.ecn_marks_per_poll > 0
        assert state.pfc_pause_events > 0

    def test_queue_fill_monotone_in_utilization(self):
        model = CongestionModel()
        fills = [model.queue_fill(u) for u in (0.5, 0.8, 0.9, 1.0, 1.5)]
        assert fills == sorted(fills)
        assert fills[0] == 0.0
        assert fills[-1] == 1.0

    def test_ecn_before_pfc(self):
        """ECN marking must onset at lower load than PFC pausing."""
        model = CongestionModel()
        cfg = CongestionConfig()
        mid = LinkLoad(link_dir=(0, True), capacity_gbps=400.0,
                       offered_gbps=400.0 * (cfg.ecn_onset_util + 0.9) / 2,
                       carried_gbps=380.0)
        state = model.evaluate(mid)
        if state.ecn_marks_per_poll > 0:
            assert state.pfc_pause_events >= 0

    def test_total_ecn_marks_sums(self, fabric):
        flows = [
            make_flow(_host(0, 0, i), _host(0, 1, i), rail=0,
                      size_bits=8e9, src_port=50000)
            for i in range(8)
        ]
        loads = fabric.offered_loads(flows)
        model = CongestionModel()
        total = model.total_ecn_marks(loads)
        assert total >= 0.0

"""Tests for Appendix-E formulas, hardware suites, and calibration."""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.seer import (
    BasicModel,
    CommKind,
    EffectiveModel,
    NetworkSuite,
    Operator,
    OpType,
    ThroughputFit,
    TestbedOracle,
    addition_time,
    calibrate,
    collective_wire_factor,
    dp_comm_time,
    gpu_suite,
    memory_access_time,
    multiplication_time,
    pp_comm_time,
    tp_comm_time,
)


class TestAppendixEFormulas:
    def test_multiplication_formula(self):
        # T = (2n-1) * m * p / flops
        assert multiplication_time(4, 8, 2, flops=1e3) \
            == pytest.approx((2 * 8 - 1) * 4 * 2 / 1e3)

    def test_addition_formula(self):
        assert addition_time(3, 5, flops=100.0) == pytest.approx(0.15)

    def test_memory_formula_uses_bitwidth(self):
        # FP16 matrix: m*n*16 bits over the bandwidth.
        assert memory_access_time(10, 10, bits=16,
                                  hbm_bw_bits_per_s=1600.0) \
            == pytest.approx(1.0)

    def test_tp_pp_relationship(self):
        """Eq. (5) divides Eq. (4) by the TP group count."""
        tp = tp_comm_time(2, 1024, 4096, 16, 1e12)
        pp = pp_comm_time(2, 1024, 4096, 16, tp_groups=8,
                          net_bw_bits_per_s=1e12)
        assert pp == pytest.approx(tp / 8)

    def test_dp_formula(self):
        t = dp_comm_time(1e9, 16, tp_groups=8, pp_groups=4,
                         net_bw_bits_per_s=1e12)
        assert t == pytest.approx(1e9 * 16 / 32 / 1e12)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            multiplication_time(1, 1, 1, flops=0)
        with pytest.raises(ValueError):
            memory_access_time(1, 1, 16, 0)


class TestWireFactors:
    def test_allreduce_factor(self):
        assert collective_wire_factor(CommKind.ALL_REDUCE, 4) \
            == pytest.approx(1.5)

    def test_reduce_scatter_half_of_allreduce(self):
        n = 8
        ar = collective_wire_factor(CommKind.ALL_REDUCE, n)
        rs = collective_wire_factor(CommKind.REDUCE_SCATTER, n)
        assert ar == pytest.approx(2 * rs)

    def test_single_rank_is_free(self):
        for kind in CommKind:
            assert collective_wire_factor(kind, 1) == 0.0

    def test_send_recv_unit(self):
        assert collective_wire_factor(CommKind.SEND_RECV, 2) == 1.0


class TestGpuSuite:
    def test_known_suites_available(self):
        for name in ("V100", "A100", "H100", "H800", "H20"):
            assert gpu_suite(name).name == name

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            gpu_suite("TPU")

    def test_h20_is_low_flops_high_bandwidth(self):
        """The paper's motivating hardware constraint."""
        h20 = gpu_suite("H20")
        h100 = gpu_suite("H100")
        assert h20.peak_tflops < h100.peak_tflops / 4
        assert h20.hbm_tbps > h100.hbm_tbps

    def test_effective_flops_below_peak(self):
        gpu = gpu_suite("H800")
        for intensity in (1.0, 10.0, 1000.0):
            assert gpu.effective_flops(intensity) < gpu.peak_flops

    def test_effective_flops_monotone_in_intensity(self):
        gpu = gpu_suite("H800")
        values = [gpu.effective_flops(x) for x in (1, 10, 100, 1000)]
        assert values == sorted(values)

    def test_memory_bound_region_linear_in_intensity(self):
        gpu = gpu_suite("H800")
        low = gpu.effective_flops(0.5)
        assert low <= 0.5 * gpu.hbm_bytes_per_s \
            * gpu.memory_efficiency + 1e-6

    def test_hbm_ramp_with_size(self):
        gpu = gpu_suite("A100")
        small = gpu.effective_hbm_bytes_per_s(1e4)
        big = gpu.effective_hbm_bytes_per_s(1e9)
        assert big > small
        assert big <= gpu.hbm_bytes_per_s


class TestNetworkSuite:
    def test_scopes_ordered_by_bandwidth(self):
        net = NetworkSuite().with_cross_dc(8.0)
        size = 64e6
        intra = net.effective_gbps(size, "intra_host")
        inter = net.effective_gbps(size, "inter_host")
        cross = net.effective_gbps(size, "cross_dc")
        assert intra > inter > cross

    def test_oversubscription_cuts_cross_pod(self):
        base = NetworkSuite()
        oversub = base.with_oversubscription(3.0)
        size = 64e6
        assert oversub.effective_gbps(size, "cross_pod") \
            == pytest.approx(base.effective_gbps(size, "cross_pod") / 3)

    def test_small_messages_pay_latency(self):
        net = NetworkSuite()
        assert net.effective_gbps(4e3, "inter_host") \
            < 0.1 * net.effective_gbps(1e9, "inter_host")

    def test_cross_dc_rtt_in_transfer_time(self):
        net = NetworkSuite().with_cross_dc(1.0, rtt_ms=5.0)
        t = net.transfer_time_s(1e3, "cross_dc")
        assert t >= 5e-3

    def test_unknown_scope(self):
        with pytest.raises(ValueError):
            NetworkSuite().effective_gbps(1e6, "warp")

    def test_invalid_hb_size(self):
        with pytest.raises(ValueError):
            NetworkSuite().with_intra_host_size(0)


class TestExecutionModels:
    def _compute_op(self):
        return Operator(0, "gemm", OpType.COMPUTE, flops=1e12,
                        bytes_accessed=1e9)

    def _comm_op(self):
        return Operator(1, "ar", OpType.COMMUNICATION,
                        comm_kind=CommKind.ALL_REDUCE, comm_bytes=1e9,
                        group_size=8, scope="inter_host")

    def test_basic_faster_than_effective(self):
        """Theoretical peaks always under-estimate: T_basic < T_truth."""
        gpu = gpu_suite("H800")
        net = NetworkSuite()
        basic = BasicModel(gpu=gpu, network=net)
        truth = EffectiveModel(gpu=gpu, network=net)
        for op in (self._compute_op(), self._comm_op()):
            assert basic.operator_time(op) < truth.operator_time(op)

    def test_zero_size_comm_free(self):
        model = BasicModel(gpu=gpu_suite("H800"), network=NetworkSuite())
        op = Operator(0, "noop", OpType.COMMUNICATION,
                      comm_kind=CommKind.ALL_REDUCE, comm_bytes=0,
                      group_size=8)
        assert model.operator_time(op) == 0.0

    def test_moe_imbalance_only_on_all_to_all(self):
        gpu = gpu_suite("H800")
        net = NetworkSuite(a2a_imbalance=0.5)
        truth = EffectiveModel(gpu=gpu, network=net)
        a2a = Operator(0, "a2a", OpType.COMMUNICATION,
                       comm_kind=CommKind.ALL_TO_ALL, comm_bytes=1e9,
                       group_size=8, scope="inter_host")
        ag = Operator(1, "ag", OpType.COMMUNICATION,
                      comm_kind=CommKind.ALL_GATHER, comm_bytes=1e9,
                      group_size=8, scope="inter_host")
        flat = EffectiveModel(gpu=gpu,
                              network=NetworkSuite(a2a_imbalance=0.0))
        assert truth.operator_time(a2a) \
            == pytest.approx(flat.operator_time(a2a) * 1.5)
        assert truth.operator_time(ag) \
            == pytest.approx(flat.operator_time(ag))


class TestCalibration:
    def test_fit_recovers_power_law(self):
        xs = np.geomspace(1, 1e6, 40)
        ys = 3.0 * xs ** 0.5
        fit = ThroughputFit.fit(xs, ys, degree=3)
        assert fit.predict(1e4) == pytest.approx(300.0, rel=0.01)

    def test_fit_requires_enough_samples(self):
        with pytest.raises(ValueError):
            ThroughputFit.fit([1.0, 2.0], [1.0, 2.0], degree=3)

    def test_fit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ThroughputFit.fit([0.0, 1.0, 2.0, 3.0], [1, 1, 1, 1],
                              degree=1)

    def test_predict_clamps_outside_range(self):
        xs = np.geomspace(1, 100, 20)
        fit = ThroughputFit.fit(xs, xs, degree=1)
        assert fit.predict(1e9) == pytest.approx(fit.predict(100.0))

    def test_oracle_noise_seeded(self):
        gpu = gpu_suite("H800")
        net = NetworkSuite()
        a = TestbedOracle(gpu, net, seed=5).measure_flops([10.0])
        b = TestbedOracle(gpu, net, seed=5).measure_flops([10.0])
        assert a == b

    def test_calibrated_tracks_truth_closely(self):
        gpu = gpu_suite("H800")
        net = NetworkSuite()
        calibrated = calibrate(gpu, net, seed=0)
        truth = EffectiveModel(gpu=gpu, network=net)
        op = Operator(0, "gemm", OpType.COMPUTE, flops=5e12,
                      bytes_accessed=2e9)
        t_true = truth.operator_time(op)
        t_cal = calibrated.operator_time(op)
        assert abs(t_cal - t_true) / t_true < 0.02

    def test_calibrated_unknown_scope_raises(self):
        calibrated = calibrate(gpu_suite("H800"), NetworkSuite())
        op = Operator(0, "x", OpType.COMMUNICATION,
                      comm_kind=CommKind.ALL_REDUCE, comm_bytes=1e6,
                      group_size=4, scope="hyperspace")
        with pytest.raises(KeyError):
            calibrated.operator_time(op)

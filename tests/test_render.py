"""Tests for the ASCII timeline renderer."""

import pytest

from repro.seer import (
    OpType,
    Timeline,
    render_comparison,
    render_timeline,
)
from repro.seer.timeline import TimelineEntry


def _entry(op_id, name, op_type, start, end, device="d0",
           stream="compute"):
    return TimelineEntry(op_id=op_id, name=name, device=device,
                         stream=stream, op_type=op_type, start_s=start,
                         end_s=end)


def _timeline(entries):
    timeline = Timeline(graph_name="t")
    timeline.entries.extend(entries)
    return timeline


class TestRenderTimeline:
    def test_compute_and_comm_rows(self):
        timeline = _timeline([
            _entry(0, "gemm", OpType.COMPUTE, 0.0, 0.5),
            _entry(1, "ar", OpType.COMMUNICATION, 0.5, 1.0,
                   stream="comm"),
        ])
        art = render_timeline(timeline, width=20)
        assert "d0/compute" in art
        assert "d0/comm" in art
        assert "#" in art
        assert "=" in art

    def test_idle_cells_dotted(self):
        timeline = _timeline([
            _entry(0, "a", OpType.COMPUTE, 0.0, 0.1),
            _entry(1, "b", OpType.COMPUTE, 0.9, 1.0),
        ])
        art = render_timeline(timeline, width=20, show_scale=False)
        row = art.splitlines()[0]
        assert "." in row

    def test_memory_glyph(self):
        timeline = _timeline([
            _entry(0, "load", OpType.MEMORY, 0.0, 1.0)])
        art = render_timeline(timeline, width=16, show_scale=False)
        assert "m" in art

    def test_scale_shows_total_ms(self):
        timeline = _timeline([
            _entry(0, "a", OpType.COMPUTE, 0.0, 0.25)])
        art = render_timeline(timeline, width=16)
        assert "250.00 ms" in art

    def test_device_filter(self):
        timeline = _timeline([
            _entry(0, "a", OpType.COMPUTE, 0.0, 1.0, device="d0"),
            _entry(1, "b", OpType.COMPUTE, 0.0, 1.0, device="d1"),
        ])
        art = render_timeline(timeline, width=16, devices=["d1"])
        assert "d1/compute" in art
        assert "d0/compute" not in art

    def test_empty_timeline(self):
        assert render_timeline(Timeline(graph_name="e")) \
            == "(empty timeline)"

    def test_narrow_width_rejected(self):
        timeline = _timeline([
            _entry(0, "a", OpType.COMPUTE, 0.0, 1.0)])
        with pytest.raises(ValueError):
            render_timeline(timeline, width=4)

    def test_short_op_still_visible(self):
        """Every operator paints at least one cell."""
        timeline = _timeline([
            _entry(0, "long", OpType.COMPUTE, 0.0, 10.0),
            _entry(1, "blip", OpType.COMMUNICATION, 10.0, 10.001,
                   stream="comm"),
        ])
        art = render_timeline(timeline, width=20, show_scale=False)
        comm_row = [line for line in art.splitlines()
                    if "comm" in line][0]
        assert "=" in comm_row


class TestRenderComparison:
    def test_both_sections_present(self):
        a = _timeline([_entry(0, "x", OpType.COMPUTE, 0.0, 1.0)])
        b = _timeline([_entry(0, "x", OpType.COMPUTE, 0.0, 1.01)])
        art = render_comparison(a, b, width=20)
        assert "Seer foresight" in art
        assert "Testbed result" in art

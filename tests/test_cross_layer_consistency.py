"""Cross-layer consistency: the analytic Seer network suite vs the
flow-level fabric.

Seer's network configurations "generate the ReduceScatter, AllGather,
and All-to-All bandwidth" (§4.3); its calibration is supposed to fold
real fabric behaviour into those numbers.  These tests pin the two
layers of the reproduction against each other: for uncontended
same-rail traffic the analytic effective bandwidth and the flow-level
fabric must agree to first order, and both must agree on directional
facts (NVLink >> NIC; bigger message => higher efficiency).
"""

import pytest

from repro.network import (
    Endpoint,
    Fabric,
    reset_flow_ids,
    run_collective,
)
from repro.seer import NetworkSuite
from repro.topology import AstralParams, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


@pytest.fixture(scope="module")
def topo():
    return build_astral(AstralParams.small())


def _ring_busbw_gbps(topo, n_hosts, size_bits):
    """Per-link ring bandwidth measured on the fabric (busbw).

    Promoted onto the shared validation helper so the pytest
    assertion and the ``repro validate`` fuzz campaign measure the
    same quantity the same way.
    """
    from repro.validation import ring_busbw_gbps
    hosts = [f"p0.b0.h{i}" for i in range(n_hosts)]
    return ring_busbw_gbps(Fabric(topo), hosts, 0, size_bits)


class TestAnalyticVsFlowLevel:
    def test_uncontended_ring_matches_line_rate_regime(self, topo):
        """A 4-host same-rail ring is NIC-port-bound on the fabric;
        the analytic suite's asymptotic inter-host bandwidth (one
        400G NIC at 90% efficiency) must bracket it."""
        fabric_busbw = _ring_busbw_gbps(topo, n_hosts=4,
                                        size_bits=64e9)
        # The flow-level model pins each ring leg to one 200G port.
        assert fabric_busbw == pytest.approx(200.0, rel=0.05)
        # The analytic-vs-flow relation itself is the shared
        # differential oracle.
        from repro.validation import check_ring_vs_analytic
        hosts = [f"p0.b0.h{i}" for i in range(4)]
        violations = check_ring_vs_analytic(
            Fabric(topo), hosts, rail=0, size_bits=64e9, rel_tol=0.1)
        assert violations == [], [str(v) for v in violations]

    def test_both_layers_agree_message_size_matters(self):
        suite = NetworkSuite()
        small = suite.effective_gbps(64e3, "inter_host")
        large = suite.effective_gbps(1e9, "inter_host")
        assert large > 2 * small

    def test_both_layers_agree_nvlink_dominates(self, topo):
        suite = NetworkSuite()
        assert suite.effective_gbps(64e6, "intra_host") \
            > 4 * suite.effective_gbps(64e6, "inter_host")
        # Fabric side: an intra-host collective never emits flows at
        # all (handled by the HB domain), hence zero network time.
        reset_flow_ids()
        fabric = Fabric(topo)
        endpoints = [Endpoint("p0.b0.h0", r) for r in range(4)]
        result = run_collective(fabric, endpoints, 8e9, "allreduce")
        assert result.network_time_s == 0.0

    def test_fabric_contention_shows_up_as_lower_busbw(self, topo):
        """Two rings sharing the same hosts halve per-ring bandwidth —
        the contention the analytic model folds into its efficiency
        factor."""
        reset_flow_ids()
        fabric = Fabric(topo)
        endpoints = [Endpoint(f"p0.b0.h{i}", 0) for i in range(4)]
        from repro.network import ring_allreduce_flows
        ring_a = ring_allreduce_flows(endpoints, 64e9)
        ring_b = ring_allreduce_flows(endpoints, 64e9)
        # Force both rings onto the same ports.
        for flow_a, flow_b in zip(ring_a, ring_b):
            flow_b.five_tuple = flow_b.five_tuple.with_src_port(
                flow_a.five_tuple.src_port)
        run = fabric.complete(ring_a + ring_b)
        solo = _ring_busbw_gbps(topo, 4, 64e9)
        shared_busbw = (2 * 3 / 4 * 64e9) / run.total_time_s / 1e9
        assert shared_busbw == pytest.approx(solo / 2, rel=0.1)


class TestCollectiveEquivalence:
    def test_rs_plus_ag_moves_same_bytes_as_allreduce(self, topo):
        """Ring AllReduce = ReduceScatter + AllGather: the wire-byte
        identity 2(n-1)/n == (n-1)/n + (n-1)/n must hold in the flow
        generators, so the composed and fused forms finish together.
        The check itself is the shared validation differential."""
        from repro.validation import check_rs_ag_composition
        hosts = [f"p0.b0.h{i}" for i in range(4)]
        violations = check_rs_ag_composition(
            Fabric(topo), hosts, rail=0, size_bits=64e9)
        assert violations == [], [str(v) for v in violations]

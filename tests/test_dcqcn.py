"""Tests for the DCQCN congestion-control dynamics."""

import numpy as np
import pytest

from repro.network import BottleneckSim, DcqcnFlowState, DcqcnParams


class TestParams:
    def test_mark_probability_ramp(self):
        params = DcqcnParams()
        assert params.mark_probability(0.0) == 0.0
        assert params.mark_probability(params.kmin_bytes) == 0.0
        assert params.mark_probability(params.kmax_bytes) == 1.0
        mid = (params.kmin_bytes + params.kmax_bytes) / 2
        assert 0.0 < params.mark_probability(mid) < 1.0

    def test_mark_probability_monotone(self):
        params = DcqcnParams()
        queues = np.linspace(0, 2 * params.kmax_bytes, 50)
        probs = [params.mark_probability(q) for q in queues]
        assert probs == sorted(probs)


class TestSenderStateMachine:
    def test_cnp_cuts_rate(self):
        params = DcqcnParams()
        flow = DcqcnFlowState(rate_gbps=200.0, target_gbps=200.0)
        flow.on_cnp(params)
        assert flow.rate_gbps == pytest.approx(100.0)  # alpha=1 cut
        assert flow.target_gbps == 200.0
        assert flow.cnp_count == 1

    def test_alpha_decays_without_cnps(self):
        params = DcqcnParams()
        flow = DcqcnFlowState(rate_gbps=100.0, target_gbps=200.0)
        for _ in range(50):
            flow.on_timer(params)
        assert flow.alpha < 0.05

    def test_recovery_approaches_target(self):
        params = DcqcnParams()
        flow = DcqcnFlowState(rate_gbps=50.0, target_gbps=200.0)
        for _ in range(params.fast_recovery_rounds):
            flow.on_timer(params)
        assert 150.0 < flow.rate_gbps <= 200.0

    def test_rate_never_exceeds_line_rate(self):
        params = DcqcnParams()
        flow = DcqcnFlowState(rate_gbps=params.line_rate_gbps,
                              target_gbps=params.line_rate_gbps)
        for _ in range(200):
            flow.on_timer(params)
        assert flow.rate_gbps <= params.line_rate_gbps

    def test_rate_never_below_min(self):
        params = DcqcnParams()
        flow = DcqcnFlowState(rate_gbps=params.min_rate_gbps,
                              target_gbps=params.min_rate_gbps)
        for _ in range(20):
            flow.on_cnp(params)
        assert flow.rate_gbps >= params.min_rate_gbps


class TestBottleneck:
    def test_uncongested_flows_stay_at_line_rate(self):
        sim = BottleneckSim(n_flows=2, capacity_gbps=400.0)
        result = sim.run(duration_s=0.05)
        assert np.all(result.final_rates
                      == pytest.approx(200.0, rel=0.01))
        assert result.cnp_counts == [0, 0]
        assert result.queue_bytes.max() == 0.0

    def test_congested_flows_back_off(self):
        sim = BottleneckSim(n_flows=8, capacity_gbps=400.0)
        result = sim.run(duration_s=0.1)
        # Aggregate settles near (not persistently above) capacity.
        tail = result.rates_gbps[len(result.times_s) // 2:]
        aggregate = np.mean(np.sum(tail, axis=1))
        assert aggregate < 1.2 * 400.0
        assert all(count > 0 for count in result.cnp_counts)

    def test_rough_fairness(self):
        """DCQCN converges to an approximately fair allocation — the
        property that justifies the fabric's max-min abstraction."""
        sim = BottleneckSim(n_flows=4, capacity_gbps=400.0)
        result = sim.run(duration_s=0.1)
        assert result.fairness_index() > 0.85

    def test_utilization_reasonable(self):
        sim = BottleneckSim(n_flows=4, capacity_gbps=400.0)
        result = sim.run(duration_s=0.1)
        assert result.mean_utilization(400.0) > 0.6

    def test_queue_bounded_by_marking(self):
        params = DcqcnParams()
        sim = BottleneckSim(n_flows=8, capacity_gbps=400.0,
                            params=params)
        result = sim.run(duration_s=0.1)
        # The RED ramp keeps the queue within a few kmax of the knee.
        assert result.queue_bytes.max() < 10 * params.kmax_bytes

    def test_deterministic_with_seed(self):
        a = BottleneckSim(4, 400.0, seed=3).run(0.02)
        b = BottleneckSim(4, 400.0, seed=3).run(0.02)
        assert np.array_equal(a.rates_gbps, b.rates_gbps)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BottleneckSim(0, 400.0)
        with pytest.raises(ValueError):
            BottleneckSim(2, 0.0)

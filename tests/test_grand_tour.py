"""Grand tour: the whole Figure-1 loop in one integration test.

Build the infrastructure, commission hosts, forecast with Seer, run a
monitored production job and verify it against the forecast, break it,
diagnose it, read the health report, and price the monitoring system's
payoff — every pillar touching every other, the way the paper draws
them.
"""

import pytest

from repro.core import AstralInfrastructure, PlacementPolicy
from repro.monitoring import (
    ChangeRecord,
    FaultSpec,
    Manifestation,
    RootCause,
)
from repro.network import reset_flow_ids
from repro.seer import LLAMA3_70B, ParallelismConfig
from repro.topology import AstralParams, validate_port_math


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def test_grand_tour():
    # -- 0. The architecture is deployable silicon-wise. ----------------
    assert validate_port_math(AstralParams()) == []

    # -- 1. Stand up the infrastructure. --------------------------------
    infra = AstralInfrastructure(params=AstralParams.small(),
                                 gpu="H800")
    assert infra.describe()["total_gpus"] == 128

    # -- 2. Commission hosts before handing them to the tenant. ----------
    allocation = infra.allocate("tenant", 6,
                                policy=PlacementPolicy.PACKED)
    commissioning = infra.commission(allocation.hosts)
    assert commissioning.ready_for_delivery

    # -- 3. Plan the training run with Seer. -----------------------------
    parallel = ParallelismConfig(tp=4, pp=4, dp=2, microbatches=8)
    forecast = infra.forecast_training(LLAMA3_70B, parallel)
    assert forecast.iteration_time_s > 0
    assert infra.seer.accuracy_deviation(LLAMA3_70B, parallel) < 0.02

    # -- 4. Run the job healthy; verify against the forecast threshold. --
    result = infra.run_monitored_job("tenant", iterations=5)
    assert result.completed_iterations == 5
    measured_comm = max(
        record.comm_time_s
        for record in result.store.timeline_for("tenant"))
    # §3.3: the Seer-derived threshold is 1.5x the expectation; the
    # healthy run must sit inside it.
    assert measured_comm < result.expected_comm_s * 1.5
    health = infra.health_report("tenant")
    assert health.healthy

    # -- 5. Break it; the monitoring system localizes the root cause. ----
    infra.maintenance.record(ChangeRecord(
        100.0, "driver", "driver rollout (red herring)"))
    victim = allocation.hosts[3]
    infra.allocator.release("tenant")
    infra.allocate("tenant2", 6)
    fault = FaultSpec(RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
                      victim, at_iteration=2)
    result = infra.run_monitored_job("tenant2", fault=fault,
                                     iterations=5)
    assert result.aborted
    diagnosis = infra.diagnose("tenant2")
    assert diagnosis.manifestation is Manifestation.FAIL_STOP
    assert diagnosis.root_cause_device == victim
    assert diagnosis.inferred_cause == "gpu-hardware"
    # The red-herring change is NOT blamed: the device evidence wins.
    assert "suspect-change" not in diagnosis.inferred_cause

    # -- 6. The health report shows the wreckage. ------------------------
    health = infra.health_report("tenant2")
    assert not health.healthy
    assert any(device == victim
               for device, _ in health.fatal_devices)

    # -- 7. And the payoff: automated localization buys goodput. ---------
    auto = infra.goodput(n_gpus=8192, localization="automated")
    manual = infra.goodput(n_gpus=8192, localization="manual")
    assert auto.goodput_fraction - manual.goodput_fraction > 0.15

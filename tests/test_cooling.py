"""Tests for the cooling substrate (paper §2.2, Figure 5, §5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cooling import (
    AirCoolingPlant,
    AirflowConfig,
    COOLING_GENERATIONS,
    ColdPlateLoop,
    ImmersionCooling,
    IntegratedCoolingSystem,
    delivered_fractions,
    rack_temperatures,
    temperature_spread,
)


class TestAirflow:
    def test_velocity_inverse_to_cross_section(self):
        """The fluid-dynamics principle the paper invokes: v = Q / A."""
        side = AirflowConfig.side()
        bottom = AirflowConfig.bottom_up()
        assert side.duct_velocity_ms > bottom.duct_velocity_ms
        ratio = side.cross_section_m2 / bottom.cross_section_m2
        assert side.duct_velocity_ms * ratio \
            == pytest.approx(bottom.duct_velocity_ms)

    def test_side_spread_about_one_degree(self):
        """Figure 5a: inter-rack variation reaching ~1 degC."""
        loads = np.full(16, 20_000.0)
        spread = temperature_spread(loads, AirflowConfig.side())
        assert 0.8 < spread < 1.3

    def test_bottom_up_spread_about_point_one_degree(self):
        """Figure 5b: only ~0.11 degC across all racks."""
        loads = np.full(16, 20_000.0)
        spread = temperature_spread(loads, AirflowConfig.bottom_up())
        assert 0.05 < spread < 0.2

    def test_bottom_up_lowers_overall_temperature(self):
        loads = np.full(16, 20_000.0)
        side = rack_temperatures(loads, AirflowConfig.side())
        bottom = rack_temperatures(loads, AirflowConfig.bottom_up())
        assert np.max(bottom) < np.max(side)

    def test_fractions_bounded(self):
        for config in (AirflowConfig.side(), AirflowConfig.bottom_up()):
            fractions = delivered_fractions(32, config)
            assert np.all(fractions > 0.0)
            assert np.all(fractions <= 1.0)

    def test_zero_racks_rejected(self):
        with pytest.raises(ValueError):
            delivered_fractions(0, AirflowConfig.side())

    @given(load=st.floats(min_value=1_000.0, max_value=60_000.0))
    @settings(max_examples=25)
    def test_hotter_racks_with_more_load(self, load):
        base = rack_temperatures(np.full(8, load), AirflowConfig.side())
        hotter = rack_temperatures(np.full(8, load * 1.5),
                                   AirflowConfig.side())
        assert np.all(hotter > base)


class TestLiquid:
    def test_cold_plate_beats_air_cop(self):
        assert ColdPlateLoop().cop > AirCoolingPlant().cop

    def test_extraction_bounded(self):
        loop = ColdPlateLoop()
        assert loop.extractable_watts(1000.0) \
            == pytest.approx(1000.0 * loop.max_extraction_frac)

    def test_negative_heat_rejected(self):
        with pytest.raises(ValueError):
            ColdPlateLoop().cooling_power_watts(-1.0)

    def test_immersion_rejected_on_operational_grounds(self):
        """The paper's selection criteria: immersion has the better COP
        but fails ecosystem/maintenance/compatibility checks."""
        immersion = ImmersionCooling()
        assert immersion.cop > ColdPlateLoop().cop
        assert not immersion.mature_ecosystem
        assert not immersion.easy_maintenance
        assert not immersion.compatible_with_air_cooled_fleet


class TestIntegrated:
    def test_split_respects_extraction_limit(self):
        system = IntegratedCoolingSystem()
        liquid, air = system.split_heat(1000.0, liquid_ratio=0.9)
        # 0.9 exceeds the cold plates' 0.75 extraction cap.
        assert liquid == pytest.approx(750.0)
        assert air == pytest.approx(250.0)

    def test_cooling_power_less_than_air_only(self):
        system = IntegratedCoolingSystem()
        air_only = system.air.cooling_power_watts(10_000.0)
        integrated = system.cooling_power_watts(10_000.0,
                                                liquid_ratio=0.7)
        assert integrated < air_only

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            IntegratedCoolingSystem().split_heat(1000.0, 1.5)

    def test_full_capacity_source_adapts_to_any_split(self):
        """The design requirement: the shared primary cold source holds
        100% capacity, 'otherwise the cooling system cannot adapt to
        different workload patterns'."""
        system = IntegratedCoolingSystem()
        for ratio in (0.0, 0.3, 0.7, 1.0):
            assert system.can_adapt(ratio)

    def test_undersized_source_cannot_adapt(self):
        system = IntegratedCoolingSystem(
            primary_source_capacity_frac=0.6)
        assert not system.can_adapt(0.0)   # all-air needs 100% air side
        assert not system.can_adapt(1.0)
        assert system.can_adapt(0.5)

    def test_effective_cop_between_air_and_liquid(self):
        system = IntegratedCoolingSystem()
        cop = system.effective_cop(10_000.0, liquid_ratio=0.7)
        assert system.air.cop < cop < system.liquid.cop


class TestLegacyGenerations:
    def test_three_pre_llm_generations(self):
        assert [g.year for g in COOLING_GENERATIONS] == [2006, 2010, 2018]

    def test_cop_improves_over_time(self):
        cops = [g.cop for g in COOLING_GENERATIONS]
        assert cops == sorted(cops)

    def test_negative_heat_rejected(self):
        with pytest.raises(ValueError):
            COOLING_GENERATIONS[0].cooling_power_watts(-5.0)

"""Tests for the fault-injection campaign runner and scoring."""

import pytest

from repro.monitoring import (
    CampaignRecord,
    Diagnosis,
    FaultCampaign,
    FaultSpec,
    Manifestation,
    RootCause,
)


@pytest.fixture(scope="module")
def campaign_result():
    return FaultCampaign(seed=11).run(25)


class TestCampaignRun:
    def test_runs_requested_fault_count(self, campaign_result):
        assert campaign_result.n_faults == 25

    def test_every_record_has_a_diagnosis(self, campaign_result):
        for record in campaign_result.records:
            assert record.diagnosis is not None
            assert record.result.store.nccl_timeline

    def test_high_localization_accuracy(self, campaign_result):
        """The hierarchical analyzer localizes the vast majority of
        injected faults (the paper's operational claim)."""
        assert campaign_result.localization_accuracy >= 0.85

    def test_detection_rate_high(self, campaign_result):
        assert campaign_result.detection_rate >= 0.8

    def test_mttlf_samples_accumulated(self, campaign_result):
        assert len(campaign_result.mttlf.samples) == 25

    def test_by_manifestation_partition(self, campaign_result):
        buckets = campaign_result.by_manifestation()
        assert sum(len(v) for v in buckets.values()) == 25

    def test_deterministic(self):
        a = FaultCampaign(seed=3).run(5)
        b = FaultCampaign(seed=3).run(5)
        assert [r.fault for r in a.records] \
            == [r.fault for r in b.records]
        assert [r.localized_correctly for r in a.records] \
            == [r.localized_correctly for r in b.records]


class TestScoring:
    def _record(self, fault, diagnosis, endpoints=()):
        # Result is unused by the scoring properties under test.
        return CampaignRecord(fault=fault, result=None,
                              diagnosis=diagnosis,
                              link_endpoints=endpoints)

    def test_exact_device_and_cause_match(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP, "h0")
        diagnosis = Diagnosis(job="j", root_cause_device="h0",
                              inferred_cause="gpu-hardware")
        assert self._record(fault, diagnosis).localized_correctly

    def test_wrong_device_fails(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP, "h0")
        diagnosis = Diagnosis(job="j", root_cause_device="h1",
                              inferred_cause="gpu-hardware")
        assert not self._record(fault, diagnosis).localized_correctly

    def test_link_endpoint_accepted(self):
        fault = FaultSpec(RootCause.OPTICAL_FIBER,
                          Manifestation.FAIL_STOP, "link:5")
        diagnosis = Diagnosis(job="j", root_cause_device="tor0",
                              inferred_cause="optical-fiber")
        record = self._record(fault, diagnosis,
                              endpoints=("tor0", "agg0"))
        assert record.localized_correctly

    def test_job_scoped_cause_matches_on_label(self):
        fault = FaultSpec(RootCause.USER_CODE,
                          Manifestation.FAIL_STOP, "job0")
        diagnosis = Diagnosis(job="j", inferred_cause="user-code")
        assert self._record(fault, diagnosis).localized_correctly

    def test_ccl_bug_accepts_abnormal_host_listing(self):
        fault = FaultSpec(RootCause.CCL_BUG, Manifestation.FAIL_HANG,
                          "h3")
        diagnosis = Diagnosis(job="j", inferred_cause="ccl-bug",
                              abnormal_hosts=["h3"])
        assert self._record(fault, diagnosis).localized_correctly

    def test_manifestation_detection(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP, "h0")
        hit = Diagnosis(job="j",
                        manifestation=Manifestation.FAIL_STOP)
        miss = Diagnosis(job="j",
                         manifestation=Manifestation.FAIL_SLOW)
        assert self._record(fault, hit).manifestation_detected
        assert not self._record(fault, miss).manifestation_detected

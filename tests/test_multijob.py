"""Tests for multi-tenant co-scheduling, PFC congestion spreading, and
the parallelism sweep planner."""

import pytest

from repro.monitoring import FaultSpec, JobConfig, MultiJobRun
from repro.network import (
    CongestionModel,
    Fabric,
    make_flow,
    reset_flow_ids,
)
from repro.seer import (
    LLAMA3_70B,
    HUNYUAN_MOE,
    NetworkSuite,
    Seer,
    sweep_parallelism,
)
from repro.topology import AstralParams, build_astral

HOSTS_A = ("p0.b0.h0", "p0.b0.h1", "p0.b1.h0", "p0.b1.h1")
HOSTS_B = ("p0.b0.h2", "p0.b0.h3", "p0.b1.h2", "p0.b1.h3")


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def _jobs(iterations=6):
    return [
        JobConfig(name="tenantA", hosts=HOSTS_A,
                  iterations=iterations),
        JobConfig(name="tenantB", hosts=HOSTS_B,
                  iterations=iterations),
    ]


class TestMultiJobRun:
    def test_healthy_tenants_run_at_nominal_efficiency(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        outcomes = MultiJobRun(fabric, _jobs()).run()
        for outcome in outcomes.values():
            assert outcome.efficiency > 0.95
            assert len(outcome.iteration_times_s) == 6

    def test_fault_degrades_owning_tenant(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        fault = FaultSpec.pcie_storm(HOSTS_A[1], at_iteration=1)
        outcomes = MultiJobRun(fabric, _jobs(),
                               faults={"tenantA": fault}).run()
        assert outcomes["tenantA"].efficiency < 0.7

    def test_disjoint_tenant_is_isolated(self):
        """When the tenants share no fabric hops, the storm stays
        contained — the architecture's isolation property."""
        fabric = Fabric(build_astral(AstralParams.small()))
        fault = FaultSpec.pcie_storm(HOSTS_A[1], at_iteration=1)
        outcomes = MultiJobRun(fabric, _jobs(),
                               faults={"tenantA": fault}).run()
        assert outcomes["tenantB"].efficiency > 0.9

    def test_duplicate_job_names_rejected(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        with pytest.raises(ValueError):
            MultiJobRun(fabric, [
                JobConfig(name="same", hosts=HOSTS_A),
                JobConfig(name="same", hosts=HOSTS_B),
            ])

    def test_empty_job_list_rejected(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        with pytest.raises(ValueError):
            MultiJobRun(fabric, [])

    def test_shared_store_carries_both_jobs(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        run = MultiJobRun(fabric, _jobs(iterations=2))
        run.run()
        jobs_seen = {r.job for r in run.store.nccl_timeline}
        assert jobs_seen == {"tenantA", "tenantB"}


class TestPfcSpreading:
    """The §5 incident mechanism at flow level: a PFC-pausing device
    throttles innocent flows that traverse it."""

    def _setup(self):
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        # Break the PCIe of h1: its access links crawl.
        for link in topology.links_of("p0.b0.h1"):
            link.capacity_gbps *= 0.1
        topology.version += 1
        return topology, fabric

    def _victim_through(self, fabric, device):
        """A flow from h0 to another block routed through *device*."""
        for port in range(49152, 49152 + 256):
            reset_flow_ids()
            flow = make_flow("p0.b0.h0", "p0.b1.h3", rail=0,
                             size_bits=8e9, src_port=port)
            if device in fabric.router.path(flow).devices:
                return flow
        raise AssertionError(f"no victim path through {device}")

    def test_pause_factors_computed(self):
        topology, fabric = self._setup()
        # Saturating traffic into the broken host.
        flows = [
            make_flow(f"p0.b0.h{src}", "p0.b0.h1", rail=0,
                      size_bits=8e9, src_port=50_000 + src)
            for src in (0, 2, 3)
        ]
        loads = fabric.offered_loads(flows)
        factors = CongestionModel().pfc_capacity_factors(loads,
                                                         topology)
        assert factors
        assert all(0.0 < factor < 1.0 for factor in factors.values())

    def test_innocent_flow_throttled_via_shared_tor(self):
        topology, fabric = self._setup()
        storm_flows = [
            make_flow(f"p0.b0.h{src}", "p0.b0.h1", rail=0,
                      size_bits=64e9, src_port=50_000 + src)
            for src in (2, 3)
        ]
        # The pausing ToR is whichever receives the storm traffic.
        storm_path = fabric.router.path(storm_flows[0])
        pausing_tor = storm_path.devices[1]
        victim = self._victim_through(fabric, pausing_tor)
        flows = storm_flows + [victim]

        plain = fabric.complete(list(flows), pfc_spreading=False)
        for flow in flows:
            flow.rate_gbps = 0.0
        spread = fabric.complete(list(flows), pfc_spreading=True)
        assert spread.finish_times_s[victim.flow_id] \
            > plain.finish_times_s[victim.flow_id] * 1.2

    def test_no_pfc_no_factors(self):
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0,
                         size_bits=8e9)
        loads = fabric.offered_loads([flow])
        factors = CongestionModel().pfc_capacity_factors(loads,
                                                         topology)
        assert factors == {}


class TestSweep:
    @pytest.fixture(scope="class")
    def seer(self):
        return Seer(gpu="H800", network=NetworkSuite())

    def test_candidates_sorted_by_throughput(self, seer):
        candidates = sweep_parallelism(seer, LLAMA3_70B, 64,
                                       microbatches=8)
        assert candidates
        throughputs = [c.tokens_per_s for c in candidates]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_world_size_respected(self, seer):
        for candidate in sweep_parallelism(seer, LLAMA3_70B, 64,
                                           microbatches=8):
            assert candidate.parallel.world_size == 64

    def test_infeasible_layouts_excluded_by_default(self, seer):
        candidates = sweep_parallelism(seer, LLAMA3_70B, 64,
                                       microbatches=8)
        assert all(c.fits for c in candidates)

    def test_include_infeasible_ranks_them_last(self, seer):
        candidates = sweep_parallelism(seer, LLAMA3_70B, 64,
                                       microbatches=8,
                                       include_infeasible=True)
        fit_flags = [c.fits for c in candidates]
        # Once an infeasible layout appears, no feasible one follows.
        if False in fit_flags:
            first_bad = fit_flags.index(False)
            assert all(not flag for flag in fit_flags[first_bad:])

    def test_moe_sweep_considers_ep(self, seer):
        candidates = sweep_parallelism(seer, HUNYUAN_MOE, 64,
                                       microbatches=8,
                                       include_infeasible=True)
        assert any(c.parallel.ep > 1 for c in candidates)

    def test_invalid_budget(self, seer):
        with pytest.raises(ValueError):
            sweep_parallelism(seer, LLAMA3_70B, 0)

    def test_label(self, seer):
        candidates = sweep_parallelism(seer, LLAMA3_70B, 16,
                                       microbatches=4,
                                       include_infeasible=True)
        assert all("TP" in c.label and "PP" in c.label
                   for c in candidates)

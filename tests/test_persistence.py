"""Tests for telemetry-store JSON persistence."""

import pytest

from repro.monitoring import (
    FaultSpec,
    HierarchicalAnalyzer,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    RootCause,
    store_from_json,
    store_to_json,
)
from repro.network import Fabric, reset_flow_ids
from repro.topology import AstralParams, build_astral

HOSTS = tuple(f"p0.b0.h{i}" for i in range(4))


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


@pytest.fixture()
def faulty_result():
    fabric = Fabric(build_astral(AstralParams.small()))
    fault = FaultSpec(RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
                      HOSTS[1], at_iteration=2)
    return MonitoredTrainingJob(
        fabric, JobConfig(hosts=HOSTS, iterations=4),
        fault=fault).run()


class TestRoundTrip:
    def test_record_counts_preserved(self, faulty_result):
        store = faulty_result.store
        restored = store_from_json(store_to_json(store))
        for bucket in ("nccl_timeline", "iterations", "qp_rates",
                       "err_cqes", "sflow_paths", "int_pings",
                       "switch_counters", "syslogs", "host_sensors"):
            assert len(getattr(restored, bucket)) \
                == len(getattr(store, bucket)), bucket

    def test_job_metadata_preserved(self, faulty_result):
        store = faulty_result.store
        restored = store_from_json(store_to_json(store))
        original = store.jobs["job0"]
        clone = restored.jobs["job0"]
        assert clone.hosts == original.hosts
        assert [qp.five_tuple for qp in clone.qps()] \
            == [qp.five_tuple for qp in original.qps()]

    def test_five_tuples_survive_as_join_keys(self, faulty_result):
        store = faulty_result.store
        restored = store_from_json(store_to_json(store))
        ft = restored.jobs["job0"].qps()[0].five_tuple
        assert restored.qp_rates_for(ft)

    def test_tuples_restored_for_paths(self, faulty_result):
        restored = store_from_json(store_to_json(faulty_result.store))
        record = restored.sflow_paths[0]
        assert isinstance(record.devices, tuple)
        assert isinstance(record.link_ids, tuple)
        ping = restored.int_pings[0]
        assert isinstance(ping.hop_latencies_us, tuple)
        assert ping.worst_hop()  # usable API after reload

    def test_diagnosis_identical_on_reloaded_store(self, faulty_result):
        """Offline re-analysis of archived telemetry reaches the same
        verdict as the live run (the §3.1 offline fallback)."""
        live = HierarchicalAnalyzer(
            faulty_result.store, faulty_result.expected_compute_s,
            faulty_result.expected_comm_s).diagnose("job0")
        restored = store_from_json(store_to_json(faulty_result.store))
        offline = HierarchicalAnalyzer(
            restored, faulty_result.expected_compute_s,
            faulty_result.expected_comm_s).diagnose("job0")
        assert offline.root_cause_device == live.root_cause_device
        assert offline.inferred_cause == live.inferred_cause
        assert offline.manifestation == live.manifestation

    def test_empty_store_round_trips(self):
        from repro.monitoring import TelemetryStore
        restored = store_from_json(store_to_json(TelemetryStore()))
        assert restored.nccl_timeline == []
        assert restored.jobs == {}

"""Bounded refinement: the escalation ladder and its exactness proof.

The correctness bar mirrors the fold's: for every fault class whose
block-level certificate holds, bounded refinement must equal full-pod
refinement — and the flat :class:`MultiJobRun` — with ``==`` on every
float, no tolerances.  For every class whose certificate is void the
*ladder itself* is asserted (the :class:`RefinePlan` names the level
and the reason), not just the final numbers.  The fault-then-heal
scenarios from the issue ride here too: a link flap inside the
hold-down window while a refined group's tenants are live, a heal that
refolds under the vector solver, and a double fault in two pods
sharing a cross-pod tenant (one merged group, never two).
"""

import pytest

from repro.hierarchy import (HierJob, HierarchicalRun, build_flat_fabric,
                             flat_job_configs, plan_refined_group)
from repro.monitoring import FaultSpec, Manifestation, RootCause
from repro.monitoring.multijob import MultiJobRun
from repro.network import Fabric, FabricEngine, make_flow
from repro.network.flows import reset_flow_ids
from repro.network.solver import HAVE_NUMPY, use_backend
from repro.resilience import FailureInjector, FaultDomain, expand_domains
from repro.topology import AstralParams, build_astral

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not available")


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def tiny(pods: int = 2) -> AstralParams:
    return AstralParams(pods=pods, blocks_per_pod=2, hosts_per_block=4,
                        gpus_per_host=2, aggs_per_group=2,
                        cores_per_group=2)


def block_jobs(params):
    return [HierJob(f"j{i}", n_hosts=params.hosts_per_block,
                    iterations=3)
            for i in range(params.pods * params.blocks_per_pod)]


def run_flat(params, jobs, caps=None, faults=None):
    reset_flow_ids()
    return MultiJobRun(build_flat_fabric(params),
                       flat_job_configs(params, jobs, caps),
                       faults=faults).run()


def assert_bit_identical(folded, flat):
    assert set(folded) == set(flat)
    for name in flat:
        assert folded[name].iteration_times_s \
            == flat[name].iteration_times_s, name
        assert folded[name].expected_iteration_s \
            == flat[name].expected_iteration_s, name


def fault(cause, manifestation, target, **kw):
    return FaultSpec(cause=cause, manifestation=manifestation,
                     target=target, **kw)


#: in-certificate fault classes: (cause, manifestation, target maker).
#: Every one must plan "block" and stay bit-identical down the ladder.
IN_CERTIFICATE = [
    ("nic-hang", RootCause.NIC_ERROR, Manifestation.FAIL_HANG,
     "p0.b0.h1"),
    ("nic-stop", RootCause.NIC_ERROR, Manifestation.FAIL_STOP,
     "p0.b0.h1"),
    ("gpu-fatal", RootCause.GPU_HARDWARE, Manifestation.FAIL_STOP,
     "p0.b0.h0"),
    ("ecc-fatal", RootCause.MEMORY, Manifestation.FAIL_STOP,
     "p0.b0.h2"),
    ("ccl-hang", RootCause.CCL_BUG, Manifestation.FAIL_HANG,
     "p0.b0.h3"),
    ("env-config", RootCause.HOST_ENV_CONFIG, Manifestation.FAIL_STOP,
     "p0.b0.h0"),
    ("tor-drops", RootCause.SWITCH_BUG, Manifestation.FAIL_SLOW,
     "p0.b0.r0.g0.tor"),
    ("user-code", RootCause.USER_CODE, Manifestation.FAIL_STOP, "j0"),
]


class TestLadderPlanning:
    """Assert the level and the reason, not just the result."""

    def _plans(self, faults, mode="bounded", params=None, jobs=None):
        params = params or tiny()
        run = HierarchicalRun(params, jobs or block_jobs(params),
                              faults=faults, refine=mode)
        run.run()
        return run, run.refine_plans

    @pytest.mark.parametrize(
        "label,cause,manifestation,target",
        IN_CERTIFICATE, ids=[row[0] for row in IN_CERTIFICATE])
    def test_certified_classes_plan_block(self, label, cause,
                                          manifestation, target):
        run, plans = self._plans(
            {"j0": fault(cause, manifestation, target)})
        assert [p.level for p in plans] == ["block"]
        assert plans[0].reasons == ()
        assert run.report.refine_levels == {"block": 1}

    def test_block_evidence_carries_the_probe(self):
        _, plans = self._plans(
            {"j0": fault(RootCause.NIC_ERROR, Manifestation.FAIL_HANG,
                         "p0.b0.h1")})
        evidence = plans[0].evidence[0]
        assert evidence.scope == "block"
        assert evidence.blocks == (0,)
        assert evidence.stranded_gpus == 0
        assert evidence.impacted_hosts >= 1

    def test_job_state_fault_has_no_cut_set(self):
        _, plans = self._plans(
            {"j0": fault(RootCause.USER_CODE, Manifestation.FAIL_STOP,
                         "j0")})
        assert plans[0].level == "block"
        assert plans[0].evidence[0].scope == "job"

    def test_hash_sensitive_effect_escalates_to_pod(self):
        run, plans = self._plans(
            {"j0": fault(RootCause.SWITCH_BUG, Manifestation.FAIL_STOP,
                         "p0.b0.r0.g0.tor")})
        assert plans[0].level == "pod"
        assert any("hash-sensitive" in reason
                   for reason in plans[0].reasons)
        assert run.report.refine_levels == {"pod": 1}

    def test_timestamp_fault_escalates_to_pod(self):
        _, plans = self._plans(
            {"j0": fault(RootCause.CCL_BUG, Manifestation.FAIL_HANG,
                         "p0.b0.h1", at_time_s=0.1)})
        assert plans[0].level == "pod"
        assert any("epoch-sensitive" in reason
                   for reason in plans[0].reasons)

    def test_capacity_degrading_fail_slow_escalates_to_pod(self):
        """The flaky-NIC crawl keeps transmitting below line rate,
        where co-resident solve epochs reschedule its flows — hash-free
        but still out of certificate."""
        run, plans = self._plans(
            {"j0": fault(RootCause.NIC_ERROR, Manifestation.FAIL_SLOW,
                         "p0.b0.h1")})
        assert plans[0].level == "pod"
        assert any("capacity-degrading" in reason
                   for reason in plans[0].reasons)
        assert run.report.refine_levels == {"pod": 1}

    def test_congestive_switch_config_escalates_to_pod(self):
        _, plans = self._plans(
            {"j0": fault(RootCause.SWITCH_CONFIG,
                         Manifestation.FAIL_SLOW,
                         "p0.b0.r0.g0.tor")})
        assert plans[0].level == "pod"

    def test_core_target_forces_flat(self):
        run, plans = self._plans(
            {"j0": fault(RootCause.SWITCH_BUG, Manifestation.FAIL_SLOW,
                         "cg0.c0.core")})
        assert run.symmetry.flat_fallback
        assert [p.level for p in plans] == ["flat"]
        assert run.report.refine_levels == {"flat": 1}

    def test_link_target_forces_flat(self):
        run, plans = self._plans(
            {"j0": fault(RootCause.OPTICAL_FIBER,
                         Manifestation.FAIL_STOP, "link:3")})
        assert run.symmetry.flat_fallback
        assert [p.level for p in plans] == ["flat"]

    def test_pod_mode_skips_the_block_rung(self):
        run, plans = self._plans(
            {"j0": fault(RootCause.GPU_HARDWARE,
                         Manifestation.FAIL_STOP, "p0.b0.h1")},
            mode="pod")
        assert plans[0].level == "pod"
        assert "refine mode forces pod-level unfolding" \
            in plans[0].reasons
        assert run.report.refine_mode == "pod"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="refine mode"):
            HierarchicalRun(tiny(), block_jobs(tiny()), refine="best")
        with pytest.raises(ValueError, match="refine mode"):
            plan_refined_group(tiny(), object(), mode="best")


class TestBoundedDifferential:
    """Bounded == pod == flat, bit for bit, whenever certified."""

    @pytest.mark.parametrize(
        "label,cause,manifestation,target",
        IN_CERTIFICATE, ids=[row[0] for row in IN_CERTIFICATE])
    def test_certified_classes_are_exact(self, label, cause,
                                         manifestation, target):
        params, jobs = tiny(), block_jobs(tiny())
        faults = {"j0": fault(cause, manifestation, target)}
        bounded = HierarchicalRun(params, jobs, faults=faults)
        pod = HierarchicalRun(params, jobs, faults=faults, refine="pod")
        flat = run_flat(params, jobs, faults=faults)
        assert_bit_identical(bounded.run(), flat)
        assert_bit_identical(pod.run(), flat)
        assert bounded.report.refine_levels == {"block": 1}
        assert pod.report.refine_levels == {"pod": 1}

    @pytest.mark.parametrize("cause,manifestation,target", [
        (RootCause.SWITCH_BUG, Manifestation.FAIL_STOP,
         "p0.b0.r0.g0.tor"),
        (RootCause.NIC_ERROR, Manifestation.FAIL_SLOW, "p0.b0.h1"),
    ], ids=["switch-stop", "nic-crawl"])
    def test_escalated_classes_still_match_flat(self, cause,
                                                manifestation, target):
        """Out of certificate means *dearer*, never *wrong*: the pod
        rung is still exact against the flat reference."""
        params, jobs = tiny(), block_jobs(tiny())
        faults = {"j0": fault(cause, manifestation, target)}
        bounded = HierarchicalRun(params, jobs, faults=faults)
        assert_bit_identical(bounded.run(),
                             run_flat(params, jobs, faults=faults))
        assert bounded.report.refine_levels == {"pod": 1}

    def test_domain_faults_are_exact_down_the_ladder(self):
        params, jobs = tiny(), block_jobs(tiny())
        run0 = HierarchicalRun(params, jobs)
        domain = FaultDomain("optics-batch", pod=0, block=0, size=2,
                             seed="bench")
        faults = expand_domains(params, run0.placed, [domain])
        assert faults
        bounded = HierarchicalRun(params, jobs, faults=faults)
        pod = HierarchicalRun(params, jobs, faults=faults, refine="pod")
        flat = run_flat(params, jobs, faults=faults)
        assert_bit_identical(bounded.run(), flat)
        assert_bit_identical(pod.run(), flat)
        assert bounded.report.refine_levels == {"block": 1}

    def test_gray_domain_is_exact_and_block_scoped(self):
        params, jobs = tiny(), block_jobs(tiny())
        run0 = HierarchicalRun(params, jobs)
        domain = FaultDomain("rack", pod=1, block=1, size=2,
                             mode="gray", seed=3)
        faults = expand_domains(params, run0.placed, [domain])
        bounded = HierarchicalRun(params, jobs, faults=faults)
        assert_bit_identical(bounded.run(),
                             run_flat(params, jobs, faults=faults))
        assert bounded.report.refine_levels == {"block": 1}

    def test_bounded_bills_fewer_engine_hosts(self):
        """The whole point: the faulted block runs exactly, the pod's
        healthy sibling blocks fold down to one representative, so the
        bounded bill undercuts the full-pod bill."""
        params = AstralParams(pods=2, blocks_per_pod=4,
                              hosts_per_block=4, gpus_per_host=2,
                              aggs_per_group=2, cores_per_group=2)
        jobs = block_jobs(params)
        faults = {"j0": fault(RootCause.NIC_ERROR,
                              Manifestation.FAIL_HANG, "p0.b0.h1")}
        bounded = HierarchicalRun(params, jobs, faults=faults)
        assert_bit_identical(bounded.run(),
                             run_flat(params, jobs, faults=faults))
        report = bounded.report
        # Full-pod scope: all 4 blocks (16 hosts).  Bounded: the
        # faulted block exactly (4) plus one healthy rep block (4).
        assert report.n_full_unfold_hosts == 4 * params.hosts_per_block
        assert report.n_refine_engine_hosts == 2 * params.hosts_per_block
        assert report.refine_levels == {"block": 1}

    def test_both_solver_backends_agree(self):
        params, jobs = tiny(), block_jobs(tiny())
        faults = {"j0": fault(RootCause.GPU_HARDWARE,
                              Manifestation.FAIL_STOP, "p0.b0.h0")}

        def _run():
            reset_flow_ids()
            return HierarchicalRun(params, jobs, faults=faults).run()

        with use_backend("python"):
            reference = _run()
        if not HAVE_NUMPY:
            pytest.skip("numpy not available")
        with use_backend("vector"):
            assert_bit_identical(_run(), reference)


class TestFaultThenHealAtScale:
    """The three issue scenarios: flap in the hold-down, heal-refold
    under the vector solver, double fault on a shared tenant."""

    def test_flap_inside_holddown_during_refined_group_run(self):
        """While a refined group's tenants are live on the engine, a
        member link flaps and asks to return *inside* the dampening
        window: readmission is deferred to the window end, the flows
        all finish, and the flap costs at most one reroute."""
        params, jobs = tiny(), block_jobs(tiny())
        run = HierarchicalRun(
            params, jobs,
            faults={"j0": fault(RootCause.SWITCH_BUG,
                                Manifestation.FAIL_SLOW,
                                "p0.b0.r0.g0.tor")})
        run.run()
        group = run.symmetry.refined[0]
        assert group.pods == (0,)

        # Re-drive the group's tenants as live flows with an injector.
        reset_flow_ids()
        engine = FabricEngine(Fabric(build_astral(params)))
        flows = []
        for placed in group.jobs:
            flow = make_flow(placed.hosts[0], placed.hosts[1], rail=0,
                             size_bits=4e12)
            engine.submit(flow)
            flows.append(flow)
        injector = FailureInjector(engine, dampening_s=10.0)
        victim = engine.fabric.router.path(flows[0]).link_ids[0]
        # Down at t=2, up requested at t=3 — still 9s inside the window.
        injector.flap_link(victim, at=2.0, down_s=1.0)
        result = engine.run()
        for flow in flows:
            assert flow.flow_id in result.finish_times_s
            assert engine.reroutes.get(flow.flow_id, 0) <= 1
        # Readmission happened, but only at the hold-down's end.
        restores = [e for e in injector.log
                    if e.action == "restore-link"]
        assert restores and restores[0].at_s == pytest.approx(12.0)
        assert engine.fabric.topology.links[victim].healthy

    @needs_numpy
    def test_heal_triggered_refold_under_vector_solver(self):
        """Fault clears -> the next run folds back to one pod class,
        and the refolded result is bit-identical to flat, all on the
        vector backend."""
        params, jobs = tiny(), block_jobs(tiny())
        faults = {"j2": fault(RootCause.GPU_HARDWARE,
                              Manifestation.FAIL_STOP, "p1.b0.h0")}
        with use_backend("vector"):
            faulted = HierarchicalRun(params, jobs, faults=faults)
            faulted.run()
            assert faulted.report.n_refined_groups == 1
            assert faulted.report.refine_levels == {"block": 1}
            healed = HierarchicalRun(params, jobs)
            assert_bit_identical(healed.run(), run_flat(params, jobs))
            assert healed.report.n_refined_groups == 0
            assert healed.report.exact

    def test_double_fault_shared_tenant_merges_to_one_group(self):
        """Faults in two pods that share a cross-pod tenant must land
        in a single merged refinement group — two groups would split
        the tenant and double-simulate it."""
        params = tiny()
        jobs = [HierJob("j0", n_hosts=4, iterations=3),
                HierJob("wide", n_hosts=8, iterations=3),
                HierJob("j1", n_hosts=4, iterations=3)]
        faults = {
            "j0": fault(RootCause.NIC_ERROR, Manifestation.FAIL_SLOW,
                        "p0.b0.h0"),
            "j1": fault(RootCause.NIC_ERROR, Manifestation.FAIL_SLOW,
                        "p1.b1.h0"),
        }
        run = HierarchicalRun(params, jobs, faults=faults)
        wide = next(p for p in run.placed if p.name == "wide")
        assert wide.pods == (0, 1)        # the tenant really crosses
        assert len(run.symmetry.refined) == 1
        group = run.symmetry.refined[0]
        assert group.pods == (0, 1)
        assert {p.name for p in group.jobs} == {"j0", "wide", "j1"}
        assert set(group.faults) == {"j0", "j1"}
        run.run()
        # Cross-pod tenancy voids the block certificate: pod level,
        # with the reason on the record.
        assert run.report.refine_levels == {"pod": 1}
        assert any("cross-pod tenant" in reason
                   for reason in run.refine_plans[0].reasons)
        assert_bit_identical(run.report.outcomes,
                             run_flat(params, jobs, faults=faults))

"""Tests for the continuous-batching serving simulator."""

import subprocess
import sys

import pytest

from repro.seer import (
    HUNYUAN_MOE,
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
    ServingConfig,
    ServingSimulator,
    draw_requests,
)

PARALLEL = ParallelismConfig(tp=8, pp=1, dp=1, ep=16)


@pytest.fixture(scope="module")
def seer():
    return Seer(gpu="H800", network=NetworkSuite())


def _run(seer, rate, duration=90.0, batch_max=16, model=HUNYUAN_MOE,
         output_len=128, seed=0):
    config = ServingConfig(arrival_rate_per_s=rate,
                           duration_s=duration, batch_max=batch_max,
                           output_len_mean=output_len, seed=seed)
    return ServingSimulator(seer, model, PARALLEL, config).run()


class TestBasics:
    def test_all_requests_eventually_complete(self, seer):
        report = _run(seer, rate=1.0)
        assert report.completion_rate == 1.0
        assert report.arrived > 0

    def test_deterministic_with_seed(self, seer):
        a = _run(seer, rate=1.0, seed=5)
        b = _run(seer, rate=1.0, seed=5)
        assert [r.finish_s for r in a.completed] \
            == [r.finish_s for r in b.completed]

    def test_request_timestamps_ordered(self, seer):
        report = _run(seer, rate=1.0)
        for record in report.completed:
            assert record.arrival_s <= record.prefill_start_s
            assert record.prefill_start_s < record.first_token_s
            assert record.first_token_s <= record.finish_s

    def test_idle_system_has_low_ttft(self, seer):
        report = _run(seer, rate=0.2)
        # TTFT ~ one prefill at batch 1.
        simulator = ServingSimulator(seer, HUNYUAN_MOE, PARALLEL,
                                     ServingConfig())
        assert report.mean_ttft_s() \
            < 3 * simulator.prefill_step_s() + 0.5


class TestQueueingBehaviour:
    def test_ttft_explodes_past_saturation(self, seer):
        light = _run(seer, rate=0.5)
        heavy = _run(seer, rate=8.0)
        assert heavy.mean_ttft_s() > 10 * light.mean_ttft_s()

    def test_throughput_grows_with_load_then_saturates(self, seer):
        rates = (0.5, 2.0, 8.0, 16.0)
        throughputs = [
            _run(seer, rate=r).output_tokens_per_s() for r in rates
        ]
        assert throughputs[1] > throughputs[0]
        # Saturation: doubling offered load past the knee gains <2x.
        assert throughputs[3] < 1.9 * throughputs[2]

    def test_tpot_grows_with_batch(self, seer):
        simulator = ServingSimulator(seer, HUNYUAN_MOE, PARALLEL,
                                     ServingConfig())
        assert simulator.decode_step_s(16) > simulator.decode_step_s(1)

    def test_larger_batch_limit_raises_saturated_throughput(self, seer):
        small = _run(seer, rate=8.0, batch_max=4)
        large = _run(seer, rate=8.0, batch_max=32)
        assert large.output_tokens_per_s() \
            > small.output_tokens_per_s()

    def test_p99_at_least_mean(self, seer):
        report = _run(seer, rate=4.0)
        assert report.p99_ttft_s() >= report.mean_ttft_s()


class TestModels:
    def test_dense_model_served_too(self, seer):
        report = _run(seer, rate=1.0,
                      model=LLAMA3_70B.with_seq_len(2048))
        assert report.completion_rate == 1.0
        assert report.output_tokens_per_s() > 0


class TestRequestDraws:
    """The pre-drawn request population behind the simulator."""

    def test_arrivals_sorted_and_bounded(self):
        cfg = ServingConfig(arrival_rate_per_s=3.0, duration_s=40.0,
                            seed=2)
        draws = draw_requests(cfg)
        assert draws
        arrivals = [d.arrival_s for d in draws]
        assert arrivals == sorted(arrivals)
        assert all(0.0 < t <= cfg.duration_s for t in arrivals)
        assert all(d.output_tokens >= 1 for d in draws)

    def test_zero_rate_draws_nothing(self):
        cfg = ServingConfig(arrival_rate_per_s=0.0, seed=0)
        assert draw_requests(cfg) == []

    def test_streams_are_independent(self):
        cfg = ServingConfig(arrival_rate_per_s=3.0, duration_s=40.0,
                            seed=2)
        base = draw_requests(cfg)
        extra = draw_requests(cfg, stream="requests-double")
        assert base != extra
        # Same stream name replays the same population exactly.
        assert base == draw_requests(cfg)

    def test_string_and_int_seeds_are_distinct_streams(self):
        by_int = draw_requests(ServingConfig(arrival_rate_per_s=2.0,
                                             seed=7))
        by_str = draw_requests(ServingConfig(arrival_rate_per_s=2.0,
                                             seed="7"))
        # Both key the same string stream ("serving:7:requests"), so
        # int and str spellings of a seed agree — the PR-3 convention.
        assert by_int == by_str

    def test_explicit_population_replays_default(self, seer):
        cfg = ServingConfig(arrival_rate_per_s=1.0, duration_s=60.0,
                            seed=4)
        implicit = ServingSimulator(seer, HUNYUAN_MOE, PARALLEL,
                                    cfg).run()
        explicit = ServingSimulator(seer, HUNYUAN_MOE, PARALLEL,
                                    cfg).run(draw_requests(cfg))
        assert [(r.arrival_s, r.first_token_s, r.finish_s)
                for r in implicit.completed] \
            == [(r.arrival_s, r.first_token_s, r.finish_s)
                for r in explicit.completed]


_SUBPROCESS_DIGEST = """
import json, sys
from repro.seer import (HUNYUAN_MOE, NetworkSuite, ParallelismConfig,
                        Seer, ServingConfig, ServingSimulator,
                        draw_requests)
cfg = ServingConfig(arrival_rate_per_s=2.0, duration_s=45.0, seed=11)
seer = Seer(gpu="H800", network=NetworkSuite())
sim = ServingSimulator(seer, HUNYUAN_MOE,
                       ParallelismConfig(tp=8, pp=1, dp=1, ep=16), cfg)
report = sim.run()
print(json.dumps({
    "draws": [[d.arrival_s, d.output_tokens]
              for d in draw_requests(cfg)],
    "finish": [r.finish_s for r in report.completed],
}))
"""


class TestCrossProcessDeterminism:
    def test_digest_stable_across_hash_seeds(self):
        """The PR-3 hard bar: bit-identical under PYTHONHASHSEED."""
        import os
        import repro
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        digests = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ,
                       PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=src_dir)
            out = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_DIGEST],
                capture_output=True, text=True, check=True,
                env=env).stdout
            digests.append(out)
        assert digests[0] == digests[1]
        assert '"finish"' in digests[0]

"""Tests for the continuous-batching serving simulator."""

import pytest

from repro.seer import (
    HUNYUAN_MOE,
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
    ServingConfig,
    ServingSimulator,
)

PARALLEL = ParallelismConfig(tp=8, pp=1, dp=1, ep=16)


@pytest.fixture(scope="module")
def seer():
    return Seer(gpu="H800", network=NetworkSuite())


def _run(seer, rate, duration=90.0, batch_max=16, model=HUNYUAN_MOE,
         output_len=128, seed=0):
    config = ServingConfig(arrival_rate_per_s=rate,
                           duration_s=duration, batch_max=batch_max,
                           output_len_mean=output_len, seed=seed)
    return ServingSimulator(seer, model, PARALLEL, config).run()


class TestBasics:
    def test_all_requests_eventually_complete(self, seer):
        report = _run(seer, rate=1.0)
        assert report.completion_rate == 1.0
        assert report.arrived > 0

    def test_deterministic_with_seed(self, seer):
        a = _run(seer, rate=1.0, seed=5)
        b = _run(seer, rate=1.0, seed=5)
        assert [r.finish_s for r in a.completed] \
            == [r.finish_s for r in b.completed]

    def test_request_timestamps_ordered(self, seer):
        report = _run(seer, rate=1.0)
        for record in report.completed:
            assert record.arrival_s <= record.prefill_start_s
            assert record.prefill_start_s < record.first_token_s
            assert record.first_token_s <= record.finish_s

    def test_idle_system_has_low_ttft(self, seer):
        report = _run(seer, rate=0.2)
        # TTFT ~ one prefill at batch 1.
        simulator = ServingSimulator(seer, HUNYUAN_MOE, PARALLEL,
                                     ServingConfig())
        assert report.mean_ttft_s() \
            < 3 * simulator.prefill_step_s() + 0.5


class TestQueueingBehaviour:
    def test_ttft_explodes_past_saturation(self, seer):
        light = _run(seer, rate=0.5)
        heavy = _run(seer, rate=8.0)
        assert heavy.mean_ttft_s() > 10 * light.mean_ttft_s()

    def test_throughput_grows_with_load_then_saturates(self, seer):
        rates = (0.5, 2.0, 8.0, 16.0)
        throughputs = [
            _run(seer, rate=r).output_tokens_per_s() for r in rates
        ]
        assert throughputs[1] > throughputs[0]
        # Saturation: doubling offered load past the knee gains <2x.
        assert throughputs[3] < 1.9 * throughputs[2]

    def test_tpot_grows_with_batch(self, seer):
        simulator = ServingSimulator(seer, HUNYUAN_MOE, PARALLEL,
                                     ServingConfig())
        assert simulator.decode_step_s(16) > simulator.decode_step_s(1)

    def test_larger_batch_limit_raises_saturated_throughput(self, seer):
        small = _run(seer, rate=8.0, batch_max=4)
        large = _run(seer, rate=8.0, batch_max=32)
        assert large.output_tokens_per_s() \
            > small.output_tokens_per_s()

    def test_p99_at_least_mean(self, seer):
        report = _run(seer, rate=4.0)
        assert report.p99_ttft_s() >= report.mean_ttft_s()


class TestModels:
    def test_dense_model_served_too(self, seer):
        report = _run(seer, rate=1.0,
                      model=LLAMA3_70B.with_seq_len(2048))
        assert report.completion_rate == 1.0
        assert report.output_tokens_per_s() > 0

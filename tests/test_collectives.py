"""Tests for collective traffic generation and PXN behaviour."""

import pytest

from repro.network import (
    CollectiveConfig,
    Endpoint,
    Fabric,
    all_gather_flows,
    all_to_all_flows,
    reduce_scatter_flows,
    reset_flow_ids,
    ring_allreduce_flows,
    run_collective,
    send_recv_flows,
)
from repro.topology import AstralParams, DeviceKind, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


@pytest.fixture(scope="module")
def topo():
    return build_astral(AstralParams.small())


@pytest.fixture()
def fabric(topo):
    return Fabric(topo)


def _host(pod, block, host):
    return f"p{pod}.b{block}.h{host}"


def _rail_group(hosts, rail=0):
    return [Endpoint(host, rail) for host in hosts]


class TestRingAllReduce:
    def test_flow_count_excludes_intra_host(self):
        endpoints = _rail_group([_host(0, 0, i) for i in range(4)])
        flows = ring_allreduce_flows(endpoints, size_bits=8e9)
        assert len(flows) == 4  # full ring across distinct hosts

    def test_traffic_volume_is_2n_minus_1_over_n(self):
        n = 4
        size = 8e9
        endpoints = _rail_group([_host(0, 0, i) for i in range(n)])
        flows = ring_allreduce_flows(endpoints, size_bits=size)
        for flow in flows:
            assert flow.size_bits == pytest.approx(2 * (n - 1) / n * size)

    def test_single_endpoint_no_flows(self):
        assert ring_allreduce_flows([Endpoint("h", 0)], 8e9) == []

    def test_intra_host_ring_produces_no_network_flows(self):
        endpoints = [Endpoint(_host(0, 0, 0), r) for r in range(4)]
        assert ring_allreduce_flows(endpoints, 8e9) == []


class TestReduceScatterAllGather:
    def test_volume_is_n_minus_1_over_n(self):
        n = 4
        endpoints = _rail_group([_host(0, 0, i) for i in range(n)])
        flows = reduce_scatter_flows(endpoints, size_bits=8e9)
        for flow in flows:
            assert flow.size_bits == pytest.approx((n - 1) / n * 8e9)

    def test_all_gather_same_shape_as_reduce_scatter(self):
        endpoints = _rail_group([_host(0, 0, i) for i in range(4)])
        rs = reduce_scatter_flows(endpoints, 8e9)
        reset_flow_ids()
        ag = all_gather_flows(endpoints, 8e9)
        assert len(rs) == len(ag)
        assert all(f.collective == "all_gather" for f in ag)


class TestAllToAll:
    def test_pair_count(self):
        endpoints = _rail_group([_host(0, 0, i) for i in range(4)])
        flows = all_to_all_flows(endpoints, size_bits=8e9)
        assert len(flows) == 4 * 3

    def test_pxn_keeps_traffic_same_rail(self, topo):
        """With PXN, flows between different rails leave on the
        destination's rail, so the fabric never sees cross-rail flows."""
        endpoints = [
            Endpoint(_host(0, 0, h), r) for h in range(2) for r in range(4)
        ]
        flows = all_to_all_flows(endpoints, size_bits=8e9,
                                 config=CollectiveConfig(pxn=True))
        fabric = Fabric(topo)
        for flow in flows:
            path = fabric.router.path(flow)
            kinds = [topo.devices[d].kind for d in path.devices]
            assert DeviceKind.CORE not in kinds

    def test_without_pxn_cross_rail_hits_core(self, topo):
        endpoints = [Endpoint(_host(0, 0, 0), 0), Endpoint(_host(0, 0, 1),
                                                           1)]
        flows = all_to_all_flows(endpoints, size_bits=8e9,
                                 config=CollectiveConfig(pxn=False))
        fabric = Fabric(topo)
        saw_core = False
        for flow in flows:
            path = fabric.router.path(flow)
            kinds = [topo.devices[d].kind for d in path.devices]
            saw_core = saw_core or DeviceKind.CORE in kinds
        assert saw_core


class TestSendRecv:
    def test_pairs_generate_one_flow_each(self):
        pairs = [
            (Endpoint(_host(0, 0, 0), 0), Endpoint(_host(0, 1, 0), 0)),
            (Endpoint(_host(0, 1, 0), 0), Endpoint(_host(1, 0, 0), 0)),
        ]
        flows = send_recv_flows(pairs, size_bits=4e9)
        assert len(flows) == 2
        assert all(f.collective == "send_recv" for f in flows)


class TestRunCollective:
    def test_allreduce_completes(self, fabric):
        endpoints = _rail_group([_host(0, 0, i) for i in range(4)])
        result = run_collective(fabric, endpoints, size_bits=8e9,
                                collective="allreduce")
        assert result.network_time_s > 0
        assert result.algo_bandwidth_gbps > 0

    def test_unknown_collective_rejected(self, fabric):
        with pytest.raises(ValueError):
            run_collective(fabric, [], 8e9, collective="broadcast")

    def test_single_host_collective_is_free_on_network(self, fabric):
        endpoints = [Endpoint(_host(0, 0, 0), r) for r in range(4)]
        result = run_collective(fabric, endpoints, 8e9, "allreduce")
        assert result.network_time_s == 0.0

    def test_a2a_includes_intra_host_staging_with_pxn(self, fabric):
        endpoints = [
            Endpoint(_host(0, 0, h), r) for h in range(2) for r in range(2)
        ]
        result = run_collective(fabric, endpoints, 8e9, "all_to_all",
                                CollectiveConfig(pxn=True))
        assert result.intra_host_time_s > 0
        assert result.total_time_s > result.network_time_s

    def test_bigger_message_takes_longer(self, fabric):
        endpoints = _rail_group([_host(0, 0, i) for i in range(4)])
        small = run_collective(fabric, endpoints, 1e9, "allreduce")
        reset_flow_ids()
        big = run_collective(fabric, endpoints, 10e9, "allreduce")
        assert big.network_time_s > small.network_time_s


class TestTopologyOrdering:
    def test_orders_by_pod_block_rank(self, topo):
        from repro.network import topology_ordered
        shuffled = [
            Endpoint(_host(1, 1, 3), 0),
            Endpoint(_host(0, 0, 1), 0),
            Endpoint(_host(0, 1, 0), 0),
            Endpoint(_host(0, 0, 0), 0),
        ]
        ordered = topology_ordered(shuffled, topo)
        assert [e.host for e in ordered] == [
            _host(0, 0, 0), _host(0, 0, 1), _host(0, 1, 0),
            _host(1, 1, 3),
        ]

    def test_unknown_hosts_sort_last(self, topo):
        from repro.network import topology_ordered
        endpoints = [Endpoint("zz.unknown", 0),
                     Endpoint(_host(0, 0, 0), 0)]
        ordered = topology_ordered(endpoints, topo)
        assert ordered[0].host == _host(0, 0, 0)

    def test_ordered_ring_beats_shuffled_ring(self, topo):
        """Topology-aware ring ordering shortens ring legs: the ordered
        ring completes the same AllReduce at least as fast."""
        import random

        from repro.network import topology_ordered
        endpoints = [
            Endpoint(_host(p, b, h), 0)
            for p in range(2) for b in range(2) for h in range(4)
        ]
        shuffled = endpoints[:]
        random.Random(3).shuffle(shuffled)

        def ring_time(ring):
            reset_flow_ids()
            fabric = Fabric(topo)
            flows = ring_allreduce_flows(ring, 32e9)
            return fabric.complete(flows).total_time_s, flows

        ordered_time, ordered_flows = ring_time(
            topology_ordered(shuffled, topo))
        shuffled_time, shuffled_flows = ring_time(shuffled)
        assert ordered_time <= shuffled_time * 1.001
        # The ordered ring's legs traverse fewer switches in total.
        fabric = Fabric(topo)
        def total_hops(flows):
            return sum(fabric.router.path(f).switch_hops
                       for f in flows)
        assert total_hops(ordered_flows) <= total_hops(shuffled_flows)

"""Tests for the power substrate: GPU traces, HVDC, tidal scheduling,
PUE (paper §2.2, §5, Figures 6/15/16)."""

import numpy as np
import pytest

from repro.power import (
    AC_UPS_CHAIN,
    GpuSpec,
    HVDC_CHAIN,
    HvdcUnit,
    NightTrainingScheduler,
    PowerAllocationError,
    RackSpec,
    RenewableMix,
    TidalProfile,
    astral_vs_traditional,
    compute_pue,
    daily_inference_power,
    inference_request_phases,
    pue_evolution,
    supply_stability,
    synthesize_trace,
    training_iteration_phases,
)


class TestGpuPowerTraces:
    def test_training_peak_reaches_tdp(self):
        """Figure 15a: peaks hit (or exceed) TDP during fwd/bwd compute."""
        gpu = GpuSpec(tdp_watts=500.0)
        trace = synthesize_trace(gpu, training_iteration_phases(),
                                 repeats=3)
        assert trace.exceeds_tdp

    def test_training_dips_during_communication(self):
        gpu = GpuSpec(tdp_watts=500.0)
        trace = synthesize_trace(gpu, training_iteration_phases(),
                                 repeats=1, jitter_frac=0.0)
        # The communication phase sits well below TDP.
        comm_start = 0.6  # after compute phases
        comm_samples = trace.watts[(trace.times_s > comm_start + 0.1)
                                   & (trace.times_s < 0.8)]
        assert np.mean(comm_samples) < 0.7 * gpu.tdp_watts

    def test_inference_prefill_high_decode_low(self):
        """Figure 15b: prefill ~TDP, decode well below."""
        gpu = GpuSpec(tdp_watts=500.0)
        trace = synthesize_trace(gpu, inference_request_phases(),
                                 repeats=2, jitter_frac=0.0)
        prefill = trace.watts[trace.times_s < 0.15]
        decode = trace.watts[(trace.times_s > 0.8)
                             & (trace.times_s < 1.3)]
        assert np.mean(prefill) > 2 * np.mean(decode)

    def test_deterministic_with_seed(self):
        gpu = GpuSpec()
        a = synthesize_trace(gpu, training_iteration_phases(), seed=7)
        b = synthesize_trace(gpu, training_iteration_phases(), seed=7)
        assert np.array_equal(a.watts, b.watts)

    def test_trace_scaling(self):
        gpu = GpuSpec(tdp_watts=500.0)
        trace = synthesize_trace(gpu, training_iteration_phases())
        big = trace.scaled(8)
        assert big.peak_watts == pytest.approx(8 * trace.peak_watts)
        assert big.tdp_watts == 8 * trace.tdp_watts

    def test_energy_positive(self):
        trace = synthesize_trace(GpuSpec(), training_iteration_phases())
        assert trace.energy_joules() > 0

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            synthesize_trace(GpuSpec(), training_iteration_phases(),
                             sample_hz=0)

    def test_mismatched_lengths_rejected(self):
        from repro.power.gpu_power import PowerTrace
        with pytest.raises(ValueError):
            PowerTrace(np.zeros(3), np.zeros(4), 500.0)


class TestPowerChains:
    def test_hvdc_more_efficient_than_ac_ups(self):
        assert HVDC_CHAIN.efficiency > AC_UPS_CHAIN.efficiency

    def test_grid_draw_exceeds_it_load(self):
        assert AC_UPS_CHAIN.grid_draw_watts(1000.0) > 1000.0

    def test_loss_consistency(self):
        it = 5000.0
        assert AC_UPS_CHAIN.loss_watts(it) == pytest.approx(
            AC_UPS_CHAIN.grid_draw_watts(it) - it)

    def test_ups_fluctuation_in_paper_band(self):
        """Paper: UPS battery capacity fluctuates 20-30% under training."""
        assert 0.20 <= AC_UPS_CHAIN.battery_fluctuation_frac <= 0.30

    def test_hvdc_supply_tighter_than_ups(self):
        demand = np.full(1000, 1e6)
        hvdc = supply_stability(HVDC_CHAIN, demand, seed=3)
        ups = supply_stability(AC_UPS_CHAIN, demand, seed=3)
        assert np.std(hvdc) < np.std(ups)
        assert np.min(hvdc) > np.min(ups)


class TestHvdcUnit:
    def _unit(self):
        racks = [RackSpec(f"r{i}", tdp_watts=40_000.0) for i in range(4)]
        return HvdcUnit(racks)

    def test_budget_is_row_tdp(self):
        assert self._unit().budget_watts == 160_000.0

    def test_rack_can_exceed_tdp_by_30_percent(self):
        unit = self._unit()
        granted = unit.request("r0", 52_000.0)  # 1.3x TDP
        assert granted == 52_000.0

    def test_rack_cannot_exceed_elastic_limit(self):
        unit = self._unit()
        with pytest.raises(PowerAllocationError):
            unit.request("r0", 52_001.0)

    def test_row_budget_enforced(self):
        unit = self._unit()
        for i in range(3):
            unit.request(f"r{i}", 45_000.0)
        # 135k used; r3 may only take 25k more despite a 52k rack limit.
        with pytest.raises(PowerAllocationError):
            unit.request("r3", 26_000.0)
        assert unit.request("r3", 25_000.0) == 25_000.0

    def test_negative_request_rejected(self):
        with pytest.raises(PowerAllocationError):
            self._unit().request("r0", -1.0)

    def test_unknown_rack(self):
        with pytest.raises(PowerAllocationError):
            self._unit().request("nope", 1.0)

    def test_grid_draw_includes_chain_loss(self):
        unit = self._unit()
        unit.request("r0", 40_000.0)
        assert unit.grid_draw_watts() > 40_000.0


class TestRenewables:
    def test_paper_renewable_fraction(self):
        assert RenewableMix().renewable_fraction == pytest.approx(0.22)

    def test_carbon_accounting(self):
        mix = RenewableMix()
        total = mix.carbon_kg(1000.0) + mix.carbon_saved_kg(1000.0)
        assert total == pytest.approx(1000.0 * mix.grid_carbon_kg_per_kwh)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            RenewableMix(renewable_fraction=1.5).carbon_kg(1.0)


class TestTidal:
    def test_night_detection_wraps_midnight(self):
        profile = TidalProfile()
        assert profile.is_night(23.0)
        assert profile.is_night(3.0)
        assert not profile.is_night(12.0)

    def test_daily_curve_tidal_shape(self):
        """Figure 16: high by day, trough between 22:00 and 08:00."""
        profile = TidalProfile(peak_mw=100.0, trough_frac=0.35)
        hours = np.linspace(0, 24, 24 * 60, endpoint=False)
        power = daily_inference_power(profile, hours)
        noon = power[(hours > 11) & (hours < 13)]
        deep_night = power[(hours > 2) & (hours < 5)]
        assert np.all(noon == pytest.approx(100.0))
        assert np.all(deep_night == pytest.approx(35.0))

    def test_scheduler_flattens_total(self):
        profile = TidalProfile()
        scheduler = NightTrainingScheduler(profile)
        hours = np.linspace(0, 24, 24 * 60, endpoint=False)
        unflattened = np.std(daily_inference_power(profile, hours))
        flattened = scheduler.flatness(hours) \
            * np.mean(scheduler.schedule(hours)["total_mw"])
        assert flattened < unflattened / 10

    def test_training_fills_only_headroom(self):
        scheduler = NightTrainingScheduler(TidalProfile(peak_mw=50.0))
        hours = np.linspace(0, 24, 24 * 60, endpoint=False)
        result = scheduler.schedule(hours)
        assert np.all(result["total_mw"] <= 50.0 + 1e-9)

    def test_limited_training_demand(self):
        scheduler = NightTrainingScheduler(TidalProfile(peak_mw=100.0))
        hours = np.linspace(0, 24, 24 * 60, endpoint=False)
        result = scheduler.schedule(hours, training_demand_mw=10.0)
        assert np.max(result["training_mw"]) == pytest.approx(10.0)


class TestPue:
    def test_astral_improvement_matches_paper(self):
        """Headline: average PUE improved by (up to) 16.34%."""
        result = astral_vs_traditional()
        assert result["improvement_frac"] == pytest.approx(0.1634,
                                                           abs=0.01)

    def test_evolution_strictly_improves(self):
        """Figure 6: every cooling generation lowers PUE."""
        pues = [report.pue for report in pue_evolution()]
        assert pues == sorted(pues, reverse=True)
        assert len(pues) == 4

    def test_pue_above_one(self):
        for report in pue_evolution():
            assert report.pue > 1.0

    def test_compute_pue_rejects_nonpositive_it(self):
        with pytest.raises(ValueError):
            compute_pue(0.0, 100.0, HVDC_CHAIN)

"""Tests for the repro.cluster scheduling subsystem."""

import pytest

from repro.cluster import (
    ClusterScheduler,
    JobSpec,
    RecoveryManager,
    RecoveryPolicy,
    SchedulingPolicy,
    TidalHostCap,
    WorkloadConfig,
    WorkloadGenerator,
)
from repro.monitoring.multijob import MultiJobRun
from repro.topology.astral import AstralParams, build_astral


@pytest.fixture(scope="module")
def topo():
    # 2 pods x 2 blocks x 8 hosts = 32 hosts.
    return build_astral(AstralParams.small())


def run(topo, specs, policy="topology", **kwargs):
    return ClusterScheduler(topo, specs, policy=policy, **kwargs).run()


def record(report, name):
    return next(r for r in report.records if r.name == name)


class TestWorkloadGeneration:
    def test_same_seed_identical_trace(self):
        first = WorkloadGenerator(seed=7).generate(30)
        second = WorkloadGenerator(seed=7).generate(30)
        assert first == second

    def test_different_seeds_differ(self):
        assert WorkloadGenerator(seed=1).generate(30) \
            != WorkloadGenerator(seed=2).generate(30)

    def test_arrivals_are_ordered_and_named(self):
        specs = WorkloadGenerator(seed=3).generate(25)
        submits = [spec.submit_s for spec in specs]
        assert submits == sorted(submits)
        assert [spec.name for spec in specs] \
            == [f"job-{i:03d}" for i in range(25)]

    def test_max_hosts_clips_requests(self):
        specs = WorkloadGenerator(seed=0).generate(50, max_hosts=4)
        assert all(1 <= spec.n_hosts <= 4 for spec in specs)

    def test_generator_validates_config(self):
        config = WorkloadConfig(mean_interarrival_s=0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(seed=0, config=config).generate(1)


class TestSchedulerDeterminism:
    def test_same_seed_identical_report(self, topo):
        specs = WorkloadGenerator(seed=5).generate(25, max_hosts=32)

        def once():
            return run(
                topo, specs, policy="priority",
                recovery=RecoveryManager(gpus_per_host=4, seed=5,
                                         failure_scale=200.0),
                power_cap=TidalHostCap(total_hosts=32), seed=5)

        assert once().to_dict() == once().to_dict()

    def test_all_policies_complete_a_plain_trace(self, topo):
        specs = WorkloadGenerator(seed=2).generate(15, max_hosts=32)
        for policy in SchedulingPolicy:
            report = run(topo, specs, policy=policy)
            assert report.status_counts() == {"completed": 15}, \
                policy.value
            assert 0.0 < report.utilization <= 1.0
            if policy is not SchedulingPolicy.PREEMPTIVE:
                # No failures configured: occupancy is useful work.
                assert report.goodput_fraction == pytest.approx(1.0), \
                    policy.value

    def test_oversized_job_rejected(self, topo):
        specs = [JobSpec("huge", 0.0, 33, 100.0)]
        report = run(topo, specs)
        assert record(report, "huge").status == "rejected"


class TestFifoVsTopologyScan:
    def test_fifo_head_of_line_blocks_small_job(self, topo):
        specs = [
            JobSpec("big", 0.0, 28, 100.0),
            JobSpec("blocked-head", 1.0, 32, 100.0),
            JobSpec("small", 2.0, 4, 10.0),
        ]
        fifo = run(topo, specs, policy="fifo")
        scan = run(topo, specs, policy="topology")
        # FIFO: "small" waits behind the blocked 32-host head.
        assert record(fifo, "small").first_start_s \
            > record(fifo, "blocked-head").first_start_s
        # Scan: "small" slots into the 4 free hosts immediately.
        assert record(scan, "small").first_start_s == 2.0
        assert record(scan, "blocked-head").first_start_s == 100.0

    def test_contiguous_placement_spans_fewer_pods(self, topo):
        # A 10-host resident fragments pod 0; a 8-host job then either
        # straddles the pod boundary (PACKED) or moves to pod 1.
        specs = [
            JobSpec("resident", 0.0, 10, 500.0),
            JobSpec("tenant", 1.0, 8, 100.0),
        ]
        fifo = run(topo, specs, policy="fifo")
        scan = run(topo, specs, policy="topology")
        assert record(fifo, "tenant").pods_spanned == [2]
        assert record(scan, "tenant").pods_spanned == [1]


class TestPriorityBackfill:
    SPECS = [
        JobSpec("running", 0.0, 16, 100.0, priority=1),
        JobSpec("head", 1.0, 32, 10.0, priority=5),
        JobSpec("long-low", 2.0, 16, 1000.0, priority=0),
        JobSpec("short-low", 3.0, 8, 50.0, priority=0),
    ]

    def test_backfill_never_starves_the_high_priority_head(self, topo):
        report = run(topo, self.SPECS, policy="priority")
        # The 32-host head runs the moment "running" drains — the
        # 1000-s low-priority job may NOT jump in front of it.
        assert record(report, "head").first_start_s == 100.0
        assert record(report, "long-low").first_start_s \
            >= record(report, "head").end_s

    def test_backfill_does_fill_safe_holes(self, topo):
        report = run(topo, self.SPECS, policy="priority")
        # "short-low" ends at 53 < shadow time 100: backfilled at once.
        assert record(report, "short-low").first_start_s == 3.0
        assert record(report, "head").first_start_s == 100.0

    def test_plain_priority_orders_by_priority_then_arrival(self, topo):
        specs = [
            JobSpec("filler", 0.0, 32, 60.0, priority=0),
            JobSpec("low", 1.0, 32, 10.0, priority=0),
            JobSpec("high", 2.0, 32, 10.0, priority=3),
        ]
        report = run(topo, specs, policy="priority")
        assert record(report, "high").first_start_s == 60.0
        assert record(report, "low").first_start_s == 70.0


class TestPreemption:
    def test_high_priority_evicts_low(self, topo):
        specs = [
            JobSpec("low", 0.0, 32, 1000.0, priority=0),
            JobSpec("high", 10.0, 16, 100.0, priority=5),
        ]
        report = run(topo, specs, policy="preemptive")
        high, low = record(report, "high"), record(report, "low")
        assert high.first_start_s == 10.0
        assert low.preemptions == 1
        assert low.status == "completed" and high.status == "completed"
        # The victim checkpoints, requeues, and pays the restart charge:
        # it occupies hosts longer than its ideal service time.
        assert low.busy_host_s > 1000.0 * 32

    def test_non_preemptive_priority_waits(self, topo):
        specs = [
            JobSpec("low", 0.0, 32, 1000.0, priority=0),
            JobSpec("high", 10.0, 16, 100.0, priority=5),
        ]
        report = run(topo, specs, policy="priority")
        assert record(report, "high").first_start_s == 1000.0
        assert record(report, "low").preemptions == 0

    def test_equal_priority_never_preempts(self, topo):
        specs = [
            JobSpec("first", 0.0, 32, 500.0, priority=2),
            JobSpec("second", 10.0, 16, 100.0, priority=2),
        ]
        report = run(topo, specs, policy="preemptive")
        assert record(report, "first").preemptions == 0
        assert record(report, "second").first_start_s == 500.0


class TestFailureRecovery:
    def recovery(self, **kwargs):
        defaults = dict(gpus_per_host=4, seed=0, failure_scale=3e3)
        defaults.update(kwargs)
        return RecoveryManager(**defaults)

    def test_failure_requeues_and_completes(self, topo):
        specs = [JobSpec("flaky", 0.0, 16, 20_000.0)]
        report = run(topo, specs, recovery=self.recovery())
        rec = record(report, "flaky")
        assert rec.status == "completed"
        assert rec.failures >= 1
        assert rec.attempts == rec.failures + 1
        # Lost work + restart charges: occupancy exceeds ideal work.
        assert rec.busy_host_s > rec.duration_s * 16
        assert report.goodput_fraction < 1.0

    def test_repeated_failures_shrink_the_job(self, topo):
        policy = RecoveryPolicy(shrink_after=1, max_restarts=100)
        specs = [JobSpec("shrinky", 0.0, 16, 50_000.0)]
        report = run(topo, specs,
                     recovery=self.recovery(policy=policy,
                                            failure_scale=1e5))
        rec = record(report, "shrinky")
        assert rec.failures >= 1
        assert rec.final_n_hosts < 16

    def test_hopeless_job_is_killed(self, topo):
        policy = RecoveryPolicy(max_restarts=2, allow_shrink=False)
        specs = [JobSpec("doomed", 0.0, 16, 1e7)]
        report = run(topo, specs,
                     recovery=self.recovery(policy=policy,
                                            failure_scale=1e6))
        assert record(report, "doomed").status == "killed"

    def test_failure_draws_are_reproducible(self):
        manager = self.recovery()
        assert manager.failure_delay_s("j", 1, 8) \
            == manager.failure_delay_s("j", 1, 8)
        assert manager.failure_delay_s("j", 1, 8) \
            != manager.failure_delay_s("j", 2, 8)

    def test_zero_scale_never_fails(self):
        manager = self.recovery(failure_scale=0.0)
        assert manager.failure_delay_s("j", 1, 8) is None


class TestTidalCap:
    def test_trough_defers_large_jobs(self, topo):
        # start_hour=23: t=0 is inside the 22:00-08:00 trough; the cap
        # allows 8 of 32 hosts until the trough ends 9 h in.
        cap = TidalHostCap(total_hosts=32, trough_host_frac=0.25,
                           start_hour=23.0)
        specs = [
            JobSpec("small", 0.0, 4, 100.0),
            JobSpec("large", 0.0, 16, 100.0),
        ]
        report = run(topo, specs, power_cap=cap)
        assert record(report, "small").first_start_s == 0.0
        assert record(report, "large").first_start_s \
            == pytest.approx(9 * 3600.0)

    def test_cap_never_exceeded_while_trough_lasts(self, topo):
        cap = TidalHostCap(total_hosts=32, trough_host_frac=0.25,
                           start_hour=23.0)
        specs = [JobSpec(f"j{i}", float(i), 4, 40_000.0)
                 for i in range(8)]
        report = run(topo, specs, power_cap=cap)
        started_in_trough = [
            r for r in report.records
            if r.first_start_s is not None
            and r.first_start_s < 9 * 3600.0
        ]
        assert sum(r.n_hosts_requested for r in started_in_trough) <= 8

    def test_daytime_start_sees_full_cluster(self, topo):
        cap = TidalHostCap(total_hosts=32, trough_host_frac=0.25,
                           start_hour=12.0)
        assert cap.hosts_allowed(0.0) == 32
        assert cap.hosts_allowed(10.5 * 3600.0) == 8  # 22:30

    def test_boundaries_enumerate_switch_times(self):
        cap = TidalHostCap(total_hosts=32, start_hour=12.0)
        bounds = cap.boundaries(24 * 3600.0)
        # 22:00 is 10 h in, 08:00 is 20 h in.
        assert 10 * 3600.0 in bounds and 20 * 3600.0 in bounds

    def test_contract_derived_cap_opens_the_night(self):
        cap = TidalHostCap.from_contract(total_hosts=100, host_kw=50.0)
        # Constant-power contract at the daytime peak: zero headroom by
        # day, most headroom in the deep trough (Figure 16).
        assert cap.day_host_frac == 0.0
        assert cap.trough_host_frac > 0.5

    def test_mismatched_cap_size_rejected(self, topo):
        cap = TidalHostCap(total_hosts=8)
        with pytest.raises(ValueError):
            ClusterScheduler(topo, [], power_cap=cap)


class TestMultiJobWiring:
    def test_peak_set_feeds_fabric_contention(self, topo):
        from repro.network.fabric import Fabric
        specs = WorkloadGenerator(seed=4).generate(12, max_hosts=16)
        report = run(topo, specs)
        peak = report.peak_concurrent()
        assert len(peak) >= 2
        fabric = Fabric(topo)
        outcomes = MultiJobRun.from_cluster(
            fabric, peak, iterations=2).run()
        assert outcomes
        for outcome in outcomes.values():
            assert 0.0 < outcome.efficiency <= 1.001

    def test_from_cluster_requires_multi_host_records(self, topo):
        from repro.network.fabric import Fabric
        specs = [JobSpec("solo", 0.0, 1, 10.0)]
        report = run(topo, specs)
        with pytest.raises(ValueError):
            MultiJobRun.from_cluster(Fabric(topo),
                                     report.peak_concurrent())


class TestInfrastructureFacade:
    def test_run_cluster_deterministic_end_to_end(self):
        from repro.core import AstralInfrastructure

        def once():
            infra = AstralInfrastructure(
                params=AstralParams.small(), seed=3)
            return infra.run_cluster(jobs=12, policy="topology",
                                     seed=3, failure_scale=100.0)

        first, second = once(), once()
        assert first.to_dict() == second.to_dict()
        assert first.status_counts().get("completed", 0) > 0

    def test_cluster_contention_reports_every_peak_tenant(self):
        from repro.core import AstralInfrastructure
        infra = AstralInfrastructure(params=AstralParams.small(),
                                     seed=1)
        report = infra.run_cluster(jobs=10, policy="topology", seed=1,
                                   failure_scale=0.0)
        outcomes = infra.cluster_contention(report, iterations=2)
        multi_host = [r for r in report.peak_concurrent()
                      if len(r.final_hosts) >= 2]
        assert set(outcomes) == {r.name for r in multi_host}

"""Metamorphic checks: transformed inputs, predictable outputs."""

import pytest

from repro.network import reset_flow_ids
from repro.validation import (
    ScenarioGenerator,
    check_idle_job_noop,
    check_rate_scaling,
    check_unused_link_noop,
)
from repro.validation.metamorphic import _batch_finish


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def _batch_specs(seed, count=3):
    """Batch-profile specs (index 0 mod the cycle) from one seed."""
    from repro.validation.scenarios import PROFILES
    generator = ScenarioGenerator(seed)
    return [generator.spec(index * len(PROFILES))
            for index in range(count)]


class TestRateScaling:
    @pytest.mark.parametrize("seed", [0, 7, 11])
    def test_power_of_two_scaling_is_exact(self, seed):
        for spec in _batch_specs(seed):
            assert check_rate_scaling(spec, k=2.0) == []

    def test_non_power_of_two_within_tolerance(self):
        spec = _batch_specs(7, count=1)[0]
        assert check_rate_scaling(spec, k=1.7) == []

    def test_quarter_rate_scaling(self):
        spec = _batch_specs(3, count=1)[0]
        assert check_rate_scaling(spec, k=0.25) == []

    def test_scaling_comparison_has_teeth(self):
        """Scaling only the fabric (not the expectation) must fire."""
        spec = _batch_specs(7, count=1)[0]
        base = _batch_finish(spec)
        doubled = _batch_finish(spec, scale=2.0)
        assert base != doubled  # halved times: the transform is real


class TestIdleJob:
    @pytest.mark.parametrize("seed", [0, 7, 11])
    def test_zero_size_flows_change_nothing(self, seed):
        for spec in _batch_specs(seed):
            assert check_idle_job_noop(spec) == []


class TestUnusedLink:
    @pytest.mark.parametrize("seed", [0, 7, 11])
    def test_killing_idle_access_link_changes_nothing(self, seed):
        for spec in _batch_specs(seed):
            assert check_unused_link_noop(spec) == []

    def test_killing_a_used_link_does_change_results(self):
        """Sanity that the no-op check is not vacuous: failing a link
        a flow actually crosses rehashes its path (or changes its
        share), which the same comparison would flag."""
        spec = _batch_specs(7, count=1)[0]
        from repro.network import Fabric
        from repro.validation import build_flows, build_topology
        topo = build_topology(spec)
        fabric = Fabric(topo)
        flows = build_flows(spec)
        paths = fabric.resolve_paths(flows)
        victim = paths[flows[0].flow_id].link_ids[0]
        base = _batch_finish(spec)
        rerouted = _batch_finish(spec, fail_link_id=victim)
        assert base != rerouted

"""Property-based tests on the core data structures and invariants.

Hypothesis drives random instances through:

* the timeline engine — dependency order, per-stream mutual exclusion,
  conservation of work;
* the operator-graph JSON round-trip;
* the fabric's max-min allocation — capacity feasibility and work
  conservation;
* the GPU allocator — no double allocation, exact free-list round-trip.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GpuAllocator, PlacementPolicy
from repro.network import Fabric, make_flow, reset_flow_ids
from repro.seer import (
    CommKind,
    OperatorGraph,
    OpType,
    TimelineEngine,
)
from repro.topology import AstralParams, build_astral


# --------------------------------------------------------------------------
# Random DAG scheduling
# --------------------------------------------------------------------------

@st.composite
def random_dags(draw):
    """A random operator DAG with durations, devices, and streams."""
    n = draw(st.integers(min_value=1, max_value=18))
    devices = draw(st.integers(min_value=1, max_value=3))
    graph = OperatorGraph(name="random")
    durations = {}
    for index in range(n):
        deps = []
        if index > 0:
            dep_count = draw(st.integers(min_value=0,
                                         max_value=min(3, index)))
            deps = sorted(draw(st.sets(
                st.integers(min_value=0, max_value=index - 1),
                min_size=dep_count, max_size=dep_count)))
        device = f"d{draw(st.integers(0, devices - 1))}"
        stream = draw(st.sampled_from(["compute", "comm"]))
        op = graph.add(f"op{index}", OpType.COMPUTE, deps=deps,
                       device=device, stream=stream)
        durations[op.op_id] = draw(st.floats(min_value=0.01,
                                             max_value=2.0))
    return graph, durations


class _MapModel:
    def __init__(self, durations):
        self.durations = durations

    def operator_time(self, op):
        return self.durations[op.op_id]


class TestTimelineProperties:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_dependencies_and_exclusivity(self, dag):
        graph, durations = dag
        timeline = TimelineEngine(_MapModel(durations)).run(graph)
        entries = {entry.op_id: entry for entry in timeline.entries}

        # Every operator scheduled exactly once, with its duration.
        assert len(entries) == len(graph)
        for op in graph:
            entry = entries[op.op_id]
            assert entry.duration_s \
                == pytest.approx(durations[op.op_id])
            # Dependency order respected.
            for dep in op.deps:
                assert entries[dep].end_s <= entry.start_s + 1e-9

        # Per-(device, stream) mutual exclusion.
        by_stream = {}
        for entry in timeline.entries:
            by_stream.setdefault((entry.device, entry.stream),
                                 []).append(entry)
        for stream_entries in by_stream.values():
            stream_entries.sort(key=lambda e: e.start_s)
            for a, b in zip(stream_entries, stream_entries[1:]):
                assert a.end_s <= b.start_s + 1e-9

        # Conservation: busy time equals the sum of durations.
        total_busy = sum(
            timeline.busy_time_s(device, stream)
            for device, stream in by_stream
        )
        assert total_busy == pytest.approx(sum(durations.values()))

    @given(random_dags())
    @settings(max_examples=30, deadline=None)
    def test_makespan_bounds(self, dag):
        graph, durations = dag
        for op in graph:
            op.duration_s = durations[op.op_id]
        critical = graph.critical_path_s()
        for op in graph:
            op.duration_s = None
        timeline = TimelineEngine(_MapModel(durations)).run(graph)
        total = sum(durations.values())
        # Makespan is at least the critical path, at most serial time.
        assert timeline.total_time_s >= critical - 1e-9
        assert timeline.total_time_s <= total + 1e-9


# --------------------------------------------------------------------------
# Graph JSON round-trip
# --------------------------------------------------------------------------

class TestGraphRoundTripProperties:
    @given(random_dags(),
           st.sampled_from(list(CommKind)))
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip_preserves_structure(self, dag, kind):
        graph, durations = dag
        # Decorate the last op as a communication op for coverage.
        last = graph.operators[-1]
        last.op_type = OpType.COMMUNICATION
        last.comm_kind = kind
        last.comm_bytes = 1e6
        last.group_size = 4

        restored = OperatorGraph.from_json(graph.to_json())
        assert len(restored) == len(graph)
        for op in graph:
            twin = restored.op(op.op_id)
            assert twin.name == op.name
            assert sorted(twin.deps) == sorted(op.deps)
            assert twin.device == op.device
            assert twin.op_type == op.op_type
        # The JSON itself is valid and carries the node list.
        payload = json.loads(graph.to_json())
        assert len(payload["nodes"]) == len(graph)


# --------------------------------------------------------------------------
# Fabric allocation feasibility
# --------------------------------------------------------------------------

class TestFabricProperties:
    @given(st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7),
                  st.integers(0, 3), st.integers(0, 16000)),
        min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_max_min_is_feasible_and_work_conserving(self, specs):
        reset_flow_ids()
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        flows = []
        for src, dst, rail, port in specs:
            if src == dst:
                continue
            flows.append(make_flow(
                f"p0.b0.h{src}", f"p0.b1.h{dst}", rail=rail,
                size_bits=8e9, src_port=49152 + port))
        if not flows:
            return
        # Feasibility, work conservation, and the max-min KKT
        # bottleneck condition all live in the shared oracle library
        # (repro.validation) — the same checks `repro validate` fuzzes
        # with; here hypothesis drives them.
        from repro.validation import check_solution
        violations = check_solution(fabric, flows)
        assert violations == [], [str(v) for v in violations]


# --------------------------------------------------------------------------
# Allocator round-trips
# --------------------------------------------------------------------------

class TestAllocatorProperties:
    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                    max_size=5),
           st.sampled_from(list(PlacementPolicy)))
    @settings(max_examples=25, deadline=None)
    def test_no_double_allocation_and_full_release(self, requests,
                                                   policy):
        allocator = GpuAllocator(build_astral(AstralParams.small()))
        total = allocator.free_hosts
        granted = {}
        for index, n_hosts in enumerate(requests):
            if n_hosts > allocator.free_hosts:
                break
            granted[f"job{index}"] = allocator.allocate(
                f"job{index}", n_hosts, policy)

        # No host handed to two jobs.
        seen = set()
        for allocation in granted.values():
            for host in allocation.hosts:
                assert host not in seen
                seen.add(host)
        assert allocator.free_hosts == total - len(seen)

        for job in granted:
            allocator.release(job)
        assert allocator.free_hosts == total

"""Differential checkers: engine vs batch, flow vs analytic, fluid vs
packet.

The engine-vs-batch equality is *exact* (``==`` on floats): both
integrate with cached absolute deadlines since the epoch-drift fix in
``Fabric.complete_batch``.  The regression test below re-implements
the old relative-step integrator and shows the differential catches
the drift it produces — the bug the validation harness surfaced.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import Fabric, make_flow, reset_flow_ids
from repro.simcore import SimulationError
from repro.topology import AstralParams, build_astral
from repro.validation import (
    check_engine_vs_batch,
    check_fluid_vs_packet,
    check_ring_vs_analytic,
    check_rs_ag_composition,
)


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def _random_flows(rng, hosts, count):
    flows = []
    for _ in range(count):
        src, dst = rng.sample(hosts, 2)
        flows.append(make_flow(src, dst, rail=rng.randrange(4),
                               size_bits=10 ** rng.uniform(8, 11)))
    return flows


class TestEngineVsBatch:
    @given(st.integers(min_value=0, max_value=2 ** 32))
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_for_simultaneous_starts(self, seed):
        rng = random.Random(f"diff:{seed}")
        reset_flow_ids()
        topo = build_astral(AstralParams.small())
        fabric = Fabric(topo)
        hosts = sorted(host.name for host in topo.hosts())
        flows = _random_flows(rng, hosts, rng.randint(2, 10))
        assert check_engine_vs_batch(fabric, flows) == []

    def test_regression_epoch_drift_seeds(self):
        """Seeds that drifted 1-2 ulp under the old relative-step
        batch integrator must now agree exactly."""
        for seed in (0, 1, 2, 3, 5, 8):
            rng = random.Random(f"probe:{seed}")
            reset_flow_ids()
            topo = build_astral(AstralParams.small())
            fabric = Fabric(topo)
            hosts = sorted(host.name for host in topo.hosts())
            flows = _random_flows(rng, hosts, rng.randint(2, 10))
            paths = fabric.resolve_paths(flows)
            engine = fabric.complete(flows, paths=paths)
            batch = fabric.complete_batch(flows, paths=paths)
            assert engine.finish_times_s == batch.finish_times_s

    def test_differential_catches_relative_step_integration(self):
        """The pre-fix integrator (``now += step``; decrement by
        ``rate * step``) drifts from the engine within a few random
        workloads — proof the exact differential has teeth."""
        drifted = 0
        for seed in range(20):
            rng = random.Random(f"probe:{seed}")
            reset_flow_ids()
            topo = build_astral(AstralParams.small())
            fabric = Fabric(topo)
            hosts = sorted(host.name for host in topo.hosts())
            flows = _random_flows(rng, hosts, rng.randint(2, 10))
            paths = fabric.resolve_paths(flows)
            engine = fabric.complete(flows, paths=paths)
            legacy = _legacy_complete_batch(fabric, flows, paths)
            if engine.finish_times_s != legacy:
                drifted += 1
        assert drifted > 0


def _legacy_complete_batch(fabric, flows, paths):
    """The old epoch loop, verbatim in miniature."""
    remaining = {f.flow_id: float(f.size_bits) for f in flows}
    finish = {}
    active = {f.flow_id: f for f in flows if f.size_bits > 0}
    for f in flows:
        if f.size_bits <= 0:
            finish[f.flow_id] = 0.0
    now = 0.0
    stalls = 0
    while active:
        rates = fabric.max_min_rates(
            list(active.values()), {fid: paths[fid] for fid in active})
        if not any(rates[fid] > 0 for fid in active):
            raise SimulationError("starved")
        step = min(remaining[fid] / (rates[fid] * 1e9)
                   for fid in active if rates[fid] > 0)
        now += step
        done = []
        for fid in list(active):
            remaining[fid] -= rates[fid] * 1e9 * step
            if remaining[fid] <= 1e-6:
                finish[fid] = now
                done.append(fid)
        for fid in done:
            del active[fid]
        stalls = 0 if done else stalls + 1
        if stalls >= 8:
            raise RuntimeError("no progress")
    return finish


class TestFlowVsAnalytic:
    @pytest.fixture(scope="class")
    def fabric(self):
        return Fabric(build_astral(AstralParams.small()))

    def test_ring_matches_analytic_bandwidth(self, fabric):
        hosts = [f"p0.b0.h{i}" for i in range(4)]
        assert check_ring_vs_analytic(fabric, hosts, rail=0,
                                      size_bits=64e9) == []

    def test_rs_ag_composes_to_allreduce(self, fabric):
        hosts = [f"p0.b0.h{i}" for i in range(4)]
        assert check_rs_ag_composition(fabric, hosts, rail=0,
                                       size_bits=64e9) == []


class TestFluidVsPacket:
    def test_underloaded_agrees(self):
        assert check_fluid_vs_packet(400.0, 200.0) == []

    def test_overloaded_agrees(self):
        assert check_fluid_vs_packet(400.0, 800.0) == []

    def test_boundary_regime_not_judged(self):
        assert check_fluid_vs_packet(400.0, 400.0) == []

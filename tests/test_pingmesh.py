"""Tests for the INT-armed pingmesh prober."""

import pytest

from repro.monitoring import Pingmesh
from repro.network import Fabric, make_flow, reset_flow_ids
from repro.topology import AstralParams, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


@pytest.fixture()
def fabric():
    return Fabric(build_astral(AstralParams.tiny()))


class TestProbe:
    def test_healthy_pair_reachable_fast(self, fabric):
        probe = Pingmesh(fabric).probe("p0.b0.h0", "p0.b0.h1")
        assert probe.reachable
        # Two hops at 0.6 us each, doubled for the round trip.
        assert probe.rtt_us == pytest.approx(2 * 2 * 0.6)
        assert probe.hops == 2

    def test_cross_pod_has_more_hops(self, fabric):
        local = Pingmesh(fabric).probe("p0.b0.h0", "p0.b0.h1")
        remote = Pingmesh(fabric).probe("p0.b0.h0", "p1.b0.h0")
        assert remote.hops > local.hops
        assert remote.rtt_us > local.rtt_us

    def test_isolated_host_unreachable(self, fabric):
        topo = fabric.topology
        dst = "p0.b0.h1"
        for link in topo.links_of(dst):
            other = topo.devices[link.other(dst)]
            if other.rail == 0:
                topo.fail_link(link.link_id)
        probe = Pingmesh(fabric).probe("p0.b0.h0", dst, rail=0)
        assert not probe.reachable
        assert probe.rtt_us == float("inf")

    def test_background_load_raises_hop_latency(self, fabric):
        # Saturate both of the destination's rail-0 ingress ports so
        # every ECMP choice the ping can make crosses a hot hop.
        background = [
            make_flow(src, "p0.b0.h1", rail=0, size_bits=8e9,
                      src_port=port)
            for src in ("p0.b0.h0", "p0.b1.h0", "p0.b1.h1")
            for port in range(50000, 50008)
        ]
        pinger = Pingmesh(fabric)
        quiet = pinger.probe("p0.b0.h0", "p0.b0.h1")
        loaded = pinger.probe("p0.b0.h0", "p0.b0.h1",
                              background=background)
        assert loaded.worst_hop_us > quiet.worst_hop_us
        assert loaded.worst_hop_device is not None


class TestSweep:
    def test_full_mesh_healthy(self, fabric):
        report = Pingmesh(fabric).sweep(max_pairs=1000)
        assert report.reachability == 1.0
        assert report.unreachable == []
        assert report.mean_rtt_us() < 50.0

    def test_sampling_respects_max_pairs(self, fabric):
        report = Pingmesh(fabric).sweep(max_pairs=5)
        assert len(report.probes) == 5

    def test_sweep_detects_black_hole(self, fabric):
        topo = fabric.topology
        dst = "p1.b1.h1"
        for link in topo.links_of(dst):
            topo.fail_link(link.link_id)
        report = Pingmesh(fabric).sweep(max_pairs=1000)
        assert report.reachability < 1.0
        assert all(p.dst == dst or p.src == dst
                   for p in report.unreachable)

    def test_hotspot_listing(self, fabric):
        background = [
            make_flow(src, "p0.b0.h1", rail=0, size_bits=8e9,
                      src_port=port)
            for src in ("p0.b0.h0", "p0.b1.h0", "p0.b1.h1")
            for port in range(50000, 50008)
        ]
        report = Pingmesh(fabric).sweep(
            hosts=["p0.b0.h0", "p0.b0.h1"], background=background)
        assert report.hotspots(latency_threshold_us=50.0)

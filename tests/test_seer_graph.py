"""Tests for operator graphs, JSON interchange, and the model builders."""

import pytest

from repro.seer import (
    GPT3_175B,
    HUNYUAN_MOE,
    LLAMA3_70B,
    LLAMA3_OPERATOR_TABLE,
    CommKind,
    GraphError,
    NetworkSuite,
    OperatorGraph,
    OpType,
    ParallelismConfig,
    build_inference_graph,
    build_training_graph,
)


class TestOperatorGraph:
    def test_add_and_lookup(self):
        graph = OperatorGraph()
        a = graph.add("a", OpType.COMPUTE)
        b = graph.add("b", OpType.COMPUTE, deps=[a.op_id])
        assert graph.op(b.op_id).deps == [a.op_id]
        assert len(graph) == 2

    def test_unknown_dep_rejected(self):
        graph = OperatorGraph()
        with pytest.raises(GraphError):
            graph.add("x", OpType.COMPUTE, deps=[99])

    def test_cycle_detected(self):
        graph = OperatorGraph()
        a = graph.add("a", OpType.COMPUTE)
        b = graph.add("b", OpType.COMPUTE, deps=[a.op_id])
        graph.op(a.op_id).deps.append(b.op_id)  # force a cycle
        with pytest.raises(GraphError):
            graph.topological_order()

    def test_topological_order_respects_deps(self):
        graph = OperatorGraph()
        a = graph.add("a", OpType.COMPUTE)
        b = graph.add("b", OpType.COMPUTE, deps=[a.op_id])
        c = graph.add("c", OpType.COMPUTE, deps=[a.op_id, b.op_id])
        order = [op.op_id for op in graph.topological_order()]
        assert order.index(a.op_id) < order.index(b.op_id) \
            < order.index(c.op_id)

    def test_critical_path(self):
        graph = OperatorGraph()
        a = graph.add("a", OpType.COMPUTE, duration_s=1.0)
        b = graph.add("b", OpType.COMPUTE, deps=[a.op_id],
                      duration_s=2.0)
        graph.add("c", OpType.COMPUTE, deps=[a.op_id], duration_s=0.5)
        assert graph.critical_path_s() == pytest.approx(3.0)

    def test_critical_path_requires_durations(self):
        graph = OperatorGraph()
        graph.add("a", OpType.COMPUTE)
        with pytest.raises(GraphError):
            graph.critical_path_s()

    def test_json_round_trip(self):
        graph = OperatorGraph(name="rt")
        a = graph.add("gemm", OpType.COMPUTE, flops=1e9,
                      bytes_accessed=1e6, device="stage0")
        graph.add("ar", OpType.COMMUNICATION, deps=[a.op_id],
                  comm_kind=CommKind.ALL_REDUCE, comm_bytes=1e6,
                  group_size=8, scope="intra_host", stream="comm")
        restored = OperatorGraph.from_json(graph.to_json())
        assert restored.name == "rt"
        assert len(restored) == 2
        comm = [op for op in restored
                if op.op_type is OpType.COMMUNICATION][0]
        assert comm.comm_kind is CommKind.ALL_REDUCE
        assert comm.group_size == 8
        assert comm.deps == [a.op_id]

    def test_json_handcraft_template(self):
        """The paper's handcraft path: experts write the JSON directly."""
        text = '''{"name": "custom", "nodes": [
            {"id": 0, "name": "SA", "op": "comp", "deps": [],
             "flops": 1e9},
            {"id": 1, "name": "NewOverlapOp", "op": "comm", "deps": [0],
             "comm_kind": "all_to_all", "comm_bytes": 1e7,
             "group_size": 4, "stream": "comm"}
        ]}'''
        graph = OperatorGraph.from_json(text)
        assert len(graph) == 2
        assert graph.op(1).comm_kind is CommKind.ALL_TO_ALL


class TestTable1:
    def test_llama3_operator_inventory(self):
        """Paper Table 1: the LLaMA-3 operator list with type tags."""
        layer = dict(LLAMA3_OPERATOR_TABLE["transformer_layer"])
        assert layer["PPRecv"] is OpType.COMMUNICATION
        assert layer["RMSNormLoadWeight"] is OpType.MEMORY
        assert layer["GQACoreAttn"] is OpType.COMPUTE
        assert layer["AttnTPAllReduce"] is OpType.COMMUNICATION
        assert layer["SwiMLPUpProj"] is OpType.MIXED
        assert len(LLAMA3_OPERATOR_TABLE["transformer_layer"]) == 14

    def test_detail_graph_contains_table1_operators(self):
        parallel = ParallelismConfig(tp=2, pp=2, dp=1, microbatches=2)
        model = LLAMA3_70B
        graph = build_training_graph(model, parallel, NetworkSuite(),
                                     detail=True)
        names = {op.name.split(".")[0] for op in graph}
        for section in LLAMA3_OPERATOR_TABLE.values():
            for op_name, _ in section:
                if op_name == "LoadWeight":
                    op_name = "LoadWeight"  # embedding load
                assert any(op_name in name for name in names), op_name


class TestTrainingGraphBuilder:
    def test_stage_count(self):
        parallel = ParallelismConfig(tp=2, pp=4, dp=2, microbatches=4)
        graph = build_training_graph(GPT3_175B, parallel,
                                     NetworkSuite())
        devices = {op.device for op in graph}
        assert devices == {f"stage{i}" for i in range(4)}

    def test_pp1_has_no_pp_traffic(self):
        parallel = ParallelismConfig(tp=4, pp=1, dp=2, microbatches=4)
        graph = build_training_graph(LLAMA3_70B, parallel,
                                     NetworkSuite())
        assert not any("PPSend" in op.name or "PPRecv" in op.name
                       for op in graph)

    def test_dp1_has_no_grad_sync(self):
        parallel = ParallelismConfig(tp=4, pp=2, dp=1, microbatches=4)
        graph = build_training_graph(LLAMA3_70B, parallel,
                                     NetworkSuite())
        assert not any("GradSync" in op.name for op in graph)

    def test_zero3_adds_param_allgather_and_reduce_scatter(self):
        parallel = ParallelismConfig(tp=2, pp=2, dp=4, zero_stage=3,
                                     microbatches=4)
        graph = build_training_graph(LLAMA3_70B, parallel,
                                     NetworkSuite())
        names = [op.name for op in graph]
        assert any("ZeroParamAllGather" in n for n in names)
        sync = [op for op in graph if "GradSync" in op.name]
        assert all(op.comm_kind is CommKind.REDUCE_SCATTER
                   for op in sync)

    def test_moe_has_all_to_all(self):
        parallel = ParallelismConfig(tp=2, pp=2, dp=2, ep=8,
                                     microbatches=4)
        graph = build_training_graph(HUNYUAN_MOE, parallel,
                                     NetworkSuite())
        a2a = [op for op in graph
               if op.comm_kind is CommKind.ALL_TO_ALL]
        assert a2a
        # 8-way EP on 8-GPU hosts stays intra-host.
        assert all(op.scope == "intra_host" for op in a2a)

    def test_large_tp_splits_hierarchically(self):
        """TP groups beyond the HB domain get intra+inter legs."""
        parallel = ParallelismConfig(tp=16, pp=2, dp=1, microbatches=2)
        graph = build_training_graph(GPT3_175B, parallel,
                                     NetworkSuite())
        ar_scopes = {op.scope for op in graph
                     if op.comm_kind is CommKind.ALL_REDUCE}
        assert ar_scopes == {"intra_host", "inter_host"}

    def test_cross_dc_pp_only_boundary_stage(self):
        """With PP across DCs, only the mid-pipeline boundary hop
        traverses the long-haul link."""
        pp_cross = ParallelismConfig(tp=2, pp=4, dp=2, microbatches=4,
                                     cross_dc_dimension="pp")
        graph = build_training_graph(GPT3_175B, pp_cross,
                                     NetworkSuite().with_cross_dc(4.0))
        cross = [op for op in graph
                 if "PP" in op.name and op.scope == "cross_dc"]
        # boundary is between chunk 1 (stage 1) and chunk 2 (stage 2).
        assert cross
        assert all(".c1." in op.name or ".c2." in op.name
                   for op in cross)
        fabric_pp = [op for op in graph
                     if "PPSend" in op.name and ".c0." in op.name]
        assert all(op.scope == "inter_host" for op in fabric_pp)

    def test_cross_dc_dp_is_hierarchical(self):
        """Cross-DC DP sync: intra-DC leg plus a small long-haul leg."""
        dp_cross = ParallelismConfig(tp=2, pp=4, dp=8, microbatches=4,
                                     cross_dc_dimension="dp")
        graph = build_training_graph(GPT3_175B, dp_cross,
                                     NetworkSuite().with_cross_dc(4.0))
        sync = [op for op in graph if "GradSync" in op.name]
        scopes = {op.scope for op in sync}
        assert scopes == {"inter_host", "cross_dc"}
        cross_bytes = sum(op.comm_bytes for op in sync
                          if op.scope == "cross_dc")
        fabric_bytes = sum(op.comm_bytes for op in sync
                           if op.scope == "inter_host")
        assert cross_bytes < fabric_bytes

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError):
            build_training_graph(
                LLAMA3_70B, ParallelismConfig(tp=1, pp=3),
                NetworkSuite())  # 80 layers not divisible by 3

    def test_param_counts_sane(self):
        assert GPT3_175B.total_params == pytest.approx(175e9, rel=0.08)
        assert LLAMA3_70B.total_params == pytest.approx(70e9, rel=0.1)

    def test_moe_params_dominated_by_experts(self):
        dense_like = HUNYUAN_MOE.attn_params_per_layer
        assert HUNYUAN_MOE.mlp_params_per_layer > 5 * dense_like


class TestInferenceGraphBuilder:
    def test_prefill_and_decode_shapes(self):
        parallel = ParallelismConfig(tp=4, pp=1, dp=1)
        prefill = build_inference_graph(LLAMA3_70B, parallel,
                                        NetworkSuite(), "prefill",
                                        batch=4, context_len=2048)
        decode = build_inference_graph(LLAMA3_70B, parallel,
                                       NetworkSuite(), "decode",
                                       batch=4, context_len=2048)
        prefill_flops = sum(op.flops for op in prefill)
        decode_flops = sum(op.flops for op in decode)
        assert prefill_flops > 100 * decode_flops

    def test_decode_reads_kv_cache(self):
        parallel = ParallelismConfig(tp=4, pp=1, dp=1)
        decode = build_inference_graph(LLAMA3_70B, parallel,
                                       NetworkSuite(), "decode",
                                       batch=4, context_len=2048)
        fwd = [op for op in decode if "FwdStage" in op.name][0]
        no_ctx = build_inference_graph(LLAMA3_70B, parallel,
                                       NetworkSuite(), "decode",
                                       batch=4, context_len=128)
        fwd_small = [op for op in no_ctx if "FwdStage" in op.name][0]
        assert fwd.bytes_accessed > fwd_small.bytes_accessed

    def test_invalid_phase(self):
        with pytest.raises(ValueError):
            build_inference_graph(LLAMA3_70B, ParallelismConfig(),
                                  NetworkSuite(), phase="training")

"""Tests for the profiler-trace -> operator-graph conversion."""

import json

import pytest

from repro.seer import (
    CommKind,
    GraphError,
    NetworkSuite,
    OpType,
    Seer,
    classify_kernel,
    from_pytorch_trace,
)


def _trace(events):
    return json.dumps({"traceEvents": events})


def _event(name, ts, dur, cat="kernel", stream=7, **args):
    return {"name": name, "cat": cat, "ph": "X", "ts": ts,
            "dur": dur, "args": {"stream": stream, **args}}


SAMPLE = _trace([
    _event("ampere_sgemm_128x64", 1000, 250),
    _event("Memcpy HtoD", 1300, 40, cat="gpu_memcpy"),
    _event("ncclDevKernel_AllReduce_Sum_f16", 1400, 300, stream=20,
           bytes=8.0e6, group_size=8),
    _event("elementwise_kernel", 1450, 120),
    {"name": "aten::linear", "cat": "cpu_op", "ph": "X", "ts": 990,
     "dur": 900, "args": {}},  # CPU event: dropped
])


class TestClassification:
    def test_nccl_kinds(self):
        cases = {
            "ncclDevKernel_AllReduce_Sum_f16": CommKind.ALL_REDUCE,
            "ncclKernel_ReduceScatter_RING": CommKind.REDUCE_SCATTER,
            "ncclDevKernel_AllGather": CommKind.ALL_GATHER,
            "ncclDevKernel_AllToAll": CommKind.ALL_TO_ALL,
            "ncclKernel_SendRecv": CommKind.SEND_RECV,
        }
        for name, expected in cases.items():
            op_type, kind = classify_kernel(name, "kernel")
            assert op_type is OpType.COMMUNICATION
            assert kind is expected, name

    def test_memcpy_is_memory(self):
        op_type, kind = classify_kernel("Memcpy DtoD", "gpu_memcpy")
        assert op_type is OpType.MEMORY
        assert kind is None

    def test_gemm_is_compute(self):
        op_type, _ = classify_kernel("ampere_h16816gemm", "kernel")
        assert op_type is OpType.COMPUTE


class TestConversion:
    def test_cpu_events_dropped(self):
        graph = from_pytorch_trace(SAMPLE)
        assert len(graph) == 4
        assert all("aten" not in op.name for op in graph)

    def test_durations_preserved_in_seconds(self):
        graph = from_pytorch_trace(SAMPLE)
        gemm = next(op for op in graph if "sgemm" in op.name)
        assert gemm.duration_s == pytest.approx(250e-6)

    def test_same_stream_serialized(self):
        graph = from_pytorch_trace(SAMPLE)
        memcpy = next(op for op in graph if "Memcpy" in op.name)
        gemm = next(op for op in graph if "sgemm" in op.name)
        assert gemm.op_id in memcpy.deps

    def test_comm_depends_on_compute_frontier(self):
        graph = from_pytorch_trace(SAMPLE)
        nccl = next(op for op in graph if "nccl" in op.name)
        # Frontier at AllReduce launch = the memcpy (ends at 1340).
        memcpy = next(op for op in graph if "Memcpy" in op.name)
        assert memcpy.op_id in nccl.deps

    def test_comm_attrs_parsed(self):
        graph = from_pytorch_trace(SAMPLE)
        nccl = next(op for op in graph if "nccl" in op.name)
        assert nccl.comm_bytes == pytest.approx(8.0e6)
        assert nccl.group_size == 8
        assert nccl.stream == "comm"

    def test_replay_through_timeline(self):
        """Measured durations replay through the DES engine — the
        'verify in-production results' use of a converted graph."""
        graph = from_pytorch_trace(SAMPLE)
        seer = Seer(gpu="H800", network=NetworkSuite(),
                    corrected=False)
        timeline = seer.forecast_graph(graph)
        assert len(timeline.entries) == len(graph)
        # Serial compute-stream time: 250 + 40 + 120 us, plus the
        # overlapped 300 us AllReduce.
        assert timeline.total_time_s >= 410e-6

    def test_empty_trace_rejected(self):
        with pytest.raises(GraphError):
            from_pytorch_trace(_trace([]))

    def test_bare_event_list_accepted(self):
        graph = from_pytorch_trace(json.dumps([
            _event("kernel_a", 0, 100)]))
        assert len(graph) == 1

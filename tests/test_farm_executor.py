"""Executor failure paths: crash isolation, timeouts, bounded retry.

The ``farm-selftest`` task kind gives the executor controllable
adversaries — a task that hard-kills its worker (``os._exit``), one
that hangs past the budget, one that raises, one that crashes exactly
N times then succeeds — so every isolation guarantee is exercised with
a real process pool, not mocks.
"""

import pytest

from repro.farm import FarmExecutor, ResultCache, TaskSpec


def _executor(tmp_path, **kwargs):
    kwargs.setdefault("cache", ResultCache(root=tmp_path / "cache"))
    return FarmExecutor(**kwargs)


def _ok(value):
    return TaskSpec("farm-selftest", {"mode": "ok", "value": value})


class TestHappyPath:
    def test_serial_runs_in_submission_order(self, tmp_path):
        seen = []
        executor = _executor(
            tmp_path, workers=1,
            progress=lambda result, done, total:
                seen.append((result.spec.params["value"], done, total)))
        report = executor.run([_ok(1), _ok(2), _ok(3)])
        assert report.ok
        assert [r.result["squared"] for r in report.results] == [1, 4, 9]
        assert seen == [(1, 1, 3), (2, 2, 3), (3, 3, 3)]

    def test_parallel_report_is_in_submission_order(self, tmp_path):
        report = _executor(tmp_path, workers=2).run(
            [_ok(v) for v in range(6)])
        assert report.ok
        assert [r.result["value"] for r in report.results] \
            == list(range(6))
        assert report.workers == 2

    def test_throughput_and_wall_are_populated(self, tmp_path):
        report = _executor(tmp_path, workers=1).run([_ok(1), _ok(2)])
        assert report.wall_s > 0
        assert report.throughput > 0

    def test_workers_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            _executor(tmp_path, workers=0)


class TestCrashIsolation:
    def test_dying_worker_fails_its_task_not_the_sweep(self, tmp_path):
        specs = [_ok(1),
                 TaskSpec("farm-selftest", {"mode": "crash"}),
                 _ok(2), _ok(3), _ok(4)]
        report = _executor(tmp_path, workers=2, max_retries=1).run(specs)
        by_value = {r.spec.params.get("value"): r
                    for r in report.results}
        crash = next(r for r in report.results
                     if r.spec.params["mode"] == "crash")
        assert crash.status == "crashed"
        assert "retry budget" in crash.error
        # Every innocent sibling still completed OK.
        for value in (1, 2, 3, 4):
            assert by_value[value].status == "ok", by_value[value]

    def test_crash_retry_budget_is_bounded(self, tmp_path):
        spec = TaskSpec("farm-selftest", {"mode": "crash"})
        report = _executor(tmp_path, workers=2, max_retries=0).run(
            [spec])
        assert report.results[0].status == "crashed"

    def test_flaky_task_recovers_within_budget(self, tmp_path):
        marker = tmp_path / "flaky-marker"
        spec = TaskSpec("farm-selftest",
                        {"mode": "flaky", "marker": str(marker),
                         "crashes": 1, "value": 5})
        report = _executor(tmp_path, workers=2, max_retries=2).run(
            [spec])
        result = report.results[0]
        assert result.status == "ok"
        assert result.result["value"] == 5
        assert result.attempts >= 2


class TestTimeouts:
    def test_hung_task_times_out_in_pool(self, tmp_path):
        specs = [TaskSpec("farm-selftest",
                          {"mode": "hang", "sleep_s": 30.0}),
                 _ok(1)]
        report = _executor(tmp_path, workers=2, timeout_s=0.5).run(specs)
        hang, ok = report.results
        assert hang.status == "timeout"
        assert "exceeded" in hang.error
        assert ok.status == "ok"

    def test_hung_task_times_out_serially(self, tmp_path):
        report = _executor(tmp_path, workers=1, timeout_s=0.5).run(
            [TaskSpec("farm-selftest",
                      {"mode": "hang", "sleep_s": 30.0})])
        assert report.results[0].status == "timeout"

    def test_timeouts_are_not_cached(self, tmp_path):
        spec = TaskSpec("farm-selftest",
                        {"mode": "hang", "sleep_s": 30.0})
        cache = ResultCache(root=tmp_path / "cache")
        FarmExecutor(workers=1, timeout_s=0.5, cache=cache).run([spec])
        assert ResultCache(root=tmp_path / "cache").get(spec) is None


class TestErrors:
    def test_clean_exception_is_error_not_retry(self, tmp_path):
        spec = TaskSpec("farm-selftest", {"mode": "fail", "value": 3})
        report = _executor(tmp_path, workers=2, max_retries=3).run(
            [spec])
        result = report.results[0]
        assert result.status == "error"
        assert "RuntimeError" in result.error
        # Deterministic failures are not retried.
        assert result.attempts == 1

    def test_report_exit_flags(self, tmp_path):
        report = _executor(tmp_path, workers=1).run(
            [_ok(1), TaskSpec("farm-selftest", {"mode": "fail"})])
        assert not report.ok
        assert report.n_ok == 1
        assert len(report.failures) == 1
        data = report.to_dict()
        assert data["n_tasks"] == 2 and data["ok"] is False


class TestRetryBackoff:
    def test_delay_is_deterministic_per_task_and_ordinal(self, tmp_path):
        executor = _executor(tmp_path)
        spec = _ok(1)
        assert executor._retry_delay_s(spec, 1) \
            == executor._retry_delay_s(spec, 1)
        # Distinct tasks and distinct crash ordinals spread out.
        assert executor._retry_delay_s(spec, 1) \
            != executor._retry_delay_s(_ok(2), 1)
        assert executor._retry_delay_s(spec, 1) \
            != executor._retry_delay_s(spec, 2)

    def test_base_doubles_then_caps_and_jitter_is_bounded(self, tmp_path):
        executor = _executor(tmp_path, retry_backoff_s=0.1,
                             retry_backoff_cap_s=0.4)
        spec = _ok(7)
        for crash_count, base in [(1, 0.1), (2, 0.2), (3, 0.4),
                                  (4, 0.4), (9, 0.4)]:
            delay = executor._retry_delay_s(spec, crash_count)
            assert 0.5 * base <= delay < 1.5 * base

    def test_crashing_task_still_recovers_with_backoff(self, tmp_path):
        # End-to-end: backoff delays between quarantine retries do not
        # change the outcome, only the pacing.
        marker = tmp_path / "flaky-marker"
        spec = TaskSpec("farm-selftest",
                        {"mode": "flaky", "crashes": 1,
                         "marker": str(marker), "value": 9})
        report = _executor(tmp_path, workers=2, max_retries=2,
                           retry_backoff_s=0.05).run([spec])
        result = report.results[0]
        assert result.status == "ok" and result.attempts >= 2


class TestPerSpecTimeout:
    def test_spec_budget_overrides_the_generic_one(self, tmp_path):
        specs = [TaskSpec("farm-selftest",
                          {"mode": "hang", "sleep_s": 30.0},
                          timeout_s=0.5),
                 _ok(1)]
        report = _executor(tmp_path, workers=2, timeout_s=30.0).run(specs)
        hang, ok = report.results
        assert hang.status == "timeout"
        assert ok.status == "ok"

    def test_generic_budget_applies_when_spec_is_silent(self, tmp_path):
        executor = _executor(tmp_path, timeout_s=30.0)
        assert executor._timeout_for(_ok(1)) == 30.0
        assert executor._timeout_for(
            TaskSpec("farm-selftest", {"mode": "ok"},
                     timeout_s=0.5)) == 0.5

"""TaskSpec canonicalisation, content hashing, and the kind registry."""

import json

import pytest

from repro.farm import (TaskSpec, UnknownTaskKind, canonical_json,
                        dedupe_specs, execute_spec,
                        specs_from_document, task_kind, task_kinds)


class TestCanonicalJson:
    def test_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) \
            == canonical_json({"a": 2, "b": 1})

    def test_no_whitespace(self):
        assert " " not in canonical_json({"a": [1, 2], "b": {"c": 3}})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestContentHash:
    def test_stable_across_param_insertion_order(self):
        one = TaskSpec("farm-selftest", {"mode": "ok", "value": 1})
        two = TaskSpec("farm-selftest", {"value": 1, "mode": "ok"})
        assert one.content_hash == two.content_hash

    def test_any_param_change_changes_hash(self):
        base = TaskSpec("validation-case",
                        {"seed": 7, "index": 0, "fast": True})
        for mutated in (
            TaskSpec("validation-case",
                     {"seed": 8, "index": 0, "fast": True}),
            TaskSpec("validation-case",
                     {"seed": 7, "index": 1, "fast": True}),
            TaskSpec("validation-case",
                     {"seed": 7, "index": 0, "fast": False}),
            TaskSpec("validation-case",
                     {"seed": 7, "index": 0, "fast": True,
                      "extra": None}),
        ):
            assert mutated.content_hash != base.content_hash

    def test_kind_is_part_of_identity(self):
        params = {"seed": 0}
        assert TaskSpec("cluster-sweep", params).content_hash \
            != TaskSpec("monitoring-campaign", params).content_hash

    def test_label_is_not_part_of_identity(self):
        assert TaskSpec("farm-selftest", {"mode": "ok"},
                        label="a").content_hash \
            == TaskSpec("farm-selftest", {"mode": "ok"},
                        label="b").content_hash

    def test_runner_version_is_folded_in(self):
        spec = TaskSpec("farm-selftest", {"mode": "ok"})
        assert f'"version":{task_kind("farm-selftest").version}' \
            in spec.canonical()

    def test_seed_material_is_deterministic_int(self):
        spec = TaskSpec("farm-selftest", {"mode": "ok"})
        assert spec.seed_material == spec.seed_material
        assert isinstance(spec.seed_material, int)

    def test_hierarchy_run_hash_covers_every_knob(self):
        base = {"scale": "4k", "hosts_per_job": 64, "seed": 0,
                "faults": 0, "power_caps": {}}
        seen = {TaskSpec("hierarchy-run", base).content_hash}
        for mutation in (
            {"scale": "64k"},
            {"hosts_per_job": 32},
            {"seed": 1},
            {"faults": 1},
            {"power_caps": {"1": 0.8}},
            {"tail_shapes": 2},
            {"dims": {"pods": 2, "blocks_per_pod": 1,
                      "hosts_per_block": 4}},
        ):
            mutated = TaskSpec("hierarchy-run", {**base, **mutation})
            assert mutated.content_hash not in seen, mutation
            seen.add(mutated.content_hash)


class TestRegistry:
    def test_all_runnable_units_are_registered(self):
        # The tentpole contract: every runnable unit of the repo has a
        # spec-addressable kind.
        assert set(task_kinds()) >= {
            "validation-case", "resilience-campaign",
            "monitoring-campaign", "cluster-sweep", "seer-forecast",
            "figure-bench", "hierarchy-run",
        }

    def test_unknown_kind_raises(self):
        with pytest.raises(UnknownTaskKind):
            TaskSpec("no-such-kind", {}).content_hash

    def test_execute_spec_returns_json_able_result(self):
        result = execute_spec(TaskSpec("figure-bench",
                                       {"figure": "pue"}))
        json.dumps(result)
        assert result["figure"] == "pue"
        assert result["series"]


class TestRoundTrip:
    def test_spec_json_round_trip(self):
        spec = TaskSpec("cluster-sweep",
                        {"scale": "tiny", "seed": 3}, label="x")
        clone = TaskSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.content_hash == spec.content_hash


class TestSpecDocument:
    def test_tasks_and_sweep_combine(self):
        specs = specs_from_document({
            "tasks": [{"kind": "figure-bench",
                       "params": {"figure": "pue"}}],
            "sweep": {"kind": "cluster-sweep",
                      "base": {"scale": "tiny"},
                      "grid": {"policy": ["fifo", "topology"]},
                      "seeds": [0, 1]},
        })
        assert len(specs) == 1 + 4
        assert specs[0].kind == "figure-bench"
        assert {s.params["policy"] for s in specs[1:]} \
            == {"fifo", "topology"}

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError):
            specs_from_document({})

    def test_dedupe_preserves_first_seen_order(self):
        a = TaskSpec("farm-selftest", {"mode": "ok", "value": 1})
        b = TaskSpec("farm-selftest", {"mode": "ok", "value": 2})
        assert dedupe_specs([a, b, a, b, a]) == [a, b]


class TestPerSpecTimeout:
    def test_timeout_is_not_part_of_identity(self):
        params = {"scale": "tiny", "seed": 3}
        assert TaskSpec("cluster-sweep", params).content_hash \
            == TaskSpec("cluster-sweep", params,
                        timeout_s=1.5).content_hash

    def test_timeout_round_trips(self):
        spec = TaskSpec("cluster-sweep", {"scale": "tiny", "seed": 3},
                        timeout_s=2.5)
        clone = TaskSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone.timeout_s == 2.5
        assert clone.content_hash == spec.content_hash

"""Unit tests for the monitored-job simulator internals."""

import pytest

from repro.monitoring import (
    Effect,
    FaultSpec,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    RootCause,
)
from repro.network import Fabric, reset_flow_ids
from repro.topology import AstralParams, build_astral

HOSTS = tuple(f"p0.b0.h{i}" for i in range(4))


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def _job(fault=None, **overrides):
    defaults = dict(hosts=HOSTS, iterations=4)
    defaults.update(overrides)
    fabric = Fabric(build_astral(AstralParams.small()))
    return MonitoredTrainingJob(fabric, JobConfig(**defaults),
                                fault=fault)


class TestJobConfig:
    def test_needs_hosts(self):
        fabric = Fabric(build_astral(AstralParams.tiny()))
        with pytest.raises(ValueError):
            MonitoredTrainingJob(fabric, JobConfig(hosts=()))

    def test_all_to_all_collective_supported(self):
        result = _job(collective="all_to_all").run()
        assert result.completed_iterations == 4
        kinds = {group.kind
                 for group in result.store.jobs["job0"].comm_groups}
        assert kinds == {"all_to_all"}


class TestStableQps:
    def test_five_tuples_stable_across_iterations(self):
        job = _job()
        result = job.run()
        tuples_by_iteration = {}
        for record in result.store.qp_rates:
            key = round(record.time_s, 6)
            tuples_by_iteration.setdefault(key, set()).add(
                record.five_tuple)
        distinct = set()
        for tuples in tuples_by_iteration.values():
            distinct |= tuples
        # As many distinct five-tuples as QPs, not per-iteration ones.
        assert len(distinct) == len(result.store.jobs["job0"].qps())

    def test_metadata_matches_flow_tuples(self):
        job = _job()
        result = job.run()
        meta_tuples = {qp.five_tuple
                       for qp in result.store.jobs["job0"].qps()}
        seen = {record.five_tuple for record in result.store.qp_rates}
        assert seen == meta_tuples


class TestExpectedTimes:
    def test_expected_comm_matches_clean_run(self):
        job = _job()
        result = job.run()
        last = max(r.iteration for r in result.store.nccl_timeline)
        comm_times = [r.comm_time_s
                      for r in result.store.timeline_for(
                          "job0", iteration=last)]
        assert max(comm_times) \
            == pytest.approx(result.expected_comm_s, rel=0.05)

    def test_compute_noise_bounded(self):
        result = _job().run()
        for record in result.store.nccl_timeline:
            assert 0.4 < record.compute_time_s < 0.6


class TestAbortSemantics:
    def test_fail_stop_halts_at_fault_iteration(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP, HOSTS[0],
                          at_iteration=2)
        result = _job(fault=fault).run()
        assert result.aborted
        assert result.completed_iterations == 2
        iterations = {r.iteration for r in result.store.nccl_timeline}
        assert max(iterations) == 2  # the failing iteration is logged

    def test_hang_stops_progress_without_abort(self):
        fault = FaultSpec(RootCause.CCL_BUG, Manifestation.FAIL_HANG,
                          HOSTS[1], at_iteration=1)
        result = _job(fault=fault).run()
        assert result.hung
        assert not result.aborted
        last = max(r.iteration for r in result.store.iterations)
        report = [r for r in result.store.iterations
                  if r.iteration == last][0]
        assert not report.completed

    def test_fail_on_start_logs_iteration_zero_only(self):
        fault = FaultSpec(RootCause.HOST_ENV_CONFIG,
                          Manifestation.FAIL_ON_START, HOSTS[0],
                          at_iteration=0)
        result = _job(fault=fault).run()
        assert result.completed_iterations == 0
        assert {r.iteration for r in result.store.iterations} == {0}


class TestEffects:
    def test_switch_storm_degrades_capacity(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        topo = fabric.topology
        tor = "p0.b0.r0.g0.tor"
        before = [link.capacity_gbps for link in topo.links_of(tor)]
        fault = FaultSpec(RootCause.SWITCH_CONFIG,
                          Manifestation.FAIL_SLOW, tor, at_iteration=1)
        MonitoredTrainingJob(
            fabric, JobConfig(hosts=HOSTS, iterations=3),
            fault=fault).run()
        after = [link.capacity_gbps for link in topo.links_of(tor)]
        assert all(b > a for a, b in zip(after, before))

    def test_link_down_marks_link_unhealthy(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        fault = FaultSpec(RootCause.OPTICAL_FIBER,
                          Manifestation.FAIL_STOP, "link:0",
                          at_iteration=1)
        MonitoredTrainingJob(
            fabric, JobConfig(hosts=HOSTS, iterations=3),
            fault=fault).run()
        assert not fabric.topology.links[0].healthy

    def test_nic_fail_slow_keeps_traffic_flowing(self):
        fault = FaultSpec(RootCause.NIC_ERROR, Manifestation.FAIL_SLOW,
                          HOSTS[1], at_iteration=1)
        result = _job(fault=fault).run()
        assert not result.aborted
        # The flaky host's QPs still carry (slow) traffic.
        rates = [r.rate_gbps for r in result.store.qp_rates
                 if r.host == HOSTS[1] and r.time_s > 0.5]
        assert rates
        assert all(rate > 0 for rate in rates)

    def test_effect_override_respected(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_SLOW, HOSTS[0],
                          effect_override=Effect.PCIE_PFC_STORM)
        assert fault.effect is Effect.PCIE_PFC_STORM
        result = _job(fault=fault).run()
        sensors = result.store.sensors_for(HOSTS[0])
        assert sensors[-1].pcie_errors > 0

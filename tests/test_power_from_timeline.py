"""Tests for deriving power traces from Seer timelines (Fig 15 loop)."""

import numpy as np
import pytest

from repro.power import GpuSpec, power_from_timeline
from repro.seer import (
    LLAMA3_70B,
    NetworkSuite,
    OpType,
    ParallelismConfig,
    Seer,
    Timeline,
)
from repro.seer.timeline import TimelineEntry

GPU = GpuSpec(tdp_watts=500.0)


def _manual_timeline(entries):
    timeline = Timeline(graph_name="manual")
    timeline.entries.extend(entries)
    return timeline


def _entry(op_id, name, op_type, start, end, device="d0",
           stream="compute"):
    return TimelineEntry(op_id=op_id, name=name, device=device,
                         stream=stream, op_type=op_type, start_s=start,
                         end_s=end)


class TestPowerFromTimeline:
    def test_compute_hot_comm_cool(self):
        timeline = _manual_timeline([
            _entry(0, "gemm", OpType.COMPUTE, 0.0, 1.0),
            _entry(1, "allreduce", OpType.COMMUNICATION, 1.0, 2.0,
                   stream="comm"),
        ])
        trace = power_from_timeline(timeline, GPU, smooth_tau_s=0.0)
        compute = trace.watts[(trace.times_s > 0.1)
                              & (trace.times_s < 0.9)]
        comm = trace.watts[(trace.times_s > 1.1)
                           & (trace.times_s < 1.9)]
        assert np.mean(compute) > 1.0 * GPU.tdp_watts
        assert np.mean(comm) < 0.5 * GPU.tdp_watts

    def test_overlap_draws_maximum(self):
        timeline = _manual_timeline([
            _entry(0, "gemm", OpType.COMPUTE, 0.0, 1.0),
            _entry(1, "prefetch", OpType.COMMUNICATION, 0.0, 1.0,
                   stream="comm"),
        ])
        trace = power_from_timeline(timeline, GPU, smooth_tau_s=0.0)
        mid = trace.watts[(trace.times_s > 0.2)
                          & (trace.times_s < 0.8)]
        assert np.all(mid == pytest.approx(1.04 * GPU.tdp_watts))

    def test_idle_gap_near_idle_power(self):
        timeline = _manual_timeline([
            _entry(0, "a", OpType.COMPUTE, 0.0, 0.5),
            _entry(1, "b", OpType.COMPUTE, 2.0, 2.5),
        ])
        trace = power_from_timeline(timeline, GPU, smooth_tau_s=0.0)
        gap = trace.watts[(trace.times_s > 1.0)
                          & (trace.times_s < 1.8)]
        assert np.mean(gap) < 0.2 * GPU.tdp_watts

    def test_unknown_device_rejected(self):
        timeline = _manual_timeline([
            _entry(0, "a", OpType.COMPUTE, 0.0, 1.0)])
        with pytest.raises(ValueError):
            power_from_timeline(timeline, GPU, device="ghost")

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError):
            power_from_timeline(Timeline(graph_name="empty"), GPU)

    def test_invalid_sample_rate(self):
        timeline = _manual_timeline([
            _entry(0, "a", OpType.COMPUTE, 0.0, 1.0)])
        with pytest.raises(ValueError):
            power_from_timeline(timeline, GPU, sample_hz=0)


class TestForecastDrivenPower:
    """Close the loop: Seer forecast -> power trace (Figure 15a from
    first principles rather than canned phases)."""

    @pytest.fixture(scope="class")
    def trace(self):
        seer = Seer(gpu="H800", network=NetworkSuite())
        forecast = seer.forecast_training(
            LLAMA3_70B,
            ParallelismConfig(tp=8, pp=4, dp=2, microbatches=8))
        return power_from_timeline(forecast.timeline, GPU,
                                   device="stage1")

    def test_peak_near_tdp(self, trace):
        assert trace.peak_watts > 0.95 * GPU.tdp_watts

    def test_mean_below_peak_due_to_comm_and_bubbles(self, trace):
        assert trace.mean_watts < 0.9 * trace.peak_watts

    def test_energy_positive(self, trace):
        assert trace.energy_joules() > 0

"""The seeded fuzz campaign: generator determinism, spec round-trip,
oracle coverage, and failure reporting."""

import pytest

from repro.network import reset_flow_ids
from repro.validation import (
    PROFILES,
    ScenarioGenerator,
    ScenarioSpec,
    build_flows,
    build_topology,
    run_campaign,
    run_case,
)
from repro.validation import runner as runner_module


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


class TestScenarioGenerator:
    def test_same_seed_same_specs(self):
        first = ScenarioGenerator(5).specs(8)
        second = ScenarioGenerator(5).specs(8)
        assert first == second

    def test_different_seeds_differ(self):
        assert ScenarioGenerator(5).spec(0) != ScenarioGenerator(6).spec(0)

    def test_profiles_cycle(self):
        specs = ScenarioGenerator(1).specs(len(PROFILES))
        assert tuple(spec.profile for spec in specs) == PROFILES

    def test_spec_json_round_trip(self):
        for index in range(len(PROFILES)):
            spec = ScenarioGenerator(9).spec(index)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_repro_command_names_seed_and_case(self):
        spec = ScenarioGenerator(13).spec(4)
        assert spec.repro_command == "repro validate --seed 13 --case 4"

    def test_specs_build_and_route(self):
        """Every sampled scenario is valid: topology builds, flows
        resolve paths (reachability holds per family)."""
        from repro.network import Fabric
        for index in range(10):
            spec = ScenarioGenerator(3).spec(index)
            topology = build_topology(spec)
            if spec.profile == "collective":
                assert spec.collective is not None
                continue
            fabric = Fabric(topology)
            flows = build_flows(spec)
            paths = fabric.resolve_paths(flows)
            assert len(paths) == len(flows)

    def test_flow_ids_stable_across_rebuilds(self):
        spec = ScenarioGenerator(3).spec(1)
        first = [flow.flow_id for flow in build_flows(spec)]
        second = [flow.flow_id for flow in build_flows(spec)]
        assert first == second


class TestCampaign:
    def test_smoke_campaign_all_green(self):
        report = run_campaign(seed=7, n_cases=10, fast=True)
        assert report.ok, [str(v) for case in report.failures
                           for v in case.violations]
        assert {case.profile for case in report.cases} == set(PROFILES)

    def test_case_report_serialises(self):
        case = run_case(seed=7, index=0, fast=True)
        data = case.to_dict()
        assert data["ok"] is True
        assert data["repro"] == "repro validate --seed 7 --case 0"
        assert data["spec"]["profile"] == "batch"

    def test_crash_becomes_finding_with_repro(self, monkeypatch):
        def boom(spec, fast):
            raise RuntimeError("synthetic crash")

        monkeypatch.setitem(runner_module._BATTERIES, "batch", boom)
        case = run_case(seed=7, index=0)
        assert not case.ok
        assert case.violations[0].oracle == "no-crash"
        assert "synthetic crash" in case.violations[0].detail
        assert case.repro_command == "repro validate --seed 7 --case 0"

    def test_explicit_indices(self):
        report = run_campaign(seed=7, n_cases=0, indices=[3, 8],
                              fast=True)
        assert [case.index for case in report.cases] == [3, 8]

    def test_campaign_report_counts(self):
        report = run_campaign(seed=7, n_cases=5, fast=True)
        data = report.to_dict()
        assert data["n_cases"] == 5
        assert data["n_failures"] == 0
        assert data["ok"] is True


@pytest.mark.slow
class TestFuzzSweep:
    """The long sweeps CI runs nightly; excluded from tier-1."""

    @pytest.mark.parametrize("seed", [7, 11, 23])
    def test_fifty_cases_per_seed(self, seed):
        report = run_campaign(seed=seed, n_cases=50)
        assert report.ok, [
            (case.index, str(v))
            for case in report.failures for v in case.violations]

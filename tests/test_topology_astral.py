"""Tests for the Astral topology builder (paper §2.1, Figure 3)."""

import pytest

from repro.topology import (
    AstralParams,
    DeviceKind,
    TopologyError,
    build_astral,
)


@pytest.fixture(scope="module")
def tiny():
    return build_astral(AstralParams.tiny())


@pytest.fixture(scope="module")
def small():
    return build_astral(AstralParams.small())


class TestParams:
    def test_paper_scale_totals(self):
        params = AstralParams()
        assert params.total_gpus == 512 * 1024
        assert params.gpus_per_pod == 64 * 1024
        assert params.gpus_per_block == 1024
        assert params.rail_size == 8 * 1024

    def test_rail_size_is_8k_at_paper_scale(self):
        # §2.1: "currently supporting up to 8K GPUs within a single rail".
        assert AstralParams().rail_size == 8192

    def test_oversubscription_builder(self):
        params = AstralParams.tiny().with_oversubscription(3.0)
        assert params.tier3_oversubscription == 3.0

    def test_invalid_oversubscription_rejected(self):
        with pytest.raises(ValueError):
            AstralParams.tiny().with_oversubscription(0.5)


class TestStructure:
    def test_device_counts(self, tiny):
        params = AstralParams.tiny()
        hosts = tiny.hosts()
        assert len(hosts) == params.pods * params.blocks_per_pod \
            * params.hosts_per_block
        tors = tiny.switches(DeviceKind.TOR)
        assert len(tors) == params.pods * params.blocks_per_pod \
            * params.rails * params.tor_groups
        aggs = tiny.switches(DeviceKind.AGG)
        assert len(aggs) == params.pods * params.rails \
            * params.tor_groups * params.aggs_per_group
        cores = tiny.switches(DeviceKind.CORE)
        assert len(cores) == params.core_groups * params.cores_per_group

    def test_gpu_count(self, tiny):
        assert tiny.gpu_count() == AstralParams.tiny().total_gpus

    def test_host_has_one_nic_per_rail(self, tiny):
        host = tiny.hosts()[0]
        rails = sorted(nic.rail for nic in host.nics)
        assert rails == list(range(AstralParams.tiny().gpus_per_host))

    def test_p3_dual_tor_nic_wiring(self, tiny):
        """Each host reaches two *different* ToRs per rail (P3)."""
        params = AstralParams.tiny()
        host = tiny.hosts()[0]
        for rail in range(params.rails):
            tors = {
                neighbor.name
                for _, neighbor in tiny.neighbors(host.name)
                if neighbor.rail == rail
            }
            assert len(tors) == params.nic_ports

    def test_tor_is_rail_dedicated(self, tiny):
        """All hosts below a ToR connect on the same rail (P1 substrate)."""
        for tor in tiny.switches(DeviceKind.TOR):
            assert tor.rail is not None

    def test_agg_serves_one_rail(self, tiny):
        """Tier-2 aggregation is same-rail (P1)."""
        for agg in tiny.switches(DeviceKind.AGG):
            downstream_rails = {
                neighbor.rail
                for _, neighbor in tiny.neighbors(agg.name)
                if neighbor.kind is DeviceKind.TOR
            }
            assert downstream_rails == {agg.rail}

    def test_agg_reaches_every_block_of_pod(self, tiny):
        params = AstralParams.tiny()
        agg = tiny.switches(DeviceKind.AGG)[0]
        blocks = {
            neighbor.block
            for _, neighbor in tiny.neighbors(agg.name)
            if neighbor.kind is DeviceKind.TOR
        }
        assert blocks == set(range(params.blocks_per_pod))

    def test_same_rank_aggs_share_core_group(self, tiny):
        """§2.1 cluster side: same-rank Aggs meet at one core group."""
        for core in tiny.switches(DeviceKind.CORE):
            ranks = {
                neighbor.rank
                for _, neighbor in tiny.neighbors(core.name)
                if neighbor.kind is DeviceKind.AGG
            }
            assert len(ranks) == 1
            assert ranks == {core.group}


class TestBandwidth:
    def test_p2_no_oversubscription_by_default(self, small):
        """P2: identical aggregated bandwidth at every switching tier."""
        for kind in (DeviceKind.TOR, DeviceKind.AGG):
            assert small.oversubscription(kind) == pytest.approx(1.0)

    def test_tier3_oversubscription_applied(self):
        topo = build_astral(
            AstralParams.tiny().with_oversubscription(4.0))
        assert topo.oversubscription(DeviceKind.AGG) == pytest.approx(4.0)

    def test_core_has_no_uplinks(self, tiny):
        assert tiny.oversubscription(DeviceKind.CORE) == float("inf")

    def test_host_tor_tier_capacity(self, tiny):
        params = AstralParams.tiny()
        expected = (len(tiny.hosts()) * params.rails * params.nic_ports
                    * params.nic_port_gbps)
        got = tiny.tier_bandwidth_gbps(DeviceKind.HOST, DeviceKind.TOR)
        assert got == pytest.approx(expected)


class TestTopologyPrimitives:
    def test_duplicate_device_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny_copy = build_astral(AstralParams.tiny())
            device = tiny_copy.hosts()[0]
            tiny_copy.add_device(device)

    def test_unknown_device_lookup_raises(self, tiny):
        with pytest.raises(TopologyError):
            tiny.device("nonexistent")

    def test_fail_link_bumps_version_and_hides_link(self):
        topo = build_astral(AstralParams.tiny())
        version = topo.version
        host = topo.hosts()[0]
        link = topo.links_of(host.name)[0]
        topo.fail_link(link.link_id)
        assert topo.version == version + 1
        neighbor_links = [l for l, _ in topo.neighbors(host.name)]
        assert link.link_id not in [l.link_id for l in neighbor_links]
        topo.restore_link(link.link_id)
        assert topo.links[link.link_id].healthy

    def test_link_other_endpoint(self, tiny):
        link = next(iter(tiny.links.values()))
        assert link.other(link.a.device) == link.b.device
        assert link.other(link.b.device) == link.a.device
        with pytest.raises(TopologyError):
            link.other("nope")

"""Tests for the cross-datacenter extension (Appendix B)."""

import pytest

from repro.network import EcmpRouter, Fabric, make_flow, reset_flow_ids
from repro.topology import (
    AstralParams,
    CrossDcParams,
    DeviceKind,
    FiberCostModel,
    build_cross_dc,
)


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


@pytest.fixture(scope="module")
def topo():
    return build_cross_dc(CrossDcParams())


class TestStructure:
    def test_two_complete_fabrics(self, topo):
        per_dc = AstralParams.tiny().total_gpus
        assert topo.gpu_count() == 2 * per_dc
        datacenters = {h.datacenter for h in topo.hosts()}
        assert datacenters == {0, 1}

    def test_dci_routers_exist(self, topo):
        dcis = topo.switches(DeviceKind.DCI)
        assert len(dcis) == 4  # 2 DCs x 2 DCIs
        assert {d.datacenter for d in dcis} == {0, 1}

    def test_device_names_prefixed(self, topo):
        assert "dc0.p0.b0.h0" in topo.devices
        assert "dc1.p0.b0.h0" in topo.devices

    def test_host_nics_renamed_consistently(self, topo):
        host = topo.devices["dc1.p0.b0.h0"]
        for nic in host.nics:
            assert nic.host == host.name
            assert nic.name.startswith("dc1.")

    def test_single_dc_rejected(self):
        with pytest.raises(ValueError):
            build_cross_dc(CrossDcParams(n_datacenters=1))

    def test_oversubscription_property(self):
        params = CrossDcParams(fiber_gbps=800.0, dci_per_datacenter=2)
        assert params.oversubscription > 1.0


class TestCrossDcRouting:
    def test_intra_dc_flow_stays_local(self, topo):
        router = EcmpRouter(topo)
        flow = make_flow("dc0.p0.b0.h0", "dc0.p0.b1.h0", rail=0,
                         size_bits=8e9)
        path = router.path(flow)
        assert all(device.startswith("dc0.")
                   for device in path.devices)

    def test_cross_dc_flow_traverses_dci_pair(self, topo):
        router = EcmpRouter(topo)
        flow = make_flow("dc0.p0.b0.h0", "dc1.p0.b0.h0", rail=0,
                         size_bits=8e9)
        path = router.path(flow, max_hops=24)
        kinds = [topo.devices[d].kind for d in path.devices]
        assert kinds.count(DeviceKind.DCI) == 2
        assert path.devices[0].startswith("dc0.")
        assert path.devices[-1].startswith("dc1.")

    def test_cross_dc_bandwidth_bottleneck(self, topo):
        """The long-haul link caps cross-DC flow rates."""
        fabric = Fabric(topo)
        flows = [
            make_flow(f"dc0.p0.b0.h{h}", f"dc1.p0.b0.h{h}", rail=0,
                      size_bits=8e9, src_port=50000 + h)
            for h in range(2)
        ]
        paths = {f.flow_id: fabric.router.path(f, max_hops=24)
                 for f in flows}
        rates = fabric.max_min_rates(flows, paths)
        # Each DCI downlink leg carries fiber/len(attach) capacity;
        # rates are finite and positive.
        assert all(0 < rate <= 200.0 for rate in rates.values())


class TestFiberCost:
    def test_paper_rental_record(self):
        """~70 $/km/month; 300 km ~ 250K$ a year (one fiber)."""
        model = FiberCostModel()
        yearly = model.yearly_cost_usd(300.0)
        assert yearly == pytest.approx(252_000.0)

    def test_fibers_for_bandwidth(self):
        model = FiberCostModel()
        assert model.fibers_for_bandwidth(1600.0,
                                          gbps_per_fiber=400.0) == 4
        assert model.fibers_for_bandwidth(0.0) == 0

    def test_invalid_inputs(self):
        model = FiberCostModel()
        with pytest.raises(ValueError):
            model.monthly_cost_usd(-1.0)
        with pytest.raises(ValueError):
            model.fibers_for_bandwidth(100.0, gbps_per_fiber=0.0)

"""``repro farm`` and the farmed ``repro validate`` flags."""

import json

import pytest

from repro.cli import main
from repro.network import reset_flow_ids


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def _write_specfile(tmp_path, document):
    path = tmp_path / "specs.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


class TestFarmCommand:
    def test_tasks_and_sweep_document(self, tmp_path, capsys):
        specfile = _write_specfile(tmp_path, {
            "tasks": [{"kind": "figure-bench",
                       "params": {"figure": "pue"}}],
            "sweep": {"kind": "cluster-sweep",
                      "base": {"scale": "tiny", "jobs": 4},
                      "grid": {"policy": ["fifo", "topology"]},
                      "seeds": [0]},
        })
        out_json = tmp_path / "report.json"
        assert main(["farm", specfile, "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "3 tasks: 3 ok" in out
        data = json.loads(out_json.read_text())
        assert data["ok"] is True
        assert data["n_tasks"] == 3
        assert {r["spec"]["kind"] for r in data["results"]} \
            == {"figure-bench", "cluster-sweep"}

    def test_warm_rerun_serves_from_cache(self, tmp_path, capsys):
        specfile = _write_specfile(tmp_path, {
            "tasks": [{"kind": "figure-bench",
                       "params": {"figure": "goodput"}}]})
        cache_dir = str(tmp_path / "cache")
        assert main(["farm", specfile, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["farm", specfile, "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 from cache, 0 executed" in out

    def test_failing_task_sets_exit_code(self, tmp_path, capsys):
        specfile = _write_specfile(tmp_path, {
            "tasks": [{"kind": "figure-bench",
                       "params": {"figure": "nope"}}]})
        assert main(["farm", specfile, "--no-cache",
                     "--cache-dir", str(tmp_path / "cache")]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "ValueError" in out

    def test_unknown_kind_is_a_clean_failure(self, tmp_path, capsys):
        specfile = _write_specfile(tmp_path, {
            "tasks": [{"kind": "warp-drive", "params": {}}]})
        with pytest.raises(Exception):
            main(["farm", specfile,
                  "--cache-dir", str(tmp_path / "cache")])


class TestValidateFarmFlags:
    def test_workers_flag_matches_serial_output(self, tmp_path,
                                                capsys):
        assert main(["validate", "--seed", "7", "--cases", "3",
                     "--fast"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["validate", "--seed", "7", "--cases", "3",
                     "--fast", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        parallel_out = capsys.readouterr().out
        assert "3 cases, 0 failing" in serial_out
        assert "3 cases, 0 failing" in parallel_out
        assert "cache:" in parallel_out

    def test_per_case_timing_is_printed(self, capsys):
        assert main(["validate", "--seed", "7", "--cases", "2",
                     "--fast"]) == 0
        out = capsys.readouterr().out
        # Each case row carries its wall-clock; the footer the rate.
        assert out.count("s)") >= 2
        assert "cases/s" in out

    def test_json_report_carries_farm_stats(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        cache_dir = str(tmp_path / "cache")
        for _ in range(2):
            assert main(["validate", "--seed", "7", "--cases", "3",
                         "--fast", "--workers", "2",
                         "--cache-dir", cache_dir,
                         "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["ok"] is True
        # Second run is fully warm: zero simulations executed.
        assert data["farm"]["cache_hits"] == 3
        assert data["farm"]["n_executed"] == 0

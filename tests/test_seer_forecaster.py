"""Tests for the Seer facade: accuracy, speed, and case-study trends
(§4.3, §4.4, Figures 12/13/14)."""

import time

import pytest

from repro.seer import (
    DEEPSEEK_MOE,
    GPT3_175B,
    HUNYUAN_MOE,
    LLAMA3_70B,
    NetworkSuite,
    ParallelismConfig,
    Seer,
)


@pytest.fixture(scope="module")
def seer():
    return Seer(gpu="H800", network=NetworkSuite(), corrected=True)


@pytest.fixture(scope="module")
def uncorrected():
    return Seer(gpu="H800", network=NetworkSuite(), corrected=False)


GPT3_PAR = ParallelismConfig(tp=8, pp=8, dp=16, microbatches=16)
HUNYUAN_PAR = ParallelismConfig(tp=4, pp=4, dp=8, ep=16, microbatches=8)


class TestForecastBasics:
    def test_iteration_time_positive(self, seer):
        forecast = seer.forecast_training(GPT3_175B, GPT3_PAR)
        assert forecast.iteration_time_s > 0
        assert forecast.tokens_per_s > 0

    def test_forecast_within_seconds(self, seer):
        """Headline: Seer forecasts within seconds (vs hours/days for
        packet-level simulators)."""
        start = time.monotonic()
        seer.forecast_training(GPT3_175B, GPT3_PAR)
        assert time.monotonic() - start < 5.0

    def test_comm_partially_overlapped(self, seer):
        """Communication overlaps with computation: the exposed share
        must be well below 100% (the paper reports ~15% in production,
        where TP collectives are faster relative to compute)."""
        forecast = seer.forecast_training(GPT3_175B, GPT3_PAR)
        assert 0.0 < forecast.exposed_comm_fraction() < 0.8

    def test_more_microbatches_improve_throughput(self, seer):
        few = seer.forecast_training(
            GPT3_175B, ParallelismConfig(tp=8, pp=8, dp=1,
                                         microbatches=8))
        many = seer.forecast_training(
            GPT3_175B, ParallelismConfig(tp=8, pp=8, dp=1,
                                         microbatches=32))
        assert many.throughput_per_gpu > few.throughput_per_gpu

    def test_detail_and_aggregate_agree_roughly(self, seer):
        parallel = ParallelismConfig(tp=8, pp=2, dp=1, microbatches=4)
        coarse = seer.forecast_training(LLAMA3_70B, parallel)
        fine = seer.forecast_training(LLAMA3_70B, parallel, detail=True)
        ratio = fine.iteration_time_s / coarse.iteration_time_s
        assert 0.5 < ratio < 2.0


class TestAccuracy:
    def test_hunyuan_deviation_sub_percent(self, seer):
        """Figure 12: ~0.3% deviation on the Hunyuan model."""
        deviation = seer.accuracy_deviation(HUNYUAN_MOE, HUNYUAN_PAR)
        assert deviation < 0.01

    def test_dense_models_acceptable(self, seer):
        for model, parallel in (
            (GPT3_175B, GPT3_PAR),
            (LLAMA3_70B, ParallelismConfig(tp=8, pp=4, dp=4,
                                           microbatches=8)),
        ):
            assert seer.accuracy_deviation(model, parallel) < 0.02

    def test_moe_deviation_higher_than_hunyuan(self, seer):
        """DeepSeek-class MoE: 'relatively higher due to unpredictable
        expert selection'."""
        deepseek = seer.accuracy_deviation(
            DEEPSEEK_MOE,
            ParallelismConfig(tp=1, pp=1, dp=8, ep=8, microbatches=8))
        hunyuan = seer.accuracy_deviation(HUNYUAN_MOE, HUNYUAN_PAR)
        assert deepseek > hunyuan

    def test_uncorrected_deviates_far_more(self, seer, uncorrected):
        """§5: the basic model deviates >5% once communication (and, on
        a simulated substrate, everything else) bottlenecks."""
        testbed = uncorrected.testbed_training(GPT3_175B, GPT3_PAR)
        basic = uncorrected.forecast_training(GPT3_175B, GPT3_PAR)
        basic_dev = abs(basic.iteration_time_s
                        - testbed.iteration_time_s) \
            / testbed.iteration_time_s
        corrected_dev = seer.accuracy_deviation(GPT3_175B, GPT3_PAR)
        assert basic_dev > 0.05
        assert corrected_dev < basic_dev / 5


class TestCaseStudyTrends:
    def test_cross_dc_pp_cheap_dp_overlappable(self):
        """Figure 13 shape: both PP and DP tolerate cross-DC placement;
        ZeRO-DP does not."""
        base_net = NetworkSuite().with_cross_dc(8.0, rtt_ms=3.0)
        results = {}
        for dim, zero in (("pp", 0), ("dp", 0), ("dp", 3)):
            par = ParallelismConfig(tp=8, pp=4, dp=4, microbatches=16,
                                    zero_stage=zero,
                                    cross_dc_dimension=dim)
            seer_x = Seer(gpu="H800", network=base_net)
            tag = f"zero-{dim}" if zero else dim
            results[tag] = seer_x.forecast_training(
                LLAMA3_70B, par).iteration_time_s
        baseline = Seer(gpu="H800", network=NetworkSuite()) \
            .forecast_training(
                LLAMA3_70B,
                ParallelismConfig(tp=8, pp=4, dp=4, microbatches=16)) \
            .iteration_time_s
        # PP and DP lose little; ZeRO-DP loses clearly more.
        assert results["pp"] < baseline * 1.15
        assert results["dp"] < baseline * 1.15
        assert results["zero-dp"] > max(results["pp"], results["dp"])

    def test_intra_host_scale_helps_moe_more(self):
        """Figure 14a/b: the MoE model benefits more from a larger HB
        domain than GPT-3."""
        def gain(model, parallel):
            small = Seer(gpu="H800",
                         network=NetworkSuite().with_intra_host_size(8))
            large = Seer(gpu="H800",
                         network=NetworkSuite()
                         .with_intra_host_size(64))
            t_small = small.forecast_training(model, parallel) \
                .iteration_time_s
            t_large = large.forecast_training(model, parallel) \
                .iteration_time_s
            return (t_small - t_large) / t_small

        gpt3_gain = gain(GPT3_175B,
                         ParallelismConfig(tp=8, pp=4, dp=2,
                                           microbatches=8))
        moe_gain = gain(HUNYUAN_MOE,
                        ParallelismConfig(tp=4, pp=4, dp=2, ep=16,
                                          microbatches=8))
        assert moe_gain > gpt3_gain

    def test_inference_prefill_faster_per_token_than_decode(self, seer):
        forecast = seer.forecast_inference(
            LLAMA3_70B, ParallelismConfig(tp=8, pp=1, dp=1),
            batch=8, context_len=2048)
        assert forecast.prefill_tokens_per_s \
            > 10 * forecast.decode_tokens_per_s

    def test_oversubscription_slows_cross_pod_moe_training(self):
        """Figure 2 right: with a fragmented (cross-pod) placement,
        tier-3 oversubscription costs training performance; the MoE
        model's all-to-all makes it sensitive."""
        par = ParallelismConfig(tp=4, pp=4, dp=2, ep=16,
                                microbatches=8)
        flat = Seer(gpu="H800",
                    network=NetworkSuite(cross_pod_fraction=0.5))
        oversub = Seer(
            gpu="H800",
            network=NetworkSuite(cross_pod_fraction=0.5,
                                 tier3_oversubscription=3.0))
        t_flat = flat.forecast_training(HUNYUAN_MOE, par) \
            .iteration_time_s
        t_over = oversub.forecast_training(HUNYUAN_MOE, par) \
            .iteration_time_s
        assert t_over > t_flat


class TestSeerConfiguration:
    def test_gpu_by_name_or_suite(self):
        from repro.seer import gpu_suite
        by_name = Seer(gpu="A100", corrected=False)
        by_suite = Seer(gpu=gpu_suite("A100"), corrected=False)
        assert by_name.gpu == by_suite.gpu

    def test_forecast_handcrafted_graph(self, seer):
        from repro.seer import OperatorGraph, OpType
        graph = OperatorGraph(name="custom")
        a = graph.add("SA", OpType.COMPUTE, flops=1e12,
                      bytes_accessed=1e8)
        graph.add("MLP", OpType.COMPUTE, deps=[a.op_id], flops=2e12,
                  bytes_accessed=2e8)
        timeline = seer.forecast_graph(graph)
        assert timeline.total_time_s > 0
        assert len(timeline.entries) == 2


class TestTimeToTrain:
    def test_token_budget_to_wallclock(self, seer):
        forecast = seer.forecast_training(GPT3_175B, GPT3_PAR)
        seconds = forecast.time_to_train_s(1e12)  # a trillion tokens
        days = seconds / 86400
        assert 0 < days < 10_000
        # Consistency: tokens/s x time == budget.
        assert forecast.tokens_per_s * seconds == pytest.approx(1e12)

    def test_gpu_hours_scale_with_world_size(self, seer):
        small = seer.forecast_training(
            GPT3_175B, ParallelismConfig(tp=8, pp=8, dp=1,
                                         microbatches=16))
        big = seer.forecast_training(
            GPT3_175B, ParallelismConfig(tp=8, pp=8, dp=16,
                                         microbatches=16))
        # More GPUs finish faster but burn similar total GPU-hours
        # (within the near-linear-scaling regime).
        budget = 1e11
        assert big.time_to_train_s(budget) \
            < small.time_to_train_s(budget)
        ratio = big.gpu_hours(budget) / small.gpu_hours(budget)
        assert 0.9 < ratio < 1.3

    def test_negative_budget_rejected(self, seer):
        forecast = seer.forecast_training(GPT3_175B, GPT3_PAR)
        with pytest.raises(ValueError):
            forecast.time_to_train_s(-1.0)


class TestInterleavedPipeline:
    def test_virtual_stages_reduce_bubbles(self, seer):
        """Megatron-interleaved 1F1B: with few microbatches, splitting
        each stage into model chunks shrinks pipeline bubbles."""
        times = {}
        for virtual in (1, 2, 4):
            parallel = ParallelismConfig(tp=8, pp=8, dp=1,
                                         microbatches=8,
                                         virtual_stages=virtual)
            times[virtual] = seer.forecast_training(
                GPT3_175B, parallel).iteration_time_s
        assert times[2] < times[1]
        assert times[4] < times[2]

    def test_interleaving_irrelevant_without_pipeline(self, seer):
        a = seer.forecast_training(
            GPT3_175B, ParallelismConfig(tp=8, pp=1, dp=1,
                                         microbatches=4))
        b = seer.forecast_training(
            GPT3_175B, ParallelismConfig(tp=8, pp=1, dp=1,
                                         microbatches=4,
                                         virtual_stages=2))
        assert b.iteration_time_s == pytest.approx(
            a.iteration_time_s, rel=0.05)

    def test_chunks_must_divide_layers(self):
        from repro.seer import build_training_graph
        with pytest.raises(ValueError):
            build_training_graph(
                GPT3_175B,
                ParallelismConfig(tp=8, pp=8, virtual_stages=5),
                NetworkSuite())

    def test_total_flops_independent_of_interleaving(self, seer):
        from repro.seer import build_training_graph
        flat = build_training_graph(
            GPT3_175B, ParallelismConfig(tp=8, pp=4, microbatches=4),
            NetworkSuite())
        interleaved = build_training_graph(
            GPT3_175B, ParallelismConfig(tp=8, pp=4, microbatches=4,
                                         virtual_stages=3),
            NetworkSuite())
        assert sum(op.flops for op in interleaved) \
            == pytest.approx(sum(op.flops for op in flat))


class TestEnergyIntegration:
    def test_energy_positive_and_bounded(self, seer):
        forecast = seer.forecast_training(
            LLAMA3_70B, ParallelismConfig(tp=8, pp=4, dp=2,
                                          microbatches=8))
        energy = forecast.energy_per_iteration_j(tdp_watts=500.0)
        assert energy > 0
        # Upper bound: every GPU at 1.1x TDP for the whole iteration.
        upper = (forecast.parallel.world_size * 550.0
                 * forecast.iteration_time_s)
        assert energy < upper

    def test_tokens_per_joule_consistent(self, seer):
        forecast = seer.forecast_training(
            LLAMA3_70B, ParallelismConfig(tp=8, pp=4, dp=2,
                                          microbatches=8))
        tpj = forecast.tokens_per_joule()
        assert tpj == pytest.approx(
            forecast.tokens_per_iteration
            / forecast.energy_per_iteration_j())

    def test_interleaving_improves_energy_efficiency(self, seer):
        """Fewer bubbles = less near-idle burn per token."""
        flat = seer.forecast_training(
            GPT3_175B, ParallelismConfig(tp=8, pp=8, dp=1,
                                         microbatches=8))
        interleaved = seer.forecast_training(
            GPT3_175B, ParallelismConfig(tp=8, pp=8, dp=1,
                                         microbatches=8,
                                         virtual_stages=4))
        assert interleaved.tokens_per_joule() \
            > flat.tokens_per_joule()

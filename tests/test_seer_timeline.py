"""Tests for the DES timeline engine: serialization, overlap, pipelines."""

import pytest

from repro.seer import (
    CommKind,
    OperatorGraph,
    OpType,
    Timeline,
    TimelineEngine,
)


class _FixedModel:
    """Execution model with externally chosen durations."""

    def __init__(self, durations):
        self.durations = durations

    def operator_time(self, op):
        return self.durations[op.name]


class TestScheduling:
    def test_dependencies_respected(self):
        graph = OperatorGraph()
        a = graph.add("a", OpType.COMPUTE, device="d0")
        graph.add("b", OpType.COMPUTE, deps=[a.op_id], device="d0")
        timeline = TimelineEngine(_FixedModel({"a": 1.0, "b": 2.0})) \
            .run(graph)
        entries = {e.name: e for e in timeline.entries}
        assert entries["b"].start_s >= entries["a"].end_s
        assert timeline.total_time_s == pytest.approx(3.0)

    def test_same_stream_serializes(self):
        graph = OperatorGraph()
        graph.add("a", OpType.COMPUTE, device="d0")
        graph.add("b", OpType.COMPUTE, device="d0")
        timeline = TimelineEngine(_FixedModel({"a": 1.0, "b": 1.0})) \
            .run(graph)
        assert timeline.total_time_s == pytest.approx(2.0)

    def test_different_devices_parallel(self):
        graph = OperatorGraph()
        graph.add("a", OpType.COMPUTE, device="d0")
        graph.add("b", OpType.COMPUTE, device="d1")
        timeline = TimelineEngine(_FixedModel({"a": 1.0, "b": 1.0})) \
            .run(graph)
        assert timeline.total_time_s == pytest.approx(1.0)

    def test_comm_overlaps_compute(self):
        """Independent comm on its own stream runs under compute."""
        graph = OperatorGraph()
        graph.add("gemm", OpType.COMPUTE, device="d0")
        graph.add("prefetch", OpType.COMMUNICATION, device="d0",
                  stream="comm", comm_kind=CommKind.ALL_GATHER,
                  comm_bytes=1, group_size=2)
        timeline = TimelineEngine(
            _FixedModel({"gemm": 2.0, "prefetch": 1.5})).run(graph)
        assert timeline.total_time_s == pytest.approx(2.0)
        assert timeline.exposed_comm_s("d0") == pytest.approx(0.0)

    def test_exposed_comm_measured(self):
        """Comm serialized after compute is fully exposed."""
        graph = OperatorGraph()
        a = graph.add("gemm", OpType.COMPUTE, device="d0")
        graph.add("ar", OpType.COMMUNICATION, deps=[a.op_id],
                  device="d0", stream="comm",
                  comm_kind=CommKind.ALL_REDUCE, comm_bytes=1,
                  group_size=2)
        timeline = TimelineEngine(
            _FixedModel({"gemm": 1.0, "ar": 0.5})).run(graph)
        assert timeline.exposed_comm_s("d0") == pytest.approx(0.5)

    def test_preset_durations_honored(self):
        graph = OperatorGraph()
        graph.add("handcrafted", OpType.COMPUTE, duration_s=0.25)

        class Boom:
            def operator_time(self, op):
                raise AssertionError("must not be called")

        timeline = TimelineEngine(Boom()).run(graph)
        assert timeline.total_time_s == pytest.approx(0.25)

    def test_deterministic(self):
        graph1 = OperatorGraph()
        graph2 = OperatorGraph()
        for graph in (graph1, graph2):
            a = graph.add("a", OpType.COMPUTE, device="d0")
            graph.add("b", OpType.COMPUTE, device="d0")
            graph.add("c", OpType.COMPUTE, deps=[a.op_id], device="d1")
        model = _FixedModel({"a": 1.0, "b": 2.0, "c": 0.5})
        t1 = TimelineEngine(model).run(graph1)
        t2 = TimelineEngine(model).run(graph2)
        assert [(e.name, e.start_s) for e in t1.entries] \
            == [(e.name, e.start_s) for e in t2.entries]


class TestPipelineBehaviour:
    def _pipeline_graph(self, stages=3, microbatches=4):
        """A minimal fwd pipeline with unit-time stage work."""
        graph = OperatorGraph()
        prev = {}
        for mb in range(microbatches):
            for stage in range(stages):
                deps = []
                if stage > 0:
                    deps = [prev[(stage - 1, mb)]]
                op = graph.add(f"f.s{stage}.m{mb}", OpType.COMPUTE,
                               deps=deps, device=f"s{stage}")
                prev[(stage, mb)] = op.op_id
        return graph

    def test_pipeline_fill_and_drain(self):
        """Total = (stages + microbatches - 1) for unit ops."""
        graph = self._pipeline_graph(stages=3, microbatches=4)
        model = _FixedModel({op.name: 1.0 for op in graph})
        timeline = TimelineEngine(model).run(graph)
        assert timeline.total_time_s == pytest.approx(3 + 4 - 1)

    def test_bubble_fraction_shrinks_with_microbatches(self):
        def bubble(microbatches):
            graph = self._pipeline_graph(stages=4,
                                         microbatches=microbatches)
            model = _FixedModel({op.name: 1.0 for op in graph})
            timeline = TimelineEngine(model).run(graph)
            ideal = float(microbatches)
            return (timeline.total_time_s - ideal) \
                / timeline.total_time_s

        assert bubble(16) < bubble(4)


class TestTimelineQueries:
    def test_entries_for_device_sorted(self):
        graph = OperatorGraph()
        a = graph.add("a", OpType.COMPUTE, device="d0")
        graph.add("b", OpType.COMPUTE, deps=[a.op_id], device="d0")
        timeline = TimelineEngine(_FixedModel({"a": 1.0, "b": 1.0})) \
            .run(graph)
        entries = timeline.entries_for("d0")
        assert [e.name for e in entries] == ["a", "b"]

    def test_busy_and_utilization(self):
        graph = OperatorGraph()
        graph.add("a", OpType.COMPUTE, device="d0")
        graph.add("idlepad", OpType.COMPUTE, device="d1")
        timeline = TimelineEngine(
            _FixedModel({"a": 1.0, "idlepad": 4.0})).run(graph)
        assert timeline.busy_time_s("d0") == pytest.approx(1.0)
        assert timeline.utilization("d0") == pytest.approx(0.25)

    def test_empty_timeline(self):
        timeline = Timeline(graph_name="empty")
        assert timeline.total_time_s == 0.0
        assert timeline.devices() == []

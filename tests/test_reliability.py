"""Tests for the failure/goodput model."""

import math

import pytest

from repro.core import (
    CheckpointPolicy,
    FailureModel,
    training_goodput,
)


class TestFailureModel:
    def test_rate_scales_linearly(self):
        model = FailureModel()
        small = model.cluster_failure_rate_per_hour(1000)
        big = model.cluster_failure_rate_per_hour(10_000)
        assert big == pytest.approx(10 * small)

    def test_mtbf_inverse_of_rate(self):
        model = FailureModel()
        assert model.mtbf_hours(8192) \
            == pytest.approx(1.0 / model.cluster_failure_rate_per_hour(
                8192))

    def test_zero_cluster_never_fails(self):
        assert FailureModel().mtbf_hours(0) == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FailureModel().cluster_failure_rate_per_hour(-1)

    def test_large_job_fails_within_days(self):
        """The production regime: 10K-GPU jobs fail every day or two."""
        mtbf = FailureModel().mtbf_hours(10_000)
        assert 5 < mtbf < 100


class TestCheckpointPolicy:
    def test_young_daly_formula(self):
        policy = CheckpointPolicy(checkpoint_write_s=100.0)
        mtbf = 50.0
        expected = math.sqrt(2 * 100.0 * 50.0 * 3600.0)
        assert policy.optimal_interval_s(mtbf) \
            == pytest.approx(expected)

    def test_fixed_interval_respected(self):
        policy = CheckpointPolicy(interval_s=1800.0)
        assert policy.effective_interval_s(10.0) == 1800.0

    def test_infinite_mtbf_means_no_checkpoints(self):
        policy = CheckpointPolicy()
        assert policy.optimal_interval_s(float("inf")) == float("inf")

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            CheckpointPolicy().optimal_interval_s(0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(interval_s=-5.0).effective_interval_s(1.0)


class TestGoodput:
    def test_goodput_bounded(self):
        report = training_goodput(8192)
        assert 0.0 < report.goodput_fraction < 1.0
        total = (report.goodput_fraction
                 + report.checkpoint_overhead_fraction
                 + report.failure_overhead_fraction)
        assert total == pytest.approx(1.0)

    def test_goodput_decreases_with_scale(self):
        values = [training_goodput(n).goodput_fraction
                  for n in (1024, 8192, 65536)]
        assert values == sorted(values, reverse=True)

    def test_automated_localization_beats_manual(self):
        """The monitoring system's payoff grows with scale."""
        gains = []
        for n_gpus in (1024, 8192, 65536):
            auto = training_goodput(n_gpus, localization="automated")
            manual = training_goodput(n_gpus, localization="manual")
            assert auto.goodput_fraction > manual.goodput_fraction
            gains.append(auto.goodput_fraction
                         - manual.goodput_fraction)
        assert gains[1] > gains[0]  # bigger cluster, bigger payoff

    def test_mid_scale_gain_is_substantial(self):
        """At the paper's 8K-GPU production scale, minutes-vs-days
        localization is worth tens of percent of goodput."""
        auto = training_goodput(8192, localization="automated")
        manual = training_goodput(8192, localization="manual")
        assert auto.goodput_fraction - manual.goodput_fraction > 0.15

    def test_invalid_regime(self):
        with pytest.raises(ValueError):
            training_goodput(1024, localization="psychic")

    def test_localization_hours_reported(self):
        report = training_goodput(8192, localization="automated")
        assert 0 < report.localization_hours_per_failure < 2.0

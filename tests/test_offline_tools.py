"""Tests for the offline toolsets (wiring/config verification, stress
tests) and the MTTLF model (§3.1, §5, Figure 10)."""

import pytest

from repro.monitoring import (
    ConfigInconsistency,
    FaultSpec,
    HostConfig,
    HostHealth,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    MttlfModel,
    OfflineToolset,
    RootCause,
    verify_configs,
    verify_wiring,
)
from repro.network import Fabric, reset_flow_ids
from repro.topology import AstralParams, build_astral


class TestWiringVerify:
    def test_clean_astral_has_no_violations(self):
        topo = build_astral(AstralParams.tiny())
        assert verify_wiring(topo, AstralParams.tiny()) == []

    def test_miswired_host_detected(self):
        reset_flow_ids()
        topo = build_astral(AstralParams.tiny())
        fabric = Fabric(topo)
        fault = FaultSpec(RootCause.WIRE_CONNECTION,
                          Manifestation.FAIL_SLOW, "link:0",
                          at_iteration=1)
        job = MonitoredTrainingJob(
            fabric,
            JobConfig(hosts=("p0.b0.h0", "p0.b0.h1"), iterations=3),
            fault=fault)
        job.run()
        violations = verify_wiring(topo, AstralParams.tiny())
        assert len(violations) == 2  # both swapped cables flagged
        assert all(v.host == "p0.b0.h0" for v in violations)
        assert any("rail" in v.reason for v in violations)


class TestConfigVerify:
    def test_consistent_fleet_passes(self):
        configs = {f"h{i}": HostConfig() for i in range(8)}
        assert verify_configs(configs) == []

    def test_version_drift_detected(self):
        configs = {f"h{i}": HostConfig() for i in range(8)}
        configs["h3"] = HostConfig(nccl_version="2.18.1")
        issues = verify_configs(configs)
        assert issues == [ConfigInconsistency(
            "h3", "nccl_version", "2.18.1", "2.21.5")]

    def test_multiple_fields_detected(self):
        configs = {f"h{i}": HostConfig() for i in range(8)}
        configs["h5"] = HostConfig(driver_version="550.54.14",
                                   pfc_enabled=False)
        issues = verify_configs(configs)
        fields = {issue.fieldname for issue in issues}
        assert fields == {"driver_version", "pfc_enabled"}

    def test_empty_fleet(self):
        assert verify_configs({}) == []


class TestStressTests:
    def test_healthy_host_passes_all(self):
        toolset = OfflineToolset()
        reports = toolset.run_all(["h0"])
        assert all(report.passed for report in reports)

    def test_gpu_defect_caught_by_burn(self):
        toolset = OfflineToolset({"h0": HostHealth(gpu_defect=True)})
        report = toolset.gpu_burn("h0")
        assert not report.passed
        assert "Xid" in report.detail

    def test_pcie_defect_caught_by_hostping(self):
        """The §5 PCIe incident would be caught pre-delivery."""
        toolset = OfflineToolset({"h0": HostHealth(pcie_degraded=True)})
        report = toolset.hostping("h0")
        assert not report.passed
        assert "PCIe" in report.detail

    def test_defective_hosts_listing(self):
        toolset = OfflineToolset({
            "h0": HostHealth(memory_defect=True),
            "h2": HostHealth(nvlink_degraded=True),
        })
        assert toolset.defective_hosts(["h0", "h1", "h2"]) == ["h0", "h2"]


class TestMttlf:
    def test_reductions_match_figure10(self):
        """Fail-stop ~12x, fail-hang ~25x, fail-slow ~5x (Figure 10)."""
        model = MttlfModel(n_hosts=64, jitter_frac=0.0)
        speedups = {
            m: model.manual_hours(m) / model.automated_hours(m)
            for m in (Manifestation.FAIL_STOP, Manifestation.FAIL_HANG,
                      Manifestation.FAIL_SLOW)
        }
        assert 8 <= speedups[Manifestation.FAIL_STOP] <= 13
        assert 18 <= speedups[Manifestation.FAIL_HANG] <= 27
        assert 3.5 <= speedups[Manifestation.FAIL_SLOW] <= 6.5

    def test_automated_stop_and_hang_in_minutes(self):
        """Headline: MTTLF reduced from days to minutes for stop/hang."""
        model = MttlfModel(n_hosts=64, jitter_frac=0.0)
        assert model.automated_hours(Manifestation.FAIL_STOP) < 1.0
        assert model.automated_hours(Manifestation.FAIL_HANG) < 1.5

    def test_manual_hang_matches_war_story(self):
        """§5: several dozen experts, 26 hours of batch replacement."""
        model = MttlfModel(n_hosts=64, jitter_frac=0.0)
        assert model.manual_hours(Manifestation.FAIL_HANG) \
            == pytest.approx(26.0)

    def test_manual_cost_grows_with_cluster(self):
        small = MttlfModel(n_hosts=16, jitter_frac=0.0)
        large = MttlfModel(n_hosts=1024, jitter_frac=0.0)
        assert large.manual_hours(Manifestation.FAIL_HANG) \
            > small.manual_hours(Manifestation.FAIL_HANG)

    def test_unlocalized_diagnosis_pays_fallback(self):
        from repro.monitoring import Diagnosis
        model = MttlfModel(n_hosts=64, jitter_frac=0.0)
        bad = Diagnosis(job="j")  # not localized
        good = Diagnosis(job="j", root_cause_device="h0")
        good.drill_down_steps = bad.drill_down_steps = 5
        assert model.automated_hours(Manifestation.FAIL_SLOW, bad) \
            > model.automated_hours(Manifestation.FAIL_SLOW, good)

    def test_campaign_report_aggregates(self):
        model = MttlfModel(n_hosts=64, seed=1)
        manifestations = [Manifestation.FAIL_STOP] * 10 \
            + [Manifestation.FAIL_HANG] * 5
        report = model.campaign(manifestations)
        assert len(report.samples) == 15
        assert report.mean_speedup(Manifestation.FAIL_STOP) > 5
        assert report.mean_hours(Manifestation.FAIL_SLOW) == 0.0

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            MttlfModel(n_hosts=1)


class TestTemplateModelTest:
    def _fabric(self):
        from repro.network import Fabric, reset_flow_ids
        reset_flow_ids()
        return Fabric(build_astral(AstralParams.small()))

    def test_healthy_hosts_pass(self):
        fabric = self._fabric()
        hosts = [f"p0.b0.h{i}" for i in range(4)]
        report = OfflineToolset().template_model_test(fabric, hosts)
        assert report.passed

    def test_silent_nic_degradation_caught(self):
        """A crawling NIC that every per-component probe misses still
        fails the end-to-end template training."""
        fabric = self._fabric()
        hosts = [f"p0.b0.h{i}" for i in range(4)]
        for link in fabric.topology.links_of(hosts[1]):
            link.capacity_gbps *= 0.1
        fabric.topology.version += 1
        report = OfflineToolset().template_model_test(fabric, hosts)
        assert not report.passed
        assert "expected" in report.detail

    def test_dead_link_fails_cleanly(self):
        fabric = self._fabric()
        hosts = [f"p0.b0.h{i}" for i in range(4)]
        dst = hosts[2]
        for link in fabric.topology.links_of(dst):
            other = fabric.topology.devices[link.other(dst)]
            if other.rail == 0:
                fabric.topology.fail_link(link.link_id)
        report = OfflineToolset().template_model_test(fabric, hosts)
        assert not report.passed

"""Tests for ECMP hashing, hash linearity exploitation, and five-tuples."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import EcmpHasher, FiveTuple, crc16


class TestCrc16:
    def test_known_value_stable(self):
        # Regression anchor: the hash must be stable across runs since
        # monitoring joins and controller reassignment both replay it.
        assert crc16(b"astral") == crc16(b"astral")

    def test_empty_input(self):
        assert crc16(b"") == 0

    def test_seed_changes_output(self):
        assert crc16(b"flow", seed=1) != crc16(b"flow", seed=0)

    def test_output_is_16_bit(self):
        for data in (b"a", b"abc", b"\xff" * 64):
            assert 0 <= crc16(data) <= 0xFFFF

    @given(st.binary(min_size=1, max_size=32), st.binary(min_size=1,
                                                         max_size=32))
    @settings(max_examples=50)
    def test_linearity_over_gf2(self, x, y):
        """CRC(x) ^ CRC(y) == CRC(x ^ y) for equal-length messages.

        This is the hash-linearity property [50, 51] the optimized ECMP
        scheme relies on for relative path control.
        """
        n = min(len(x), len(y))
        x, y = x[:n], y[:n]
        xor = bytes(a ^ b for a, b in zip(x, y))
        assert crc16(x) ^ crc16(y) == crc16(xor) ^ crc16(b"\x00" * n)


class TestFiveTuple:
    def test_defaults_are_rocev2(self):
        ft = FiveTuple("a.nic0", "b.nic0", 50000)
        assert ft.dst_port == 4791
        assert ft.protocol == 17

    def test_with_src_port_returns_new(self):
        ft = FiveTuple("a.nic0", "b.nic0", 50000)
        ft2 = ft.with_src_port(50001)
        assert ft.src_port == 50000
        assert ft2.src_port == 50001

    def test_invalid_port_rejected(self):
        ft = FiveTuple("a.nic0", "b.nic0", 50000)
        with pytest.raises(ValueError):
            ft.with_src_port(70000)

    def test_pack_is_injective_on_ports(self):
        ft = FiveTuple("a.nic0", "b.nic0", 50000)
        assert ft.pack() != ft.with_src_port(50001).pack()

    def test_hashable_as_dict_key(self):
        ft = FiveTuple("a.nic0", "b.nic0", 50000)
        assert {ft: 1}[FiveTuple("a.nic0", "b.nic0", 50000)] == 1


class TestEcmpHasher:
    def test_select_in_range(self):
        hasher = EcmpHasher()
        ft = FiveTuple("a.nic0", "b.nic0", 50000)
        for n in (1, 2, 7, 64):
            assert 0 <= hasher.select(ft, n) < n

    def test_select_zero_choices_raises(self):
        with pytest.raises(ValueError):
            EcmpHasher().select(FiveTuple("a", "b", 1), 0)

    def test_port_for_index_steers_flow(self):
        hasher = EcmpHasher()
        ft = FiveTuple("a.nic0", "b.nic0", 50000)
        for target in range(8):
            port = hasher.port_for_index(ft, 8, target)
            assert hasher.select(ft.with_src_port(port), 8) == target

    def test_port_for_index_invalid_target(self):
        with pytest.raises(ValueError):
            EcmpHasher().port_for_index(FiveTuple("a", "b", 1), 4, 4)

    def test_port_for_index_exhausted_candidates(self):
        hasher = EcmpHasher()
        ft = FiveTuple("a.nic0", "b.nic0", 50000)
        # With one candidate port there is at most one reachable index.
        reachable = hasher.select(ft.with_src_port(49152), 1 << 15)
        unreachable = (reachable + 1) % (1 << 15)
        with pytest.raises(ValueError):
            hasher.port_for_index(ft, 1 << 15, unreachable,
                                  candidate_ports=[49152])

    @given(st.integers(min_value=0, max_value=65535),
           st.integers(min_value=2, max_value=64))
    @settings(max_examples=50)
    def test_deterministic(self, port, n):
        ft = FiveTuple("h1.nic0", "h2.nic0", port)
        assert EcmpHasher().select(ft, n) == EcmpHasher().select(ft, n)

    def test_spreads_ports_roughly_uniformly(self):
        """Many source ports should cover all next-hop indices."""
        hasher = EcmpHasher()
        ft = FiveTuple("h1.nic0", "h2.nic0", 0)
        seen = {
            hasher.select(ft.with_src_port(49152 + i), 8)
            for i in range(256)
        }
        assert seen == set(range(8))

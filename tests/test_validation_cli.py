"""``repro validate`` CLI: exit codes, JSON artifact, repro commands."""

import json

import pytest

from repro.cli import main
from repro.network import reset_flow_ids


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


class TestValidateCommand:
    def test_green_campaign_exits_zero(self, capsys):
        assert main(["validate", "--seed", "7", "--cases", "5",
                     "--fast"]) == 0
        out = capsys.readouterr().out
        assert "5 cases, 0 failing" in out

    def test_single_case_reproduction(self, capsys):
        assert main(["validate", "--seed", "7", "--case", "3",
                     "--fast"]) == 0
        out = capsys.readouterr().out
        assert "case   3" in out
        assert "1 cases, 0 failing" in out

    def test_json_artifact_written(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["validate", "--seed", "7", "--cases", "3",
                     "--fast", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["seed"] == 7
        assert data["n_cases"] == 3
        assert data["ok"] is True
        # Every case embeds its self-contained spec + repro command.
        assert all("spec" in case and "repro" in case
                   for case in data["cases"])

    def test_failures_print_repro_and_exit_nonzero(self, monkeypatch,
                                                   capsys):
        import repro.validation as validation
        from repro.validation import CampaignReport, CaseReport
        from repro.validation.oracles import Violation

        failing = CaseReport(
            seed=9, index=4, family="astral", profile="batch",
            checks=["solver-oracles"],
            violations=[Violation("rate-feasibility", "link 3 over")])

        def fake_campaign(seed, cases, indices=None, fast=False,
                          progress=None, **farm_kwargs):
            report = CampaignReport(seed=seed, cases=[failing])
            if progress:
                progress(failing)
            return report

        monkeypatch.setattr(validation, "run_campaign", fake_campaign)
        assert main(["validate", "--seed", "9", "--cases", "1"]) == 1
        out = capsys.readouterr().out
        assert "[rate-feasibility] link 3 over" in out
        assert "repro validate --seed 9 --case 4" in out

    def test_help_lists_validate(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "validate" in capsys.readouterr().out

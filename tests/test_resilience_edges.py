"""Resilience edge cases the fuzz campaign does not systematically hit:
faults at t=0, faults after completion, double-kills, and restores
inside the carrier-dampening hold-down window.
"""

import pytest

from repro.network import Fabric, make_flow, reset_flow_ids
from repro.network.engine import FabricEngine
from repro.resilience import FailureInjector
from repro.simcore import Simulator
from repro.topology import AstralParams, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def _engine():
    fabric = Fabric(build_astral(AstralParams.small()))
    return FabricEngine(fabric, sim=Simulator())


def _submit(engine, count=2, size=8e9, start=0.0):
    hosts = sorted(h.name for h in engine.fabric.topology.hosts())
    flows = []
    for index in range(count):
        flow = make_flow(hosts[index], hosts[-(index + 1)], rail=0,
                         size_bits=size)
        engine.submit(flow, start_time_s=start)
        flows.append(flow)
    return flows


def _access_link(engine, host):
    return engine.fabric.topology.links_of(host)[0].link_id


class TestFaultAtTimeZero:
    def test_kill_before_any_flow_starts(self):
        """A link dead at t=0 is simply avoided at path resolution —
        every flow still completes."""
        engine = _engine()
        injector = FailureInjector(engine, dampening_s=0.001)
        flows = _submit(engine)
        injector.kill_link(_access_link(engine, flows[0].src_host),
                           at=0.0)
        run = engine.run()
        assert set(run.finish_times_s) == {f.flow_id for f in flows}
        assert injector.log[0].at_s == 0.0
        assert injector.log[0].action == "kill-link"

    def test_degrade_at_time_zero(self):
        engine = _engine()
        injector = FailureInjector(engine, dampening_s=0.001)
        flows = _submit(engine, count=1)
        link_id = _access_link(engine, flows[0].src_host)
        baseline = _clean_run_time()
        injector.degrade_link(link_id, factor=0.5, at=0.0)
        run = engine.run()
        # Half the access capacity from the start: twice the time.
        assert run.finish_times_s[flows[0].flow_id] == pytest.approx(
            2 * baseline, rel=1e-9)


def _clean_run_time():
    reset_flow_ids()
    engine = _engine()
    flows = _submit(engine, count=1)
    run = engine.run()
    reset_flow_ids()
    return run.finish_times_s[flows[0].flow_id]


class TestFaultAfterCompletion:
    def test_kill_after_last_finish_changes_nothing(self):
        reset_flow_ids()
        engine = _engine()
        clean = {fid: t for fid, t in
                 engine_run_with(engine, kill_at=None).items()}
        reset_flow_ids()
        engine = _engine()
        makespan = max(clean.values())
        faulted = engine_run_with(engine, kill_at=10 * makespan)
        assert faulted == clean

    def test_late_kill_is_still_logged(self):
        engine = _engine()
        injector = FailureInjector(engine, dampening_s=0.001)
        flows = _submit(engine)
        link_id = _access_link(engine, flows[0].src_host)
        injector.kill_link(link_id, at=1e6)
        engine.run()
        assert [(e.action, e.at_s) for e in injector.log] == \
            [("kill-link", 1e6)]
        assert not engine.fabric.topology.links[link_id].healthy


def engine_run_with(engine, kill_at):
    injector = FailureInjector(engine, dampening_s=0.001)
    flows = _submit(engine)
    if kill_at is not None:
        injector.kill_link(_access_link(engine, flows[0].src_host),
                           at=kill_at)
    return dict(engine.run().finish_times_s)


class TestDoubleKill:
    def test_second_kill_is_a_silent_noop(self):
        engine = _engine()
        injector = FailureInjector(engine, dampening_s=0.001)
        flows = _submit(engine)
        link_id = _access_link(engine, flows[0].src_host)
        injector.kill_link(link_id, at=0.0)
        injector.kill_link(link_id, at=0.0)
        run = engine.run()
        # One log entry, not two: the dead link cannot die again.
        kills = [e for e in injector.log if e.action == "kill-link"]
        assert len(kills) == 1
        assert set(run.finish_times_s) == {f.flow_id for f in flows}

    def test_kill_then_restore_then_kill_again(self):
        engine = _engine()
        injector = FailureInjector(engine, dampening_s=0.0)
        flows = _submit(engine, size=64e9)
        link_id = _access_link(engine, flows[0].src_host)
        injector.kill_link(link_id, at=0.01)
        injector.restore_link(link_id, at=0.02)
        injector.kill_link(link_id, at=0.03)
        engine.run()
        assert [e.action for e in injector.log] == \
            ["kill-link", "restore-link", "kill-link"]
        assert not engine.fabric.topology.links[link_id].healthy


class TestRestoreDuringHoldDown:
    def test_restore_deferred_to_window_end(self):
        """A restore requested inside the dampening window lands
        exactly when the window expires, not when requested."""
        engine = _engine()
        dampening = 0.5
        injector = FailureInjector(engine, dampening_s=dampening)
        flows = _submit(engine, size=512e9)
        link_id = _access_link(engine, flows[0].src_host)
        kill_at = 0.01
        injector.kill_link(link_id, at=kill_at)
        injector.restore_link(link_id, at=kill_at + 0.05)
        engine.run()
        events = {e.action: e.at_s for e in injector.log}
        assert events["kill-link"] == kill_at
        assert events["restore-link"] == pytest.approx(
            kill_at + dampening)
        assert engine.fabric.topology.links[link_id].healthy

    def test_flap_honours_hold_down(self):
        engine = _engine()
        dampening = 0.2
        injector = FailureInjector(engine, dampening_s=dampening)
        flows = _submit(engine, size=512e9)
        link_id = _access_link(engine, flows[0].src_host)
        injector.flap_link(link_id, at=0.01, down_s=0.02)
        engine.run()
        events = {e.action: e.at_s for e in injector.log}
        assert events["restore-link"] >= 0.01 + dampening - 1e-12

    def test_restore_after_window_is_immediate(self):
        engine = _engine()
        injector = FailureInjector(engine, dampening_s=0.05)
        flows = _submit(engine, size=512e9)
        link_id = _access_link(engine, flows[0].src_host)
        injector.kill_link(link_id, at=0.01)
        injector.restore_link(link_id, at=0.2)
        engine.run()
        events = {e.action: e.at_s for e in injector.log}
        assert events["restore-link"] == 0.2

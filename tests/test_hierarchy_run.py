"""Flat-vs-folded differentials and the fold's edge cases.

The correctness bar: on symmetric fault-free scenarios the folded
runner must equal a flat :class:`MultiJobRun` with ``==`` on every
float — no tolerances — and faults must transparently unfold exactly
the pods they touch, degenerating to the flat simulation when every
pod is broken.
"""

import pytest

from repro.hierarchy import (HierJob, HierarchicalRun,
                             build_flat_fabric, flat_job_configs,
                             preset_params, uniform_jobs)
from repro.monitoring import FaultSpec, Manifestation, RootCause
from repro.monitoring.multijob import MultiJobRun
from repro.network.flows import reset_flow_ids
from repro.topology import AstralParams


def tiny(pods: int = 2) -> AstralParams:
    return AstralParams(pods=pods, blocks_per_pod=2, hosts_per_block=4,
                        gpus_per_host=2, aggs_per_group=2,
                        cores_per_group=2)


def tor_fault(pod: int, block: int = 0) -> FaultSpec:
    return FaultSpec(cause=RootCause.SWITCH_BUG,
                     manifestation=Manifestation.FAIL_SLOW,
                     target=f"p{pod}.b{block}.r0.g0.tor")


def run_flat(params, jobs, caps=None, faults=None):
    reset_flow_ids()
    return MultiJobRun(build_flat_fabric(params),
                       flat_job_configs(params, jobs, caps),
                       faults=faults).run()


def assert_bit_identical(folded, flat):
    assert set(folded) == set(flat)
    for name in flat:
        assert folded[name].iteration_times_s \
            == flat[name].iteration_times_s, name
        assert folded[name].expected_iteration_s \
            == flat[name].expected_iteration_s, name


def block_jobs(params, per_block: int = 1):
    """One single-block job per block: exercises the block-fold path."""
    return [HierJob(f"j{i}", n_hosts=params.hosts_per_block,
                    iterations=3)
            for i in range(params.pods * params.blocks_per_pod)]


class TestExactDifferential:
    def test_block_fold_path_is_bit_identical(self):
        params, jobs = tiny(), block_jobs(tiny())
        run = HierarchicalRun(params, jobs)
        folded = run.run()
        assert_bit_identical(folded, run_flat(params, jobs))
        report = run.report
        assert report.exact
        assert report.n_pod_classes == 1
        assert report.n_refined_groups == 0
        # One rep block of 4 hosts solved for all 16 job hosts.
        assert report.engine_hosts == 4
        assert report.fold_factor == 4.0

    def test_pod_fold_path_is_bit_identical(self):
        params = tiny()
        jobs = [HierJob("a", n_hosts=8, iterations=3),
                HierJob("b", n_hosts=8, iterations=3)]   # 2 blocks each
        run = HierarchicalRun(params, jobs)
        assert not run.symmetry.classes[0].foldable_by_block
        assert_bit_identical(run.run(), run_flat(params, jobs))
        assert run.report.exact
        assert run.report.engine_hosts == 8

    def test_result_surface_matches_multijobrun(self):
        params, jobs = tiny(), block_jobs(tiny())
        outcomes = HierarchicalRun(params, jobs).run()
        assert list(outcomes) == [job.name for job in jobs]
        sample = outcomes["j0"]
        assert len(sample.iteration_times_s) == 3
        assert 0.0 < sample.efficiency <= 1.0
        assert sample.mean_iteration_s >= sample.expected_iteration_s


class TestEdgeCases:
    def test_single_pod_cluster(self):
        params = tiny(pods=1)
        jobs = block_jobs(params)
        run = HierarchicalRun(params, jobs)
        assert_bit_identical(run.run(), run_flat(params, jobs))
        assert run.report.n_pod_classes == 1
        assert run.report.exact

    def test_all_pods_faulted_degenerates_to_flat(self):
        params, jobs = tiny(), block_jobs(tiny())
        faults = {"j0": tor_fault(0), "j2": tor_fault(1)}
        run = HierarchicalRun(params, jobs, faults=faults)
        assert run.report is not None
        folded = run.run()
        assert run.report.n_pod_classes == 0
        assert run.report.n_refined_pods == params.pods
        assert not run.report.exact
        assert_bit_identical(folded,
                             run_flat(params, jobs, faults=faults))

    def test_fault_then_heal_refolds_exactly(self):
        params, jobs = tiny(), block_jobs(tiny())
        faulted = HierarchicalRun(params, jobs,
                                  faults={"j2": tor_fault(1)})
        faulted.run()
        assert faulted.report.n_refined_groups == 1
        assert faulted.report.n_pod_classes == 1
        # Fault cleared: a fresh run folds back to one class and is
        # again bit-identical to flat.
        healed = HierarchicalRun(params, jobs)
        assert_bit_identical(healed.run(), run_flat(params, jobs))
        assert healed.report.n_refined_groups == 0
        assert healed.report.exact

    def test_power_cap_asymmetry_stays_exact(self):
        params, jobs = tiny(), block_jobs(tiny())
        caps = {1: 0.8}
        run = HierarchicalRun(params, jobs, pod_power_caps=caps)
        assert_bit_identical(run.run(),
                             run_flat(params, jobs, caps=caps))
        assert run.report.n_pod_classes == 2   # capped pod splits off
        assert run.report.exact
        # The capped pod's jobs really run slower.
        outcomes = run.report.outcomes
        assert outcomes["j2"].expected_iteration_s \
            > outcomes["j0"].expected_iteration_s

    def test_resilience_fault_specs_trigger_refinement(self):
        from repro.resilience import default_tor_faults
        params, jobs = tiny(), block_jobs(tiny())
        spec = default_tor_faults(params, seed=3)[0]   # a p0.b0 ToR
        run = HierarchicalRun(params, jobs, faults={"j0": spec})
        run.run()
        assert run.report.n_refined_groups == 1
        assert run.symmetry.refined[0].pods == (0,)

    def test_analytic_cross_pod_tier(self):
        params = tiny()
        jobs = [HierJob("wide", n_hosts=12, iterations=3)]
        run = HierarchicalRun(params, jobs)
        outcomes = run.run()
        assert run.report.n_analytic_jobs == 1
        assert not run.report.exact
        assert len(outcomes["wide"].iteration_times_s) == 3
        assert outcomes["wide"].efficiency <= 1.0

    def test_empty_job_list_rejected(self):
        with pytest.raises(ValueError, match="at least one job"):
            HierarchicalRun(tiny(), [])


class TestFoldEconomy:
    def test_identical_pods_cost_one_engine_sim(self):
        params, jobs = tiny(), block_jobs(tiny())
        run = HierarchicalRun(params, jobs)
        run.run()
        # 4 identical blocks across 2 identical pods: one sub-sim.
        assert run.report.n_engine_sims == 1

    def test_presets_ladder_and_64k_folds(self):
        params = preset_params("64k")
        assert params.total_gpus == 65_536
        jobs = uniform_jobs(params, params.hosts_per_block,
                            iterations=2)
        run = HierarchicalRun(params, jobs)
        run.run()
        assert run.report.exact
        assert run.report.n_pod_classes == 1
        assert run.report.engine_hosts == params.hosts_per_block
        assert run.report.fold_factor == 64.0

    def test_tail_shapes_make_two_classes(self):
        params = tiny()
        jobs = uniform_jobs(params, params.hosts_per_block,
                            iterations=2, tail_shapes=2)
        run = HierarchicalRun(params, jobs)
        run.run()
        assert run.report.n_pod_classes == 2
        assert run.report.exact


class TestReport:
    def test_to_dict_is_deterministic_and_truncates(self):
        params, jobs = tiny(), block_jobs(tiny())
        run = HierarchicalRun(params, jobs)
        run.run()
        full = run.report.to_dict()
        assert full == run.report.to_dict()
        assert "elapsed_s" not in str(full)
        truncated = run.report.to_dict(max_jobs=1)
        assert len(truncated["jobs"]) == 1
        assert truncated["n_jobs_truncated"] == len(jobs) - 1

    def test_run_is_memoised(self):
        run = HierarchicalRun(tiny(), block_jobs(tiny()))
        assert run.run() is run.run()

"""Tests for the Figure-3 ASIC port/bandwidth accounting."""

import pytest

from repro.topology import (
    AsicEnvelope,
    AstralParams,
    port_budgets,
    validate_port_math,
)


class TestPaperScalePortMath:
    """Figure 3's annotations, verified arithmetically."""

    @pytest.fixture(scope="class")
    def budgets(self):
        return port_budgets(AstralParams())

    def test_tor_matches_figure3(self, budgets):
        """ToR(51.2T): 64*2*200G down to hosts, 64*400G up to Aggs."""
        tor = budgets["tor"]
        assert tor.down_ports == 128
        assert tor.down_gbps_per_port == 200.0
        assert tor.up_ports == 64
        assert tor.up_gbps_per_port == 400.0
        assert tor.total_gbps == pytest.approx(51_200.0)

    def test_agg_matches_figure3(self, budgets):
        """Agg(51.2T): 64*400G down, 64*400G up."""
        agg = budgets["agg"]
        assert agg.down_ports == 64
        assert agg.up_ports == 64
        assert agg.up_gbps_per_port == pytest.approx(400.0)
        assert agg.total_gbps == pytest.approx(51_200.0)

    def test_core_matches_figure3(self, budgets):
        """Core(51.2T): 128*400G (8 pods x 8 rails x 2 groups)."""
        core = budgets["core"]
        assert core.down_ports == 128
        assert core.down_gbps_per_port == pytest.approx(400.0)
        assert core.total_gbps == pytest.approx(51_200.0)

    def test_paper_scale_is_deployable(self):
        assert validate_port_math(AstralParams()) == []


class TestInfeasibleConfigs:
    def test_too_many_hosts_per_block_overflows_tor(self):
        params = AstralParams(hosts_per_block=512)
        problems = validate_port_math(params)
        assert any("tor" in problem for problem in problems)

    def test_small_asic_rejects_paper_wiring(self):
        envelope = AsicEnvelope(capacity_tbps=12.8)
        problems = validate_port_math(AstralParams(), envelope)
        assert len(problems) == 3  # every role overflows

    def test_port_count_limit(self):
        envelope = AsicEnvelope(max_logical_ports=100)
        problems = validate_port_math(AstralParams(), envelope)
        assert any("logical ports" in problem for problem in problems)

    def test_oversubscription_relaxes_agg_uplinks(self):
        base = port_budgets(AstralParams())["agg"]
        oversub = port_budgets(
            AstralParams().with_oversubscription(2.0))["agg"]
        assert oversub.up_gbps == pytest.approx(base.up_gbps / 2)

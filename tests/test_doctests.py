"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.simcore.engine


@pytest.mark.parametrize("module", [repro.simcore.engine])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0

"""Tests for the green-energy generation and sizing models (§2.2)."""

import numpy as np
import pytest

from repro.power import (
    RenewableGeneration,
    RenewableMix,
    TidalProfile,
    daily_inference_power,
    self_consumption,
    size_for_renewable_share,
    solar_curve_mw,
    wind_curve_mw,
)

HOURS = np.linspace(0.0, 24.0, 24 * 60, endpoint=False)


class TestSolarCurve:
    def test_zero_at_night(self):
        curve = solar_curve_mw(10.0, HOURS)
        night = curve[(HOURS < 5.5) | (HOURS > 19.5)]
        assert np.all(night == 0.0)

    def test_peaks_at_midday(self):
        curve = solar_curve_mw(10.0, HOURS)
        assert curve[(HOURS > 12.0) & (HOURS < 13.0)].max() \
            == pytest.approx(10.0, rel=0.01)

    def test_invalid_daylight_window(self):
        with pytest.raises(ValueError):
            solar_curve_mw(10.0, HOURS, sunrise=20.0, sunset=6.0)


class TestWindCurve:
    def test_never_negative(self):
        curve = wind_curve_mw(5.0, HOURS, noise_frac=0.5, seed=2)
        assert np.all(curve >= 0.0)

    def test_mean_near_nominal(self):
        curve = wind_curve_mw(5.0, HOURS, seed=1)
        assert np.mean(curve) == pytest.approx(5.0, rel=0.1)

    def test_deterministic_with_seed(self):
        a = wind_curve_mw(5.0, HOURS, seed=9)
        b = wind_curve_mw(5.0, HOURS, seed=9)
        assert np.array_equal(a, b)


class TestSelfConsumption:
    def test_flat_demand_absorbs_generation(self):
        generation = RenewableGeneration(solar_peak_mw=10.0,
                                         wind_mean_mw=5.0)
        demand = np.full_like(HOURS, 100.0)
        report = self_consumption(generation.generation_mw(HOURS),
                                  demand, HOURS)
        assert report["curtailment"] == pytest.approx(0.0, abs=1e-9)
        assert 0.0 < report["renewable_share"] < 0.2

    def test_oversized_solar_gets_curtailed(self):
        generation = RenewableGeneration(solar_peak_mw=500.0,
                                         wind_mean_mw=0.0)
        demand = np.full_like(HOURS, 100.0)
        report = self_consumption(generation.generation_mw(HOURS),
                                  demand, HOURS)
        assert report["curtailment"] > 0.3

    def test_solar_matches_tidal_demand_better_than_night_wind(self):
        """The tidal load is daytime-heavy — exactly solar's shape."""
        profile = TidalProfile()
        demand = daily_inference_power(profile, HOURS)
        solar_only = self_consumption(
            solar_curve_mw(60.0, HOURS), demand, HOURS)
        # Same daily energy from wind (flat-ish):
        solar_energy = np.sum(solar_curve_mw(60.0, HOURS)) / len(HOURS)
        wind_only = self_consumption(
            wind_curve_mw(solar_energy, HOURS, noise_frac=0.0),
            demand, HOURS)
        assert solar_only["curtailment"] <= wind_only["curtailment"] \
            + 0.02

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self_consumption(np.zeros(5), np.zeros(6), np.zeros(5))


class TestSizing:
    def test_hits_paper_share(self):
        """Size the farms for the paper's 22% renewable share."""
        _, report = size_for_renewable_share(0.22)
        assert report["renewable_share"] == pytest.approx(0.22,
                                                          abs=0.005)

    def test_sized_capacity_scales_with_target(self):
        small, _ = size_for_renewable_share(0.10)
        large, _ = size_for_renewable_share(0.30)
        assert large.solar_peak_mw > small.solar_peak_mw

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            size_for_renewable_share(0.95)

    def test_carbon_closure_with_paper_numbers(self):
        """22% share x the paper's implied consumption = 778 kt saved."""
        mix = RenewableMix()
        yearly_kwh = 778e6 / (mix.renewable_fraction
                              * mix.grid_carbon_kg_per_kwh)
        assert mix.carbon_saved_kg(yearly_kwh) \
            == pytest.approx(778e6, rel=1e-6)

"""Tests for the cluster health report."""

import pytest

from repro.monitoring import (
    FaultSpec,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    MultiJobRun,
    RootCause,
    build_health_report,
)
from repro.network import Fabric, reset_flow_ids
from repro.topology import AstralParams, build_astral

HOSTS = tuple(f"p0.b0.h{i}" for i in range(4))


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def _run(fault=None, iterations=5):
    fabric = Fabric(build_astral(AstralParams.small()))
    return MonitoredTrainingJob(
        fabric, JobConfig(hosts=HOSTS, iterations=iterations),
        fault=fault).run()


class TestHealthyCluster:
    def test_all_clear(self):
        result = _run()
        report = build_health_report(result.store)
        assert report.healthy
        assert report.jobs[0].status == "HEALTHY"
        assert "ALL CLEAR" in report.render()

    def test_iteration_stats(self):
        result = _run(iterations=4)
        report = build_health_report(result.store)
        assert report.jobs[0].iterations_seen == 4
        assert report.jobs[0].mean_iteration_s > 0


class TestUnhealthyCluster:
    def test_hang_shows_stalled(self):
        fault = FaultSpec(RootCause.CCL_BUG, Manifestation.FAIL_HANG,
                          HOSTS[0], at_iteration=2)
        result = _run(fault=fault)
        report = build_health_report(result.store)
        assert report.jobs[0].status == "STALLED"
        assert not report.healthy

    def test_fatal_log_surfaces_device(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP, HOSTS[1],
                          at_iteration=2)
        result = _run(fault=fault)
        report = build_health_report(result.store)
        devices = [device for device, _ in report.fatal_devices]
        assert HOSTS[1] in devices
        assert "fatal device logs" in report.render()

    def test_pcie_storm_shows_sensors_and_congestion(self):
        fault = FaultSpec.pcie_storm(HOSTS[1], at_iteration=1)
        result = _run(fault=fault)
        report = build_health_report(result.store)
        hosts = [host for host, _ in report.abnormal_hosts]
        assert HOSTS[1] in hosts
        assert report.congested_links
        rendered = report.render()
        assert "PCIe errors" in rendered
        assert "ATTENTION NEEDED" in rendered


class TestMultiJobReport:
    def test_two_jobs_rolled_up(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        jobs = [
            JobConfig(name="a", hosts=HOSTS, iterations=3),
            JobConfig(name="b",
                      hosts=tuple(f"p0.b1.h{i}" for i in range(4)),
                      iterations=3),
        ]
        run = MultiJobRun(fabric, jobs)
        run.run()
        report = build_health_report(run.store)
        assert {job.job for job in report.jobs} == {"a", "b"}

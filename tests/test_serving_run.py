"""Tests for the diurnal serving pipeline (``repro.serving``).

The determinism battery here matches the PR-5 hard bar: same-seed
replay compares full reports with ``==``, the farm identity test runs
``serving-run`` specs through ``workers=1`` and ``workers=2`` and
demands canonical-JSON equality, and the metamorphic trio (rate
doubling, zero arrival, power-cap identity) is asserted directly on
the library — the validation profile fuzzes the same oracles over
sampled scenarios.
"""

import pytest

from repro.cluster import ScheduleHostCap
from repro.cluster.scheduler import ClusterScheduler, SchedulingPolicy
from repro.cluster.workload import JobSpec
from repro.farm import FarmExecutor, ResultCache, TaskSpec, \
    canonical_json
from repro.serving import (
    RequestTrace,
    ServingRun,
    ServingScenario,
    TraceConfig,
    place_slice,
    plan_pools,
    slice_params,
    weighted_percentile,
)
from repro.topology import AstralParams, build_astral

#: A seconds-scale scenario: full pipeline, tiny dimensions.
TINY = dict(
    preset=None,
    dims={"pods": 2, "blocks_per_pod": 1, "hosts_per_block": 4,
          "gpus_per_host": 2, "aggs_per_group": 2,
          "cores_per_group": 2},
    duration_s=3600.0, bucket_s=900.0, users_m_scale=0.001,
    batch_max=4, output_len_mean=32,
    prefill_hosts_per_pair=1, decode_hosts_per_pair=2,
    replica_hosts=1, pool_window_s=20.0, train_jobs=4,
    cosim_iterations=2, max_kv_flows=8,
    slice_prefill_hosts=1, slice_decode_hosts=2, slice_train_hosts=2,
)


def _tiny(**overrides) -> ServingScenario:
    return ServingScenario(**dict(TINY, **overrides))


class TestTrace:
    def test_deterministic_and_diurnal(self):
        config = TraceConfig(seed=3)
        a = RequestTrace.generate(config)
        b = RequestTrace.generate(config)
        assert a.to_dict() == b.to_dict()
        # Interleaved regional peaks still leave a real tide.
        assert a.peak_rate_per_s > a.trough_rate_per_s > 0

    def test_seed_changes_counts_not_shape(self):
        a = RequestTrace.generate(TraceConfig(seed=1))
        b = RequestTrace.generate(TraceConfig(seed=2))
        assert len(a.buckets) == len(b.buckets)
        assert a.to_dict() != b.to_dict()


class TestPools:
    def test_plan_partitions_the_cluster(self):
        params = AstralParams(pods=2, blocks_per_pod=1,
                              hosts_per_block=8, gpus_per_host=2,
                              aggs_per_group=2, cores_per_group=2)
        plan = plan_pools(params, replica_hosts=1)
        assert plan.n_pairs == 1
        assert plan.train_hosts + plan.n_pairs * (
            plan.prefill_hosts_per_pair
            + plan.decode_hosts_per_pair) == plan.total_hosts
        assert plan.max_replicas_per_pair >= 1

    def test_single_pod_cluster_rejected(self):
        params = AstralParams(pods=1, blocks_per_pod=1,
                              hosts_per_block=4, gpus_per_host=2,
                              aggs_per_group=2, cores_per_group=2)
        with pytest.raises(ValueError):
            plan_pools(params)

    def test_slice_placement_separates_pods(self):
        params = AstralParams(pods=2, blocks_per_pod=1,
                              hosts_per_block=8, gpus_per_host=2,
                              aggs_per_group=2, cores_per_group=2)
        placement = place_slice(slice_params(params),
                                prefill_hosts=2, decode_hosts=4,
                                train_hosts=8)
        prefill_pods = {h.split(".")[0]
                        for h in placement.prefill_hosts}
        decode_pods = {h.split(".")[0] for h in placement.decode_hosts}
        # Disaggregation: prefill and decode pools on different pods,
        # so every KV transfer crosses the Agg/Core tiers.
        assert prefill_pods == {"p0"}
        assert decode_pods == {"p1"}
        assert len(placement.train_hosts) == 8


class TestScheduleHostCap:
    def test_lookup_and_boundaries(self):
        cap = ScheduleHostCap.from_series(
            total_hosts=16,
            times_s=(0.0, 100.0, 200.0, 300.0),
            allowed=(16, 8, 8, 12))
        assert cap.hosts_allowed(0.0) == 16
        assert cap.hosts_allowed(99.9) == 16
        assert cap.hosts_allowed(100.0) == 8
        assert cap.hosts_allowed(250.0) == 8
        assert cap.hosts_allowed(1e9) == 12
        # Only value *changes* plant events: 200.0 repeats 8.
        assert cap.boundaries(400.0) == [100.0, 300.0]

    def test_flat_schedule_has_no_boundaries(self):
        cap = ScheduleHostCap.from_series(
            total_hosts=8, times_s=(0.0, 50.0), allowed=(8, 8))
        assert cap.boundaries(1000.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduleHostCap.from_series(total_hosts=4,
                                        times_s=(10.0,), allowed=(4,))
        with pytest.raises(ValueError):
            ScheduleHostCap.from_series(total_hosts=4,
                                        times_s=(0.0,), allowed=(5,))


class TestCapEnforcement:
    def _topology(self):
        return build_astral(AstralParams(
            pods=2, blocks_per_pod=1, hosts_per_block=4,
            gpus_per_host=2, aggs_per_group=2, cores_per_group=2))

    def test_tightening_cap_preempts_to_fit(self):
        # Four 2-host jobs fill all 8 hosts; at t=100 the cap drops
        # to 4 hosts, so two jobs must be preempted and finish late.
        jobs = [JobSpec(name=f"job-{i}", submit_s=0.0, n_hosts=2,
                        duration_s=500.0, priority=i % 2)
                for i in range(4)]
        cap = ScheduleHostCap.from_series(
            total_hosts=8, times_s=(0.0, 100.0, 700.0),
            allowed=(8, 4, 8))
        scheduler = ClusterScheduler(
            self._topology(), jobs,
            policy=SchedulingPolicy.PRIORITY,
            power_cap=cap, enforce_cap=True, seed=0)
        report = scheduler.run(until=5000.0)
        summary = report.to_dict()
        assert summary["preemptions"] >= 2
        assert summary["status"].get("completed", 0) == 4
        # While the cap held, in-use hosts never exceeded it.
        for mid in (150.0, 400.0, 650.0):
            in_use = sum(
                record.n_hosts_requested
                for record in report.records
                if any(start <= mid < end
                       for start, end in record.intervals))
            assert in_use <= 4

    def test_never_binding_cap_is_identity(self):
        jobs = [JobSpec(name=f"job-{i}", submit_s=i * 10.0, n_hosts=2,
                        duration_s=300.0) for i in range(4)]
        flat = ScheduleHostCap.from_series(
            total_hosts=8, times_s=(0.0,), allowed=(8,))

        def _fingerprint(cap):
            scheduler = ClusterScheduler(
                self._topology(), list(jobs),
                policy=SchedulingPolicy.PRIORITY,
                power_cap=cap, enforce_cap=cap is not None, seed=0)
            return scheduler.run(until=5000.0).to_dict()

        assert _fingerprint(flat) == _fingerprint(None)


class TestWeightedPercentile:
    def test_nearest_rank_semantics(self):
        samples = [(1.0, 1.0), (2.0, 1.0), (3.0, 2.0)]
        assert weighted_percentile(samples, 50.0) == 2.0
        assert weighted_percentile(samples, 100.0) == 3.0
        assert weighted_percentile([], 50.0) is None

    def test_weights_shift_the_rank(self):
        light = [(1.0, 1.0), (10.0, 1.0)]
        heavy = [(1.0, 1.0), (10.0, 9.0)]
        assert weighted_percentile(light, 50.0) == 1.0
        assert weighted_percentile(heavy, 50.0) == 10.0


class TestServingRunDeterminism:
    def test_same_seed_replay_is_bit_identical(self):
        a = ServingRun(_tiny()).run().to_dict()
        b = ServingRun(_tiny()).run().to_dict()
        assert a == b

    def test_seed_matters(self):
        a = ServingRun(_tiny(seed=1)).run()
        b = ServingRun(_tiny(seed=2)).run()
        assert a.trace != b.trace

    def test_report_is_json_pure(self):
        import json
        payload = ServingRun(_tiny()).run().to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestServingMetamorphic:
    def test_zero_arrival_is_fabric_noop(self):
        report = ServingRun(_tiny(users_m_scale=0.0)).run()
        assert report.trace["total_requests"] == 0
        assert report.cosim["n_kv_flows"] == 0
        assert report.cosim["iteration_s"] \
            == report.cosim["clean_iteration_s"]
        assert report.slo["n_samples"] == 0

    def test_full_contract_cap_equals_uncapped(self):
        capped = ServingRun(_tiny(power_cap_frac=1.0)).run()
        uncapped = ServingRun(_tiny(power_cap_frac=None)).run()
        assert capped.fingerprint() == uncapped.fingerprint()

    def test_binding_contract_shrinks_train_budget(self):
        plan = ServingRun(_tiny(power_cap_frac=0.5)).run().autoscale
        pools = ServingRun(_tiny()).run().pools
        assert any(b["train_hosts_allowed"] < pools["train_hosts"]
                   for b in plan["buckets"])


class TestServingFarmIdentity:
    def test_workers_1_vs_2_bit_identical(self, tmp_path):
        """The PR-5 hard bar, applied to the ``serving-run`` kind."""
        specs = [
            TaskSpec("serving-run",
                     {"scenario": _tiny(seed=seed).to_params()},
                     label=f"serve[{seed}]")
            for seed in (0, 1)
        ]
        serial = FarmExecutor(
            workers=1, use_cache=False,
            cache=ResultCache(root=tmp_path / "serial")).run(specs)
        parallel = FarmExecutor(
            workers=2, use_cache=False,
            cache=ResultCache(root=tmp_path / "parallel")).run(specs)
        assert serial.ok, serial.failures and serial.failures[0].error
        assert parallel.ok, \
            parallel.failures and parallel.failures[0].error
        assert serial.identity() == parallel.identity()

    def test_cached_rerun_executes_nothing(self, tmp_path):
        spec = TaskSpec("serving-run",
                        {"scenario": _tiny().to_params()})
        cache = ResultCache(root=tmp_path / "cache")
        cold = FarmExecutor(workers=1, use_cache=True,
                            cache=cache).run([spec])
        warm = FarmExecutor(workers=1, use_cache=True,
                            cache=cache).run([spec])
        assert cold.n_executed == 1
        assert warm.n_executed == 0
        assert warm.n_cached == 1
        assert canonical_json(cold.results[0].result) \
            == canonical_json(warm.results[0].result)


class TestServingValidationProfile:
    def test_sampled_cases_pass_the_battery(self):
        from repro.validation.runner import run_case
        from repro.validation.scenarios import PROFILES
        offset = PROFILES.index("serving")
        for step in range(2):
            report = run_case(5, offset + step * len(PROFILES),
                              fast=True)
            assert report.profile == "serving"
            assert report.ok, report.violations

    def test_spec_round_trips_through_json(self):
        from repro.validation.scenarios import (ScenarioGenerator,
                                                ScenarioSpec)
        from repro.validation.scenarios import PROFILES
        spec = ScenarioGenerator(9).spec(PROFILES.index("serving"))
        assert spec.profile == "serving"
        assert spec.serving is not None
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.serving == spec.serving

"""Tests for telemetry records, join keys, and the store (§3.2)."""

import pytest

from repro.network import FiveTuple
from repro.monitoring import (
    CommGroup,
    ErrCqeRecord,
    HostSensorRecord,
    IntPingRecord,
    JobMetadata,
    NcclTimelineRecord,
    QpMetadata,
    QpRateRecord,
    SflowPathRecord,
    SwitchCounterRecord,
    SyslogRecord,
    TelemetryStore,
)


def _ft(src="h0.nic0", dst="h1.nic0", port=50000):
    return FiveTuple(src, dst, port)


class TestRecords:
    def test_nccl_incomplete_flag(self):
        record = NcclTimelineRecord(0.0, "job0", "h0", 1, 0.5, 0.1,
                                    started=3, finished=2)
        assert record.incomplete
        done = NcclTimelineRecord(0.0, "job0", "h0", 1, 0.5, 0.1,
                                  started=3, finished=3)
        assert not done.incomplete

    def test_int_worst_hop(self):
        record = IntPingRecord(0.0, _ft(), ("h0", "t0", "a0", "h1"),
                               (0.6, 179.0, 266.0))
        index, latency = record.worst_hop()
        assert index == 2
        assert latency == 266.0

    def test_int_worst_hop_empty_raises(self):
        record = IntPingRecord(0.0, _ft(), ("h0",), ())
        with pytest.raises(ValueError):
            record.worst_hop()


class TestJoinKeys:
    def test_job_metadata_resolves_qp_to_five_tuple(self):
        ft = _ft()
        meta = JobMetadata("job0", ["h0", "h1"], [
            CommGroup("g", "allreduce", ["h0", "h1"],
                      [QpMetadata(1001, "h0", "h1", ft)])
        ])
        assert meta.five_tuple_of_qp(1001) == ft
        assert meta.five_tuple_of_qp(9999) is None

    def test_comm_group_lookup_by_five_tuple(self):
        ft = _ft()
        group = CommGroup("g", "allreduce", ["h0"],
                          [QpMetadata(1, "h0", "h1", ft)])
        assert group.qp_for_five_tuple(ft).qp == 1
        assert group.qp_for_five_tuple(_ft(port=1)) is None


class TestStore:
    def test_dispatch_by_type(self):
        store = TelemetryStore()
        store.add(SyslogRecord(0.0, "h0", "err", "boom", fatal=True))
        store.add(HostSensorRecord(0.0, "h0"))
        assert len(store.syslogs) == 1
        assert len(store.host_sensors) == 1

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            TelemetryStore().add(object())

    def test_timeline_scoped_by_job_and_iteration(self):
        store = TelemetryStore()
        for it in range(3):
            store.add(NcclTimelineRecord(it, "job0", "h0", it, 0.5, 0.1,
                                         1, 1))
        store.add(NcclTimelineRecord(0, "other", "h0", 0, 0.5, 0.1, 1, 1))
        assert len(store.timeline_for("job0")) == 3
        assert len(store.timeline_for("job0", iteration=1)) == 1

    def test_err_cqes_scoped_to_job_qps(self):
        store = TelemetryStore()
        ft = _ft()
        store.register_job(JobMetadata("job0", ["h0"], [
            CommGroup("g", "allreduce", ["h0"],
                      [QpMetadata(1, "h0", "h1", ft)])
        ]))
        store.add(ErrCqeRecord(0.0, "h0", 1, ft))
        store.add(ErrCqeRecord(0.0, "hX", 9, _ft(port=123)))
        assert len(store.err_cqes_for_job("job0")) == 1
        assert store.err_cqes_for_job("missing") == []

    def test_path_for_returns_latest(self):
        store = TelemetryStore()
        ft = _ft()
        store.add(SflowPathRecord(1.0, ft, ("h0", "t0", "h1"), (0, 1)))
        store.add(SflowPathRecord(2.0, ft, ("h0", "t1", "h1"), (2, 3)))
        assert store.path_for(ft).devices == ("h0", "t1", "h1")

    def test_path_for_historical_lookup(self):
        """The before_s lookup must return the pre-reroute path."""
        store = TelemetryStore()
        ft = _ft()
        store.add(SflowPathRecord(1.0, ft, ("h0", "t0", "h1"), (0,)))
        store.add(SflowPathRecord(2.0, ft, ("h0", "t1", "h1"), (1,)))
        assert store.path_for(ft, before_s=2.0).devices \
            == ("h0", "t0", "h1")

    def test_path_for_before_falls_back_when_no_earlier(self):
        store = TelemetryStore()
        ft = _ft()
        store.add(SflowPathRecord(5.0, ft, ("h0", "t0", "h1"), (0,)))
        assert store.path_for(ft, before_s=5.0) is not None

    def test_counters_and_syslog_scoping(self):
        store = TelemetryStore()
        store.add(SwitchCounterRecord(0.0, "t0", 4, pfc_pause=10.0))
        store.add(SyslogRecord(0.0, "t0", "warn", "x", fatal=False))
        store.add(SyslogRecord(0.0, "t0", "crit", "y", fatal=True))
        assert len(store.counters_for_device("t0")) == 1
        assert len(store.syslogs_for("t0")) == 2
        assert len(store.syslogs_for("t0", fatal_only=True)) == 1

    def test_qp_rates_scoped_by_five_tuple(self):
        store = TelemetryStore()
        ft = _ft()
        store.add(QpRateRecord(0.0, "h0", 1, ft, 150.0))
        store.add(QpRateRecord(0.0, "h0", 2, _ft(port=2), 150.0))
        assert len(store.qp_rates_for(ft)) == 1

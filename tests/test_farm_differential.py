"""The farm's hard correctness bar: parallel == serial, bit for bit.

Every registered task kind runs the same spec list through
``workers=1`` and ``workers=2`` with the cache disabled, and the two
reports must agree on the canonical-JSON identity of every result —
not approximately, *exactly*.  This is what makes ``--workers N`` a
pure wall-clock knob: the simulators thread explicit seeds everywhere
(PR 3/PR 4), and the executor adds no ambient state of its own.
"""

import pytest

from repro.farm import FarmExecutor, ResultCache, TaskSpec, grid_specs


def _both_ways(tmp_path, specs):
    serial = FarmExecutor(
        workers=1, use_cache=False,
        cache=ResultCache(root=tmp_path / "serial-cache")).run(specs)
    parallel = FarmExecutor(
        workers=2, use_cache=False,
        cache=ResultCache(root=tmp_path / "parallel-cache")).run(specs)
    assert serial.ok, serial.failures and serial.failures[0].error
    assert parallel.ok, \
        parallel.failures and parallel.failures[0].error
    return serial, parallel


class TestParallelSerialBitEquality:
    def test_validation_cases(self, tmp_path):
        specs = [
            TaskSpec("validation-case",
                     {"seed": 7, "index": index, "fast": True})
            for index in range(6)   # one case per oracle profile
        ]
        serial, parallel = _both_ways(tmp_path, specs)
        assert serial.identity() == parallel.identity()

    def test_resilience_campaigns(self, tmp_path):
        specs = [
            TaskSpec("resilience-campaign",
                     {"scale": "tiny", "seed": seed, "jobs": 1,
                      "hosts_per_job": 2, "iterations": 6,
                      "compute_s": 1.0, "collective_bits": 1e9,
                      "faults": 1, "fault_at_s": 2.0,
                      "checkpoint_interval_s": 4.0})
            for seed in (0, 1)
        ]
        serial, parallel = _both_ways(tmp_path, specs)
        assert serial.identity() == parallel.identity()

    def test_cluster_sweeps(self, tmp_path):
        specs = grid_specs(
            "cluster-sweep",
            base={"scale": "tiny", "jobs": 8},
            grid={"policy": ["fifo", "topology"]}, seeds=[0])
        serial, parallel = _both_ways(tmp_path, specs)
        assert serial.identity() == parallel.identity()

    def test_monitoring_campaign(self, tmp_path):
        specs = [TaskSpec("monitoring-campaign",
                          {"seed": seed, "n_faults": 2,
                           "job_hosts": 4, "iterations": 3})
                 for seed in (0, 1)]
        serial, parallel = _both_ways(tmp_path, specs)
        assert serial.identity() == parallel.identity()

    def test_seer_and_figures(self, tmp_path):
        specs = [
            TaskSpec("seer-forecast",
                     {"model": "LLAMA3_70B", "tp": 8, "pp": 4,
                      "dp": 2}),
            TaskSpec("figure-bench", {"figure": "pue"}),
            TaskSpec("figure-bench",
                     {"figure": "taxonomy", "count": 200, "seed": 3}),
            TaskSpec("figure-bench", {"figure": "goodput"}),
        ]
        serial, parallel = _both_ways(tmp_path, specs)
        assert serial.identity() == parallel.identity()

    def test_hierarchy_runs(self, tmp_path):
        dims = {"pods": 2, "blocks_per_pod": 2, "hosts_per_block": 4,
                "gpus_per_host": 2, "aggs_per_group": 2,
                "cores_per_group": 2}
        specs = [
            TaskSpec("hierarchy-run",
                     {"dims": dims, "hosts_per_job": 4,
                      "iterations": 3, "seed": 0}),
            TaskSpec("hierarchy-run",
                     {"dims": dims, "hosts_per_job": 4,
                      "iterations": 3, "seed": 0, "faults": 1}),
            TaskSpec("hierarchy-run",
                     {"dims": dims, "hosts_per_job": 4,
                      "iterations": 3, "seed": 0,
                      "power_caps": {"1": 0.8}}),
        ]
        serial, parallel = _both_ways(tmp_path, specs)
        assert serial.identity() == parallel.identity()

    def test_mixed_kind_batch(self, tmp_path):
        """Kinds interleaved in one pool share workers without bleed."""
        specs = [
            TaskSpec("validation-case",
                     {"seed": 11, "index": 0, "fast": True}),
            TaskSpec("figure-bench", {"figure": "overhead"}),
            TaskSpec("cluster-sweep",
                     {"scale": "tiny", "jobs": 5, "seed": 2}),
            TaskSpec("validation-case",
                     {"seed": 11, "index": 3, "fast": True}),
            TaskSpec("seer-forecast", {"model": "GPT3_175B"}),
        ]
        serial, parallel = _both_ways(tmp_path, specs)
        assert serial.identity() == parallel.identity()


class TestValidateCampaignEquality:
    def test_run_campaign_workers_matches_serial_report(self, tmp_path):
        """The ``repro validate --workers N`` path, end to end."""
        from repro.validation import run_campaign
        serial = run_campaign(7, 6, fast=True)
        parallel = run_campaign(7, 6, fast=True, workers=2,
                                cache_dir=str(tmp_path / "cache"),
                                use_cache=True)
        serial_dict = serial.to_dict()
        parallel_dict = parallel.to_dict()
        parallel_dict.pop("farm")        # execution metadata only
        assert parallel_dict == serial_dict

    def test_cached_rerun_matches_too(self, tmp_path):
        from repro.validation import run_campaign
        kwargs = dict(fast=True, workers=2, use_cache=True,
                      cache_dir=str(tmp_path / "cache"))
        cold = run_campaign(7, 6, **kwargs)
        warm = run_campaign(7, 6, **kwargs)
        assert warm.farm.n_executed == 0
        assert warm.farm.n_cached == 6
        cold_dict, warm_dict = cold.to_dict(), warm.to_dict()
        cold_dict.pop("farm")
        warm_dict.pop("farm")
        assert warm_dict == cold_dict


class TestDeterministicReplay:
    @pytest.mark.parametrize("kind,params", [
        ("validation-case", {"seed": 23, "index": 2, "fast": True}),
        ("cluster-sweep", {"scale": "tiny", "jobs": 6, "seed": 9}),
        ("figure-bench", {"figure": "taxonomy", "count": 100,
                          "seed": 1}),
    ])
    def test_same_spec_same_bits_across_processes(self, tmp_path, kind,
                                                  params):
        """One spec, run twice in different worker processes."""
        from repro.farm import canonical_json
        spec = TaskSpec(kind, params)
        first = FarmExecutor(
            workers=2, use_cache=False,
            cache=ResultCache(root=tmp_path / "a")).run([spec])
        second = FarmExecutor(
            workers=2, use_cache=False,
            cache=ResultCache(root=tmp_path / "b")).run([spec])
        assert canonical_json(first.results[0].result) \
            == canonical_json(second.results[0].result)

"""Placement, signatures, the line-rate certificate, and fold planning."""

import pytest

from repro.hierarchy import (HierJob, detect_symmetry, job_shape,
                             line_rate_certificate, place_jobs)
from repro.hierarchy.virtual import (parse_host, pod_of_device,
                                     rename_device, rename_host)
from repro.monitoring import FaultSpec, Manifestation, RootCause
from repro.topology import AstralParams


def tiny(pods: int = 2) -> AstralParams:
    return AstralParams(pods=pods, blocks_per_pod=2, hosts_per_block=4,
                        gpus_per_host=2, aggs_per_group=2,
                        cores_per_group=2)


def tor_fault(pod: int, block: int = 0) -> FaultSpec:
    return FaultSpec(cause=RootCause.SWITCH_BUG,
                     manifestation=Manifestation.FAIL_SLOW,
                     target=f"p{pod}.b{block}.r0.g0.tor")


class TestVirtualNaming:
    def test_host_round_trip(self):
        assert parse_host("p3.b7.h11") == (3, 7, 11)
        with pytest.raises(ValueError):
            parse_host("cg0.c1.core")

    def test_pod_of_device(self):
        assert pod_of_device("p2.b0.h1") == 2
        assert pod_of_device("p2.b0.r1.g0.tor") == 2
        assert pod_of_device("p5.r0.g1.a2.agg") == 5
        assert pod_of_device("cg0.c3.core") is None
        assert pod_of_device("link:1234") is None

    def test_rename_device_rebases_pod_and_block(self):
        pod_map, block_map = {3: 0}, {5: 1}
        assert rename_host("p3.b5.h2", pod_map, block_map) == "p0.b1.h2"
        assert rename_device("p3.b5.r1.g0.tor", pod_map, block_map) \
            == "p0.b1.r1.g0.tor"
        assert rename_device("p3.r1.g0.a0.agg", pod_map) \
            == "p0.r1.g0.a0.agg"
        # Cores and opaque targets pass through untouched.
        assert rename_device("cg0.c3.core", pod_map) == "cg0.c3.core"
        assert rename_device("link:99", pod_map) == "link:99"


class TestPlacement:
    def test_contiguous_pod_major(self):
        placed = place_jobs(tiny(), [HierJob("a", n_hosts=4),
                                     HierJob("b", n_hosts=4),
                                     HierJob("c", n_hosts=4)])
        assert placed[0].hosts[0] == "p0.b0.h0"
        assert placed[0].blocks == (0,)
        assert placed[1].blocks == (1,)        # next block, same pod
        assert placed[2].hosts[0] == "p1.b0.h0"  # spills to pod 1
        assert placed[0].positions_in_pod() \
            == placed[2].positions_in_pod()

    def test_cross_pod_job_spans(self):
        placed = place_jobs(tiny(), [HierJob("wide", n_hosts=12)])
        assert placed[0].pods == (0, 1)
        assert not placed[0].pod_local
        with pytest.raises(ValueError):
            placed[0].pod

    def test_explicit_hosts_reserved_before_cursor(self):
        placed = place_jobs(tiny(), [
            HierJob("pinned", hosts=("p0.b0.h0", "p0.b0.h1")),
            HierJob("flow", n_hosts=2),
        ])
        assert placed[1].hosts == ("p0.b0.h2", "p0.b0.h3")

    def test_double_pin_rejected(self):
        with pytest.raises(ValueError, match="more than one job"):
            place_jobs(tiny(), [HierJob("a", hosts=("p0.b0.h0",)),
                                HierJob("b", hosts=("p0.b0.h0",))])

    def test_exhaustion_and_duplicate_names(self):
        with pytest.raises(ValueError, match="exhausted"):
            place_jobs(tiny(), [HierJob("big", n_hosts=17)])
        with pytest.raises(ValueError, match="unique"):
            place_jobs(tiny(), [HierJob("x", n_hosts=1),
                                HierJob("x", n_hosts=1)])


class TestJobShape:
    def test_name_excluded_seed_included(self):
        a = HierJob("a", n_hosts=2, seed=7)
        b = HierJob("b", n_hosts=2, seed=7)
        c = HierJob("c", n_hosts=2, seed=8)
        assert job_shape(a) == job_shape(b)
        assert job_shape(a) != job_shape(c)


class TestCertificate:
    def test_single_block_rings_certify(self):
        placed = place_jobs(tiny(), [HierJob(f"j{i}", n_hosts=4)
                                     for i in range(4)])
        assert line_rate_certificate(tiny(), placed)

    def test_alltoall_voids(self):
        placed = place_jobs(tiny(), [
            HierJob("a2a", n_hosts=4, collective="all_to_all")])
        assert not line_rate_certificate(tiny(), placed)

    def test_pod_crossing_leg_voids(self):
        placed = place_jobs(tiny(), [HierJob("wide", n_hosts=12)])
        assert not line_rate_certificate(tiny(), placed)

    def test_boundary_oversubscription_voids(self):
        # Hosts alternate blocks: every ring leg crosses the block
        # boundary, 3 exits from b0 on one rail > tor_agg/nic = 2.
        hosts = ("p0.b0.h0", "p0.b1.h0", "p0.b0.h1", "p0.b1.h1",
                 "p0.b0.h2", "p0.b1.h2")
        placed = place_jobs(tiny(), [HierJob("zigzag", hosts=hosts)])
        assert not line_rate_certificate(tiny(), placed)


class TestDetectSymmetry:
    def test_identical_pods_fold_into_one_class(self):
        placed = place_jobs(tiny(), [HierJob(f"j{i}", n_hosts=4)
                                     for i in range(4)])
        symmetry = detect_symmetry(tiny(), placed)
        assert len(symmetry.classes) == 1
        assert symmetry.classes[0].members == [0, 1]
        assert symmetry.classes[0].certified
        assert symmetry.exact

    def test_distinct_seeds_split_classes(self):
        placed = place_jobs(tiny(), [
            HierJob("j0", n_hosts=4), HierJob("j1", n_hosts=4),
            HierJob("j2", n_hosts=4, seed=1),
            HierJob("j3", n_hosts=4, seed=1)])
        symmetry = detect_symmetry(tiny(), placed)
        assert len(symmetry.classes) == 2

    def test_power_cap_splits_classes(self):
        placed = place_jobs(tiny(), [HierJob(f"j{i}", n_hosts=4)
                                     for i in range(4)])
        symmetry = detect_symmetry(tiny(), placed,
                                   power_caps={1: 0.8})
        assert len(symmetry.classes) == 2
        assert symmetry.exact           # caps rescale, don't refine

    def test_bad_power_cap_rejected(self):
        placed = place_jobs(tiny(), [HierJob("j", n_hosts=4)])
        for factor in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="power cap"):
                detect_symmetry(tiny(), placed,
                                power_caps={0: factor})

    def test_fault_refines_only_its_pod(self):
        placed = place_jobs(tiny(), [HierJob(f"j{i}", n_hosts=4)
                                     for i in range(4)])
        symmetry = detect_symmetry(tiny(), placed,
                                   faults={"j2": tor_fault(1)})
        assert len(symmetry.refined) == 1
        assert symmetry.refined[0].pods == (1,)
        assert [p.name for p in symmetry.refined[0].jobs] \
            == ["j2", "j3"]
        assert len(symmetry.classes) == 1   # pod 0 still folds
        assert symmetry.classes[0].members == [0]
        assert not symmetry.exact

    def test_cross_job_drags_its_pods_transitively(self):
        placed = place_jobs(tiny(3), [
            HierJob("local", n_hosts=8),            # pod 0
            HierJob("wide", n_hosts=16),            # pods 1-2
        ])
        symmetry = detect_symmetry(tiny(3), placed,
                                   faults={"wide": tor_fault(1)})
        assert len(symmetry.refined) == 1
        assert symmetry.refined[0].pods == (1, 2)
        assert symmetry.analytic == []
        assert len(symmetry.classes) == 1       # pod 0 untouched

    def test_healthy_cross_job_goes_analytic(self):
        placed = place_jobs(tiny(), [HierJob("wide", n_hosts=12)])
        symmetry = detect_symmetry(tiny(), placed)
        assert [p.name for p in symmetry.analytic] == ["wide"]
        assert not symmetry.exact

    def test_unlocatable_target_forces_flat_fallback(self):
        placed = place_jobs(tiny(), [HierJob("j", n_hosts=4)])
        fault = FaultSpec(cause=RootCause.OPTICAL_FIBER,
                          manifestation=Manifestation.FAIL_SLOW,
                          target="link:42")
        symmetry = detect_symmetry(tiny(), placed,
                                   faults={"j": fault})
        assert symmetry.flat_fallback
        assert len(symmetry.refined) == 1
        assert symmetry.refined[0].pods == (0, 1)

    def test_fault_on_unknown_job_rejected(self):
        placed = place_jobs(tiny(), [HierJob("j", n_hosts=4)])
        with pytest.raises(ValueError, match="unknown job"):
            detect_symmetry(tiny(), placed,
                            faults={"ghost": tor_fault(0)})

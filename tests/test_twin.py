"""Tests for the digital-twin service (``repro.twin``).

The load-bearing property is the replay contract: a live session's
digest equals ``replay(config, action_log)``'s digest with ``==``,
under both solver backends and across ``PYTHONHASHSEED`` values.  The
HTTP layer is tested end to end through :class:`ServerHarness` — a
real server on a background thread — including the sharded mode where
two concurrent sessions must not contaminate each other.
"""

import json
import subprocess
import sys

import pytest

from repro.monitoring.telemetry import TelemetryStore
from repro.twin import (ServerHarness, TwinClientError, TwinConfig,
                        TwinSession, replay)


def _tiny(solver=None, seed=7, **overrides):
    params = dict(kind="cluster", scale="tiny", seed=seed, jobs=8,
                  solver=solver)
    params.update(overrides)
    return TwinConfig(**params)


def _drive(session):
    """The fixed operator scenario shared across determinism tests."""
    session.advance(120.0)
    session.submit({"kind": "cordon", "hosts": ["p0.b0.h0"]})
    session.advance(60.0)
    session.submit({"kind": "inject-fault", "document": {"domains": [
        {"kind": "optics-batch", "pod": 1, "block": 0, "size": 2,
         "mode": "hard", "seed": 7, "at_time_s": 0.0}]}})
    session.advance(600.0)
    session.submit({"kind": "set-power-cap", "frac": 0.5})
    session.advance(600.0)
    session.submit({"kind": "uncordon", "hosts": ["p0.b0.h0"]})
    session.advance(600.0)
    return session


class TestConfig:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown twin kind"):
            TwinConfig(kind="quantum")

    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown twin scale"):
            TwinConfig(scale="galactic")

    def test_params_round_trip(self):
        config = _tiny(solver="python")
        assert TwinConfig.from_params(config.to_params()) == config

    def test_from_params_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            TwinConfig.from_params({"scale": "tiny", "warp": 9})


class TestReplayDeterminism:
    @pytest.mark.parametrize("solver", ["python", "vector"])
    def test_replay_matches_live(self, solver):
        live = _drive(TwinSession(_tiny(solver=solver)))
        replayed = replay(live.config, live.action_log)
        assert replayed.digest() == live.digest()
        # Not just the digest: every boundary snapshot is identical.
        assert replayed.snapshots == live.snapshots
        assert replayed.store == live.store

    def test_backends_agree(self):
        """Same world state under both solver backends.

        The full session digest hashes the config (which names the
        backend), so compare the stack fingerprints — everything the
        simulation actually computed."""
        states = {
            solver: _drive(TwinSession(_tiny(solver=solver)))
            for solver in ("python", "vector")}
        assert states["python"].stack.fingerprint() \
            == states["vector"].stack.fingerprint()
        assert states["python"].snapshots == states["vector"].snapshots

    def test_seeds_diverge(self):
        a = _drive(TwinSession(_tiny(seed=1))).digest()
        b = _drive(TwinSession(_tiny(seed=2))).digest()
        assert a != b

    def test_digest_stable_across_hash_seeds(self):
        """The repo-wide bar: bit-identical under PYTHONHASHSEED."""
        import os
        import repro
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        digests = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ,
                       PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=src_dir)
            out = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_DIGEST],
                capture_output=True, text=True, check=True,
                env=env).stdout
            digests.append(out.strip())
        assert digests[0] == digests[1]
        assert len(digests[0]) == 64  # a sha256 hex digest


_SUBPROCESS_DIGEST = """
from repro.twin import TwinConfig, TwinSession
session = TwinSession(TwinConfig(
    kind="cluster", scale="tiny", seed=7, jobs=8))
session.advance(120.0)
session.submit({"kind": "cordon", "hosts": ["p0.b0.h0"]})
session.advance(600.0)
session.submit({"kind": "inject-fault", "document": {"domains": [
    {"kind": "optics-batch", "pod": 1, "block": 0, "size": 2,
     "mode": "hard", "seed": 7, "at_time_s": 0.0}]}})
session.advance(600.0)
session.submit({"kind": "uncordon", "hosts": ["p0.b0.h0"]})
session.advance(600.0)
print(session.digest())
"""


class TestActionValidation:
    def test_unknown_kind_rejected(self):
        session = TwinSession(_tiny())
        with pytest.raises(Exception, match="unknown action kind"):
            session.submit({"kind": "launch-missiles"})

    def test_unknown_host_rejected(self):
        session = TwinSession(_tiny())
        with pytest.raises(Exception, match="not a host"):
            session.submit({"kind": "cordon", "hosts": ["p9.b9.h9"]})

    def test_switch_cordon_rejected(self):
        """Cordon targets must be hosts, not fabric switches."""
        session = TwinSession(_tiny())
        switch = next(
            name for name, dev in
            session.stack.topology.devices.items() if dev.tier != 0)
        with pytest.raises(Exception, match="not a host"):
            session.submit({"kind": "cordon", "hosts": [switch]})

    def test_advance_requires_positive_dt(self):
        session = TwinSession(_tiny())
        with pytest.raises(Exception, match="positive"):
            session.advance(0.0)


class TestTelemetryJsonl:
    def test_store_round_trip_from_session(self):
        live = _drive(TwinSession(_tiny()))
        text = live.store.to_jsonl()
        assert TelemetryStore.from_jsonl(text) == live.store

    def test_round_trip_is_stable(self):
        live = _drive(TwinSession(_tiny()))
        text = live.store.to_jsonl()
        assert TelemetryStore.from_jsonl(text).to_jsonl() == text

    def test_bad_line_is_named(self):
        good = TwinSession(_tiny()).store.to_jsonl()
        with pytest.raises(ValueError, match="line 1"):
            TelemetryStore.from_jsonl("not json\n" + good)


class TestServingSession:
    def test_serving_replay_matches_live(self):
        config = TwinConfig(
            kind="serving", scale="small", seed=3,
            serving={"duration_s": 4 * 3600.0, "bucket_s": 1800.0})
        live = TwinSession(config)
        live.advance(3600.0)
        live.submit({"kind": "set-power-cap", "frac": 0.6})
        live.advance(3600.0)
        snapshot = live.snapshots[-1]
        assert snapshot["kind"] == "serving"
        assert "ttft" in snapshot and "power" in snapshot
        replayed = replay(config, live.action_log)
        assert replayed.digest() == live.digest()

    def test_serving_rejects_cluster_actions(self):
        config = TwinConfig(kind="serving", scale="small",
                            serving={"duration_s": 4 * 3600.0,
                                     "bucket_s": 1800.0})
        session = TwinSession(config)
        with pytest.raises(Exception, match="serving"):
            session.submit({"kind": "cordon", "hosts": ["p0.b0.h0"]})


@pytest.fixture(scope="module")
def harness():
    with ServerHarness(workers=0) as server:
        yield server


class TestHttpServer:
    CONFIG = {"kind": "cluster", "scale": "tiny", "seed": 7, "jobs": 8}

    def test_healthz_and_version(self, harness):
        client = harness.client()
        assert client.version()
        assert client.request("GET", "/healthz")["ok"] is True

    def test_session_lifecycle_and_replay(self, harness):
        client = harness.client()
        info = client.create_session(self.CONFIG, session_id="life")
        assert info["id"] == "life"
        snapshots = client.advance("life", dt_s=120.0, steps=2)
        assert len(snapshots) == 2
        assert snapshots[1]["t_s"] == pytest.approx(240.0)
        client.action("life", {"kind": "cordon",
                               "hosts": ["p0.b0.h0"]})
        snapshot = client.advance("life", dt_s=60.0)[-1]
        assert snapshot["hosts"]["cordoned"] == 1
        verdict = client.verify_replay("life")
        assert verdict["match"] is True
        assert verdict["live_digest"] == client.digest("life")
        log = client.action_log("life")
        assert len(log["action_log"]) == 3
        client.delete_session("life")
        with pytest.raises(TwinClientError) as excinfo:
            client.session("life")
        assert excinfo.value.status == 404

    def test_duplicate_session_conflicts(self, harness):
        client = harness.client()
        client.create_session(self.CONFIG, session_id="dup")
        try:
            with pytest.raises(TwinClientError) as excinfo:
                client.create_session(self.CONFIG, session_id="dup")
            assert excinfo.value.status == 409
        finally:
            client.delete_session("dup")

    def test_bad_action_is_400(self, harness):
        client = harness.client()
        client.create_session(self.CONFIG, session_id="bad")
        try:
            with pytest.raises(TwinClientError) as excinfo:
                client.action("bad", {"kind": "frobnicate"})
            assert excinfo.value.status == 400
            with pytest.raises(TwinClientError) as excinfo:
                client.action("bad", {"kind": "cordon",
                                      "hosts": ["p9.b9.h9"]})
            assert excinfo.value.status == 400
        finally:
            client.delete_session("bad")

    def test_unknown_session_is_404(self, harness):
        client = harness.client()
        with pytest.raises(TwinClientError) as excinfo:
            client.advance("ghost", dt_s=60.0)
        assert excinfo.value.status == 404

    def test_telemetry_stream_and_records(self, harness):
        client = harness.client()
        client.create_session(self.CONFIG, session_id="telemetry")
        try:
            client.advance("telemetry", dt_s=60.0, steps=3)
            archived = client.telemetry("telemetry")
            assert [s["t_s"] for s in archived] == [60.0, 120.0, 180.0]
            tail = list(client.stream("telemetry", start=1,
                                      max_snapshots=2))
            assert [s["t_s"] for s in tail] == [120.0, 180.0]
            lines = client.records_jsonl("telemetry").splitlines()
            parsed = [json.loads(line) for line in lines]
            assert any(r.get("type") == "switch-counter"
                       for r in parsed)
        finally:
            client.delete_session("telemetry")


class TestShardedServer:
    def test_concurrent_sessions_are_isolated(self):
        with ServerHarness(workers=2) as server:
            client = server.client()
            config = dict(TestHttpServer.CONFIG)
            alpha = client.create_session(config, session_id="alpha")
            beta = client.create_session(config, session_id="beta")
            assert {alpha["shard"], beta["shard"]} <= {0, 1}
            client.advance("beta", dt_s=120.0)
            before = client.digest("beta")
            # Driving alpha hard must not move beta's digest.
            client.advance("alpha", dt_s=120.0)
            client.action("alpha", {"kind": "cordon",
                                    "hosts": ["p0.b0.h0"]})
            client.advance("alpha", dt_s=600.0, steps=2)
            assert client.digest("beta") == before
            assert client.verify_replay("alpha")["match"] is True
            assert client.verify_replay("beta")["match"] is True


class TestFarmInterrupt:
    def test_ctrl_c_returns_partial_report(self):
        import os
        import signal
        import threading
        import time

        from repro.farm import FarmExecutor, TaskSpec
        specs = [TaskSpec("farm-selftest",
                          {"mode": "hang", "sleep_s": 1.0, "seed": i})
                 for i in range(5)]
        timer = threading.Timer(
            0.4, lambda: os.kill(os.getpid(), signal.SIGINT))
        timer.start()
        try:
            report = FarmExecutor(workers=1, use_cache=False).run(specs)
        finally:
            timer.cancel()
        assert report.interrupted is True
        assert len(report.results) == len(specs)
        assert any(r.status == "skipped" for r in report.results)
        assert report.to_dict()["interrupted"] is True

    def test_uninterrupted_report_is_clean(self):
        from repro.farm import FarmExecutor, TaskSpec
        report = FarmExecutor(workers=1, use_cache=False).run(
            [TaskSpec("farm-selftest", {"mode": "ok", "value": 1})])
        assert report.interrupted is False
        assert report.ok

"""Unit tests for the analyzer building blocks: cross-host comparison,
path overlap, and INT hotspot detection (§3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import FiveTuple
from repro.monitoring import (
    CrossHostComparison,
    IntPingRecord,
    best_failure_point,
    find_hotspots,
    find_outliers,
    overlap_devices,
    robust_zscores,
)


class TestRobustZscores:
    def test_empty(self):
        assert robust_zscores({}) == {}

    def test_uniform_values_all_zero(self):
        scores = robust_zscores({"a": 1.0, "b": 1.0, "c": 1.0})
        assert all(z == 0.0 for z in scores.values())

    def test_single_outlier_flagged(self):
        metric = {f"h{i}": 0.50 + 0.001 * i for i in range(8)}
        metric["h_bad"] = 5.0
        outliers = find_outliers(metric, threshold=3.5)
        assert outliers == ["h_bad"]

    def test_low_outlier_direction(self):
        metric = {f"h{i}": 1.0 + 0.01 * i for i in range(8)}
        metric["h_low"] = 0.01
        assert find_outliers(metric, direction="low") == ["h_low"]
        assert find_outliers(metric, direction="high") == []
        assert find_outliers(metric, direction="both") == ["h_low"]

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            find_outliers({"a": 1.0}, direction="sideways")

    @given(st.lists(st.floats(min_value=0.4, max_value=0.6),
                    min_size=5, max_size=20))
    @settings(max_examples=30)
    def test_huge_deviant_always_flagged(self, values):
        """Threshold-agnostic property: whatever the majority's own
        spread, a host 200x slower is always among the lagging set."""
        metric = {f"h{i}": v for i, v in enumerate(values)}
        metric["deviant"] = 100.0
        comparison = CrossHostComparison()
        assert "deviant" in comparison.lagging_hosts(metric)


class TestPathOverlap:
    def test_shared_interior_device_wins(self):
        paths = [
            ("h0", "t0", "a1", "t2", "h5"),
            ("h1", "t0", "a1", "t3", "h6"),
            ("h2", "t1", "a1", "t4", "h7"),
        ]
        ranked = overlap_devices(paths)
        assert ranked[0] == ("a1", 3)

    def test_endpoints_excluded(self):
        paths = [("h0", "t0", "h1"), ("h0", "t1", "h1")]
        devices = dict(overlap_devices(paths))
        assert "h0" not in devices
        assert "h1" not in devices

    def test_best_failure_point_coverage_guard(self):
        paths = [
            ("h0", "t0", "h1"),
            ("h2", "t1", "h3"),
            ("h4", "t2", "h5"),
        ]
        assert best_failure_point(paths) is None

    def test_best_failure_point_empty(self):
        assert best_failure_point([]) is None

    def test_duplicate_device_in_one_path_counted_once(self):
        paths = [("h0", "t0", "t0", "h1"), ("h2", "t0", "h3")]
        assert dict(overlap_devices(paths))["t0"] == 2


class TestIntHotspot:
    def _record(self, latencies):
        devices = tuple(f"d{i}" for i in range(len(latencies) + 1))
        return IntPingRecord(0.0, FiveTuple("a", "b", 1), devices,
                             tuple(latencies))

    def test_normal_path_no_hotspots(self):
        assert find_hotspots([self._record([0.6, 0.6, 0.6])]) == []

    def test_congested_hop_found(self):
        """The Figure 9c pattern: 0.6 / 179 / 266 us."""
        hotspots = find_hotspots([self._record([0.6, 179.0, 266.0])])
        assert len(hotspots) == 2
        assert hotspots[0].latency_us == 266.0
        assert hotspots[0].upstream == "d2"
        assert hotspots[0].downstream == "d3"

    def test_sorted_worst_first(self):
        hotspots = find_hotspots([
            self._record([100.0, 0.6]),
            self._record([0.6, 900.0]),
        ])
        assert [h.latency_us for h in hotspots] == [900.0, 100.0]

    def test_threshold_respected(self):
        hotspots = find_hotspots([self._record([40.0, 45.0])],
                                 latency_threshold_us=50.0)
        assert hotspots == []

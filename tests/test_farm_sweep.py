"""Sweep fan-out: grid expansion, seed matrices, typed aggregation."""

import pytest

from repro.farm import (ResultCache, grid_specs, run_sweep, seed_specs)
from repro.monitoring.campaign import FaultCampaign
from repro.resilience import run_campaign_matrix


class TestGridExpansion:
    def test_cartesian_product_with_seeds(self):
        specs = grid_specs("cluster-sweep",
                           base={"scale": "tiny", "jobs": 4},
                           grid={"policy": ["fifo", "topology"],
                                 "failure_scale": [0.0, 1.0]},
                           seeds=[0, 1, 2])
        assert len(specs) == 2 * 2 * 3
        # Base params survive into every cell.
        assert all(s.params["scale"] == "tiny" for s in specs)
        # Deterministic expansion: same document, same spec list.
        again = grid_specs("cluster-sweep",
                           base={"scale": "tiny", "jobs": 4},
                           grid={"failure_scale": [0.0, 1.0],
                                 "policy": ["fifo", "topology"]},
                           seeds=[0, 1, 2])
        assert [s.content_hash for s in specs] \
            == [s.content_hash for s in again]

    def test_base_only_yields_one_spec(self):
        specs = grid_specs("figure-bench", base={"figure": "pue"})
        assert len(specs) == 1

    def test_seed_matrix_shorthand(self):
        specs = seed_specs("monitoring-campaign",
                           base={"n_faults": 3}, seeds=[5, 6])
        assert [s.params["seed"] for s in specs] == [5, 6]

    def test_seed_collision_with_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_specs("cluster-sweep", grid={"seed": [1]}, seeds=[2])

    def test_labels_name_the_cell(self):
        specs = grid_specs("cluster-sweep",
                           grid={"policy": ["fifo"]}, seeds=[4])
        assert specs[0].label == "cluster-sweep[policy=fifo,seed=4]"


class TestSweepAggregation:
    def test_column_and_table_extraction(self, tmp_path):
        specs = grid_specs("farm-selftest",
                           base={"mode": "ok"},
                           grid={"value": [2, 3, 4]})
        sweep = run_sweep(specs, workers=1,
                          cache=ResultCache(root=tmp_path / "c"))
        assert sweep.ok
        assert sweep.column("squared") == [4, 9, 16]
        assert sweep.table(["value"], "squared") \
            == [((2,), 4), ((3,), 9), ((4,), 16)]

    def test_failed_cells_stay_aligned_as_none(self, tmp_path):
        specs = [
            *grid_specs("farm-selftest", base={"mode": "ok"},
                        grid={"value": [1]}),
            *grid_specs("farm-selftest", base={"mode": "fail"},
                        grid={"value": [2]}),
        ]
        sweep = run_sweep(specs, workers=1,
                          cache=ResultCache(root=tmp_path / "c"))
        assert not sweep.ok
        assert sweep.column("squared") == [1, None]

    def test_rows_carry_params(self, tmp_path):
        specs = grid_specs("farm-selftest", base={"mode": "ok"},
                           grid={"value": [5]})
        sweep = run_sweep(specs, workers=1,
                          cache=ResultCache(root=tmp_path / "c"))
        (params, result), = sweep.rows()
        assert params["value"] == 5 and result.ok


class TestSubsystemFanOut:
    def test_resilience_campaign_matrix(self, tmp_path):
        reports = run_campaign_matrix(
            [0, 1], scale="tiny", workers=2,
            cache_dir=str(tmp_path / "cache"), use_cache=True,
            jobs=1, hosts_per_job=2, iterations=4, compute_s=1.0,
            collective_bits=1e9, fault_at_s=2.0,
            checkpoint_interval_s=8.0)
        assert len(reports) == 2
        assert all(r["seed"] in (0, 1) for r in reports)
        assert all("goodput_fraction" in r for r in reports)

    def test_monitoring_campaign_farm_sweep(self, tmp_path):
        summaries = FaultCampaign.farm_sweep(
            [0, 1], n_faults=2, job_hosts=4, iterations=3, workers=2)
        assert len(summaries) == 2
        for summary in summaries:
            assert summary["n_faults"] == 2
            assert 0.0 <= summary["localization_accuracy"] <= 1.0
            assert len(summary["records"]) == 2

    def test_cluster_contention_sweep_point(self, tmp_path):
        """The contention flag folds the MultiJobRun replay in."""
        specs = grid_specs("cluster-sweep",
                           base={"scale": "tiny", "jobs": 6,
                                 "contention": True},
                           seeds=[0])
        sweep = run_sweep(specs, workers=1,
                          cache=ResultCache(root=tmp_path / "c"))
        assert sweep.ok
        contention = sweep.results[0].result["contention"]
        assert contention  # peak tenant set is non-empty
        for outcome in contention.values():
            assert 0.0 < outcome["efficiency"] <= 1.0 + 1e-9

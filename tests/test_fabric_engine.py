"""Tests for the event-driven :class:`FabricEngine` on the simcore kernel.

Covers the engine/batch equivalence contract (simultaneous starts must
reproduce the epoch-global fluid loop), timed behaviour that the batch
loop cannot express (staggered starts, mid-flight capacity changes and
path reassignment), the incremental max-min component restriction, the
wave-scheduled collectives, starvation diagnostics, and timestamp fault
injection in the monitored job simulator.
"""

import dataclasses
import random

import pytest

from repro.monitoring import (
    FaultSpec,
    JobConfig,
    MonitoredTrainingJob,
)
from repro.network import (
    EcmpController,
    Endpoint,
    Fabric,
    FabricEngine,
    SolverStats,
    make_flow,
    reset_flow_ids,
    run_collective,
    run_collective_timed,
)
from repro.simcore import SimulationError, Simulator
from repro.topology import AstralParams, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def _hosts(topology):
    return sorted(name for name, device in topology.devices.items()
                  if device.tier == 0)


def _random_flows(rng, hosts, count):
    flows = []
    for _ in range(count):
        src, dst = rng.sample(hosts, 2)
        flows.append(make_flow(
            src, dst, rail=0,
            size_bits=rng.uniform(5e8, 6.4e10),
            src_port=rng.randrange(49152, 65535)))
    return flows


class TestBatchEquivalence:
    """All flows at start_time_s=0 must reproduce the batch loop."""

    @pytest.mark.parametrize("params", ["tiny", "small"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_engine_matches_complete_batch(self, params, seed):
        topology = build_astral(getattr(AstralParams, params)())
        fabric = Fabric(topology)
        rng = random.Random(seed)
        flows = _random_flows(rng, _hosts(topology), 24)

        batch = fabric.complete_batch(list(flows))
        for flow in flows:
            flow.rate_gbps = 0.0

        engine = FabricEngine(fabric)
        engine.submit_many(flows)
        run = engine.run()

        # Exact equality, not approx: since the epoch-drift fix both
        # integrators cache absolute deadlines, so for simultaneous
        # starts the finish times are bit-identical (the validation
        # harness fuzzes this; see repro.validation.differential).
        assert run.total_time_s == batch.total_time_s
        for flow in flows:
            assert run.finish_times_s[flow.flow_id] \
                == batch.finish_times_s[flow.flow_id]

    def test_complete_wrapper_delegates_to_engine(self):
        """Fabric.complete is the engine in batch clothing: identical
        results, identical FabricRun shape."""
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        rng = random.Random(7)
        flows = _random_flows(rng, _hosts(topology), 16)
        batch = fabric.complete_batch(list(flows))
        for flow in flows:
            flow.rate_gbps = 0.0
        run = fabric.complete(list(flows))
        assert run.total_time_s == batch.total_time_s
        assert run.finish_times_s == batch.finish_times_s
        assert set(run.link_loads) == set(batch.link_loads)

    def test_hop_cache_reused_across_epochs(self):
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        rng = random.Random(3)
        flows = _random_flows(rng, _hosts(topology), 24)
        fabric.complete(flows)
        assert fabric.hops_cache_hits > fabric.hops_cache_misses


class TestTimedBehaviour:
    def test_staggered_start_slows_in_flight_flow(self):
        """A late arrival on a shared bottleneck measurably delays a
        flow that is already in flight — inexpressible in the batch
        loop, where everything starts together."""
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        early = make_flow("p0.b0.h0", "p0.b1.h3", rail=0, size_bits=8e9)

        solo_engine = FabricEngine(Fabric(topology))
        solo_engine.submit(early)
        solo = solo_engine.run()
        solo_finish = solo.finish_times_s[early.flow_id]

        early2 = make_flow("p0.b0.h0", "p0.b1.h3", rail=0,
                           size_bits=8e9,
                           src_port=early.five_tuple.src_port)
        late = make_flow("p0.b0.h0", "p0.b1.h3", rail=0, size_bits=8e9,
                        src_port=early.five_tuple.src_port)
        engine = FabricEngine(fabric)
        engine.submit(early2, start_time_s=0.0)
        engine.submit(late, start_time_s=solo_finish / 2)
        run = engine.run()

        # Identical five-tuples share the whole path: the in-flight
        # flow halves its rate when the late one lands.
        assert run.finish_times_s[early2.flow_id] \
            > solo_finish * 1.2
        assert run.finish_times_s[late.flow_id] \
            > run.finish_times_s[early2.flow_id]

    def test_capacity_change_mid_flight_reschedules_finish(self):
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0, size_bits=2e12)
        engine = FabricEngine(fabric)
        engine.submit(flow)
        path = fabric.router.path(flow)
        engine.set_capacity_factor(path.link_ids[0], 0.5, at=5.0)
        run = engine.run()
        # 5 s at 200 Gbps moves 1e12 bits; the remaining 1e12 crawls at
        # 100 Gbps for 10 s: finish at t=15 instead of t=10.
        assert run.finish_times_s[flow.flow_id] == pytest.approx(
            15.0, rel=1e-9)

    def test_starved_flows_raise_diagnosable_error(self):
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0, size_bits=8e9)
        path = fabric.router.path(flow)
        engine = FabricEngine(fabric)
        engine.set_capacity_factor(path.link_ids[0], 0.0)
        engine.submit(flow, path=path)
        with pytest.raises(SimulationError) as excinfo:
            engine.run()
        assert str(flow.flow_id) in str(excinfo.value)

    def test_batch_starvation_raises_simulation_error(self):
        """Satellite fix: a dead link used to surface as a bare
        ValueError from min() over an empty generator."""
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        flow = make_flow("p0.b0.h0", "p0.b0.h1", rail=0, size_bits=8e9)
        path = fabric.router.path(flow)
        topology.links[path.link_ids[0]].capacity_gbps = 0.0
        topology.version += 1
        with pytest.raises(SimulationError) as excinfo:
            fabric.complete_batch([flow])
        assert str(flow.flow_id) in str(excinfo.value)


class TestIncrementalSolve:
    def test_arrival_resolves_only_touched_component(self):
        """A new flow re-solves its own connected component, not the
        whole fabric: the disjoint tenant's flows are untouched."""
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        flow_a = make_flow("p0.b0.h0", "p0.b0.h1", rail=0,
                           size_bits=8e9)
        flow_b = make_flow("p0.b1.h0", "p0.b1.h1", rail=0,
                           size_bits=8e9)
        late = make_flow("p0.b0.h0", "p0.b0.h2", rail=0, size_bits=8e9)

        engine = FabricEngine(fabric)
        engine.submit(flow_a)
        engine.submit(flow_b)
        engine.submit(late, start_time_s=0.01)

        probe = {}

        def _probe():
            yield engine.sim.timeout(0.0105)
            probe["flows_resolved"] = engine.stats.flows_resolved
            probe["solves"] = engine.stats.solves

        engine.sim.process(_probe())
        engine.run()

        # Initial solve touches both components (2 flows); the late
        # arrival shares p0.b0.h0's uplink with flow_a only, so its
        # solve resolves 2 flows (a + late), never flow_b's component.
        assert probe["solves"] == 2
        assert probe["flows_resolved"] == 4

    def test_incremental_does_less_link_work_than_batch(self):
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        rng = random.Random(11)
        flows = _random_flows(rng, _hosts(topology), 48)

        batch_stats = SolverStats()
        fabric.complete_batch(list(flows), stats=batch_stats)
        for flow in flows:
            flow.rate_gbps = 0.0

        engine = FabricEngine(fabric)
        engine.submit_many(flows)
        engine.run()
        assert engine.stats.link_visits < batch_stats.link_visits


class TestMidFlightController:
    """Acceptance: an EcmpController round at t=5s retargets in-flight
    flows, changing paths and finish times, with ECN marks
    non-increasing across rounds (Figure 17 shape)."""

    @staticmethod
    def _workload():
        return [
            make_flow(f"p0.b0.h{src}", f"p0.b1.h{(src * 3 + k) % 8}",
                      rail=0, size_bits=2e12, src_port=50000)
            for src in range(8) for k in range(2)
        ]

    def test_reassignment_at_5s_changes_path_and_finish(self):
        reset_flow_ids()
        baseline_fabric = Fabric(build_astral(AstralParams.small()))
        baseline_flows = self._workload()
        baseline = baseline_fabric.complete(baseline_flows)

        reset_flow_ids()
        fabric = Fabric(build_astral(AstralParams.small()))
        flows = self._workload()
        paths_before = {
            flow.flow_id: tuple(fabric.router.path(flow).link_ids)
            for flow in flows
        }
        engine = FabricEngine(fabric)
        controller = EcmpController(fabric)
        reports = controller.run_timed(engine, flows, interval_s=5.0,
                                       rounds=8)
        engine.submit_many(flows)
        run = engine.run()

        assert reports
        assert reports[0].at_time_s == pytest.approx(5.0)
        assert any(report.flows_moved > 0 for report in reports)

        moved = [fid for fid, links in paths_before.items()
                 if tuple(run.paths[fid].link_ids) != links]
        assert moved
        # Retargeting mid-flight changes completion times relative to
        # the uncontrolled baseline.
        assert any(
            abs(run.finish_times_s[fid] - baseline.finish_times_s[fid])
            > 1e-6
            for fid in moved
        )
        # ECN marks non-increasing within and across rounds.
        for report in reports:
            assert report.total_ecn_marks_after \
                <= report.total_ecn_marks_before + 1e-6
        afters = [report.total_ecn_marks_after for report in reports]
        befores = [report.total_ecn_marks_before for report in reports]
        for prev_after, next_before in zip(afters, befores[1:]):
            assert next_before <= prev_after + 1e-6


class TestTimedCollectives:
    def test_ring_waves_match_flat_total(self):
        """n-1 sequenced ReduceScatter waves of size/n per neighbor sum
        to the flat generator's (n-1)/n*size — same network time on an
        uncongested ring, now with real step dependencies."""
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        endpoints = [Endpoint(f"p0.b0.h{i}", 0) for i in range(4)]
        flat = run_collective(fabric, endpoints, 8e9, "reduce_scatter")

        engine = FabricEngine(fabric)
        proc = run_collective_timed(engine, endpoints, 8e9,
                                    "reduce_scatter")
        engine.run()
        result = proc.value
        assert result.n_waves == 3
        assert result.network_time_s == pytest.approx(
            flat.network_time_s, rel=1e-6)

    def test_allreduce_has_2n_minus_2_waves(self):
        topology = build_astral(AstralParams.small())
        engine = FabricEngine(Fabric(topology))
        endpoints = [Endpoint(f"p0.b0.h{i}", 0) for i in range(4)]
        proc = run_collective_timed(engine, endpoints, 8e9, "allreduce")
        engine.run()
        assert proc.value.n_waves == 6

    def test_run_collective_scheduled_mode(self):
        """``run_collective(scheduled=True)`` runs the dependency-aware
        wave schedule on a private engine — same total network time as
        the flat batch on an uncongested ring, with a real run."""
        topology = build_astral(AstralParams.small())
        endpoints = [Endpoint(f"p0.b0.h{i}", 0) for i in range(4)]
        flat = run_collective(Fabric(topology), endpoints, 8e9,
                              "reduce_scatter")
        sched = run_collective(Fabric(topology), endpoints, 8e9,
                               "reduce_scatter", scheduled=True)
        assert sched.network_time_s == pytest.approx(
            flat.network_time_s, rel=1e-6)
        assert sched.run is not None
        assert sched.run.total_time_s == pytest.approx(
            sched.network_time_s, rel=1e-6)

    def test_pipeline_chain_serializes(self):
        """PP send/recv legs run strictly one after another."""
        from repro.network import send_recv_chain

        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        engine = FabricEngine(fabric)
        endpoints = [Endpoint(f"p0.b0.h{i}", 0) for i in range(3)]
        waves = send_recv_chain(
            list(zip(endpoints, endpoints[1:])), 8e9)
        assert len(waves) == 2

        sim = engine.sim

        def _chain():
            for wave in waves:
                yield engine.submit_many(wave)
            return sim.now

        proc = sim.process(_chain())
        sim.run()
        first, second = waves[0][0], waves[1][0]
        run = engine.run()
        assert run.finish_times_s[second.flow_id] == pytest.approx(
            2 * run.finish_times_s[first.flow_id], rel=1e-9)


class TestTimestampFaults:
    HOSTS = tuple(f"p0.b0.h{i}" for i in range(4))

    def test_fault_strikes_at_timestamp_not_iteration(self):
        fabric = Fabric(build_astral(AstralParams.small()))
        fault = dataclasses.replace(
            FaultSpec.pcie_storm("p0.b0.h1"), at_time_s=1.2)
        job = MonitoredTrainingJob(
            fabric, JobConfig(hosts=self.HOSTS, iterations=4),
            fault=fault)
        result = job.run()

        assert result.completed_iterations == 4  # fail-slow, no abort
        # Snapshots that started before t=1.2 show no PCIe evidence;
        # later ones do.
        early = [snap for snap in result.snapshots if snap.time_s < 1.2]
        late = [snap for snap in result.snapshots if snap.time_s >= 1.2]
        assert early and late
        assert all(
            snap.hosts["p0.b0.h1"].pcie_errors == 0 for snap in early)
        assert any(
            snap.hosts["p0.b0.h1"].pcie_errors > 0 for snap in late)
        # The storm crushed the host's access links on the clock.
        assert all(link.capacity_gbps < 100
                   for link in fabric.topology.links_of("p0.b0.h1"))
        # Iterations after the storm crawl relative to the clean ones.
        assert late[-1].iteration_time_s \
            > early[0].iteration_time_s * 1.5


class TestStaggeredStartRegression:
    """Engine vs an independent epoch-loop reference under randomly
    staggered arrivals: both advance a global max-min fluid allocation
    between events, so finish times must agree to float precision."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engine_matches_reference(self, seed):
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        rng = random.Random(seed)
        flows = _random_flows(rng, _hosts(topology), 18)
        for flow in flows:
            flow.start_time_s = rng.uniform(0.0, 3.0)

        # -- reference: epoch loop over the global fluid allocator ----
        remaining = {f.flow_id: float(f.size_bits) for f in flows}
        reference = {}
        pending = sorted(flows,
                         key=lambda f: (f.start_time_s, f.flow_id))
        active = []
        now = 0.0
        while pending or active:
            rates = fabric.max_min_rates(active) if active else {}
            next_arrival = pending[0].start_time_s if pending \
                else float("inf")
            next_done = float("inf")
            for flow in active:
                rate = rates[flow.flow_id] * 1e9
                assert rate > 0
                next_done = min(next_done,
                                now + remaining[flow.flow_id] / rate)
            horizon = min(next_arrival, next_done)
            for flow in active:
                remaining[flow.flow_id] -= \
                    rates[flow.flow_id] * 1e9 * (horizon - now)
            now = horizon
            still = []
            for flow in active:
                if remaining[flow.flow_id] <= 1e-3:
                    reference[flow.flow_id] = now
                else:
                    still.append(flow)
            active = still
            while pending and pending[0].start_time_s <= now:
                active.append(pending.pop(0))

        # -- engine run of the very same staggered workload -----------
        engine = FabricEngine(Fabric(topology))
        engine.submit_many(flows)
        run = engine.run()

        assert set(run.finish_times_s) == set(reference)
        for flow in flows:
            assert run.finish_times_s[flow.flow_id] == pytest.approx(
                reference[flow.flow_id], abs=1e-6)

"""Tests for Appendix C (monitoring overhead) and Appendix D (evolving
detectors, including the §5 PCIe incident replay)."""

import pytest

from repro.monitoring import (
    FaultSpec,
    HierarchicalAnalyzer,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    MonitoringOverhead,
    PhysicalDetector,
    default_registry,
    pcie_pfc_detector,
    pre_incident_registry,
)
from repro.network import Fabric, reset_flow_ids
from repro.topology import AstralParams, build_astral

HOSTS = tuple(f"p0.b0.h{i}" for i in range(4)) \
    + ("p0.b1.h0", "p0.b1.h1")


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


class TestMonitoringOverhead:
    def test_appendix_c_mirror_numbers(self):
        """100K GPUs => ~10 Gbps of mirror traffic, ~0.00005% share."""
        overhead = MonitoringOverhead()
        assert overhead.mirror_traffic_gbps(100_000) \
            == pytest.approx(10.0)
        assert overhead.mirror_fraction(100_000) \
            == pytest.approx(5e-7, rel=0.05)

    def test_appendix_c_int_storage(self):
        """10K GPUs => 173 GB/day, 15-day retention."""
        overhead = MonitoringOverhead()
        assert overhead.int_storage_bytes_per_day(10_000) \
            == pytest.approx(173e9)
        assert overhead.int_storage_bytes_retained(10_000) \
            == pytest.approx(173e9 * 15)

    def test_node_rounding(self):
        overhead = MonitoringOverhead()
        assert overhead.nodes(8) == 1
        assert overhead.nodes(9) == 2

    def test_zero_cluster(self):
        overhead = MonitoringOverhead()
        assert overhead.mirror_fraction(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MonitoringOverhead().nodes(-1)

    def test_report_keys(self):
        report = MonitoringOverhead().report(1000)
        assert set(report) == {"n_gpus", "mirror_gbps",
                               "mirror_fraction", "int_gb_per_day",
                               "int_gb_retained"}


class TestDetectorRegistry:
    def test_default_includes_pcie(self):
        assert "pcie-pfc" in default_registry().names()

    def test_pre_incident_lacks_pcie(self):
        assert "pcie-pfc" not in pre_incident_registry().names()

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError):
            registry.register(pcie_pfc_detector)

    def test_custom_detector_patched_in(self):
        registry = pre_incident_registry()
        custom = PhysicalDetector(
            "always-fires",
            lambda store, device: None)
        registry.register(custom)
        assert "always-fires" in registry.names()


class TestPcieIncidentReplay:
    """The §5 war story: a broken PCIe triggers PFC storms; the
    original monitoring system could only see the congested end-host,
    not why.  After the physical-layer detector is patched in, the same
    telemetry yields the exact root cause."""

    @pytest.fixture(scope="class")
    def incident(self):
        reset_flow_ids()
        topology = build_astral(AstralParams.small())
        fabric = Fabric(topology)
        fault = FaultSpec.pcie_storm(HOSTS[1], at_iteration=2)
        result = MonitoredTrainingJob(
            fabric, JobConfig(hosts=HOSTS, iterations=5),
            fault=fault).run()
        return result

    def _diagnose(self, result, registry):
        analyzer = HierarchicalAnalyzer(
            result.store, result.expected_compute_s,
            result.expected_comm_s, detectors=registry)
        return analyzer.diagnose("job0")

    def test_manifests_as_fail_slow(self, incident):
        diagnosis = self._diagnose(incident, default_registry())
        assert diagnosis.manifestation is Manifestation.FAIL_SLOW

    def test_pre_incident_cannot_pinpoint(self, incident):
        """Before the detector existed: congestion seen, cause opaque
        (the incident took hours of manual diagnosis)."""
        diagnosis = self._diagnose(incident, pre_incident_registry())
        assert diagnosis.inferred_cause != "pcie-anomaly"

    def test_post_incident_finds_host_and_cause(self, incident):
        diagnosis = self._diagnose(incident, default_registry())
        assert diagnosis.inferred_cause == "pcie-anomaly"
        assert diagnosis.root_cause_device == HOSTS[1]
        assert "PCIe" in diagnosis.recommended_action

    def test_detector_evidence_in_chain(self, incident):
        diagnosis = self._diagnose(incident, default_registry())
        evidence = " ".join(diagnosis.evidence)
        assert "pcie-pfc" in evidence

    def test_pcie_storm_constructor(self):
        fault = FaultSpec.pcie_storm("hX")
        assert fault.manifestation is Manifestation.FAIL_SLOW
        assert fault.effect.value == "pcie-pfc-storm"

"""Tests for the HBM memory-footprint estimator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seer import (
    GPT3_175B,
    HUNYUAN_MOE,
    LLAMA3_70B,
    ParallelismConfig,
    estimate_memory,
    fits_memory,
    gpu_suite,
)


class TestTrainingFootprint:
    def test_known_layout_near_capacity(self):
        """GPT-3 at TPxPP = 64-way sharding sits near (but within a few
        GB of) an 80 GB part — the realistic production regime."""
        estimate = estimate_memory(
            GPT3_175B,
            ParallelismConfig(tp=8, pp=8, dp=16, microbatches=16))
        assert 50 < estimate.total_gb < 90

    def test_tiny_sharding_does_not_fit(self):
        estimate = estimate_memory(
            GPT3_175B, ParallelismConfig(tp=2, pp=2, dp=2,
                                         microbatches=8))
        assert not estimate.fits(gpu_suite("H800"))

    def test_zero3_shards_optimizer_and_weights(self):
        plain = estimate_memory(
            LLAMA3_70B, ParallelismConfig(tp=4, pp=4, dp=8,
                                          microbatches=8))
        zero3 = estimate_memory(
            LLAMA3_70B, ParallelismConfig(tp=4, pp=4, dp=8,
                                          zero_stage=3,
                                          microbatches=8))
        assert zero3.optimizer < plain.optimizer
        assert zero3.weights < plain.weights
        assert zero3.total < plain.total

    def test_ep_shards_expert_weights(self):
        ep1 = estimate_memory(
            HUNYUAN_MOE, ParallelismConfig(tp=4, pp=4, dp=2, ep=1,
                                           microbatches=8))
        ep16 = estimate_memory(
            HUNYUAN_MOE, ParallelismConfig(tp=4, pp=4, dp=2, ep=16,
                                           microbatches=8))
        assert ep16.weights < ep1.weights / 4

    def test_more_tp_reduces_activations(self):
        tp2 = estimate_memory(
            LLAMA3_70B, ParallelismConfig(tp=2, pp=4, dp=1,
                                          microbatches=8))
        tp8 = estimate_memory(
            LLAMA3_70B, ParallelismConfig(tp=8, pp=4, dp=1,
                                          microbatches=8))
        assert tp8.activations < tp2.activations

    @given(tp=st.sampled_from([1, 2, 4, 8]),
           pp=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=16, deadline=None)
    def test_footprint_monotone_in_sharding(self, tp, pp):
        base = estimate_memory(
            LLAMA3_70B, ParallelismConfig(tp=tp, pp=pp, dp=1,
                                          microbatches=4))
        sharded = estimate_memory(
            LLAMA3_70B, ParallelismConfig(tp=tp, pp=pp * 2, dp=1,
                                          microbatches=4)) \
            if (LLAMA3_70B.n_layers % (pp * 2) == 0) else None
        if sharded is not None:
            assert sharded.weights <= base.weights


class TestInferenceFootprint:
    def test_kv_cache_grows_with_context(self):
        short = estimate_memory(
            LLAMA3_70B, ParallelismConfig(tp=8, pp=1, dp=1),
            training=False, inference_batch=8, inference_context=512)
        long = estimate_memory(
            LLAMA3_70B, ParallelismConfig(tp=8, pp=1, dp=1),
            training=False, inference_batch=8,
            inference_context=8192)
        assert long.kv_cache > 10 * short.kv_cache

    def test_inference_lighter_than_training(self):
        parallel = ParallelismConfig(tp=8, pp=1, dp=1, microbatches=4)
        train = estimate_memory(LLAMA3_70B, parallel)
        infer = estimate_memory(LLAMA3_70B, parallel, training=False)
        assert infer.total < train.total

    def test_llama3_inference_fits_tp8(self):
        assert fits_memory(
            LLAMA3_70B, ParallelismConfig(tp=8, pp=1, dp=1),
            gpu_suite("H800"), training=False)


class TestFitsHelper:
    def test_headroom_respected(self):
        estimate = estimate_memory(
            LLAMA3_70B, ParallelismConfig(tp=8, pp=8, dp=4,
                                          microbatches=8))
        gpu = gpu_suite("H800")
        # With 100% headroom demanded, nothing fits.
        assert not estimate.fits(gpu, headroom_frac=1.0)

    def test_h20_extra_hbm_helps(self):
        parallel = ParallelismConfig(tp=8, pp=8, dp=16,
                                     microbatches=16)
        estimate = estimate_memory(GPT3_175B, parallel)
        h800 = estimate.fits(gpu_suite("H800"))
        h20 = estimate.fits(gpu_suite("H20"))   # 96 GB part
        assert h20 or not h800  # H20 never fits less than H800

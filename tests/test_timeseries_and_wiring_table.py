"""Tests for the sliding-window detector and the wiring-plan table."""

import pytest

from repro.monitoring import (
    SlidingWindowDetector,
    expected_wiring_table,
    verify_wiring,
)
from repro.topology import AstralParams, build_astral


class TestSlidingWindowDetector:
    def test_flat_series_quiet(self):
        detector = SlidingWindowDetector()
        assert detector.scan([1.0] * 20) == []

    def test_step_regression_flagged(self):
        detector = SlidingWindowDetector()
        series = [1.0] * 10 + [1.5] * 3
        alerts = detector.scan(series)
        assert alerts
        assert alerts[0].index == 10
        assert alerts[0].slowdown == pytest.approx(1.5)

    def test_baseline_excludes_flagged_samples(self):
        """A persistent regression keeps alerting: outliers never
        contaminate the baseline."""
        detector = SlidingWindowDetector()
        series = [1.0] * 10 + [1.5] * 5
        alerts = detector.scan(series)
        assert len(alerts) == 5

    def test_small_wobble_ignored(self):
        detector = SlidingWindowDetector(min_relative=0.05)
        series = [1.0] * 10 + [1.02]
        assert detector.latest(series) is None

    def test_noisy_baseline_raises_bar(self):
        detector = SlidingWindowDetector(threshold=4.0)
        noisy = [1.0, 1.2, 0.8, 1.1, 0.9, 1.15, 0.85, 1.05]
        assert detector.latest(noisy + [1.3]) is None
        assert detector.latest(noisy + [3.0]) is not None

    def test_latest_on_short_series(self):
        detector = SlidingWindowDetector()
        assert detector.latest([]) is None
        assert detector.latest([1.0]) is None
        assert detector.latest([1.0, 5.0]) is None  # 1-point baseline

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SlidingWindowDetector(window=1)
        with pytest.raises(ValueError):
            SlidingWindowDetector(threshold=0.0)

    def test_faster_is_not_an_alert(self):
        detector = SlidingWindowDetector()
        series = [1.0] * 10 + [0.5]
        assert detector.latest(series) is None


class TestExpectedWiringTable:
    def test_row_count(self):
        params = AstralParams.tiny()
        rows = expected_wiring_table(params)
        hosts = params.pods * params.blocks_per_pod \
            * params.hosts_per_block
        assert len(rows) == hosts * params.rails * params.nic_ports

    def test_table_matches_builder_wiring(self):
        """The plan and the builder agree: a fabric built from the
        params passes verification, and every planned (host, port, ToR)
        triple exists as a link."""
        params = AstralParams.tiny()
        topology = build_astral(params)
        assert verify_wiring(topology, params) == []
        for host, port, tor in expected_wiring_table(params):
            links = topology.link_between(host, tor)
            ports = {link.endpoint(host).port for link in links}
            assert port in ports

    def test_ports_alternate_groups(self):
        rows = expected_wiring_table(AstralParams.tiny())
        first_host = [r for r in rows if r[0] == "p0.b0.h0"]
        # port 0 -> g0 ToR, port 1 -> g1 ToR (P3 dual-ToR wiring).
        assert first_host[0][2].endswith("g0.tor")
        assert first_host[1][2].endswith("g1.tor")

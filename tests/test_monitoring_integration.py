"""End-to-end monitoring tests: inject a fault, run the monitored job,
diagnose from telemetry only, and check the verdict (§3.3 cases)."""

import pytest

from repro.monitoring import (
    FaultSpec,
    HierarchicalAnalyzer,
    JobConfig,
    Manifestation,
    MonitoredTrainingJob,
    RootCause,
)
from repro.network import Endpoint, Fabric, reset_flow_ids
from repro.network.collectives import ring_allreduce_flows
from repro.topology import AstralParams, build_astral

HOSTS = tuple(f"p0.b0.h{i}" for i in range(4)) \
    + ("p0.b1.h0", "p0.b1.h1")


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def run_scenario(fault=None, hosts=HOSTS, iterations=5,
                 collective="allreduce"):
    topo = build_astral(AstralParams.small())
    fabric = Fabric(topo)
    config = JobConfig(hosts=hosts, iterations=iterations,
                       collective=collective)
    result = MonitoredTrainingJob(fabric, config, fault=fault).run()
    analyzer = HierarchicalAnalyzer(
        result.store, result.expected_compute_s, result.expected_comm_s)
    return result, analyzer.diagnose(config.name)


def job_link_on_fabric(hosts=HOSTS, hop_index=1):
    """A switch-switch link crossed by the job's ring traffic."""
    topo = build_astral(AstralParams.small())
    fabric = Fabric(topo)
    flows = ring_allreduce_flows([Endpoint(h, 0) for h in hosts], 8e9)
    for flow in flows:
        path = fabric.router.path(flow)
        if path.hops > 2:
            reset_flow_ids()
            return path.link_ids[hop_index]
    raise AssertionError("no multi-hop flow found")


class TestHealthyJob:
    def test_no_anomaly_detected(self):
        result, diagnosis = run_scenario()
        assert result.completed_iterations == 5
        assert diagnosis.manifestation is None
        assert diagnosis.anomaly_kind is None

    def test_expected_times_positive(self):
        result, _ = run_scenario()
        assert result.expected_compute_s > 0
        assert result.expected_comm_s > 0


class TestComputationBranch:
    def test_gpu_fatal_localized_to_host(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP, HOSTS[1],
                          at_iteration=2)
        result, diagnosis = run_scenario(fault)
        assert result.aborted
        assert diagnosis.manifestation is Manifestation.FAIL_STOP
        assert diagnosis.anomaly_kind == "computation"
        assert diagnosis.root_cause_device == HOSTS[1]
        assert diagnosis.inferred_cause == "gpu-hardware"
        assert "restart" in diagnosis.recommended_action

    def test_ecc_fatal_localized(self):
        fault = FaultSpec(RootCause.MEMORY, Manifestation.FAIL_STOP,
                          HOSTS[3], at_iteration=3)
        _, diagnosis = run_scenario(fault)
        assert diagnosis.root_cause_device == HOSTS[3]
        assert diagnosis.inferred_cause == "memory"

    def test_user_code_multi_host_alarm(self):
        fault = FaultSpec(RootCause.USER_CODE, Manifestation.FAIL_STOP,
                          "job0", at_iteration=2)
        _, diagnosis = run_scenario(fault)
        assert diagnosis.anomaly_kind == "computation"
        assert len(diagnosis.abnormal_hosts) >= 2
        assert diagnosis.inferred_cause == "user-code"
        assert "manual intervention" in diagnosis.recommended_action

    def test_config_error_fail_on_start(self):
        fault = FaultSpec(RootCause.HOST_ENV_CONFIG,
                          Manifestation.FAIL_ON_START, HOSTS[0],
                          at_iteration=0)
        result, diagnosis = run_scenario(fault)
        assert result.completed_iterations == 0
        assert diagnosis.manifestation is Manifestation.FAIL_ON_START
        assert diagnosis.root_cause_device == HOSTS[0]
        assert diagnosis.inferred_cause == "host-env-config"


class TestCommunicationBranch:
    def test_optical_link_down_localized_by_path_overlap(self):
        link_id = job_link_on_fabric()
        fault = FaultSpec(RootCause.OPTICAL_FIBER,
                          Manifestation.FAIL_STOP, f"link:{link_id}",
                          at_iteration=2)
        result, diagnosis = run_scenario(fault)
        assert result.aborted
        assert diagnosis.anomaly_kind == "communication"
        assert diagnosis.root_cause_device == f"link:{link_id}"
        assert diagnosis.inferred_cause == "optical-fiber"

    def test_nic_error_localized_to_common_endpoint(self):
        fault = FaultSpec(RootCause.NIC_ERROR, Manifestation.FAIL_STOP,
                          HOSTS[2], at_iteration=3)
        _, diagnosis = run_scenario(fault)
        assert diagnosis.anomaly_kind == "communication"
        assert diagnosis.root_cause_device == HOSTS[2]
        assert diagnosis.inferred_cause == "nic-error"

    def test_switch_ecn_storm_traced_via_int_and_counters(self):
        """The Figure 9 drill-down: timeline -> QP rate -> INT hop ->
        PFC counters -> congestion root cause."""
        fault = FaultSpec(RootCause.SWITCH_CONFIG,
                          Manifestation.FAIL_SLOW, "p0.b0.r0.g0.tor",
                          at_iteration=2)
        result, diagnosis = run_scenario(fault)
        assert not result.aborted
        assert diagnosis.manifestation is Manifestation.FAIL_SLOW
        assert diagnosis.anomaly_kind == "communication"
        assert diagnosis.inferred_cause == "switch-config"
        assert diagnosis.root_cause_device == "p0.b0.r0.g0.tor"
        evidence = " ".join(diagnosis.evidence)
        assert "QP" in evidence
        assert "INT" in evidence

    def test_ccl_hang_flagged_without_logs(self):
        fault = FaultSpec(RootCause.CCL_BUG, Manifestation.FAIL_HANG,
                          HOSTS[0], at_iteration=2)
        result, diagnosis = run_scenario(fault)
        assert result.hung
        assert diagnosis.manifestation is Manifestation.FAIL_HANG
        assert HOSTS[0] in diagnosis.abnormal_hosts
        assert diagnosis.inferred_cause == "ccl-bug"
        assert "offline" in diagnosis.recommended_action

    def test_link_degrade_fail_slow(self):
        link_id = job_link_on_fabric()
        fault = FaultSpec(RootCause.LINK_FLAP, Manifestation.FAIL_SLOW,
                          f"link:{link_id}", at_iteration=2)
        result, diagnosis = run_scenario(fault)
        assert diagnosis.manifestation is Manifestation.FAIL_SLOW
        assert diagnosis.anomaly_kind == "communication"
        # The analyzer should reach the network/physical layer.
        assert diagnosis.root_cause_device is not None


class TestDiagnosisPlumbing:
    def test_evidence_chain_nonempty(self):
        fault = FaultSpec(RootCause.GPU_HARDWARE,
                          Manifestation.FAIL_STOP, HOSTS[1],
                          at_iteration=2)
        _, diagnosis = run_scenario(fault)
        assert diagnosis.drill_down_steps >= 3
        assert diagnosis.localized

    def test_unknown_job(self):
        result, _ = run_scenario()
        analyzer = HierarchicalAnalyzer(result.store, 0.5, 0.1)
        diagnosis = analyzer.diagnose("not-a-job")
        assert not diagnosis.localized

    def test_store_contains_all_layers(self):
        result, _ = run_scenario()
        store = result.store
        assert store.nccl_timeline
        assert store.qp_rates
        assert store.sflow_paths
        assert store.int_pings
        assert store.switch_counters
        assert store.host_sensors

"""Correlated fault domains: deterministic expansion, the JSON front
door's structured errors, and the gray mode's detection-miss path.

The gray contract is the interesting one: a gray domain degrades link
*capacity* without touching carrier, so the pingmesh census — the
recovery pipeline's first detection signal — never moves and the
detect->localize loop provably misses, while the same domain in hard
mode is caught and repaired.
"""

import pytest

from repro.cluster import RecoveryManager
from repro.core.placement import GpuAllocator
from repro.hierarchy import HierJob, place_jobs
from repro.monitoring import Manifestation, RootCause
from repro.monitoring.pingmesh import Pingmesh
from repro.network import Fabric, FabricEngine
from repro.network.flows import reset_flow_ids
from repro.resilience import (
    DOMAIN_KINDS,
    FailureInjector,
    FaultDomain,
    RecoveryPipeline,
    domain_fault_specs,
    expand_domains,
    faults_from_document,
    inject_domain,
)
from repro.topology import AstralParams, build_astral


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    reset_flow_ids()


def tiny() -> AstralParams:
    return AstralParams(pods=2, blocks_per_pod=2, hosts_per_block=4,
                        gpus_per_host=2, aggs_per_group=2,
                        cores_per_group=2)


def placed_jobs(params):
    jobs = [HierJob(f"j{i}", n_hosts=params.hosts_per_block,
                    iterations=3)
            for i in range(params.pods * params.blocks_per_pod)]
    return place_jobs(params, jobs)


class TestExpansion:
    @pytest.mark.parametrize("kind", DOMAIN_KINDS)
    @pytest.mark.parametrize("mode", ["hard", "gray"])
    def test_expansion_is_deterministic(self, kind, mode):
        params = tiny()
        domain = FaultDomain(kind, pod=1, block=1, size=2, mode=mode,
                             seed="incident-42")
        assert domain_fault_specs(params, domain) \
            == domain_fault_specs(params, domain)

    def test_contiguous_kinds_hit_adjacent_hosts(self):
        params = tiny()
        for kind in ("power-domain", "rack"):
            specs = domain_fault_specs(
                params, FaultDomain(kind, size=3, seed=9))
            hosts = sorted(int(s.target.rsplit("h", 1)[1])
                           for s in specs)
            assert hosts == list(range(hosts[0], hosts[0] + 3))

    def test_switch_asic_targets_tors(self):
        params = tiny()
        specs = domain_fault_specs(
            params, FaultDomain("switch-asic", size=2, seed=1))
        assert len(specs) == 2
        assert all(s.target.endswith(".tor") for s in specs)
        assert all(s.cause is RootCause.SWITCH_BUG for s in specs)

    def test_gray_mode_picks_the_alarm_free_manifestation(self):
        params = tiny()
        rack = domain_fault_specs(
            params, FaultDomain("rack", size=2, mode="gray"))
        assert all(s.manifestation is Manifestation.FAIL_HANG
                   for s in rack)
        optics = domain_fault_specs(
            params, FaultDomain("optics-batch", size=2, mode="gray"))
        assert all(s.manifestation is Manifestation.FAIL_SLOW
                   for s in optics)

    def test_onset_jitter_stays_in_bounds(self):
        params = tiny()
        specs = domain_fault_specs(
            params, FaultDomain("optics-batch", size=4, at_iteration=2,
                                jitter_iterations=1, seed=7))
        assert {s.at_iteration for s in specs} <= {2, 3}
        assert all(s.at_time_s is None for s in specs)

    def test_timestamp_onset_jitters_on_the_clock(self):
        params = tiny()
        specs = domain_fault_specs(
            params, FaultDomain("optics-batch", size=4, at_time_s=5.0,
                                jitter_s=0.5, seed=7))
        assert all(5.0 <= s.at_time_s < 5.5 for s in specs)

    def test_size_exceeding_the_block_is_rejected(self):
        with pytest.raises(ValueError, match="exceeds the block's"):
            domain_fault_specs(
                tiny(), FaultDomain("power-domain", size=99))

    @pytest.mark.parametrize("kw,match", [
        ({"kind": "comet"}, "unknown fault-domain kind"),
        ({"kind": "rack", "mode": "soft"}, "unknown fault-domain mode"),
        ({"kind": "rack", "size": 0}, "size must be"),
        ({"kind": "rack", "gray_factor": 0.0}, "gray_factor"),
    ])
    def test_field_validation(self, kw, match):
        with pytest.raises(ValueError, match=match):
            FaultDomain(**kw)


class TestExpandDomains:
    def test_one_fault_per_job_keyed_to_the_occupant(self):
        params = tiny()
        placed = placed_jobs(params)
        domain = FaultDomain("power-domain", pod=1, block=0, size=3,
                             seed=5)
        faults = expand_domains(params, placed, [domain])
        # All three contiguous hosts belong to j2 (pod 1, block 0):
        # the first member wins, the job is already broken.
        assert list(faults) == ["j2"]
        assert faults["j2"].target.startswith("p1.b0.h")

    def test_idle_host_members_are_dropped(self):
        params = tiny()
        placed = placed_jobs(params)[:1]        # only j0 (p0.b0) placed
        domain = FaultDomain("rack", pod=0, block=1, size=2, seed=5)
        assert expand_domains(params, placed, [domain]) == {}

    def test_tor_members_ride_on_a_block_resident(self):
        params = tiny()
        placed = placed_jobs(params)
        domain = FaultDomain("switch-asic", pod=0, block=1, size=1,
                             seed=2)
        faults = expand_domains(params, placed, [domain])
        assert list(faults) == ["j1"]
        assert faults["j1"].target.endswith(".tor")


class TestFaultDocument:
    def test_domains_and_explicit_faults_merge(self):
        params = tiny()
        placed = placed_jobs(params)
        document = {
            "domains": [{"kind": "optics-batch", "pod": 0, "block": 0,
                         "size": 2, "seed": 11}],
            "faults": [{"job": "j3", "cause": "user-code",
                        "manifestation": "fail-stop", "target": "j3"}],
        }
        faults = faults_from_document(params, placed, document)
        assert set(faults) == {"j0", "j3"}
        assert faults["j3"].cause is RootCause.USER_CODE

    def test_explicit_fault_overrides_domain_fault(self):
        params = tiny()
        placed = placed_jobs(params)
        document = {
            "domains": [{"kind": "optics-batch", "pod": 0, "block": 0,
                         "size": 2, "seed": 11}],
            "faults": [{"job": "j0", "cause": "ccl-bug",
                        "manifestation": "fail-hang",
                        "target": "p0.b0.h0"}],
        }
        faults = faults_from_document(params, placed, document)
        assert faults["j0"].cause is RootCause.CCL_BUG

    @pytest.mark.parametrize("document,match", [
        (["not-an-object"], "must be an object"),
        ({"domains": [], "typo": []}, "unknown keys"),
        ({"domains": ["x"]}, r"domains\[0\]: expected an object"),
        ({"domains": [{"kind": "comet"}]},
         r"domains\[0\]: unknown fault-domain kind"),
        ({"domains": [{"kind": "rack", "pod": 9}]},
         r"domains\[0\].*pod 9 out of range"),
        ({"domains": [{"kind": "rack", "frobnicate": 1}]},
         r"domains\[0\]"),
        ({"faults": [{"cause": "nic-error",
                      "manifestation": "fail-slow",
                      "target": "p0.b0.h0"}]},
         r"faults\[0\]: missing 'job'"),
        ({"faults": [{"job": "ghost", "cause": "nic-error",
                      "manifestation": "fail-slow",
                      "target": "p0.b0.h0"}]},
         r"faults\[0\]: job 'ghost' is not a placed tenant"),
        ({"faults": [{"job": "j0", "cause": "meteor-strike",
                      "manifestation": "fail-slow",
                      "target": "p0.b0.h0"}]},
         r"faults\[0\]: unknown rootcause"),
        ({"faults": [{"job": "j0", "cause": "nic-error",
                      "manifestation": "fail-slow",
                      "target": "p9.b0.h0"}]},
         r"faults\[0\].*names pod 9"),
        ({"faults": [{"job": "j0", "cause": "nic-error",
                      "manifestation": "fail-slow",
                      "target": "p0.b7.h0"}]},
         r"faults\[0\].*names block 7"),
        ({"faults": [{"job": "j0", "cause": "nic-error",
                      "manifestation": "fail-slow",
                      "target": "p0.b0.h44"}]},
         r"faults\[0\].*names host 44"),
        ({"faults": [{"job": "j0", "cause": "user-code",
                      "manifestation": "fail-stop",
                      "target": "j1"}]},
         r"faults\[0\].*targets the job itself"),
    ])
    def test_malformed_entries_name_the_offender(self, document, match):
        params = tiny()
        placed = placed_jobs(params)
        with pytest.raises(ValueError, match=match):
            faults_from_document(params, placed, document)


class TestGrayDetectionMiss:
    """Gray degrades capacity, not carrier: the census never moves."""

    def _rig(self):
        params = AstralParams.small()
        engine = FabricEngine(Fabric(build_astral(params)))
        injector = FailureInjector(engine)
        pipeline = RecoveryPipeline(
            engine, GpuAllocator(engine.fabric.topology),
            recovery=RecoveryManager(seed=5, ttr_hours=0.5),
            probe_interval_s=30.0)
        return params, engine, injector, pipeline

    def test_gray_domain_slips_past_the_pipeline(self):
        params, engine, injector, pipeline = self._rig()
        mesh = Pingmesh(engine.fabric)
        baseline = mesh.census()
        pipeline.start()
        domain = FaultDomain("optics-batch", size=2, mode="gray",
                             at_time_s=50.0, seed=8)
        specs = inject_domain(injector, params, domain)
        assert len(specs) == 2

        def stopper():
            yield engine.sim.timeout(1000.0)
            pipeline.stop()

        engine.sim.process(stopper(), name="stopper")
        engine.sim.run()
        # Capacity took the hit; carrier (and hence the census) did not.
        degrades = [e for e in injector.log
                    if e.action == "degrade-link"]
        assert degrades and all(e.at_s >= 50.0 for e in degrades)
        assert mesh.census() == baseline
        assert pipeline.records == []     # the miss path, by design

    def test_hard_domain_is_caught_and_repaired(self):
        params, engine, injector, pipeline = self._rig()
        pipeline.start()
        domain = FaultDomain("optics-batch", size=2, mode="hard",
                             at_time_s=50.0, seed=8)
        specs = inject_domain(injector, params, domain)

        def stopper():
            yield engine.sim.timeout(30_000.0)
            pipeline.stop()

        engine.sim.process(stopper(), name="stopper")
        engine.sim.run()
        # Same domain, loud manifestation: detected, localized to the
        # member hosts, cordoned and eventually repaired.
        assert pipeline.records
        cordoned = {host for r in pipeline.records
                    for host in r.cordoned_hosts}
        assert cordoned and cordoned <= {s.target for s in specs}
        assert all(r.repaired_s is not None for r in pipeline.records)

    def test_inject_returns_the_expanded_members(self):
        params, engine, injector, _ = self._rig()
        domain = FaultDomain("rack", size=2, mode="gray",
                             at_time_s=10.0, seed=3)
        assert inject_domain(injector, params, domain) \
            == domain_fault_specs(params, domain)

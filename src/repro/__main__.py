"""Module entry point: ``python -m repro <command>``."""

import sys

from .cli import main

sys.exit(main())

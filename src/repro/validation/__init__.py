"""Differential & property-based correctness harness for the stack.

The repo computes the same physics three ways — the event-driven
:class:`~repro.network.engine.FabricEngine`, the epoch-global
``Fabric.complete_batch`` loop, and the packet-granular
``packetsim`` — plus analytic collective models.  This package
cross-checks them systematically:

* :mod:`~repro.validation.scenarios` — seeded random-but-valid
  topologies, workloads, and fault schedules;
* :mod:`~repro.validation.oracles` — invariants any run must satisfy
  (rate feasibility, work conservation, max-min KKT, byte
  conservation, clock monotonicity, bit-identical replay);
* :mod:`~repro.validation.differential` — two models, one scenario
  (engine vs batch, flow-mapped vs analytic, fluid vs packet);
* :mod:`~repro.validation.metamorphic` — transform the input,
  predict the output (rate scaling, idle job, unused link);
* :mod:`~repro.validation.runner` — the ``repro validate`` campaign.
"""

from .differential import (
    check_engine_vs_batch,
    check_fluid_vs_packet,
    check_ring_vs_analytic,
    check_rs_ag_composition,
    check_solver_backends,
    ring_busbw_gbps,
)
from .metamorphic import (
    check_idle_job_noop,
    check_rate_scaling,
    check_unused_link_noop,
)
from .oracles import (
    TracingSimulator,
    Violation,
    check_clock_monotonic,
    check_incidence_solution,
    check_max_min_bottleneck,
    check_rate_feasibility,
    check_same_result,
    check_solution,
    check_work_conservation,
    link_usage,
    replay_conservation,
)
from .runner import CampaignReport, CaseReport, run_campaign, run_case
from .scenarios import (
    FAMILIES,
    PROFILES,
    FaultAction,
    FlowSpec,
    ScenarioGenerator,
    ScenarioSpec,
    build_flows,
    build_topology,
)

__all__ = [
    "FAMILIES",
    "PROFILES",
    "CampaignReport",
    "CaseReport",
    "FaultAction",
    "FlowSpec",
    "ScenarioGenerator",
    "ScenarioSpec",
    "TracingSimulator",
    "Violation",
    "build_flows",
    "build_topology",
    "check_clock_monotonic",
    "check_engine_vs_batch",
    "check_fluid_vs_packet",
    "check_idle_job_noop",
    "check_incidence_solution",
    "check_max_min_bottleneck",
    "check_rate_feasibility",
    "check_rate_scaling",
    "check_ring_vs_analytic",
    "check_rs_ag_composition",
    "check_same_result",
    "check_solution",
    "check_solver_backends",
    "check_unused_link_noop",
    "check_work_conservation",
    "link_usage",
    "replay_conservation",
    "ring_busbw_gbps",
    "run_campaign",
    "run_case",
]

"""Metamorphic checks: known input transforms, predictable outputs.

No reference implementation needed — these exploit relations the
physics must satisfy:

* scaling every link rate (and the NIC line rate) by ``k`` scales
  every completion time by exactly ``1/k``; for power-of-two ``k``
  the float scaling is lossless, so the comparison is exact;
* adding an idle job (zero-size flows, or a flow that starts after
  the last finish) changes nothing;
* killing a link no flow uses changes nothing.

All three rebuild the world from a :class:`ScenarioSpec`, so flow ids,
source ports, and therefore ECMP paths are identical between the base
and transformed runs — the only safe way to compare, since a changed
candidate set would re-hash paths and legitimately change the answer.
The unused-link check in particular fails a host's *access* link:
hosts never transit traffic, so an idle host's port is provably
outside every other flow's ECMP candidate set.
"""

from __future__ import annotations

from typing import List, Optional

from ..network.fabric import Fabric
from ..network.flows import make_flow
from .oracles import Violation
from .scenarios import ScenarioSpec, build_flows, build_topology

__all__ = [
    "check_idle_job_noop",
    "check_rate_scaling",
    "check_serving_powercap_identity",
    "check_serving_rate_doubling",
    "check_serving_zero_arrival",
    "check_unused_link_noop",
]


def _batch_finish(spec: ScenarioSpec, scale: float = 1.0,
                  fail_link_id: Optional[int] = None,
                  extra_zero_flows: int = 0):
    """Complete the spec's flows at t=0, optionally transformed."""
    topology = build_topology(spec)
    if scale != 1.0:
        for link in topology.links.values():
            link.capacity_gbps *= scale
    if fail_link_id is not None:
        topology.fail_link(fail_link_id)
    fabric = Fabric(topology)
    if scale != 1.0:
        fabric.host_line_rate_gbps *= scale
    flows = build_flows(spec)
    base_ids = [flow.flow_id for flow in flows]
    for index in range(extra_zero_flows):
        # Reuse an existing flow's endpoints so the idle flow is
        # reachable on every family (rail-only has no cross-pod path).
        donor = spec.flows[index % len(spec.flows)]
        flows.append(make_flow(donor.src, donor.dst, rail=donor.rail,
                               size_bits=0.0, job=f"idle{index}"))
    run = fabric.complete(flows)
    return {fid: run.finish_times_s[fid] for fid in base_ids}


def check_rate_scaling(spec: ScenarioSpec,
                       k: float = 2.0) -> List[Violation]:
    """Completion times must scale by exactly ``1/k`` with link rates.

    With ``k`` a power of two every intermediate float (rates, epoch
    deadlines, residues) scales losslessly, so ``finish_scaled * k``
    must equal the base finish bit-for-bit; other ``k`` get a 1e-9
    relative tolerance.
    """
    exact = k > 0 and (k == 2 ** round(_log2(k)))
    base = _batch_finish(spec)
    scaled = _batch_finish(spec, scale=k)
    violations = []
    for fid, base_t in base.items():
        rescaled = scaled[fid] * k
        if exact:
            bad = rescaled != base_t
        else:
            bad = abs(rescaled - base_t) > 1e-9 * max(base_t, 1e-12)
        if bad:
            violations.append(Violation(
                "rate-scaling",
                f"flow {fid}: base finish {base_t!r} but x{k} rates "
                f"give {scaled[fid]!r} (rescaled {rescaled!r})"))
    return violations


def _log2(k: float) -> float:
    import math
    return math.log2(k)


def check_idle_job_noop(spec: ScenarioSpec,
                        n_idle: int = 2) -> List[Violation]:
    """Zero-size flows must not perturb anyone's finish time."""
    base = _batch_finish(spec)
    with_idle = _batch_finish(spec, extra_zero_flows=n_idle)
    violations = []
    for fid, base_t in base.items():
        if with_idle[fid] != base_t:
            violations.append(Violation(
                "idle-job-noop",
                f"flow {fid}: finish moved from {base_t!r} to "
                f"{with_idle[fid]!r} after adding {n_idle} idle flows"))
    return violations


def check_serving_rate_doubling(spec: ScenarioSpec) -> List[Violation]:
    """Doubling the arrival rate must never decrease p50 TTFT.

    Rather than comparing two unrelated Poisson draws (whose sampling
    noise could mask a real inversion), this superposes a second
    independent rate-λ draw onto the base draw — the union is exactly a
    rate-2λ population — and replays it through the same engine.  Every
    base request still completes (the simulator drains), admission is
    FIFO and prefill-prioritized, and token targets are attached at
    draw time, so each base request's TTFT is pointwise monotone in the
    offered load; the oracle asserts the p50 over the *base*
    population, which that pointwise bound implies with zero sampling
    slack.
    """
    from ..seer import (NetworkSuite, ParallelismConfig, Seer,
                        ServingConfig, ServingSimulator, draw_requests)
    from ..serving import SERVING_MODELS, weighted_percentile
    conf = spec.serving or {}
    scen = conf.get("scenario", {})
    cfg = ServingConfig(
        batch_max=int(scen.get("batch_max", 8)),
        context_len=int(scen.get("context_len", 512)),
        output_len_mean=int(scen.get("output_len_mean", 32)),
        arrival_rate_per_s=float(conf.get("probe_rate", 1.0)),
        duration_s=float(scen.get("pool_window_s", 30.0)),
        seed=f"{scen.get('seed', spec.seed)}:probe")
    seer = Seer(gpu=scen.get("gpu", "H800"), network=NetworkSuite())
    model = SERVING_MODELS[scen.get("model", "HUNYUAN_MOE")]
    parallel = ParallelismConfig(tp=int(scen.get("tp", 8)), pp=1,
                                 dp=1, ep=int(scen.get("ep", 16)))
    base = draw_requests(cfg)
    extra = draw_requests(cfg, stream="requests-double")
    base_objects = {id(draw) for draw in base}
    merged = sorted(base + extra, key=lambda draw: draw.arrival_s)
    base_ids = {index for index, draw in enumerate(merged)
                if id(draw) in base_objects}
    cache: dict = {}
    base_run = ServingSimulator(seer, model, parallel, cfg,
                                cost_cache=cache).run(base)
    doubled_run = ServingSimulator(seer, model, parallel, cfg,
                                   cost_cache=cache).run(merged)
    p50_base = weighted_percentile(
        [(r.ttft_s, 1.0) for r in base_run.completed], 50.0)
    p50_doubled = weighted_percentile(
        [(r.ttft_s, 1.0) for r in doubled_run.completed
         if r.request_id in base_ids], 50.0)
    if p50_base is None or p50_doubled is None:
        return []  # zero-rate probe: nothing to compare (vacuous)
    if p50_doubled < p50_base:
        return [Violation(
            "rate-doubling-monotone",
            f"p50 TTFT fell from {p50_base!r} to {p50_doubled!r} after "
            f"superposing a second rate-{cfg.arrival_rate_per_s} draw")]
    return []


def check_serving_zero_arrival(spec: ScenarioSpec) -> List[Violation]:
    """A zero-arrival trace must be a strict no-op on the fabric.

    With ``users_m_scale`` forced to 0 every bucket draws exactly zero
    requests (the Poisson draw is exact at λ=0), so no KV flow may be
    injected and the contended co-simulation pass must be bit-identical
    to its serving-free baseline.
    """
    from ..serving import ServingRun, ServingScenario
    conf = spec.serving or {}
    scenario = ServingScenario.from_params(
        dict(conf.get("scenario", {}), users_m_scale=0.0))
    report = ServingRun(scenario).run()
    violations = []
    if report.trace["total_requests"] != 0:
        violations.append(Violation(
            "zero-arrival-noop",
            f"zero-scaled trace still drew "
            f"{report.trace['total_requests']} requests"))
    if report.cosim["n_kv_flows"] != 0:
        violations.append(Violation(
            "zero-arrival-noop",
            f"{report.cosim['n_kv_flows']} KV flows reached the fabric "
            "on a zero-arrival trace"))
    if report.cosim["iteration_s"] != report.cosim["clean_iteration_s"]:
        violations.append(Violation(
            "zero-arrival-noop",
            f"contended iterations {report.cosim['iteration_s']!r} != "
            f"clean baseline {report.cosim['clean_iteration_s']!r} "
            "despite zero serving traffic"))
    if report.slo["n_samples"] != 0:
        violations.append(Violation(
            "zero-arrival-noop",
            f"{report.slo['n_samples']} pool-sim samples materialized "
            "from an empty request population"))
    return violations


def check_serving_powercap_identity(spec: ScenarioSpec
                                    ) -> List[Violation]:
    """``power_cap_frac=1.0`` must equal uncapped bit-for-bit.

    At the full contract the per-bucket host budget equals the whole
    training fleet, the cap schedule is flat, a flat schedule plants no
    boundary events, and a never-binding cap preempts nobody — so every
    simulated quantity (trace, autoscale, SLOs, co-sim, the training
    report itself) must survive ``==``.  Only the ``scenario`` echo and
    the ``power`` contract arithmetic may differ, which is exactly what
    :meth:`~repro.serving.report.ServingReport.fingerprint` excludes.
    """
    from ..serving import ServingRun, ServingScenario
    conf = spec.serving or {}
    base = dict(conf.get("scenario", {}))
    capped = ServingRun(ServingScenario.from_params(
        dict(base, power_cap_frac=1.0))).run()
    uncapped = ServingRun(ServingScenario.from_params(
        dict(base, power_cap_frac=None))).run()
    if capped.fingerprint() != uncapped.fingerprint():
        diff_keys = [key for key in capped.fingerprint()
                     if capped.fingerprint()[key]
                     != uncapped.fingerprint()[key]]
        return [Violation(
            "powercap-identity",
            f"full-contract cap diverged from uncapped in sections "
            f"{diff_keys!r}")]
    return []


def check_unused_link_noop(spec: ScenarioSpec) -> List[Violation]:
    """Killing an idle host's access link must change nothing.

    Returns no violations (vacuously) when every host participates in
    the workload — there is then no link provably outside all ECMP
    candidate sets.
    """
    topology = build_topology(spec)
    used_hosts = {flow.src for flow in spec.flows} \
        | {flow.dst for flow in spec.flows}
    idle_hosts = [host.name for host in topology.hosts()
                  if host.name not in used_hosts]
    if not idle_hosts:
        return []
    victim = topology.links_of(sorted(idle_hosts)[0])[0].link_id
    base = _batch_finish(spec)
    degraded = _batch_finish(spec, fail_link_id=victim)
    violations = []
    for fid, base_t in base.items():
        if degraded[fid] != base_t:
            violations.append(Violation(
                "unused-link-noop",
                f"flow {fid}: finish moved from {base_t!r} to "
                f"{degraded[fid]!r} after killing unused link "
                f"{victim}"))
    return violations

"""Metamorphic checks: known input transforms, predictable outputs.

No reference implementation needed — these exploit relations the
physics must satisfy:

* scaling every link rate (and the NIC line rate) by ``k`` scales
  every completion time by exactly ``1/k``; for power-of-two ``k``
  the float scaling is lossless, so the comparison is exact;
* adding an idle job (zero-size flows, or a flow that starts after
  the last finish) changes nothing;
* killing a link no flow uses changes nothing.

All three rebuild the world from a :class:`ScenarioSpec`, so flow ids,
source ports, and therefore ECMP paths are identical between the base
and transformed runs — the only safe way to compare, since a changed
candidate set would re-hash paths and legitimately change the answer.
The unused-link check in particular fails a host's *access* link:
hosts never transit traffic, so an idle host's port is provably
outside every other flow's ECMP candidate set.
"""

from __future__ import annotations

from typing import List, Optional

from ..network.fabric import Fabric
from ..network.flows import make_flow
from .oracles import Violation
from .scenarios import ScenarioSpec, build_flows, build_topology

__all__ = [
    "check_idle_job_noop",
    "check_rate_scaling",
    "check_unused_link_noop",
]


def _batch_finish(spec: ScenarioSpec, scale: float = 1.0,
                  fail_link_id: Optional[int] = None,
                  extra_zero_flows: int = 0):
    """Complete the spec's flows at t=0, optionally transformed."""
    topology = build_topology(spec)
    if scale != 1.0:
        for link in topology.links.values():
            link.capacity_gbps *= scale
    if fail_link_id is not None:
        topology.fail_link(fail_link_id)
    fabric = Fabric(topology)
    if scale != 1.0:
        fabric.host_line_rate_gbps *= scale
    flows = build_flows(spec)
    base_ids = [flow.flow_id for flow in flows]
    for index in range(extra_zero_flows):
        # Reuse an existing flow's endpoints so the idle flow is
        # reachable on every family (rail-only has no cross-pod path).
        donor = spec.flows[index % len(spec.flows)]
        flows.append(make_flow(donor.src, donor.dst, rail=donor.rail,
                               size_bits=0.0, job=f"idle{index}"))
    run = fabric.complete(flows)
    return {fid: run.finish_times_s[fid] for fid in base_ids}


def check_rate_scaling(spec: ScenarioSpec,
                       k: float = 2.0) -> List[Violation]:
    """Completion times must scale by exactly ``1/k`` with link rates.

    With ``k`` a power of two every intermediate float (rates, epoch
    deadlines, residues) scales losslessly, so ``finish_scaled * k``
    must equal the base finish bit-for-bit; other ``k`` get a 1e-9
    relative tolerance.
    """
    exact = k > 0 and (k == 2 ** round(_log2(k)))
    base = _batch_finish(spec)
    scaled = _batch_finish(spec, scale=k)
    violations = []
    for fid, base_t in base.items():
        rescaled = scaled[fid] * k
        if exact:
            bad = rescaled != base_t
        else:
            bad = abs(rescaled - base_t) > 1e-9 * max(base_t, 1e-12)
        if bad:
            violations.append(Violation(
                "rate-scaling",
                f"flow {fid}: base finish {base_t!r} but x{k} rates "
                f"give {scaled[fid]!r} (rescaled {rescaled!r})"))
    return violations


def _log2(k: float) -> float:
    import math
    return math.log2(k)


def check_idle_job_noop(spec: ScenarioSpec,
                        n_idle: int = 2) -> List[Violation]:
    """Zero-size flows must not perturb anyone's finish time."""
    base = _batch_finish(spec)
    with_idle = _batch_finish(spec, extra_zero_flows=n_idle)
    violations = []
    for fid, base_t in base.items():
        if with_idle[fid] != base_t:
            violations.append(Violation(
                "idle-job-noop",
                f"flow {fid}: finish moved from {base_t!r} to "
                f"{with_idle[fid]!r} after adding {n_idle} idle flows"))
    return violations


def check_unused_link_noop(spec: ScenarioSpec) -> List[Violation]:
    """Killing an idle host's access link must change nothing.

    Returns no violations (vacuously) when every host participates in
    the workload — there is then no link provably outside all ECMP
    candidate sets.
    """
    topology = build_topology(spec)
    used_hosts = {flow.src for flow in spec.flows} \
        | {flow.dst for flow in spec.flows}
    idle_hosts = [host.name for host in topology.hosts()
                  if host.name not in used_hosts]
    if not idle_hosts:
        return []
    victim = topology.links_of(sorted(idle_hosts)[0])[0].link_id
    base = _batch_finish(spec)
    degraded = _batch_finish(spec, fail_link_id=victim)
    violations = []
    for fid, base_t in base.items():
        if degraded[fid] != base_t:
            violations.append(Violation(
                "unused-link-noop",
                f"flow {fid}: finish moved from {base_t!r} to "
                f"{degraded[fid]!r} after killing unused link "
                f"{victim}"))
    return violations

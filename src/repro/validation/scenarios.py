"""Seeded random-but-valid scenario sampling for the fuzz campaign.

A scenario is a JSON-serialisable :class:`ScenarioSpec`: a topology
family with sampled dimensions (Astral plus the baseline variants,
varying pod counts and oversubscription), a workload (simultaneous
batches, cluster-trace-staggered multijob mixes, or a collective), and
a fault schedule (capacity degrades, link kills, flaps).  Every case is
derived from ``random.Random(f"validation:{seed}:{index}")`` — string
seeding keeps draws independent of ``PYTHONHASHSEED`` and of each
other, so ``repro validate --seed S --case I`` reproduces exactly one
case with no shared state.

Flow ids are not stored in the spec: rebuilding the flows in spec
order after :func:`~repro.network.flows.reset_flow_ids` reassigns the
same ids (and therefore the same ECMP source ports and paths), which
is what makes a spec self-contained.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..cluster.workload import WorkloadGenerator
from ..network.flows import Flow, make_flow, reset_flow_ids
from ..topology import (
    AstralParams,
    ClosParams,
    build_astral,
    build_clos,
    build_full_interconnect_tier2,
    build_rail_only,
)
from ..topology.elements import Topology

__all__ = [
    "FAMILIES",
    "PROFILES",
    "FaultAction",
    "FlowSpec",
    "ScenarioGenerator",
    "ScenarioSpec",
    "build_flows",
    "build_topology",
]

#: Topology families the generator samples from.
FAMILIES = ("astral", "astral_oversub", "clos", "tier2_full",
            "rail_only")

#: Workload/fault profiles, cycled by case index so a fixed-size
#: campaign always covers all of them.
PROFILES = ("batch", "timed", "degrade", "faulted", "collective",
            "hierarchical", "faulted-hierarchical", "serving")


@dataclass(frozen=True)
class FlowSpec:
    """One flow, by endpoint names (ids are assigned at build time)."""

    src: str
    dst: str
    rail: int
    size_bits: float
    start_s: float = 0.0
    job: str = ""


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault on a link.

    ``kind`` is ``degrade`` (capacity scaled by ``factor``), ``kill``
    (permanent), or ``flap`` (down, then asks to return after
    ``down_s``; the injector's hold-down defers the return).
    """

    kind: str
    link_id: int
    at_s: float
    factor: float = 1.0
    down_s: float = 0.0


@dataclass
class ScenarioSpec:
    """A self-contained, JSON-round-trippable validation case."""

    seed: int
    index: int
    family: str
    profile: str
    topo: Dict[str, Any]
    flows: List[FlowSpec] = field(default_factory=list)
    faults: List[FaultAction] = field(default_factory=list)
    #: injector hold-down window, scaled to the scenario's timescale.
    dampening_s: float = 1.0
    #: collective profile only: {kind, hosts, rail, size_bits}.
    collective: Optional[Dict[str, Any]] = None
    #: hierarchical profile only: {jobs: [...], power_caps: {...}} —
    #: the folded-vs-flat cross-check scenario.
    hierarchy: Optional[Dict[str, Any]] = None
    #: serving profile only: {scenario: ServingScenario.to_params(),
    #: probe_rate: float} — the diurnal co-schedule oracle scenario.
    serving: Optional[Dict[str, Any]] = None

    @property
    def repro_command(self) -> str:
        return f"repro validate --seed {self.seed} --case {self.index}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "index": self.index,
            "family": self.family,
            "profile": self.profile,
            "topo": dict(self.topo),
            "flows": [asdict(flow) for flow in self.flows],
            "faults": [asdict(fault) for fault in self.faults],
            "dampening_s": self.dampening_s,
            "collective": dict(self.collective)
            if self.collective else None,
            "hierarchy": dict(self.hierarchy)
            if self.hierarchy else None,
            "serving": dict(self.serving)
            if self.serving else None,
            "repro": self.repro_command,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        return cls(
            seed=data["seed"],
            index=data["index"],
            family=data["family"],
            profile=data["profile"],
            topo=dict(data["topo"]),
            flows=[FlowSpec(**flow) for flow in data["flows"]],
            faults=[FaultAction(**fault) for fault in data["faults"]],
            dampening_s=data.get("dampening_s", 1.0),
            collective=dict(data["collective"])
            if data.get("collective") else None,
            hierarchy=dict(data["hierarchy"])
            if data.get("hierarchy") else None,
            serving=dict(data["serving"])
            if data.get("serving") else None,
        )


def build_topology(spec: ScenarioSpec) -> Topology:
    """Instantiate the spec's topology (deterministic link ids)."""
    if spec.family == "clos":
        return build_clos(ClosParams(**spec.topo))
    params = AstralParams(**spec.topo)
    if spec.family == "tier2_full":
        return build_full_interconnect_tier2(params)
    if spec.family == "rail_only":
        return build_rail_only(params)
    return build_astral(params)


def build_flows(spec: ScenarioSpec) -> List[Flow]:
    """Rebuild the spec's flows with freshly-reset (stable) ids."""
    reset_flow_ids()
    flows = []
    for flow_spec in spec.flows:
        flow = make_flow(flow_spec.src, flow_spec.dst, flow_spec.rail,
                         flow_spec.size_bits, job=flow_spec.job)
        flow.start_time_s = flow_spec.start_s
        flows.append(flow)
    return flows


class ScenarioGenerator:
    """Derive :class:`ScenarioSpec` cases from one campaign seed."""

    def __init__(self, seed: int):
        self.seed = seed

    # -- sampling helpers --------------------------------------------------
    def _sample_topo(self, rng: random.Random, family: str
                     ) -> Dict[str, Any]:
        if family == "clos":
            params = rng.choice([ClosParams.tiny(), ClosParams.small()])
            return asdict(params)
        params = AstralParams(
            pods=rng.choice([1, 2]),
            blocks_per_pod=rng.choice([1, 2]),
            hosts_per_block=rng.choice([2, 4]),
            gpus_per_host=rng.choice([1, 2]),
            nic_ports=2,
            aggs_per_group=rng.choice([2, 4]),
            cores_per_group=2,
            tier3_oversubscription=rng.choice([1.5, 2.0])
            if family == "astral_oversub" else 1.0,
        )
        return asdict(params)

    def _sample_flows(self, rng: random.Random, spec: ScenarioSpec
                      ) -> List[FlowSpec]:
        topo = build_topology(spec)
        hosts = sorted(host.name for host in topo.hosts())
        rails = spec.topo["gpus_per_host"]
        if spec.family == "rail_only":
            # No Core tier: cross-pod destinations are unreachable.
            pod = rng.choice(sorted({h.split(".")[0] for h in hosts}))
            hosts = [h for h in hosts if h.startswith(pod + ".")]
        n_flows = rng.randint(2, min(12, len(hosts) * 2))
        flow_specs = []
        for index in range(n_flows):
            src, dst = rng.sample(hosts, 2)
            size = 10 ** rng.uniform(8.0, 11.0)
            flow_specs.append(FlowSpec(
                src=src, dst=dst, rail=rng.randrange(rails),
                size_bits=size, job=f"job{index % 3}"))
        return flow_specs

    def _stagger_starts(self, rng: random.Random,
                        flow_specs: List[FlowSpec]) -> List[FlowSpec]:
        """Give flows cluster-trace arrival structure.

        Job arrival times come from the cluster layer's seeded
        :class:`WorkloadGenerator` (an exponential interarrival
        process), rescaled onto the transfer timescale so the stagger
        overlaps the transfers instead of serialising them.
        """
        trace = WorkloadGenerator(
            seed=rng.randrange(2 ** 31)).generate(len(flow_specs))
        max_submit = max(job.submit_s for job in trace) or 1.0
        line_bps = 200e9
        horizon = 0.5 * sum(f.size_bits for f in flow_specs) \
            / line_bps / max(1, len(flow_specs) // 2)
        return [
            FlowSpec(src=f.src, dst=f.dst, rail=f.rail,
                     size_bits=f.size_bits,
                     start_s=job.submit_s / max_submit * horizon,
                     job=f.job)
            for f, job in zip(flow_specs, trace)
        ]

    def _path_links(self, spec: ScenarioSpec) -> List[int]:
        """Link ids actually crossed by the spec's flows."""
        from ..network.fabric import Fabric
        topo = build_topology(spec)
        fabric = Fabric(topo)
        flows = build_flows(spec)
        used: List[int] = []
        for path in fabric.resolve_paths(flows).values():
            for link_id in path.link_ids:
                if link_id not in used:
                    used.append(link_id)
        return used

    def _est_makespan(self, spec: ScenarioSpec) -> float:
        line_bps = 200e9
        total = sum(f.size_bits for f in spec.flows)
        latest = max((f.start_s for f in spec.flows), default=0.0)
        return latest + total / line_bps

    def _sample_faults(self, rng: random.Random, spec: ScenarioSpec
                       ) -> List[FaultAction]:
        used = self._path_links(spec)
        if not used:
            return []
        horizon = self._est_makespan(spec)
        faults = []
        for _ in range(rng.randint(1, 2)):
            link_id = rng.choice(used)
            at_s = rng.uniform(0.05, 0.8) * horizon
            if spec.profile == "degrade":
                faults.append(FaultAction(
                    kind="degrade", link_id=link_id, at_s=at_s,
                    factor=rng.uniform(0.3, 0.9)))
            else:
                kind = rng.choice(["kill", "flap"])
                faults.append(FaultAction(
                    kind=kind, link_id=link_id, at_s=at_s,
                    down_s=rng.uniform(0.1, 0.5) * horizon))
        return sorted(faults, key=lambda fault: fault.at_s)

    def _sample_hierarchy(self, rng: random.Random,
                          topo: Dict[str, Any]) -> Dict[str, Any]:
        """A pod-symmetric tenant mix for the flat-vs-folded oracle.

        One pod's blocks are decomposed into contiguous 1- or 2-block
        segments, each carrying a sampled single-rail ring job; the
        same segment layout repeats in every pod, so the placer's
        pod-major cursor lands the copies at identical pod-relative
        slots and the symmetry detector has real folds to find.  Rings
        keep the line-rate certificate true (2-block rings put at most
        one boundary leg per block per rail, under the ToR->Agg
        headroom of 2), so the cross-check can demand exact ``==`` —
        including under sampled per-pod power caps, which scale
        compute identically on both sides.
        """
        blocks = topo["blocks_per_pod"]
        hosts_per_block = topo["hosts_per_block"]
        rails = topo["gpus_per_host"]
        segments: List[int] = []
        remaining = blocks
        while remaining > 0:
            width = 2 if remaining >= 2 and rng.random() < 0.4 else 1
            segments.append(width)
            remaining -= width
        shapes = [
            {
                "n_hosts": width * hosts_per_block,
                "rail": rng.randrange(rails),
                "compute_time_s": rng.choice([0.2, 0.5]),
                "comm_size_bits": round(10 ** rng.uniform(8.5, 9.8)),
                "iterations": 3,
                "compute_noise_frac": 0.01,
                "seed": rng.randrange(100),
            }
            for width in segments
        ]
        jobs = []
        for pod in range(topo["pods"]):
            for k, shape in enumerate(shapes):
                jobs.append(dict(shape, name=f"t{pod:02d}x{k:02d}"))
        power_caps: Dict[str, float] = {}
        if rng.random() < 0.5:
            for pod in range(topo["pods"]):
                if rng.random() < 0.5:
                    power_caps[str(pod)] = rng.choice([0.6, 0.8])
        return {"jobs": jobs, "power_caps": power_caps}

    def _sample_hierarchy_faults(self, rng: random.Random,
                                 topo: Dict[str, Any],
                                 hierarchy: Dict[str, Any]) -> None:
        """Attach a fault document plus the ladder level it predicts.

        Variants cover every rung the bounded-refinement oracle needs:
        correlated domains whose member faults stay inside the
        block-level certificate (``expect_level == "block"``), a
        fail-stop switch-ASIC domain and a timestamp fault that must
        provably escalate to whole-pod refinement (``"pod"``).  The
        expected level is recorded in the spec so the oracle asserts
        the *ladder*, not just result equality.
        """
        hosts_per_block = topo["hosts_per_block"]
        per_pod = [job for job in hierarchy["jobs"]
                   if job["name"].startswith("t00")]
        starts, cursor = [], 0
        for job in per_pod:
            starts.append(cursor)
            cursor += max(1, job["n_hosts"] // hosts_per_block)
        pod = rng.randrange(topo["pods"])
        k = rng.randrange(len(per_pod))
        block = starts[k]
        job_name = f"t{pod:02d}x{k:02d}"
        variant = rng.choice(["domain-hard", "domain-gray", "asic-stop",
                              "explicit", "timed"])
        document: Dict[str, Any] = {}
        if variant == "domain-hard":
            kind = rng.choice(["power-domain", "optics-batch", "rack"])
            document["domains"] = [{
                "kind": kind, "pod": pod, "block": block,
                "size": min(2, hosts_per_block), "mode": "hard",
                "seed": rng.randrange(1000)}]
            expect = "block"
        elif variant == "domain-gray":
            kind = rng.choice(["power-domain", "optics-batch",
                               "switch-asic", "rack"])
            pool = (topo["gpus_per_host"] * topo["nic_ports"]
                    if kind == "switch-asic" else hosts_per_block)
            document["domains"] = [{
                "kind": kind, "pod": pod, "block": block,
                "size": min(2, pool), "mode": "gray",
                "seed": rng.randrange(1000)}]
            # The optics gray crawl (NIC fail-slow) degrades capacity
            # while still transmitting: off line rate, so the block
            # certificate refuses it.
            expect = "pod" if kind == "optics-batch" else "block"
        elif variant == "asic-stop":
            # SWITCH_BUG fail-stop severs paths: hash-sensitive, so the
            # certificate must refuse block scope.
            document["domains"] = [{
                "kind": "switch-asic", "pod": pod, "block": block,
                "size": 1, "mode": "hard",
                "seed": rng.randrange(1000)}]
            expect = "pod"
        elif variant == "explicit":
            fault = rng.choice([
                {"cause": "nic-error", "manifestation": "fail-hang",
                 "target": f"p{pod}.b{block}.h0"},
                {"cause": "user-code", "manifestation": "fail-stop",
                 "target": job_name},
                {"cause": "gpu-hardware", "manifestation": "fail-stop",
                 "target": f"p{pod}.b{block}.h0"},
                {"cause": "ccl-bug", "manifestation": "fail-hang",
                 "target": f"p{pod}.b{block}.h0"},
            ])
            document["faults"] = [dict(fault, job=job_name,
                                       at_iteration=rng.choice([1, 2]))]
            expect = "block"
        else:
            # Timestamp onset: epoch-sensitive, always whole-pod.
            document["faults"] = [{
                "job": job_name, "cause": "nic-error",
                "manifestation": "fail-slow",
                "target": f"p{pod}.b{block}.h0",
                "at_time_s": round(rng.uniform(0.05, 0.4), 3)}]
            expect = "pod"
        hierarchy["fault_document"] = document
        hierarchy["expect_level"] = expect

    def _sample_serving(self, rng: random.Random,
                        index: int) -> Dict[str, Any]:
        """A minutes-scale diurnal serving scenario for the oracles.

        Dimensions stay tiny (2 pods, 1 block) and demand is scaled to
        a few requests/s so the whole co-schedule — trace, autoscale,
        folded pool sims, KV co-sim, capped training — runs in well
        under a second per battery invocation, of which the powercap
        identity oracle needs three.  ``power_cap_frac`` deliberately
        samples 1.0 sometimes: that is the never-binding-cap identity
        in its natural habitat rather than a synthetic transform.
        """
        scenario = {
            "preset": None,
            "dims": {
                "pods": 2,
                "blocks_per_pod": 1,
                "hosts_per_block": rng.choice([4, 8]),
                "gpus_per_host": 2,
                "aggs_per_group": 2,
                "cores_per_group": 2,
            },
            "duration_s": float(rng.choice([3600, 7200])),
            "bucket_s": float(rng.choice([900, 1800])),
            "start_hour": float(rng.choice([0, 6, 12])),
            "users_m_scale": rng.choice([0.0005, 0.001, 0.002]),
            "seed": f"{self.seed}:{index}",
            "batch_max": rng.choice([4, 8]),
            "context_len": rng.choice([512, 1024]),
            "output_len_mean": 32,
            "prefill_hosts_per_pair": 1,
            "decode_hosts_per_pair": rng.choice([2, 4]),
            "replica_hosts": 1,
            "target_util": rng.choice([0.6, 0.7]),
            "power_cap_frac": rng.choice([0.7, 0.9, 1.0]),
            "pool_window_s": float(rng.choice([20, 30])),
            "train_jobs": rng.choice([0, 4, 8]),
            "cosim_iterations": 2,
            "max_kv_flows": 8,
            "slice_prefill_hosts": 1,
            "slice_decode_hosts": 2,
            "slice_train_hosts": 2,
        }
        return {
            "scenario": scenario,
            "probe_rate": rng.choice([0.5, 1.0, 2.0]),
        }

    def _sample_collective(self, rng: random.Random, spec: ScenarioSpec
                           ) -> Dict[str, Any]:
        hosts_per_block = spec.topo["hosts_per_block"]
        n = rng.randint(3, max(3, hosts_per_block))
        hosts = [f"p0.b0.h{i}" for i in range(n)]
        return {
            "kind": rng.choice(["allreduce", "alltoall"]),
            "hosts": hosts,
            "rail": rng.randrange(spec.topo["gpus_per_host"]),
            "size_bits": 10 ** rng.uniform(9.6, 10.6),
        }

    # -- public API --------------------------------------------------------
    def spec(self, index: int) -> ScenarioSpec:
        """The ``index``-th case of this campaign seed."""
        rng = random.Random(f"validation:{self.seed}:{index}")
        profile = PROFILES[index % len(PROFILES)]
        if profile == "collective":
            # The collective differentials assume the Astral shape and
            # a block wide enough to host the ring.
            family = "astral"
            topo = self._sample_topo(rng, family)
            topo["hosts_per_block"] = 4
            topo["gpus_per_host"] = rng.choice([2, 4])
            topo["aggs_per_group"] = max(topo["aggs_per_group"],
                                         topo["gpus_per_host"])
            topo["cores_per_group"] = topo["aggs_per_group"]
            spec = ScenarioSpec(seed=self.seed, index=index,
                                family=family, profile=profile,
                                topo=topo)
            spec.collective = self._sample_collective(rng, spec)
            return spec
        if profile in ("hierarchical", "faulted-hierarchical"):
            # Folding is an Astral-shape property (pod/rail symmetry).
            topo = asdict(AstralParams(
                pods=rng.choice([2, 3]),
                blocks_per_pod=rng.choice([1, 2]),
                hosts_per_block=rng.choice([2, 4]),
                gpus_per_host=rng.choice([1, 2]),
                nic_ports=2,
                aggs_per_group=2,
                cores_per_group=2,
            ))
            spec = ScenarioSpec(seed=self.seed, index=index,
                                family="astral", profile=profile,
                                topo=topo)
            spec.hierarchy = self._sample_hierarchy(rng, topo)
            if profile == "faulted-hierarchical":
                self._sample_hierarchy_faults(rng, topo, spec.hierarchy)
            return spec
        if profile == "serving":
            serving = self._sample_serving(rng, index)
            topo = dict(serving["scenario"]["dims"])
            return ScenarioSpec(seed=self.seed, index=index,
                                family="astral", profile=profile,
                                topo=topo, serving=serving)
        family = rng.choice(FAMILIES)
        if profile == "faulted" and family == "rail_only":
            # Rail-only has no Core detour; a kill strands every flow
            # on the ToR pair, which tests nothing but the handler.
            family = "astral"
        spec = ScenarioSpec(seed=self.seed, index=index, family=family,
                            profile=profile,
                            topo=self._sample_topo(rng, family))
        spec.flows = self._sample_flows(rng, spec)
        if profile in ("timed", "degrade", "faulted"):
            spec.flows = self._stagger_starts(rng, spec.flows)
        if profile in ("degrade", "faulted"):
            spec.faults = self._sample_faults(rng, spec)
            spec.dampening_s = 0.2 * self._est_makespan(spec)
        return spec

    def specs(self, n_cases: int) -> List[ScenarioSpec]:
        return [self.spec(index) for index in range(n_cases)]

"""Invariant oracles for the fluid-fabric simulator stack.

Every oracle takes concrete run artifacts (flows, paths, rates, finish
times) and returns a list of :class:`Violation` — empty when the
invariant holds.  Keeping the checks free of ``assert`` lets the same
code serve three masters: pytest property tests (assert the list is
empty), the ``repro validate`` fuzz campaign (collect and report), and
ad-hoc debugging (print them).

The catalogue:

* **rate feasibility** — no directed link carries more than its
  (factor-scaled) capacity;
* **work conservation** — every active flow with a live path receives
  a strictly positive rate;
* **max-min KKT** — a flow below line rate must cross a saturated link
  on which its rate is maximal (the textbook bottleneck condition that
  characterises the max-min allocation);
* **byte conservation** — integrating an independent epoch-by-epoch
  replay of the rate allocation delivers exactly ``size_bits`` per
  flow by its recorded finish time;
* **clock monotonicity** — the simcore event clock never moves
  backwards (checked via :class:`TracingSimulator`);
* **bit-identical replay** — running the same seeded scenario twice
  produces byte-for-byte identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..network.fabric import DONE_BITS, Fabric, LinkDir
from ..network.flows import Flow, FlowPath
from ..simcore import Simulator

__all__ = [
    "Violation",
    "TracingSimulator",
    "check_clock_monotonic",
    "check_incidence_solution",
    "check_max_min_bottleneck",
    "check_rate_feasibility",
    "check_same_result",
    "check_solution",
    "check_work_conservation",
    "link_usage",
    "replay_conservation",
]

#: Rate slop (Gbps) tolerated by the feasibility / KKT oracles; the
#: progressive-filling shares are exact divisions but summing them per
#: link rounds.
RATE_TOL_GBPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant breach, suitable for printing or asserting on."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


class TracingSimulator(Simulator):
    """A :class:`Simulator` that records the clock at every step.

    The trace feeds :func:`check_clock_monotonic`; it costs one append
    per processed event, so it is cheap enough to leave on for every
    validation run.
    """

    def __init__(self) -> None:
        super().__init__()
        self.trace: List[float] = []

    def step(self) -> None:
        super().step()
        self.trace.append(self.now)


def check_clock_monotonic(trace: Sequence[float]) -> List[Violation]:
    """The event clock must be non-decreasing across processed events."""
    violations = []
    for index in range(1, len(trace)):
        if trace[index] < trace[index - 1]:
            violations.append(Violation(
                "clock-monotonic",
                f"event {index} ran at t={trace[index]!r} after "
                f"t={trace[index - 1]!r}"))
    return violations


# --------------------------------------------------------------------------
# Rate-allocation oracles
# --------------------------------------------------------------------------

def _effective_capacity(fabric: Fabric, hop: LinkDir,
                        capacity_factors: Optional[Dict[LinkDir, float]]
                        ) -> float:
    factor = 1.0
    if capacity_factors is not None:
        factor = capacity_factors.get(hop, 1.0)
    return fabric.topology.links[hop[0]].capacity_gbps * factor


def link_usage(fabric: Fabric, flows: Sequence[Flow],
               paths: Dict[int, FlowPath],
               rates: Dict[int, float]) -> Dict[LinkDir, float]:
    """Aggregate allocated rate per directed link."""
    usage: Dict[LinkDir, float] = {}
    for flow in flows:
        rate = rates.get(flow.flow_id, 0.0)
        for hop in fabric.directed_hops(paths[flow.flow_id]):
            usage[hop] = usage.get(hop, 0.0) + rate
    return usage


def check_rate_feasibility(fabric: Fabric, flows: Sequence[Flow],
                           paths: Dict[int, FlowPath],
                           rates: Dict[int, float],
                           capacity_factors: Optional[
                               Dict[LinkDir, float]] = None,
                           tol_gbps: float = RATE_TOL_GBPS
                           ) -> List[Violation]:
    """No directed link may carry more than its effective capacity."""
    violations = []
    for hop, used in link_usage(fabric, flows, paths, rates).items():
        capacity = _effective_capacity(fabric, hop, capacity_factors)
        if used > capacity + tol_gbps:
            violations.append(Violation(
                "rate-feasibility",
                f"link {hop[0]} ({'fwd' if hop[1] else 'rev'}) carries "
                f"{used:.9g} Gbps > capacity {capacity:.9g} Gbps"))
    return violations


def check_work_conservation(flows: Sequence[Flow],
                            rates: Dict[int, float]) -> List[Violation]:
    """Every sized flow must receive a strictly positive rate."""
    violations = []
    for flow in flows:
        if flow.size_bits > 0 and rates.get(flow.flow_id, 0.0) <= 0.0:
            violations.append(Violation(
                "work-conservation",
                f"flow {flow.flow_id} ({flow.src_host}->{flow.dst_host})"
                f" allocated rate {rates.get(flow.flow_id)!r}"))
    return violations


def check_max_min_bottleneck(fabric: Fabric, flows: Sequence[Flow],
                             paths: Dict[int, FlowPath],
                             rates: Dict[int, float],
                             capacity_factors: Optional[
                                 Dict[LinkDir, float]] = None,
                             tol_gbps: float = RATE_TOL_GBPS
                             ) -> List[Violation]:
    """KKT condition of the max-min allocation.

    A flow either runs at the source line rate, or crosses at least
    one *saturated* link on which no other flow gets a higher rate —
    otherwise its rate could be raised without hurting any flow that
    is not already faster, contradicting max-min optimality.
    """
    violations = []
    usage = link_usage(fabric, flows, paths, rates)
    hop_max_rate: Dict[LinkDir, float] = {}
    for flow in flows:
        rate = rates.get(flow.flow_id, 0.0)
        for hop in fabric.directed_hops(paths[flow.flow_id]):
            if rate > hop_max_rate.get(hop, 0.0):
                hop_max_rate[hop] = rate
    line_rate = fabric.host_line_rate_gbps
    for flow in flows:
        rate = rates.get(flow.flow_id, 0.0)
        if rate >= line_rate - tol_gbps:
            continue
        bottlenecked = False
        for hop in fabric.directed_hops(paths[flow.flow_id]):
            capacity = _effective_capacity(fabric, hop, capacity_factors)
            saturated = usage[hop] >= capacity - tol_gbps
            maximal = rate >= hop_max_rate[hop] - tol_gbps
            if saturated and maximal:
                bottlenecked = True
                break
        if not bottlenecked:
            violations.append(Violation(
                "max-min-kkt",
                f"flow {flow.flow_id} at {rate:.9g} Gbps (< line rate "
                f"{line_rate:.9g}) has no saturated bottleneck link "
                "where its rate is maximal"))
    return violations


def check_solution(fabric: Fabric, flows: Sequence[Flow],
                   paths: Optional[Dict[int, FlowPath]] = None,
                   rates: Optional[Dict[int, float]] = None,
                   capacity_factors: Optional[Dict[LinkDir, float]] = None
                   ) -> List[Violation]:
    """Run the three rate-allocation oracles on one max-min solve."""
    flows = [flow for flow in flows if flow.size_bits > 0]
    if not flows:
        return []
    if paths is None:
        paths = fabric.resolve_paths(flows)
    if rates is None:
        rates = fabric.max_min_rates(list(flows), paths,
                                     capacity_factors=capacity_factors)
    return (
        check_rate_feasibility(fabric, flows, paths, rates,
                               capacity_factors)
        + check_work_conservation(flows, rates)
        + check_max_min_bottleneck(fabric, flows, paths, rates,
                                   capacity_factors)
    )


def check_incidence_solution(hops_of: Dict[int, Sequence],
                             capacity: Dict,
                             line_rate: float,
                             rates: Dict[int, float],
                             tol_gbps: float = RATE_TOL_GBPS
                             ) -> List[Violation]:
    """Rate-allocation oracles on a raw incidence problem.

    The fabric-free twin of :func:`check_solution`, for driving the
    solver backends (:mod:`repro.network.solver`) directly with
    synthetic flow×link problems — ``hops_of`` maps flow id to its
    hops (any hashables), ``capacity`` gives each hop's Gbps.  Checks
    feasibility, work conservation (a flow earns rate 0 only by
    crossing a zero-capacity hop), and the max-min KKT condition.
    """
    violations = []
    usage: Dict = {hop: 0.0 for hop in capacity}
    hop_max_rate: Dict = {}
    for fid, hops in hops_of.items():
        rate = rates.get(fid, 0.0)
        for hop in hops:
            usage[hop] += rate
            if rate > hop_max_rate.get(hop, 0.0):
                hop_max_rate[hop] = rate
    for hop, used in usage.items():
        if used > capacity[hop] + tol_gbps:
            violations.append(Violation(
                "rate-feasibility",
                f"hop {hop!r} carries {used:.9g} Gbps > capacity "
                f"{capacity[hop]:.9g} Gbps"))
    for fid, hops in hops_of.items():
        rate = rates.get(fid, 0.0)
        dead = any(capacity[hop] <= 0.0 for hop in hops)
        if rate <= 0.0 and not dead:
            violations.append(Violation(
                "work-conservation",
                f"flow {fid} crosses only live hops but was "
                f"allocated rate {rate!r}"))
        if rate > 0.0 and dead:
            violations.append(Violation(
                "rate-feasibility",
                f"flow {fid} crosses a zero-capacity hop but was "
                f"allocated rate {rate!r}"))
        if rate >= line_rate - tol_gbps or dead:
            continue
        bottlenecked = False
        for hop in hops:
            saturated = usage[hop] >= capacity[hop] - tol_gbps
            maximal = rate >= hop_max_rate[hop] - tol_gbps
            if saturated and maximal:
                bottlenecked = True
                break
        if not bottlenecked:
            violations.append(Violation(
                "max-min-kkt",
                f"flow {fid} at {rate:.9g} Gbps (< line rate "
                f"{line_rate:.9g}) has no saturated bottleneck hop "
                "where its rate is maximal"))
    return violations


# --------------------------------------------------------------------------
# Byte conservation via independent replay
# --------------------------------------------------------------------------

def replay_conservation(fabric: Fabric, flows: Sequence[Flow],
                        finish_times_s: Dict[int, float],
                        paths: Dict[int, FlowPath],
                        capacity_events: Sequence[
                            Tuple[float, int, float]] = (),
                        check_epochs: bool = True) -> List[Violation]:
    """Replay a run epoch-by-epoch and check per-flow byte totals.

    The recorded start/finish times (plus any ``(at_s, link_id,
    factor)`` capacity events) partition time into epochs over which
    the active set is constant.  Integrating an *independently
    re-solved* max-min allocation across those epochs must deliver
    each flow's ``size_bits`` by its recorded finish — the byte-
    conservation invariant.  With ``check_epochs`` the feasibility and
    KKT oracles also run on every epoch's allocation, which is how
    staggered-start and degraded-capacity scenarios get rate-level
    coverage.

    Only valid for runs without reroutes (the recorded path must be
    the path the flow used throughout); the campaign runner restricts
    it to kill-free scenarios.
    """
    sized = [flow for flow in flows if flow.size_bits > 0]
    violations = []
    for flow in sized:
        if flow.flow_id not in finish_times_s:
            violations.append(Violation(
                "byte-conservation",
                f"flow {flow.flow_id} has no recorded finish time"))
    sized = [flow for flow in sized if flow.flow_id in finish_times_s]
    if not sized:
        return violations

    boundaries = sorted(
        {flow.start_time_s for flow in sized}
        | {finish_times_s[flow.flow_id] for flow in sized}
        | {at for at, _, _ in capacity_events})
    events = sorted(capacity_events)
    factors: Dict[LinkDir, float] = {}
    next_event = 0
    delivered = {flow.flow_id: 0.0 for flow in sized}
    for t0, t1 in zip(boundaries, boundaries[1:]):
        while next_event < len(events) and events[next_event][0] <= t0:
            _, link_id, factor = events[next_event]
            factors[(link_id, True)] = factor
            factors[(link_id, False)] = factor
            next_event += 1
        active = [flow for flow in sized
                  if flow.start_time_s <= t0
                  and finish_times_s[flow.flow_id] > t0]
        if not active:
            continue
        active_paths = {flow.flow_id: paths[flow.flow_id]
                        for flow in active}
        rates = fabric.max_min_rates(active, active_paths,
                                     capacity_factors=factors or None)
        if check_epochs:
            violations += check_rate_feasibility(
                fabric, active, active_paths, rates, factors or None)
            violations += check_work_conservation(active, rates)
            violations += check_max_min_bottleneck(
                fabric, active, active_paths, rates, factors or None)
        for flow in active:
            delivered[flow.flow_id] += rates[flow.flow_id] * 1e9 \
                * (t1 - t0)

    for flow in sized:
        # The integrator declares a flow done once its residue drops
        # below DONE_BITS, and each epoch's product rounds; a budget
        # of 1 bit absolute (or 1e-9 relative for very large flows)
        # separates that from a genuinely lost or duplicated epoch.
        tol_bits = max(1.0, 1e-9 * flow.size_bits) + DONE_BITS
        deficit = flow.size_bits - delivered[flow.flow_id]
        if abs(deficit) > tol_bits:
            violations.append(Violation(
                "byte-conservation",
                f"flow {flow.flow_id} delivered "
                f"{delivered[flow.flow_id]:.6f} of "
                f"{flow.size_bits:.6f} bits by its finish at "
                f"t={finish_times_s[flow.flow_id]!r} "
                f"(deficit {deficit:.3g})"))
    return violations


# --------------------------------------------------------------------------
# Determinism
# --------------------------------------------------------------------------

def check_same_result(run_fn: Callable[[], object],
                      label: str = "scenario") -> List[Violation]:
    """Same-seed bit-identical replay: *run_fn* twice, compare ``==``.

    *run_fn* must rebuild its whole world (topology, fabric, engine,
    flow ids) from the seed on every call and return a comparable
    summary (e.g. a dict of finish times); any drift between the two
    executions is a determinism violation.
    """
    first = run_fn()
    second = run_fn()
    if first != second:
        return [Violation(
            "bit-identical-replay",
            f"{label}: two same-seed executions disagree: "
            f"{first!r} vs {second!r}")]
    return []

"""Differential checkers: one scenario, two independent models.

Differential validation against a second implementation is what makes
reproduction numbers trustworthy (ASTRA-sim2.0 does exactly this for
its network backends):

* **engine vs batch** — the event-driven :class:`FabricEngine` and the
  epoch-global ``complete_batch`` loop share the solver but disagree
  on everything else (incremental component solves vs global
  re-solves, deadline events vs epoch stepping).  For simultaneous
  starts their finish times must be *bit-identical* — both integrate
  with the same absolute-deadline arithmetic, so any mismatch is a
  logic bug, not float noise.
* **flow-mapped vs analytic collectives** — Seer's calibrated
  effective-bandwidth model (§4.3) against the same collective run as
  explicit flows on the fabric, within a bounded relative error; plus
  the wire-byte identity AllReduce = ReduceScatter + AllGather.
* **fluid vs packet** — the fluid congestion observables against a
  packet-granular queue simulation of one egress port, regime by
  regime (both quiet when underloaded, both marking with a
  buffer-pinned queue when overloaded).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..network.collectives import (
    Endpoint,
    all_gather_flows,
    reduce_scatter_flows,
    ring_allreduce_flows,
    run_collective,
)
from ..network.congestion import CongestionModel
from ..network.fabric import Fabric, LinkLoad
from ..network.flows import Flow, FlowPath, reset_flow_ids
from ..network.packetsim import PacketQueueSim
from ..network.solver import HAVE_NUMPY, use_backend
from .oracles import Violation

__all__ = [
    "check_engine_vs_batch",
    "check_fluid_vs_packet",
    "check_ring_vs_analytic",
    "check_rs_ag_composition",
    "check_solver_backends",
    "ring_busbw_gbps",
]


def _ulp_distance(a: float, b: float) -> float:
    if a == b:
        return 0.0
    scale = math.ulp(max(abs(a), abs(b))) or 1.0
    return abs(a - b) / scale


def check_engine_vs_batch(fabric: Fabric, flows: Sequence[Flow],
                          paths: Optional[Dict[int, FlowPath]] = None
                          ) -> List[Violation]:
    """Engine and batch finish times must agree bit-for-bit.

    Both paths resolve the same max-min allocation and integrate it
    with cached absolute deadlines, so equality here is exact ``==``
    on floats — the regression the epoch-drift fix in
    ``Fabric.complete_batch`` is pinned by.
    """
    flows = list(flows)
    if paths is None:
        paths = fabric.resolve_paths(flows)
    engine_run = fabric.complete(flows, paths=paths)
    batch_run = fabric.complete_batch(flows, paths=paths)
    violations = []
    all_ids = set(engine_run.finish_times_s) \
        | set(batch_run.finish_times_s)
    for fid in sorted(all_ids):
        engine_t = engine_run.finish_times_s.get(fid)
        batch_t = batch_run.finish_times_s.get(fid)
        if engine_t != batch_t:
            distance = (_ulp_distance(engine_t, batch_t)
                        if engine_t is not None and batch_t is not None
                        else float("inf"))
            violations.append(Violation(
                "engine-vs-batch",
                f"flow {fid}: engine finished at {engine_t!r}, batch "
                f"at {batch_t!r} ({distance:.0f} ulp apart)"))
    return violations


def check_solver_backends(run_fn, label: str = "scenario"
                          ) -> List[Violation]:
    """Vector and python solver backends must agree bit-for-bit.

    *run_fn* rebuilds its whole world from a seed and returns a
    comparable summary (finish times, rates, reroutes — anything but
    event traces, which legitimately differ: the vector backend fires
    one engine-level deadline event where the python backend fires one
    timeout per flow).  The kernel in :mod:`repro.network.solver` uses
    only element-wise operations and order-preserving tie detection,
    so equality here is exact ``==`` — any mismatch is a backend bug,
    not float noise.  Skipped (empty) when numpy is unavailable.
    """
    if not HAVE_NUMPY:
        return []
    with use_backend("python"):
        reference = run_fn()
    with use_backend("vector"):
        vectorized = run_fn()
    if reference != vectorized:
        return [Violation(
            "solver-backends",
            f"{label}: python and vector solver backends disagree: "
            f"{reference!r} vs {vectorized!r}")]
    return []


# --------------------------------------------------------------------------
# Flow-mapped vs analytic collectives
# --------------------------------------------------------------------------

def ring_busbw_gbps(fabric: Fabric, hosts: Sequence[str], rail: int,
                    size_bits: float) -> float:
    """Per-link (bus) bandwidth of a ring AllReduce on the fabric."""
    reset_flow_ids()
    endpoints = [Endpoint(host, rail) for host in hosts]
    result = run_collective(fabric, endpoints, size_bits, "allreduce")
    n = len(hosts)
    wire_bits = 2 * (n - 1) / n * size_bits
    return wire_bits / result.network_time_s / 1e9


def check_ring_vs_analytic(fabric: Fabric, hosts: Sequence[str],
                           rail: int, size_bits: float,
                           rel_tol: float = 0.15) -> List[Violation]:
    """Fabric ring busbw vs Seer's analytic effective bandwidth.

    The analytic per-GPU inter-host bandwidth models both 200G NIC
    ports at the calibrated network efficiency; the flow-level ring
    pins each leg to one port, so ``analytic ~= 2 * busbw *
    efficiency`` within the asymptotic-regime tolerance.
    """
    from ..seer import NetworkSuite
    suite = NetworkSuite()
    busbw = ring_busbw_gbps(fabric, hosts, rail, size_bits)
    analytic = suite.effective_gbps(size_bits / 8, "inter_host")
    expected = 2 * busbw * suite.network_efficiency
    if expected <= 0:
        return [Violation("flow-vs-analytic",
                          f"non-positive fabric busbw {busbw!r}")]
    rel_err = abs(analytic - expected) / expected
    if rel_err > rel_tol:
        return [Violation(
            "flow-vs-analytic",
            f"ring busbw {busbw:.3f} Gbps implies analytic "
            f"{expected:.3f} Gbps but the suite reports "
            f"{analytic:.3f} Gbps (rel err {rel_err:.3f} > "
            f"{rel_tol})")]
    return []


def check_rs_ag_composition(fabric: Fabric, hosts: Sequence[str],
                            rail: int, size_bits: float,
                            rel_tol: float = 0.01) -> List[Violation]:
    """AllReduce time must equal ReduceScatter + AllGather time.

    The ring wire-byte identity ``2(n-1)/n == (n-1)/n + (n-1)/n``
    must survive the flow generators and the fluid completion.
    """
    endpoints = [Endpoint(host, rail) for host in hosts]
    reset_flow_ids()
    ar = fabric.complete(
        ring_allreduce_flows(endpoints, size_bits)).total_time_s
    reset_flow_ids()
    rs = fabric.complete(
        reduce_scatter_flows(endpoints, size_bits)).total_time_s
    reset_flow_ids()
    ag = fabric.complete(
        all_gather_flows(endpoints, size_bits)).total_time_s
    if ar <= 0:
        return [Violation("rs-ag-composition",
                          f"allreduce finished in {ar!r} s")]
    rel_err = abs((rs + ag) - ar) / ar
    if rel_err > rel_tol:
        return [Violation(
            "rs-ag-composition",
            f"RS {rs:.6g} s + AG {ag:.6g} s != AR {ar:.6g} s "
            f"(rel err {rel_err:.3g} > {rel_tol})")]
    return []


# --------------------------------------------------------------------------
# Fluid vs packet-granular congestion
# --------------------------------------------------------------------------

def check_fluid_vs_packet(capacity_gbps: float, offered_gbps: float,
                          seed: int = 0,
                          duration_s: float = 0.02) -> List[Violation]:
    """One egress port, two abstraction levels, same regime verdict.

    Underloaded (< 90% of capacity): neither level marks and neither
    builds a standing queue.  Persistently overloaded (> 130%): both
    mark and both pin the queue at the configured buffer.  The band in
    between is transient-dominated and intentionally not judged.
    """
    violations = []
    utilization = offered_gbps / capacity_gbps
    if 0.9 <= utilization <= 1.3:
        return violations  # boundary regime: neither model is crisp
    packet = PacketQueueSim(capacity_gbps, offered_gbps,
                            seed=seed).run(duration_s)
    load = LinkLoad(link_dir=(0, True), capacity_gbps=capacity_gbps,
                    offered_gbps=offered_gbps,
                    carried_gbps=min(offered_gbps, capacity_gbps))
    fluid = CongestionModel().evaluate(load)
    buffer_bytes = CongestionModel().config.buffer_bytes
    if utilization < 0.9:
        if packet.mark_fraction > 0.02:
            violations.append(Violation(
                "fluid-vs-packet",
                f"underloaded ({utilization:.2f}x) but packet level "
                f"marks {packet.mark_fraction:.3f} of packets"))
        if fluid.ecn_marks_per_poll > 0:
            violations.append(Violation(
                "fluid-vs-packet",
                f"underloaded ({utilization:.2f}x) but fluid level "
                f"marks {fluid.ecn_marks_per_poll:.3f}/poll"))
        if packet.mean_queue_bytes > 0.05 * buffer_bytes:
            violations.append(Violation(
                "fluid-vs-packet",
                f"underloaded ({utilization:.2f}x) but packet queue "
                f"averages {packet.mean_queue_bytes:.0f} B"))
    else:
        if packet.mark_fraction <= 0.0:
            violations.append(Violation(
                "fluid-vs-packet",
                f"overloaded ({utilization:.2f}x) but packet level "
                "never marks"))
        if fluid.ecn_marks_per_poll <= 0.0:
            violations.append(Violation(
                "fluid-vs-packet",
                f"overloaded ({utilization:.2f}x) but fluid level "
                "never marks"))
        if abs(packet.max_queue_bytes - buffer_bytes) \
                > 0.10 * buffer_bytes:
            violations.append(Violation(
                "fluid-vs-packet",
                f"overloaded ({utilization:.2f}x) but packet queue "
                f"peaks at {packet.max_queue_bytes:.0f} B, not the "
                f"{buffer_bytes:.0f} B buffer"))
        if abs(fluid.queue_bytes - buffer_bytes) \
                > 0.10 * buffer_bytes:
            violations.append(Violation(
                "fluid-vs-packet",
                f"overloaded ({utilization:.2f}x) but fluid queue is "
                f"{fluid.queue_bytes:.0f} B, not the buffer"))
    return violations

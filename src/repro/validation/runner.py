"""Campaign runner: execute scenarios, apply every applicable oracle.

``run_case(seed, index)`` regenerates one scenario from its seed,
drives it through the appropriate simulator path, and collects
violations from the invariant, differential, and metamorphic oracles.
``run_campaign`` loops cases and aggregates a JSON-serialisable
report; every failing case carries a self-contained repro command
(``repro validate --seed S --case I``) plus its full spec.

Which oracles run depends on the scenario profile:

==========  ==========================================================
profile     oracles
==========  ==========================================================
batch       solver (feasibility, conservation, KKT), engine-vs-batch
            bit-identity, byte-conservation replay, metamorphic
            (rate scaling, idle job, unused link), determinism
timed       clock monotonicity, per-epoch solver oracles + byte
            conservation via replay, determinism
degrade     same as timed, with the degrade schedule folded into the
            replay's capacity events
faulted     clock monotonicity, full accounting (every flow finishes
            or is cancelled as stranded), reroute bounds, determinism
collective  flow-vs-analytic bandwidth, RS+AG == AR composition,
            solver oracles on the ring allocation, fluid-vs-packet on
            the busiest link, determinism
hierarchical flat-vs-folded bit-exact differential (certified pod
            symmetry: iteration times and expectations must match
            ``==``), fold effectiveness (the fold must actually
            shrink the engine-simulated host count), determinism
faulted-    bounded-vs-whole-pod refinement bit-exact differential
hierarchical under a sampled fault document (correlated domains and
            explicit faults), the escalation-ladder assertion (the
            fault class predicts the refinement level), and — for
            iteration-indexed faults — the flat differential too
serving     rate-doubling monotonicity (Poisson superposition over the
            same base population), the zero-arrival fabric no-op, the
            full-contract power-cap identity, determinism
==========  ==========================================================

Every profile additionally runs the **solver-backends** differential:
its determinism fingerprint is recomputed once under the pure-python
progressive-filling backend and once under the vectorized kernel, and
the two must compare exact ``==`` (skipped when numpy is absent).
Event *traces* are the one artifact allowed to differ across backends
— the vector engine fires a single fabric-level deadline event where
the python engine arms one timeout per flow — so the fingerprints
compared here deliberately exclude them.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..network.engine import FabricEngine
from ..network.fabric import Fabric
from ..network.solver import resolve_backend, use_backend
from ..resilience import FailureInjector
from .differential import (
    check_engine_vs_batch,
    check_fluid_vs_packet,
    check_ring_vs_analytic,
    check_rs_ag_composition,
    check_solver_backends,
)
from .metamorphic import (
    check_idle_job_noop,
    check_rate_scaling,
    check_serving_powercap_identity,
    check_serving_rate_doubling,
    check_serving_zero_arrival,
    check_unused_link_noop,
)
from .oracles import (
    TracingSimulator,
    Violation,
    check_clock_monotonic,
    check_same_result,
    check_solution,
    replay_conservation,
)
from .scenarios import (
    ScenarioGenerator,
    ScenarioSpec,
    build_flows,
    build_topology,
)

__all__ = ["CaseReport", "CampaignReport", "run_case", "run_campaign"]


@dataclass
class CaseReport:
    """Outcome of one scenario against its oracle battery."""

    seed: int
    index: int
    family: str
    profile: str
    checks: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    spec: Dict[str, Any] = field(default_factory=dict)
    #: wall-clock of this case's battery.  Measurement metadata, NOT
    #: part of :meth:`to_dict` — the serialised report must stay
    #: bit-identical across runs/workers for the farm cache and the
    #: parallel-vs-serial differential.
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def repro_command(self) -> str:
        return f"repro validate --seed {self.seed} --case {self.index}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "index": self.index,
            "family": self.family,
            "profile": self.profile,
            "ok": self.ok,
            "checks": list(self.checks),
            "violations": [
                {"oracle": v.oracle, "detail": v.detail}
                for v in self.violations
            ],
            "repro": self.repro_command,
            "spec": self.spec,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CaseReport":
        """Rebuild a report from :meth:`to_dict` (farm result payload)."""
        return cls(
            seed=data["seed"], index=data["index"],
            family=data["family"], profile=data["profile"],
            checks=list(data.get("checks", [])),
            violations=[Violation(v["oracle"], v["detail"])
                        for v in data.get("violations", [])],
            spec=dict(data.get("spec", {})))


@dataclass
class CampaignReport:
    """Aggregate of a ``repro validate`` run."""

    seed: int
    cases: List[CaseReport] = field(default_factory=list)
    #: set when the campaign ran through the farm (parallel/cached);
    #: carries worker count, wall-clock, and cache hit/miss stats.
    farm: Optional[Any] = None

    @property
    def failures(self) -> List[CaseReport]:
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_elapsed_s(self) -> float:
        return sum(case.elapsed_s for case in self.cases)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "seed": self.seed,
            "n_cases": len(self.cases),
            "n_failures": len(self.failures),
            "ok": self.ok,
            "cases": [case.to_dict() for case in self.cases],
        }
        if self.farm is not None:
            data["farm"] = {
                "workers": self.farm.workers,
                "wall_s": self.farm.wall_s,
                "throughput_per_s": self.farm.throughput,
                "n_cached": self.farm.n_cached,
                "n_executed": self.farm.n_executed,
                "cache_hits": (self.farm.cache_stats or {}).get(
                    "hits", 0),
                "cache_misses": (self.farm.cache_stats or {}).get(
                    "misses", 0),
            }
        return data


# --------------------------------------------------------------------------
# Engine-path execution
# --------------------------------------------------------------------------

def _run_engine_scenario(spec: ScenarioSpec):
    """Build and run the spec on a fresh traced engine.

    Returns ``(run, engine, injector, sim, cancelled_ids)``; stranded
    flows (every ECMP path dead) are cancelled and recorded rather
    than raised, so fault schedules that sever a flow are data, not
    crashes.
    """
    topology = build_topology(spec)
    sim = TracingSimulator()
    fabric = Fabric(topology)
    engine = FabricEngine(fabric, sim=sim)
    cancelled: List[int] = []

    def _cancel_stranded(flow, exc) -> None:
        cancelled.append(flow.flow_id)
        engine.cancel(flow.flow_id)

    engine.on_stranded(_cancel_stranded)
    injector = FailureInjector(engine, dampening_s=spec.dampening_s)
    flows = build_flows(spec)
    for flow in flows:
        engine.submit(flow, start_time_s=flow.start_time_s)
    for fault in spec.faults:
        if fault.kind == "degrade":
            injector.degrade_link(fault.link_id, factor=fault.factor,
                                  at=fault.at_s)
        elif fault.kind == "flap":
            injector.flap_link(fault.link_id, at=fault.at_s,
                               down_s=fault.down_s)
        else:
            injector.kill_link(fault.link_id, at=fault.at_s)
    run = engine.run()
    return run, engine, injector, sim, cancelled, flows


def _engine_fingerprint(spec: ScenarioSpec) -> Dict[str, Any]:
    """A comparable summary for the bit-identical-replay oracle."""
    run, engine, injector, _, cancelled, _ = _run_engine_scenario(spec)
    return {
        "finish": dict(run.finish_times_s),
        "cancelled": sorted(cancelled),
        "reroutes": dict(engine.reroutes),
        "log": [(event.at_s, event.action, event.target)
                for event in injector.log],
    }


# --------------------------------------------------------------------------
# Per-profile batteries
# --------------------------------------------------------------------------

def _check_batch(spec: ScenarioSpec, fast: bool) -> (List[str],
                                                     List[Violation]):
    checks = ["solver-oracles", "engine-vs-batch", "byte-conservation",
              "rate-scaling", "idle-job-noop", "unused-link-noop",
              "bit-identical-replay", "solver-backends"]
    violations: List[Violation] = []
    topology = build_topology(spec)
    fabric = Fabric(topology)
    flows = build_flows(spec)
    paths = fabric.resolve_paths(flows)
    violations += check_solution(fabric, flows, paths)
    violations += check_engine_vs_batch(fabric, flows, paths)
    run = fabric.complete(flows, paths=paths)
    violations += replay_conservation(
        fabric, flows, run.finish_times_s, paths, check_epochs=False)
    violations += check_rate_scaling(spec)
    violations += check_idle_job_noop(spec)
    violations += check_unused_link_noop(spec)
    violations += check_same_result(
        lambda: _batch_fingerprint(spec), label=f"case {spec.index}")
    violations += check_solver_backends(
        lambda: _batch_fingerprint(spec), label=f"case {spec.index}")
    return checks, violations


def _batch_fingerprint(spec: ScenarioSpec) -> Dict[int, float]:
    topology = build_topology(spec)
    fabric = Fabric(topology)
    flows = build_flows(spec)
    return dict(fabric.complete(flows).finish_times_s)


def _check_timed(spec: ScenarioSpec, fast: bool) -> (List[str],
                                                     List[Violation]):
    checks = ["clock-monotonic", "byte-conservation",
              "per-epoch-solver-oracles", "bit-identical-replay",
              "solver-backends"]
    violations: List[Violation] = []
    run, _, _, sim, _, flows = _run_engine_scenario(spec)
    violations += check_clock_monotonic(sim.trace)
    capacity_events = [(fault.at_s, fault.link_id, fault.factor)
                       for fault in spec.faults
                       if fault.kind == "degrade"]
    replay_fabric = Fabric(build_topology(spec))
    violations += replay_conservation(
        replay_fabric, flows, run.finish_times_s, run.paths,
        capacity_events=capacity_events)
    violations += check_same_result(
        lambda: _engine_fingerprint(spec), label=f"case {spec.index}")
    violations += check_solver_backends(
        lambda: _engine_fingerprint(spec), label=f"case {spec.index}")
    return checks, violations


def _check_faulted(spec: ScenarioSpec, fast: bool) -> (List[str],
                                                       List[Violation]):
    checks = ["clock-monotonic", "flow-accounting", "reroute-bounds",
              "bit-identical-replay", "solver-backends"]
    violations: List[Violation] = []
    run, engine, injector, sim, cancelled, flows = \
        _run_engine_scenario(spec)
    violations += check_clock_monotonic(sim.trace)
    for flow in flows:
        finished = flow.flow_id in run.finish_times_s
        if not finished and flow.flow_id not in cancelled:
            violations.append(Violation(
                "flow-accounting",
                f"flow {flow.flow_id} neither finished nor was "
                "cancelled as stranded"))
        if finished and run.finish_times_s[flow.flow_id] \
                < flow.start_time_s:
            violations.append(Violation(
                "flow-accounting",
                f"flow {flow.flow_id} finished at "
                f"{run.finish_times_s[flow.flow_id]!r} before its "
                f"start {flow.start_time_s!r}"))
    # Failover discipline from the resilience layer: at most one
    # reroute per flow per topology-change event.
    n_changes = len([e for e in injector.log
                     if e.action in ("kill-link", "restore-link",
                                     "kill-device", "repair-device")])
    for fid, count in engine.reroutes.items():
        if count > max(n_changes, 1):
            violations.append(Violation(
                "reroute-bounds",
                f"flow {fid} rerouted {count}x across only "
                f"{n_changes} topology changes"))
    violations += check_same_result(
        lambda: _engine_fingerprint(spec), label=f"case {spec.index}")
    violations += check_solver_backends(
        lambda: _engine_fingerprint(spec), label=f"case {spec.index}")
    return checks, violations


def _check_collective(spec: ScenarioSpec, fast: bool) -> (List[str],
                                                          List[Violation]):
    checks = ["flow-vs-analytic", "rs-ag-composition",
              "solver-oracles", "fluid-vs-packet",
              "bit-identical-replay", "solver-backends"]
    violations: List[Violation] = []
    conf = spec.collective or {}
    hosts = conf["hosts"]
    rail = conf["rail"]
    size_bits = conf["size_bits"]
    fabric = Fabric(build_topology(spec))
    violations += check_ring_vs_analytic(fabric, hosts, rail, size_bits)
    violations += check_rs_ag_composition(fabric, hosts, rail,
                                          size_bits)
    from ..network.collectives import Endpoint, ring_allreduce_flows
    from ..network.flows import reset_flow_ids
    reset_flow_ids()
    ring = ring_allreduce_flows(
        [Endpoint(host, rail) for host in hosts], size_bits)
    violations += check_solution(fabric, ring)
    # Differential congestion check on the busiest port of the run.
    reset_flow_ids()
    run = fabric.complete(ring_allreduce_flows(
        [Endpoint(host, rail) for host in hosts], size_bits))
    if run.link_loads and not fast:
        busiest = max(run.link_loads.values(),
                      key=lambda load: load.utilization)
        violations += check_fluid_vs_packet(
            busiest.capacity_gbps, busiest.offered_gbps,
            seed=spec.seed)
    violations += check_same_result(
        lambda: _collective_fingerprint(spec),
        label=f"case {spec.index}")
    violations += check_solver_backends(
        lambda: _collective_fingerprint(spec),
        label=f"case {spec.index}")
    return checks, violations


def _collective_fingerprint(spec: ScenarioSpec) -> Dict[int, float]:
    from ..network.collectives import Endpoint, ring_allreduce_flows
    from ..network.flows import reset_flow_ids
    conf = spec.collective or {}
    fabric = Fabric(build_topology(spec))
    reset_flow_ids()
    flows = ring_allreduce_flows(
        [Endpoint(host, conf["rail"]) for host in conf["hosts"]],
        conf["size_bits"])
    return dict(fabric.complete(flows).finish_times_s)


def _check_hierarchical(spec: ScenarioSpec, fast: bool
                        ) -> (List[str], List[Violation]):
    checks = ["flat-vs-folded-exact", "fold-effectiveness",
              "bit-identical-replay", "solver-backends"]
    violations: List[Violation] = []
    from ..hierarchy import (HierJob, HierarchicalRun,
                             build_flat_fabric, flat_job_configs)
    from ..monitoring.multijob import MultiJobRun
    from ..network.flows import reset_flow_ids
    from ..topology import AstralParams

    conf = spec.hierarchy or {}
    params = AstralParams(**spec.topo)
    jobs = [HierJob(**job) for job in conf.get("jobs", [])]
    caps = {int(pod): factor
            for pod, factor in (conf.get("power_caps") or {}).items()}

    reset_flow_ids()
    flat = MultiJobRun(build_flat_fabric(params),
                       flat_job_configs(params, jobs, caps)).run()
    reset_flow_ids()
    hier_run = HierarchicalRun(params, jobs, pod_power_caps=caps)
    hier = hier_run.run()

    if not hier_run.report.exact:
        violations.append(Violation(
            "flat-vs-folded-exact",
            "sampled scenario is symmetric and fault-free but the "
            "fold did not claim exactness"))
    for name, outcome in flat.items():
        folded = hier[name]
        if outcome.iteration_times_s != folded.iteration_times_s:
            violations.append(Violation(
                "flat-vs-folded-exact",
                f"job {name}: flat {outcome.iteration_times_s!r} != "
                f"folded {folded.iteration_times_s!r}"))
        if outcome.expected_iteration_s != folded.expected_iteration_s:
            violations.append(Violation(
                "flat-vs-folded-exact",
                f"job {name}: expected {outcome.expected_iteration_s!r}"
                f" != folded {folded.expected_iteration_s!r}"))
    report = hier_run.report
    # Pods are identical by construction except for their power-cap
    # factor, so the fold must land exactly one class per distinct
    # factor and engine-simulate at most one pod's hosts per class.
    expected_classes = len({caps.get(pod, 1.0)
                            for pod in range(params.pods)})
    if report.n_pod_classes != expected_classes:
        violations.append(Violation(
            "fold-effectiveness",
            f"expected {expected_classes} pod classes (distinct power "
            f"caps), got {report.n_pod_classes}"))
    per_pod_hosts = report.n_job_hosts // params.pods
    if report.engine_hosts > expected_classes * per_pod_hosts:
        violations.append(Violation(
            "fold-effectiveness",
            f"fold simulated {report.engine_hosts} hosts; at most "
            f"{expected_classes} classes x {per_pod_hosts} hosts/pod "
            "should have been needed"))

    def _fingerprint():
        reset_flow_ids()
        rerun = HierarchicalRun(params, jobs, pod_power_caps=caps)
        return {name: tuple(outcome.iteration_times_s)
                for name, outcome in rerun.run().items()}

    violations += check_same_result(_fingerprint,
                                    label=f"case {spec.index}")
    violations += check_solver_backends(_fingerprint,
                                        label=f"case {spec.index}")
    return checks, violations


def _check_faulted_hierarchical(spec: ScenarioSpec, fast: bool
                                ) -> (List[str], List[Violation]):
    checks = ["bounded-vs-pod-exact", "refine-ladder",
              "flat-vs-refined-exact", "bit-identical-replay",
              "solver-backends"]
    violations: List[Violation] = []
    from ..hierarchy import (HierJob, HierarchicalRun,
                             build_flat_fabric, flat_job_configs)
    from ..hierarchy.virtual import place_jobs
    from ..monitoring.multijob import MultiJobRun
    from ..network.flows import reset_flow_ids
    from ..resilience import faults_from_document
    from ..topology import AstralParams

    conf = spec.hierarchy or {}
    params = AstralParams(**spec.topo)
    jobs = [HierJob(**job) for job in conf.get("jobs", [])]
    caps = {int(pod): factor
            for pod, factor in (conf.get("power_caps") or {}).items()}
    placed = place_jobs(params, jobs)
    faults = faults_from_document(params, placed,
                                  conf.get("fault_document") or {})

    def _run(mode: str):
        reset_flow_ids()
        run = HierarchicalRun(params, jobs, faults=faults,
                              pod_power_caps=caps, refine=mode)
        return run, run.run()

    bounded_run, bounded = _run("bounded")
    pod_run, pod = _run("pod")
    for name, outcome in bounded.items():
        other = pod[name]
        if outcome.iteration_times_s != other.iteration_times_s:
            violations.append(Violation(
                "bounded-vs-pod-exact",
                f"job {name}: bounded {outcome.iteration_times_s!r} != "
                f"pod {other.iteration_times_s!r}"))
        if outcome.expected_iteration_s != other.expected_iteration_s:
            violations.append(Violation(
                "bounded-vs-pod-exact",
                f"job {name}: bounded expectation "
                f"{outcome.expected_iteration_s!r} != pod "
                f"{other.expected_iteration_s!r}"))

    # The escalation ladder, not just the result: the sampled fault
    # class predicts exactly which rung every refined group lands on.
    expect = conf.get("expect_level")
    levels = bounded_run.report.refine_levels
    if expect and levels and set(levels) != {expect}:
        violations.append(Violation(
            "refine-ladder",
            f"fault class predicts level {expect!r}, bounded run "
            f"refined at {levels!r} "
            f"(reasons: {bounded_run.report.refine_reasons!r})"))
    pod_levels = pod_run.report.refine_levels
    if pod_levels and set(pod_levels) - {"pod", "flat"}:
        violations.append(Violation(
            "refine-ladder",
            f"refine='pod' run must never plan block scope, got "
            f"{pod_levels!r}"))

    # Timestamp faults are epoch-sensitive (the refined sub-simulation
    # re-solves on a different epoch grid than the flat run), so the
    # flat differential is only demanded for iteration-indexed faults.
    timed = any(fault.at_time_s is not None
                for fault in faults.values())
    if not timed:
        reset_flow_ids()
        flat = MultiJobRun(build_flat_fabric(params),
                           flat_job_configs(params, jobs, caps),
                           faults=faults).run()
        for name, outcome in flat.items():
            refined = bounded[name]
            if outcome.iteration_times_s != refined.iteration_times_s:
                violations.append(Violation(
                    "flat-vs-refined-exact",
                    f"job {name}: flat {outcome.iteration_times_s!r} "
                    f"!= bounded {refined.iteration_times_s!r}"))
            if outcome.expected_iteration_s \
                    != refined.expected_iteration_s:
                violations.append(Violation(
                    "flat-vs-refined-exact",
                    f"job {name}: flat expectation "
                    f"{outcome.expected_iteration_s!r} != bounded "
                    f"{refined.expected_iteration_s!r}"))

    def _fingerprint():
        _, rerun = _run("bounded")
        return {name: tuple(outcome.iteration_times_s)
                for name, outcome in rerun.items()}

    violations += check_same_result(_fingerprint,
                                    label=f"case {spec.index}")
    violations += check_solver_backends(_fingerprint,
                                        label=f"case {spec.index}")
    return checks, violations


def _check_serving(spec: ScenarioSpec, fast: bool
                   ) -> (List[str], List[Violation]):
    checks = ["rate-doubling-monotone", "zero-arrival-noop",
              "powercap-identity", "bit-identical-replay",
              "solver-backends"]
    violations: List[Violation] = []
    violations += check_serving_rate_doubling(spec)
    violations += check_serving_zero_arrival(spec)
    violations += check_serving_powercap_identity(spec)
    violations += check_same_result(
        lambda: _serving_fingerprint(spec), label=f"case {spec.index}")
    violations += check_solver_backends(
        lambda: _serving_fingerprint(spec), label=f"case {spec.index}")
    return checks, violations


def _serving_fingerprint(spec: ScenarioSpec) -> Dict[str, Any]:
    from ..serving import ServingRun, ServingScenario
    conf = spec.serving or {}
    scenario = ServingScenario.from_params(
        dict(conf.get("scenario", {})))
    return ServingRun(scenario).run().to_dict()


_BATTERIES: Dict[str, Callable] = {
    "batch": _check_batch,
    "timed": _check_timed,
    "degrade": _check_timed,   # replay folds the degrade schedule in
    "faulted": _check_faulted,
    "collective": _check_collective,
    "hierarchical": _check_hierarchical,
    "faulted-hierarchical": _check_faulted_hierarchical,
    "serving": _check_serving,
}


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------

def run_case(seed: int, index: int, fast: bool = False,
             solver: Optional[str] = None) -> CaseReport:
    """Regenerate and validate one scenario.

    ``solver`` pins the max-min solver backend for the battery
    (``"python"`` / ``"vector"`` / ``"auto"``); ``None`` follows the
    process default.  The solver-backends differential inside each
    battery still exercises *both* backends regardless — the pin only
    selects which backend the primary oracles run on.
    """
    spec = ScenarioGenerator(seed).spec(index)
    report = CaseReport(seed=seed, index=index, family=spec.family,
                        profile=spec.profile, spec=spec.to_dict())
    battery = _BATTERIES[spec.profile]
    started = time.perf_counter()
    try:
        with use_backend(solver):
            report.checks, report.violations = battery(spec, fast)
    except Exception as exc:  # noqa: BLE001 — a crash is a finding
        trace = traceback.format_exc(limit=4)
        report.violations = [Violation(
            "no-crash", f"{type(exc).__name__}: {exc}\n{trace}")]
    report.elapsed_s = time.perf_counter() - started
    return report


def run_campaign(seed: int, n_cases: int,
                 indices: Optional[Sequence[int]] = None,
                 fast: bool = False,
                 progress: Optional[Callable[[CaseReport], None]] = None,
                 workers: int = 1,
                 use_cache: bool = False,
                 cache_dir: Optional[str] = None,
                 solver: Optional[str] = None
                 ) -> CampaignReport:
    """Validate ``n_cases`` scenarios (or an explicit index list).

    ``workers > 1`` fans the cases out across a
    :class:`~repro.farm.executor.FarmExecutor` process pool;
    ``use_cache`` serves unchanged cases from the farm's
    content-addressed result cache (``cache_dir`` overrides its
    location).  Both paths produce bit-identical reports — the farm
    route exists purely for wall-clock and memoization.  ``solver``
    pins the max-min backend (see :func:`run_case`); the farm path
    folds the *resolved* backend name into each task's content hash so
    cached results never cross backends.
    """
    if workers > 1 or use_cache:
        return _run_campaign_farm(seed, n_cases, indices=indices,
                                  fast=fast, progress=progress,
                                  workers=workers, use_cache=use_cache,
                                  cache_dir=cache_dir, solver=solver)
    report = CampaignReport(seed=seed)
    for index in (indices if indices is not None else range(n_cases)):
        case = run_case(seed, index, fast=fast, solver=solver)
        report.cases.append(case)
        if progress is not None:
            progress(case)
    return report


def _run_campaign_farm(seed: int, n_cases: int,
                       indices: Optional[Sequence[int]],
                       fast: bool, progress, workers: int,
                       use_cache: bool, cache_dir: Optional[str],
                       solver: Optional[str] = None
                       ) -> CampaignReport:
    """The farm-backed campaign path (parallel and/or cached)."""
    from ..farm import FarmExecutor, ResultCache, TaskSpec

    resolved = resolve_backend(solver)
    specs = [
        TaskSpec("validation-case",
                 {"seed": seed, "index": int(index), "fast": fast,
                  "solver": resolved},
                 label=f"validate[{seed}:{index}]")
        for index in (indices if indices is not None
                      else range(n_cases))
    ]
    cache = ResultCache(root=cache_dir) if cache_dir \
        else ResultCache()

    def _farm_progress(result, done, total) -> None:
        if progress is None:
            return
        if result.status == "ok":
            case = CaseReport.from_dict(result.result)
            case.elapsed_s = result.elapsed_s
            progress(case)

    executor = FarmExecutor(workers=workers, use_cache=use_cache,
                            cache=cache, progress=_farm_progress)
    farm_report = executor.run(specs)
    report = CampaignReport(seed=seed)
    report.farm = farm_report
    for task in farm_report.results:
        if task.status == "ok":
            case = CaseReport.from_dict(task.result)
            case.elapsed_s = task.elapsed_s
        else:
            # An executor-level failure (timeout/crash) still yields a
            # case row, so the campaign exit code reflects it.
            params = task.spec.params
            case = CaseReport(
                seed=seed, index=params["index"], family="?",
                profile="?",
                violations=[Violation(
                    f"farm-{task.status}",
                    task.error or "task did not complete")])
            case.elapsed_s = task.elapsed_s
        report.cases.append(case)
    return report

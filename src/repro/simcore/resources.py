"""Shared resources for the simulation kernel.

Two resource primitives cover everything the reproduction needs:

* :class:`Resource` — a counted semaphore with FIFO queueing (e.g. a GPU
  execution stream that runs one operator at a time, or a limited set of
  repair engineers in the MTTLF model).
* :class:`Store` — an unbounded FIFO message channel (e.g. telemetry
  pipelines between collectors and the analyzer).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from .engine import Event, Simulator, SimulationError

__all__ = ["Resource", "Store"]


class Resource:
    """Counted FIFO resource.

    Usage from a process::

        yield resource.request()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires once a slot is acquired."""
        grant = self.sim.event(name="resource.grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def cancel(self, grant: Event) -> bool:
        """Withdraw a queued :meth:`request` grant (preemption support).

        Only requests still waiting in the FIFO can be cancelled; a
        grant that has already fired holds a slot and must be given back
        with :meth:`release`.  Cancellation preserves the FIFO order of
        the remaining waiters.  Returns True when the grant was removed
        from the queue, False when it was unknown or already granted.
        """
        if grant.triggered:
            return False
        try:
            self._waiters.remove(grant)
        except ValueError:
            return False
        return True

    #: Scheduler-facing alias: a queued request that loses its claim.
    preempt = cancel


class Store:
    """Unbounded FIFO channel between processes."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event whose value is the next item."""
        ticket = self.sim.event(name="store.get")
        if self._items:
            ticket.succeed(self._items.popleft())
        else:
            self._getters.append(ticket)
        return ticket

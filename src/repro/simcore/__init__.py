"""Discrete-event simulation kernel used across the Astral reproduction."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]

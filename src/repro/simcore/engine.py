"""Discrete-event simulation kernel.

This module provides the minimal but complete event-driven substrate the
rest of the reproduction builds on.  Astral Seer (paper §4.3) notes that
"any discrete-event simulation tool can be used to construct the timeline"
once operator dependencies and execution times are known; this is that
tool.  The fabric simulator and the monitoring fault campaigns also run on
top of it.

The design is deliberately simple and deterministic:

* A :class:`Simulator` owns a priority queue of timestamped events.
* Events with equal timestamps fire in insertion order (stable tiebreak),
  which keeps runs reproducible without wall-clock or randomness.
* :class:`Process` objects are generator-based coroutines that yield
  :class:`Timeout` / :class:`Wait` requests, in the style of SimPy but
  with no external dependency.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


@dataclass
class Event:
    """A schedulable occurrence.

    Events start *pending*, become *triggered* when given a fire time, and
    *processed* once their callbacks have run.  Processes can wait on an
    event; all waiters resume when it fires.
    """

    sim: "Simulator"
    name: str = ""
    value: Any = None

    _callbacks: list[Callable[["Event"], None]] = field(
        default_factory=list, repr=False
    )
    _triggered: bool = field(default=False, repr=False)
    _processed: bool = field(default=False, repr=False)

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event immediately (at the current sim time)."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.value = value
        self._triggered = True
        self.sim._schedule(self.sim.now, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._processed:
            # Fire immediately for late subscribers: the event is history.
            fn(self)
        else:
            self._callbacks.append(fn)

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(sim, name=f"timeout({delay})", value=value)
        self._triggered = True
        sim._schedule(sim.now + delay, self)


class AllOf(Event):
    """Fires once every child event has fired (a join / barrier)."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._waiting = 0
        events = list(events)
        if not events:
            self.succeed([])
            return
        self._values: list[Any] = [None] * len(events)
        self._waiting = len(events)
        for index, event in enumerate(events):
            event.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            self._values[index] = event.value
            self._waiting -= 1
            if self._waiting == 0 and not self._triggered:
                self.succeed(self._values)

        return on_child


class AnyOf(Event):
    """Fires as soon as any child event has fired (a select)."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        events = list(events)
        if not events:
            self.succeed(None)
            return
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if not self._triggered:
            self.succeed(event.value)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A coroutine driven by the simulator.

    The wrapped generator yields :class:`Event` objects; the process sleeps
    until the yielded event fires, then resumes with the event's value.
    The process itself is an event that fires (with the generator's return
    value) when the generator finishes, so processes can wait on each other.
    """

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "process"):
        super().__init__(sim, name=name)
        self._generator = generator
        # Bootstrap: resume at the current time.
        bootstrap = Timeout(sim, 0.0)
        bootstrap.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected Event"
            )
        target.add_callback(self._resume)


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> log = []
    >>> def worker(sim, tag, delay):
    ...     yield sim.timeout(delay)
    ...     log.append((sim.now, tag))
    >>> _ = sim.process(worker(sim, "a", 2.0))
    >>> _ = sim.process(worker(sim, "b", 1.0))
    >>> sim.run()
    >>> log
    [(1.0, 'b'), (2.0, 'a')]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling ------------------------------------------------------
    def _schedule(self, at: float, event: Event) -> None:
        if at < self._now:
            raise SimulationError(
                f"cannot schedule event at {at} before now={self._now}"
            )
        heapq.heappush(self._queue, (at, next(self._counter), event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_at(self, at: float, value: Any = None) -> Event:
        """An event firing at the *exact* absolute time ``at`` (>= now).

        ``timeout(delay)`` fires at ``now + delay``, which re-rounds
        when the caller starts from an absolute deadline (``at - now``
        then ``now + (at - now)`` is not ``at`` bitwise).  Schedulers
        that maintain absolute deadlines — the vector-backend fabric
        engine keeps a whole array of them — need the event to land on
        the deadline's own bits, so this schedules at ``at`` verbatim.
        """
        if at < self._now:
            raise ValueError(
                f"timeout_at({at}) before now={self._now}")
        event = Event(self, name=f"timeout_at({at})", value=value)
        event._triggered = True
        self._schedule(at, event)
        return event

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def process(self, generator: ProcessGenerator,
                name: str = "process") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        at, _, event = heapq.heappop(self._queue)
        self._now = at
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches *until*."""
        while self._queue:
            at = self._queue[0][0]
            if until is not None and at > until:
                self._now = until
                return
            self.step()
        if until is not None and until > self._now:
            self._now = until

    def peek(self) -> Optional[float]:
        """Timestamp of the next event, or None when the queue is empty."""
        return self._queue[0][0] if self._queue else None

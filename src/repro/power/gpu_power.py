"""GPU power-draw synthesis (paper §5, Figures 15 and 16).

The paper characterizes production GPU power along two axes:

* **within an iteration** — training power peaks at (and briefly above)
  the GPU's TDP during forward and backward compute and dips during the
  communication phase; inference peaks near TDP during prefill and sits
  far below it during decoding;
* **across a day** — aggregate power follows a tidal pattern because
  interactive inference is seldom used overnight (handled by
  :mod:`repro.power.tidal`).

Traces are phase-driven: a sequence of (phase, duration) pairs is
expanded to a sampled power time series.  Determinism is preserved by a
seeded RNG for the small measurement jitter.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "Phase",
    "GpuSpec",
    "PowerTrace",
    "training_iteration_phases",
    "inference_request_phases",
    "synthesize_trace",
]


class Phase(enum.Enum):
    """Workload phases with distinct power signatures."""

    FORWARD = "forward"
    BACKWARD = "backward"
    COMMUNICATION = "communication"
    OPTIMIZER = "optimizer"
    PREFILL = "prefill"
    DECODE = "decode"
    IDLE = "idle"


#: Power draw per phase as a fraction of TDP.  Peaks above 1.0 reflect
#: the paper's observation that peak power "often reaches or exceeds
#: TDP", motivating the 30% rack power elasticity.
_PHASE_POWER_FRAC = {
    Phase.FORWARD: 1.02,
    Phase.BACKWARD: 1.05,
    Phase.COMMUNICATION: 0.55,
    Phase.OPTIMIZER: 0.80,
    Phase.PREFILL: 1.00,
    Phase.DECODE: 0.35,
    Phase.IDLE: 0.12,
}


@dataclass(frozen=True)
class GpuSpec:
    """Electrical characteristics of one GPU model."""

    name: str = "H20-class"
    tdp_watts: float = 500.0

    def phase_power(self, phase: Phase) -> float:
        return _PHASE_POWER_FRAC[phase] * self.tdp_watts


@dataclass
class PowerTrace:
    """A sampled power time series for one GPU (or an aggregate)."""

    times_s: np.ndarray
    watts: np.ndarray
    tdp_watts: float

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.watts):
            raise ValueError("times and watts must have equal length")

    @property
    def peak_watts(self) -> float:
        return float(np.max(self.watts)) if len(self.watts) else 0.0

    @property
    def mean_watts(self) -> float:
        return float(np.mean(self.watts)) if len(self.watts) else 0.0

    @property
    def exceeds_tdp(self) -> bool:
        """Does the peak reach or exceed TDP (paper: it often does)?"""
        return self.peak_watts >= self.tdp_watts

    def energy_joules(self) -> float:
        if len(self.times_s) < 2:
            return 0.0
        return float(np.trapezoid(self.watts, self.times_s))

    def scaled(self, n_gpus: int) -> "PowerTrace":
        """Aggregate trace for *n_gpus* identical GPUs."""
        return PowerTrace(self.times_s, self.watts * n_gpus,
                          self.tdp_watts * n_gpus)


def training_iteration_phases(compute_s: float = 0.6,
                              comm_s: float = 0.25,
                              optimizer_s: float = 0.05
                              ) -> List[Tuple[Phase, float]]:
    """One training iteration: forward, backward, communication, update.

    Durations default to the ~15%-exposed-communication regime the paper
    reports (§2.1: only ~15% of communication time remains after
    overlap).
    """
    return [
        (Phase.FORWARD, compute_s / 3),
        (Phase.BACKWARD, 2 * compute_s / 3),
        (Phase.COMMUNICATION, comm_s),
        (Phase.OPTIMIZER, optimizer_s),
    ]


def inference_request_phases(prefill_s: float = 0.2,
                             decode_s: float = 1.2
                             ) -> List[Tuple[Phase, float]]:
    """One inference request: short TDP-level prefill, long cool decode."""
    return [
        (Phase.PREFILL, prefill_s),
        (Phase.DECODE, decode_s),
    ]


def synthesize_trace(gpu: GpuSpec,
                     phases: Sequence[Tuple[Phase, float]],
                     repeats: int = 1,
                     sample_hz: float = 100.0,
                     jitter_frac: float = 0.02,
                     seed: int = 0) -> PowerTrace:
    """Expand a phase schedule into a sampled power trace.

    A smooth ramp (single-pole response) joins phase levels, modelling
    the VRM/thermal inertia that keeps measured traces from being square
    waves; seeded Gaussian jitter models sensor noise.
    """
    if sample_hz <= 0:
        raise ValueError("sample_hz must be positive")
    rng = np.random.default_rng(seed)
    schedule = list(phases) * repeats
    total_s = sum(duration for _, duration in schedule)
    n = max(2, int(math.ceil(total_s * sample_hz)))
    times = np.linspace(0.0, total_s, n)

    # Target power level at each sample.
    levels = np.empty(n)
    edges = []
    t = 0.0
    for phase, duration in schedule:
        edges.append((t, t + duration, gpu.phase_power(phase)))
        t += duration
    index = 0
    for i, time in enumerate(times):
        while index < len(edges) - 1 and time >= edges[index][1]:
            index += 1
        levels[i] = edges[index][2]

    # Single-pole smoothing (time constant ~ 20 ms).
    tau = 0.02
    dt = times[1] - times[0] if n > 1 else 1.0 / sample_hz
    alpha = dt / (tau + dt)
    watts = np.empty(n)
    watts[0] = levels[0]
    for i in range(1, n):
        watts[i] = watts[i - 1] + alpha * (levels[i] - watts[i - 1])

    watts += rng.normal(0.0, jitter_frac * gpu.tdp_watts, size=n)
    np.clip(watts, 0.0, None, out=watts)
    return PowerTrace(times, watts, gpu.tdp_watts)

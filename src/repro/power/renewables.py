"""Green-energy generation curves and self-consumption (§2.2).

"We build roof-mounted solar power stations and flatland wind power
stations ... as a supplement to electricity.  According to our 2024
reports, the proportion of renewable energy is 22%, which reduces 778
thousand tons of carbon emissions."

This module models the *daily shape* of that supplement: solar follows
a daylight bell, wind is flat with diurnal wobble, and the datacenter's
tidal demand (high by day) turns out to match solar well — the quantity
:func:`self_consumption` measures.  Capacities can be solved so the
renewable share hits a target (e.g. the paper's 22%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .tidal import TidalProfile, daily_inference_power

__all__ = [
    "RenewableGeneration",
    "solar_curve_mw",
    "wind_curve_mw",
    "self_consumption",
    "size_for_renewable_share",
]


def solar_curve_mw(peak_mw: float, hours: np.ndarray,
                   sunrise: float = 6.0, sunset: float = 19.0
                   ) -> np.ndarray:
    """Daylight bell: zero outside [sunrise, sunset], sin^2 inside."""
    if sunset <= sunrise:
        raise ValueError("sunset must be after sunrise")
    curve = np.zeros_like(hours, dtype=float)
    daylight = (hours >= sunrise) & (hours <= sunset)
    phase = (hours[daylight] - sunrise) / (sunset - sunrise) * np.pi
    curve[daylight] = peak_mw * np.sin(phase) ** 2
    return curve


def wind_curve_mw(mean_mw: float, hours: np.ndarray,
                  diurnal_swing: float = 0.2,
                  noise_frac: float = 0.08,
                  seed: int = 0) -> np.ndarray:
    """Wind: roughly flat, slightly stronger at night, noisy."""
    rng = np.random.default_rng(seed)
    diurnal = 1.0 + diurnal_swing * np.cos(
        (hours - 3.0) / 24.0 * 2.0 * np.pi)
    noise = rng.normal(1.0, noise_frac, size=len(hours))
    return np.clip(mean_mw * diurnal * noise, 0.0, None)


@dataclass(frozen=True)
class RenewableGeneration:
    """Installed renewable capacity feeding one facility."""

    solar_peak_mw: float = 20.0
    wind_mean_mw: float = 8.0
    seed: int = 0

    def generation_mw(self, hours: np.ndarray) -> np.ndarray:
        return (solar_curve_mw(self.solar_peak_mw, hours)
                + wind_curve_mw(self.wind_mean_mw, hours,
                                seed=self.seed))

    def daily_energy_mwh(self, hours: np.ndarray) -> float:
        if len(hours) < 2:
            return 0.0
        dt = hours[1] - hours[0]
        return float(np.sum(self.generation_mw(hours)) * dt)


def self_consumption(generation_mw: np.ndarray,
                     demand_mw: np.ndarray,
                     hours: np.ndarray) -> dict:
    """How much generation the facility absorbs directly.

    Returns consumed/curtailed energy (MWh/day), the renewable share of
    demand, and the curtailment fraction of generation.
    """
    if not (len(generation_mw) == len(demand_mw) == len(hours)):
        raise ValueError("series must have equal length")
    dt = hours[1] - hours[0] if len(hours) > 1 else 0.0
    consumed = np.minimum(generation_mw, demand_mw)
    consumed_mwh = float(np.sum(consumed) * dt)
    generated_mwh = float(np.sum(generation_mw) * dt)
    demand_mwh = float(np.sum(demand_mw) * dt)
    return {
        "consumed_mwh": consumed_mwh,
        "generated_mwh": generated_mwh,
        "demand_mwh": demand_mwh,
        "renewable_share": consumed_mwh / demand_mwh
        if demand_mwh else 0.0,
        "curtailment": 1.0 - consumed_mwh / generated_mwh
        if generated_mwh else 0.0,
    }


def size_for_renewable_share(target_share: float,
                             profile: Optional[TidalProfile] = None,
                             solar_to_wind_ratio: float = 2.5,
                             flatten_with_training: bool = True
                             ) -> Tuple[RenewableGeneration, dict]:
    """Scale installed capacity until renewables cover *target_share*.

    The demand curve is the tidal profile, optionally flattened by
    night-training scheduling (which is what the deployment runs).
    Returns the sized generation and its self-consumption report —
    used to reproduce the paper's 22% / 778 kt figures.
    """
    if not 0.0 < target_share < 0.8:
        raise ValueError("target share must be in (0, 0.8)")
    profile = profile or TidalProfile()
    hours = np.linspace(0.0, 24.0, 24 * 60, endpoint=False)
    if flatten_with_training:
        demand = np.full_like(hours, profile.peak_mw)
    else:
        demand = daily_inference_power(profile, hours)

    low, high = 0.0, 40.0 * profile.peak_mw
    generation = RenewableGeneration()
    report: dict = {}
    for _ in range(60):
        scale = (low + high) / 2.0
        generation = RenewableGeneration(
            solar_peak_mw=scale * solar_to_wind_ratio,
            wind_mean_mw=scale)
        report = self_consumption(generation.generation_mw(hours),
                                  demand, hours)
        if report["renewable_share"] < target_share:
            low = scale
        else:
            high = scale
    return generation, report

"""Daily tidal power pattern and the flattening scheduler (Figure 16).

The paper observes that inference power follows user activity: high
during the day, declining from 10 p.m. to 8 a.m.  Because the operator
signed a *constant-power* contract with utility companies, training jobs
are scheduled into the nightly trough (with cheap night rental prices as
the incentive), flattening total consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "TidalProfile",
    "NightTrainingScheduler",
    "daily_inference_power",
    "demand_fraction",
]


@dataclass(frozen=True)
class TidalProfile:
    """Shape of the daily inference demand curve.

    ``night_start_hour``/``night_end_hour`` bound the trough (22:00 to
    08:00 in the paper); ``trough_frac`` is nighttime demand relative to
    the daytime plateau.
    """

    peak_mw: float = 100.0
    trough_frac: float = 0.35
    night_start_hour: float = 22.0
    night_end_hour: float = 8.0
    ramp_hours: float = 2.0

    def is_night(self, hour: float) -> bool:
        hour = hour % 24.0
        if self.night_start_hour > self.night_end_hour:
            return hour >= self.night_start_hour \
                or hour < self.night_end_hour
        return self.night_start_hour <= hour < self.night_end_hour


def daily_inference_power(profile: TidalProfile,
                          hours: Optional[np.ndarray] = None
                          ) -> np.ndarray:
    """Inference power (MW) over the day; smooth day/night transitions."""
    if hours is None:
        hours = np.linspace(0.0, 24.0, 24 * 60, endpoint=False)
    trough = profile.peak_mw * profile.trough_frac
    power = np.empty_like(hours, dtype=float)
    for i, hour in enumerate(hours):
        hour = hour % 24.0
        if profile.is_night(hour):
            # Distance into the night, for the decline ramp after 22:00.
            since_start = (hour - profile.night_start_hour) % 24.0
            until_end = (profile.night_end_hour - hour) % 24.0
            if since_start < profile.ramp_hours:
                frac = since_start / profile.ramp_hours
                power[i] = profile.peak_mw * (1 - frac) + trough * frac
            elif until_end < profile.ramp_hours:
                frac = 1.0 - until_end / profile.ramp_hours
                power[i] = trough * (1 - frac) + profile.peak_mw * frac
            else:
                power[i] = trough
        else:
            power[i] = profile.peak_mw
    return power


def demand_fraction(profile: TidalProfile, hour: float) -> float:
    """Scalar demand at ``hour`` as a fraction of the daytime plateau.

    Pure-python companion to :func:`daily_inference_power` (same ramp
    shape, no numpy) so the serving trace generator can evaluate the
    tide at arbitrary local hours without building an array.
    """
    hour = hour % 24.0
    trough = profile.trough_frac
    if not profile.is_night(hour):
        return 1.0
    since_start = (hour - profile.night_start_hour) % 24.0
    until_end = (profile.night_end_hour - hour) % 24.0
    if since_start < profile.ramp_hours:
        frac = since_start / profile.ramp_hours
        return (1.0 - frac) + trough * frac
    if until_end < profile.ramp_hours:
        frac = 1.0 - until_end / profile.ramp_hours
        return trough * (1.0 - frac) + frac
    return trough


@dataclass
class NightTrainingScheduler:
    """Fill the nightly trough with training load up to the contract line.

    ``contract_mw`` is the constant-power commitment; training capacity
    is allocated as ``contract - inference`` at each instant, clipped at
    the available training demand.
    """

    profile: TidalProfile
    contract_mw: Optional[float] = None

    def __post_init__(self) -> None:
        if self.contract_mw is None:
            self.contract_mw = self.profile.peak_mw

    def schedule(self, hours: np.ndarray,
                 training_demand_mw: float = float("inf")
                 ) -> dict:
        """Return inference, training, and total power series (MW)."""
        inference = daily_inference_power(self.profile, hours)
        headroom = np.clip(self.contract_mw - inference, 0.0, None)
        training = np.minimum(headroom, training_demand_mw)
        total = inference + training
        return {
            "hours": hours,
            "inference_mw": inference,
            "training_mw": training,
            "total_mw": total,
        }

    def flatness(self, hours: np.ndarray,
                 training_demand_mw: float = float("inf")) -> float:
        """Coefficient of variation of total power (0 = perfectly flat)."""
        total = self.schedule(hours, training_demand_mw)["total_mw"]
        mean = float(np.mean(total))
        if mean == 0.0:
            return 0.0
        return float(np.std(total)) / mean

    def night_discount_hours(self, hours: np.ndarray) -> float:
        """Hours per day eligible for the cheap night training rate."""
        return float(np.sum([self.profile.is_night(h) for h in hours])
                     * (hours[1] - hours[0] if len(hours) > 1 else 0.0))

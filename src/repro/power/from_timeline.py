"""Derive GPU power traces from Seer operator timelines.

Figure 15's phase story — power at TDP during compute, dipping during
communication — falls out of the operator timeline: each scheduled
operator occupies its device with a characteristic power draw
(compute/mixed ops near TDP, memory-bound ops lower, communication
phases low, idle pipeline bubbles lowest).  This module converts a
:class:`~repro.seer.timeline.Timeline` into a
:class:`~repro.power.gpu_power.PowerTrace`, closing the loop between
the forecasting and power-planning components: the rack-elasticity and
tidal models can be driven by *forecast* workloads, not canned phases.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..seer.operators import OpType
from ..seer.timeline import Timeline
from .gpu_power import GpuSpec, PowerTrace

__all__ = ["power_from_timeline", "OP_POWER_FRAC"]

#: Power draw per operator class, as a fraction of TDP.  Compute and
#: fused (mem+comp) kernels run hot; pure memory streams are bounded by
#: HBM power; during communication the SMs idle; bubbles are near-idle.
OP_POWER_FRAC = {
    OpType.COMPUTE: 1.04,
    OpType.MIXED: 1.00,
    OpType.MEMORY: 0.62,
    OpType.COMMUNICATION: 0.45,
}
_IDLE_FRAC = 0.12


def power_from_timeline(timeline: Timeline, gpu: GpuSpec,
                        device: Optional[str] = None,
                        sample_hz: float = 1000.0,
                        smooth_tau_s: float = 0.02) -> PowerTrace:
    """Sampled power draw of one device executing a timeline.

    ``device`` defaults to the timeline's first device.  Concurrent
    compute and communication (overlap) draw the maximum of their
    class levels, matching how an overlapped GPU behaves.
    """
    if sample_hz <= 0:
        raise ValueError("sample_hz must be positive")
    devices = timeline.devices()
    if not devices:
        raise ValueError("timeline has no scheduled operators")
    if device is None:
        device = devices[0]
    elif device not in devices:
        raise ValueError(f"device {device!r} not in timeline")

    total = timeline.total_time_s
    n = max(2, int(np.ceil(total * sample_hz)))
    times = np.linspace(0.0, total, n)
    levels = np.full(n, _IDLE_FRAC * gpu.tdp_watts)

    for entry in timeline.entries:
        if entry.device != device:
            continue
        draw = OP_POWER_FRAC[entry.op_type] * gpu.tdp_watts
        lo = np.searchsorted(times, entry.start_s, side="left")
        hi = np.searchsorted(times, entry.end_s, side="right")
        if hi > lo:
            np.maximum(levels[lo:hi], draw, out=levels[lo:hi])

    # Thermal/VRM smoothing, as in the synthetic generator.
    if n > 1 and smooth_tau_s > 0:
        dt = times[1] - times[0]
        alpha = dt / (smooth_tau_s + dt)
        watts = np.empty(n)
        watts[0] = levels[0]
        for index in range(1, n):
            watts[index] = watts[index - 1] \
                + alpha * (levels[index] - watts[index - 1])
    else:
        watts = levels.copy()
    return PowerTrace(times, watts, gpu.tdp_watts)

"""Power substrate: GPU power traces, HVDC system, tidal scheduling, PUE."""

from .from_timeline import OP_POWER_FRAC, power_from_timeline
from .gpu_power import (
    GpuSpec,
    Phase,
    PowerTrace,
    inference_request_phases,
    synthesize_trace,
    training_iteration_phases,
)
from .hvdc import (
    AC_UPS_CHAIN,
    HVDC_CHAIN,
    HvdcUnit,
    PowerAllocationError,
    PowerChain,
    RackSpec,
    RenewableMix,
    supply_stability,
)
from .renewables import (
    RenewableGeneration,
    self_consumption,
    size_for_renewable_share,
    solar_curve_mw,
    wind_curve_mw,
)
from .pue import (
    PueReport,
    astral_vs_traditional,
    compute_pue,
    pue_evolution,
)
from .tidal import (
    NightTrainingScheduler,
    TidalProfile,
    daily_inference_power,
    demand_fraction,
)

__all__ = [
    "AC_UPS_CHAIN",
    "GpuSpec",
    "HVDC_CHAIN",
    "HvdcUnit",
    "NightTrainingScheduler",
    "OP_POWER_FRAC",
    "power_from_timeline",
    "Phase",
    "PowerAllocationError",
    "PowerChain",
    "PowerTrace",
    "PueReport",
    "RackSpec",
    "RenewableMix",
    "RenewableGeneration",
    "self_consumption",
    "size_for_renewable_share",
    "solar_curve_mw",
    "wind_curve_mw",
    "TidalProfile",
    "astral_vs_traditional",
    "compute_pue",
    "daily_inference_power",
    "demand_fraction",
    "inference_request_phases",
    "pue_evolution",
    "supply_stability",
    "synthesize_trace",
    "training_iteration_phases",
]

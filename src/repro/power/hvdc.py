"""Distributed HVDC power system vs the traditional AC-UPS chain.

Reproduces the power-management claims of §2.2:

* the AC chain loses energy in multiple conversions around the UPS,
  while HVDC charges the battery directly;
* UPS battery capacity fluctuates 20-30% under LLM training, whereas
  HVDC's finer supply granularity naturally compensates;
* each distributed HVDC unit feeds a row of racks at their combined TDP,
  and any single rack may elastically draw up to 30% above its own TDP
  as long as the row total stays within budget (§5, power allocation);
* renewable sources (rooftop solar, flatland wind) supplement the grid —
  22% of 2024 consumption in the paper's report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = [
    "PowerChain",
    "AC_UPS_CHAIN",
    "HVDC_CHAIN",
    "RackSpec",
    "HvdcUnit",
    "PowerAllocationError",
    "RenewableMix",
]


class PowerAllocationError(RuntimeError):
    """Raised when a power request cannot be satisfied."""


@dataclass(frozen=True)
class PowerChain:
    """A chain of conversion stages from the grid to the server PSU.

    ``stage_efficiencies`` multiply out to the end-to-end efficiency.
    ``battery_fluctuation_frac`` is the capacity wobble the chain passes
    through to the supply under bursty LLM load.
    """

    name: str
    stage_efficiencies: Sequence[float]
    battery_fluctuation_frac: float

    @property
    def efficiency(self) -> float:
        result = 1.0
        for stage in self.stage_efficiencies:
            if not 0.0 < stage <= 1.0:
                raise ValueError(f"invalid stage efficiency: {stage}")
            result *= stage
        return result

    def grid_draw_watts(self, it_watts: float) -> float:
        """Grid power needed to deliver *it_watts* to IT equipment."""
        return it_watts / self.efficiency

    def loss_watts(self, it_watts: float) -> float:
        return self.grid_draw_watts(it_watts) - it_watts


#: Traditional chain: MV transformer, double-conversion UPS (AC->DC->AC),
#: PDU, server PSU (AC->DC).  UPS batteries wobble 20-30% under training.
AC_UPS_CHAIN = PowerChain(
    name="ac-ups",
    stage_efficiencies=(0.985, 0.92, 0.99, 0.94),
    battery_fluctuation_frac=0.25,
)

#: HVDC chain: MV transformer, rectifier, direct battery float, DC PSU.
#: Finer supply granularity compensates the fluctuation (paper: "naturally
#: compensating for battery capacity fluctuations").
HVDC_CHAIN = PowerChain(
    name="hvdc",
    stage_efficiencies=(0.99, 0.98, 0.975),
    battery_fluctuation_frac=0.03,
)


@dataclass
class RackSpec:
    """One rack: its TDP and current draw."""

    name: str
    tdp_watts: float
    draw_watts: float = 0.0


@dataclass
class HvdcUnit:
    """One distributed HVDC unit powering a row of racks plus cooling.

    The unit budget is the row's combined TDP (supply "remains constant,
    approximately their TDP"); an individual rack may elastically borrow
    up to ``elastic_headroom_frac`` above its own TDP if the row total
    permits.
    """

    racks: List[RackSpec]
    elastic_headroom_frac: float = 0.30
    chain: PowerChain = HVDC_CHAIN

    @property
    def budget_watts(self) -> float:
        return sum(rack.tdp_watts for rack in self.racks)

    @property
    def total_draw_watts(self) -> float:
        return sum(rack.draw_watts for rack in self.racks)

    def rack_limit_watts(self, rack: RackSpec) -> float:
        return rack.tdp_watts * (1.0 + self.elastic_headroom_frac)

    def request(self, rack_name: str, watts: float) -> float:
        """Set a rack's draw; raises if either limit would be violated."""
        rack = self._rack(rack_name)
        if watts < 0:
            raise PowerAllocationError(f"negative power request: {watts}")
        if watts > self.rack_limit_watts(rack) + 1e-9:
            raise PowerAllocationError(
                f"rack {rack_name} requested {watts:.0f} W, above its "
                f"elastic limit {self.rack_limit_watts(rack):.0f} W")
        other_draw = self.total_draw_watts - rack.draw_watts
        if other_draw + watts > self.budget_watts + 1e-9:
            raise PowerAllocationError(
                f"row budget {self.budget_watts:.0f} W exceeded: "
                f"{other_draw + watts:.0f} W requested in total")
        rack.draw_watts = watts
        return watts

    def grid_draw_watts(self) -> float:
        return self.chain.grid_draw_watts(self.total_draw_watts)

    def _rack(self, name: str) -> RackSpec:
        for rack in self.racks:
            if rack.name == name:
                return rack
        raise PowerAllocationError(f"unknown rack: {name}")


@dataclass(frozen=True)
class RenewableMix:
    """Green supplemental generation (rooftop solar + flatland wind)."""

    renewable_fraction: float = 0.22   # paper's 2024 report
    grid_carbon_kg_per_kwh: float = 0.58

    def carbon_kg(self, total_kwh: float) -> float:
        """Emissions after renewable offset."""
        if not 0.0 <= self.renewable_fraction <= 1.0:
            raise ValueError("renewable fraction out of range")
        fossil_kwh = total_kwh * (1.0 - self.renewable_fraction)
        return fossil_kwh * self.grid_carbon_kg_per_kwh

    def carbon_saved_kg(self, total_kwh: float) -> float:
        return total_kwh * self.renewable_fraction \
            * self.grid_carbon_kg_per_kwh


def supply_stability(chain: PowerChain, demand_watts: np.ndarray,
                     seed: int = 0) -> np.ndarray:
    """Delivered power under a bursty demand series.

    The battery fluctuation manifests as a multiplicative wobble on the
    deliverable supply; HVDC's small fluctuation keeps delivery tight to
    demand while the AC-UPS chain sags by up to its fluctuation band.
    """
    rng = np.random.default_rng(seed)
    wobble = 1.0 - np.abs(
        rng.normal(0.0, chain.battery_fluctuation_frac / 2,
                   size=len(demand_watts)))
    return demand_watts * np.clip(wobble, 0.0, 1.0)

"""Power Usage Effectiveness roll-up (paper Figure 6).

PUE = total facility power / IT power.  Facility power decomposes into
IT power, power-delivery losses (the AC-UPS or HVDC chain), and cooling
plant power (air, liquid, or integrated).  The paper reports Astral's
average PUE improved by up to 16.34% over the traditional
infrastructure; :func:`astral_vs_traditional` reproduces that
comparison, and :func:`pue_evolution` the whole Figure-6 series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol

from ..cooling.integrated import IntegratedCoolingSystem
from ..cooling.legacy import COOLING_GENERATIONS
from .hvdc import AC_UPS_CHAIN, HVDC_CHAIN, PowerChain

__all__ = [
    "CoolingPlant",
    "compute_pue",
    "PueReport",
    "astral_vs_traditional",
    "pue_evolution",
]

#: Distribution losses on the cooling plant's own feed.
_COOLING_FEED_EFFICIENCY = 0.98
#: Lighting, security, offices — small constant overhead.
_MISC_OVERHEAD_FRAC = 0.02


class CoolingPlant(Protocol):
    """Anything that can report plant power for a heat load."""

    def cooling_power_watts(self, heat_watts: float) -> float: ...


def compute_pue(it_watts: float, cooling_power_watts: float,
                chain: PowerChain) -> float:
    """PUE from IT load, cooling plant power, and the delivery chain."""
    if it_watts <= 0:
        raise ValueError("IT power must be positive")
    grid_it = chain.grid_draw_watts(it_watts)
    grid_cooling = cooling_power_watts / _COOLING_FEED_EFFICIENCY
    misc = it_watts * _MISC_OVERHEAD_FRAC
    return (grid_it + grid_cooling + misc) / it_watts


@dataclass
class PueReport:
    """PUE of one facility configuration."""

    label: str
    pue: float
    chain_name: str
    cooling_label: str


def astral_vs_traditional(it_watts: float = 10e6,
                          liquid_ratio: float = 0.70) -> dict:
    """Compare Astral (HVDC + air-liquid) with the traditional plant.

    Returns the two PUEs and the relative improvement; the paper reports
    an average improvement of 16.34%.
    """
    traditional_cooling = COOLING_GENERATIONS[-1]  # 2018 distributed AHU
    traditional = compute_pue(
        it_watts,
        traditional_cooling.cooling_power_watts(it_watts),
        AC_UPS_CHAIN,
    )
    astral_cooling = IntegratedCoolingSystem()
    astral = compute_pue(
        it_watts,
        astral_cooling.cooling_power_watts(it_watts, liquid_ratio),
        HVDC_CHAIN,
    )
    return {
        "traditional_pue": traditional,
        "astral_pue": astral,
        "improvement_frac": (traditional - astral) / traditional,
    }


def pue_evolution(it_watts: float = 10e6) -> List[PueReport]:
    """Figure 6: PUE across cooling generations, ending with Astral."""
    reports = []
    for generation in COOLING_GENERATIONS:
        reports.append(PueReport(
            label=f"{generation.year} {generation.name}",
            pue=compute_pue(
                it_watts,
                generation.cooling_power_watts(it_watts),
                AC_UPS_CHAIN),
            chain_name=AC_UPS_CHAIN.name,
            cooling_label=generation.name,
        ))
    astral_cooling = IntegratedCoolingSystem()
    reports.append(PueReport(
        label="astral air-liquid + HVDC",
        pue=compute_pue(
            it_watts,
            astral_cooling.cooling_power_watts(it_watts),
            HVDC_CHAIN),
        chain_name=HVDC_CHAIN.name,
        cooling_label="air-liquid integrated",
    ))
    return reports

"""The Astral infrastructure facade: network + monitoring + Seer.

One object wires the three pillars of the paper together the way
Figure 1 draws them:

* the **network architecture** is the foundation (topology + fabric);
* the **monitoring system** runs jobs on it, collects full-stack
  telemetry, and localizes failures;
* **Seer** forecasts operator timelines and supplies the job-level
  thresholds the monitoring analyzer checks against ("We use
  job-related thresholds obtained by fast forecasts using the Seer",
  §3.3) — closing the loop between the components.

Physical-deployment models (power, cooling, PUE) are exposed as
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..monitoring.analyzer.hierarchical import (
    Diagnosis,
    HierarchicalAnalyzer,
)
from ..monitoring.faults import FaultSpec
from ..monitoring.jobsim import JobConfig, JobResult, MonitoredTrainingJob
from ..monitoring.offline import (
    ConfigInconsistency,
    HostConfig,
    HostHealth,
    OfflineToolset,
    StressTestReport,
    WiringViolation,
    verify_configs,
    verify_wiring,
)
from ..network.fabric import Fabric
from ..power.pue import astral_vs_traditional, pue_evolution
from ..seer.forecaster import InferenceForecast, Seer, TrainingForecast
from ..seer.hardware import NetworkSuite
from ..seer.models.config import ModelConfig, ParallelismConfig
from ..topology.astral import AstralParams, build_astral
from .placement import Allocation, GpuAllocator, PlacementPolicy

__all__ = ["AstralInfrastructure", "CommissionReport"]


@dataclass
class CommissionReport:
    """Result of the pre-delivery offline checks (§5)."""

    wiring_violations: List[WiringViolation]
    config_inconsistencies: List[ConfigInconsistency]
    stress_failures: List[StressTestReport]

    @property
    def ready_for_delivery(self) -> bool:
        return not (self.wiring_violations
                    or self.config_inconsistencies
                    or self.stress_failures)


class AstralInfrastructure:
    """Top-level handle on a simulated Astral deployment."""

    def __init__(self, params: Optional[AstralParams] = None,
                 gpu: str = "H800", corrected_seer: bool = True,
                 seed: int = 0):
        self.params = params or AstralParams.small()
        self.topology = build_astral(self.params)
        self.fabric = Fabric(
            self.topology,
            host_line_rate_gbps=self.params.nic_port_gbps,
            solver=self.params.solver)
        self.allocator = GpuAllocator(self.topology)
        self.network_suite = NetworkSuite(
            intra_host_size=self.params.gpus_per_host,
            nic_gbps=self.params.nic_port_gbps * self.params.nic_ports,
            tier3_oversubscription=self.params.tier3_oversubscription,
        )
        self.seer = Seer(gpu=gpu, network=self.network_suite,
                         corrected=corrected_seer, seed=seed)
        self.seed = seed
        self._job_results: Dict[str, JobResult] = {}
        #: fleet change log; `diagnose` falls back to it for anomalies
        #: the hierarchical analyzer cannot pin to a device (§5's
        #: driver-rollout war story).
        from ..monitoring.changelog import MaintenanceLog
        self.maintenance = MaintenanceLog()

    # -- Seer entry points ------------------------------------------------------
    def forecast_training(self, model: ModelConfig,
                          parallel: ParallelismConfig,
                          detail: bool = False) -> TrainingForecast:
        return self.seer.forecast_training(model, parallel,
                                           detail=detail)

    def forecast_inference(self, model: ModelConfig,
                           parallel: ParallelismConfig,
                           batch: int = 8,
                           context_len: Optional[int] = None
                           ) -> InferenceForecast:
        return self.seer.forecast_inference(model, parallel,
                                            batch=batch,
                                            context_len=context_len)

    # -- job lifecycle ------------------------------------------------------------
    def allocate(self, job: str, n_hosts: int,
                 policy: PlacementPolicy = PlacementPolicy.PACKED
                 ) -> Allocation:
        return self.allocator.allocate(job, n_hosts, policy)

    def run_monitored_job(self, job: str,
                          fault: Optional[FaultSpec] = None,
                          iterations: int = 10,
                          collective: str = "allreduce",
                          compute_time_s: float = 0.5,
                          comm_size_bits: float = 8e9) -> JobResult:
        allocation = self.allocator.allocation(job)
        if allocation is None:
            raise ValueError(f"job {job!r} has no allocation")
        config = JobConfig(
            name=job,
            hosts=tuple(allocation.hosts),
            iterations=iterations,
            collective=collective,
            compute_time_s=compute_time_s,
            comm_size_bits=comm_size_bits,
            seed=self.seed,
        )
        result = MonitoredTrainingJob(self.fabric, config,
                                      fault=fault).run()
        self._job_results[job] = result
        return result

    def diagnose(self, job: str,
                 onset_s: Optional[float] = None) -> Diagnosis:
        """Run the hierarchical analyzer with Seer-derived thresholds.

        When the analyzer cannot pin a device root cause, the fleet
        maintenance log is consulted: a single dominant recent change
        covering the affected hosts is surfaced as the suspect
        (``inferred_cause = "suspect-change:<category>"``).
        """
        result = self._job_results.get(job)
        if result is None:
            raise ValueError(f"no monitored run recorded for {job!r}")
        analyzer = HierarchicalAnalyzer(
            result.store,
            expected_compute_s=result.expected_compute_s,
            expected_comm_s=result.expected_comm_s,
            nic_port_gbps=self.params.nic_port_gbps,
        )
        diagnosis = analyzer.diagnose(job)
        if diagnosis.root_cause_device is None \
                and diagnosis.manifestation is not None:
            affected = diagnosis.abnormal_hosts \
                or list(result.config.hosts)
            records = self.maintenance.records()
            if onset_s is None and records:
                # Default onset: just after the newest change, so every
                # logged change is a candidate with full recency.
                onset_s = max(r.time_s for r in records) + 1.0
            suspect = self.maintenance.only_suspicious_change(
                onset_s, affected_hosts=affected) if records else None
            if suspect is not None:
                diagnosis.inferred_cause = (
                    f"suspect-change:{suspect.change.category}")
                diagnosis.recommended_action = (
                    f"roll back / pin: {suspect.change.description}")
                diagnosis.note(
                    "maintenance-record correlation: "
                    + suspect.describe())
        return diagnosis

    # -- cluster scheduling -------------------------------------------------------
    def run_cluster(self, jobs: int = 50, policy: str = "topology",
                    seed: Optional[int] = None,
                    failure_scale: float = 1.0,
                    tidal_cap: bool = True,
                    workload=None,
                    until: Optional[float] = None):
        """Schedule a multi-tenant workload trace onto this fabric.

        Runs the :mod:`repro.cluster` scheduler end to end: a seeded
        arrival trace (``jobs`` jobs, or an explicit ``workload`` list
        of :class:`~repro.cluster.JobSpec`), MTBF-driven failures and
        checkpoint/restart recovery scaled by ``failure_scale`` (0
        disables), and tidal host-cap admission during the 22:00–08:00
        trough.  Same seed => an identical
        :class:`~repro.cluster.ClusterReport`.
        """
        from ..cluster import (
            ClusterScheduler,
            RecoveryManager,
            SchedulingPolicy,
            TidalHostCap,
            WorkloadGenerator,
        )
        seed = self.seed if seed is None else seed
        total_hosts = len(list(self.topology.hosts()))
        if workload is None:
            workload = WorkloadGenerator(seed=seed).generate(
                jobs, max_hosts=total_hosts)
        recovery = None
        if failure_scale > 0:
            recovery = RecoveryManager(
                gpus_per_host=self.params.gpus_per_host,
                failure_scale=failure_scale, seed=seed)
        cap = TidalHostCap(total_hosts=total_hosts) if tidal_cap \
            else None
        scheduler = ClusterScheduler(
            self.topology, workload,
            policy=SchedulingPolicy(policy),
            recovery=recovery, power_cap=cap, seed=seed)
        return scheduler.run(until=until)

    def cluster_contention(self, report, iterations: int = 4):
        """Fabric contention among the scheduler's busiest tenant set.

        Feeds the peak-concurrency placements of a
        :meth:`run_cluster` report into
        :class:`~repro.monitoring.multijob.MultiJobRun`, so the jobs the
        scheduler packed together actually share links; returns the
        per-job outcomes (efficiency < 1 means fabric interference).
        """
        from ..monitoring.multijob import MultiJobRun
        run = MultiJobRun.from_cluster(
            self.fabric, report.peak_concurrent(),
            iterations=iterations, seed=self.seed)
        return run.run()

    # -- offline commissioning ------------------------------------------------------
    def commission(self, hosts: List[str],
                   configs: Optional[Dict[str, HostConfig]] = None,
                   health: Optional[Dict[str, HostHealth]] = None
                   ) -> CommissionReport:
        """Pre-delivery checks: wiring, configuration, stress tests."""
        wiring = verify_wiring(self.topology, self.params)
        wiring = [v for v in wiring if v.host in set(hosts)]
        config_issues = verify_configs(configs or {})
        toolset = OfflineToolset(health or {})
        failures = [report for report in toolset.run_all(hosts)
                    if not report.passed]
        return CommissionReport(
            wiring_violations=wiring,
            config_inconsistencies=config_issues,
            stress_failures=failures,
        )

    # -- fleet health ------------------------------------------------------------
    def pingmesh_sweep(self, max_pairs: int = 200):
        """Active INT-ping sweep over the fabric (§3.2 network layer)."""
        from ..monitoring.pingmesh import Pingmesh
        return Pingmesh(self.fabric).sweep(max_pairs=max_pairs,
                                           seed=self.seed)

    def health_report(self, job: str):
        """Operator-facing roll-up of a monitored job's telemetry."""
        from ..monitoring.report import build_health_report
        result = self._job_results.get(job)
        if result is None:
            raise ValueError(f"no monitored run recorded for {job!r}")
        return build_health_report(result.store)

    def goodput(self, n_gpus: Optional[int] = None,
                localization: str = "automated"):
        """Training goodput at a scale, under a localization regime."""
        from .reliability import training_goodput
        return training_goodput(
            n_gpus if n_gpus is not None else self.params.total_gpus,
            localization=localization)

    # -- facility reports --------------------------------------------------------------
    @staticmethod
    def pue_report() -> dict:
        """Astral vs traditional PUE plus the Figure-6 evolution."""
        comparison = astral_vs_traditional()
        comparison["evolution"] = [
            (report.label, report.pue) for report in pue_evolution()
        ]
        return comparison

    def describe(self) -> dict:
        """Headline scale numbers of this deployment."""
        return {
            "total_gpus": self.params.total_gpus,
            "gpus_per_pod": self.params.gpus_per_pod,
            "rail_size": self.params.rail_size,
            "pods": self.params.pods,
            "devices": len(self.topology.devices),
            "links": len(self.topology.links),
            "tier3_oversubscription":
                self.params.tier3_oversubscription,
        }

"""GPU allocation and job placement on an Astral fabric (§2, flexibility).

The paper's flexibility goal: "allocating GPUs within the same
block/Pod whenever possible to reduce the impact of communication
overhead"; yet "fragmented deployment across Pods often occurs in
production" as tenants grow and shrink.  Both behaviours are modelled:

* :attr:`PlacementPolicy.PACKED` fills block by block within one pod;
* :attr:`PlacementPolicy.FRAGMENTED` round-robins across pods — the
  configuration Figure 2 evaluates against packed placement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..network.collectives import Endpoint
from ..topology.elements import Host, Topology

__all__ = ["PlacementPolicy", "Allocation", "GpuAllocator",
           "AllocationError"]


class AllocationError(RuntimeError):
    """Raised when a request cannot be satisfied."""


class PlacementPolicy(enum.Enum):
    PACKED = "packed"            # same block/pod first
    FRAGMENTED = "fragmented"    # spread across pods


@dataclass
class Allocation:
    """A set of GPUs handed to one job."""

    job: str
    hosts: List[str]
    gpus_per_host: int

    @property
    def n_gpus(self) -> int:
        return len(self.hosts) * self.gpus_per_host

    def endpoints(self, rail: int = 0) -> List[Endpoint]:
        """Same-rank endpoints on one rail (rail-aligned collectives)."""
        return [Endpoint(host, rail) for host in self.hosts]

    def all_endpoints(self) -> List[Endpoint]:
        return [Endpoint(host, rail)
                for host in self.hosts
                for rail in range(self.gpus_per_host)]


class GpuAllocator:
    """Host-granular allocator over a topology."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._free: List[Host] = sorted(
            topology.hosts(), key=lambda h: (h.pod, h.block, h.rank))
        self._allocations: Dict[str, Allocation] = {}

    @property
    def free_hosts(self) -> int:
        return len(self._free)

    def allocate(self, job: str, n_hosts: int,
                 policy: PlacementPolicy = PlacementPolicy.PACKED
                 ) -> Allocation:
        if job in self._allocations:
            raise AllocationError(f"job {job!r} already has GPUs")
        if n_hosts < 1:
            raise AllocationError("must request at least one host")
        if n_hosts > len(self._free):
            raise AllocationError(
                f"requested {n_hosts} hosts, only {len(self._free)} "
                "free")
        if policy is PlacementPolicy.PACKED:
            chosen = self._free[:n_hosts]
        else:
            chosen = self._round_robin_pods(n_hosts)
        for host in chosen:
            self._free.remove(host)
        gpus_per_host = len(chosen[0].gpus) if chosen[0].gpus else 8
        allocation = Allocation(job=job,
                                hosts=[h.name for h in chosen],
                                gpus_per_host=gpus_per_host)
        self._allocations[job] = allocation
        return allocation

    def _round_robin_pods(self, n_hosts: int) -> List[Host]:
        by_pod: Dict[int, List[Host]] = {}
        for host in self._free:
            by_pod.setdefault(host.pod, []).append(host)
        pods = sorted(by_pod)
        chosen: List[Host] = []
        index = 0
        while len(chosen) < n_hosts:
            pod = pods[index % len(pods)]
            if by_pod[pod]:
                chosen.append(by_pod[pod].pop(0))
            elif all(not queue for queue in by_pod.values()):
                break
            index += 1
        return chosen

    def release(self, job: str) -> None:
        allocation = self._allocations.pop(job, None)
        if allocation is None:
            raise AllocationError(f"no allocation for job {job!r}")
        names: Set[str] = set(allocation.hosts)
        restored = [h for h in self.topology.hosts() if h.name in names]
        self._free.extend(restored)
        self._free.sort(key=lambda h: (h.pod, h.block, h.rank))

    def allocation(self, job: str) -> Optional[Allocation]:
        return self._allocations.get(job)

    def pods_spanned(self, job: str) -> int:
        allocation = self._allocations[job]
        pods = {
            self.topology.devices[name].pod
            for name in allocation.hosts
        }
        return len(pods)

"""GPU allocation and job placement on an Astral fabric (§2, flexibility).

The paper's flexibility goal: "allocating GPUs within the same
block/Pod whenever possible to reduce the impact of communication
overhead"; yet "fragmented deployment across Pods often occurs in
production" as tenants grow and shrink.  Both behaviours are modelled:

* :attr:`PlacementPolicy.PACKED` fills block by block within one pod;
* :attr:`PlacementPolicy.FRAGMENTED` round-robins across pods — the
  configuration Figure 2 evaluates against packed placement;
* :attr:`PlacementPolicy.CONTIGUOUS` is the best-fit variant the
  cluster scheduler scores placements with: it picks the *tightest*
  single pod (and, within it, the tightest block) that still fits the
  request, falling back to spanning as few pods as possible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..network.collectives import Endpoint
from ..topology.elements import Host, Topology

__all__ = ["PlacementPolicy", "Allocation", "GpuAllocator",
           "AllocationError"]


class AllocationError(RuntimeError):
    """Raised when a request cannot be satisfied."""


class PlacementPolicy(enum.Enum):
    PACKED = "packed"            # same block/pod first
    FRAGMENTED = "fragmented"    # spread across pods
    CONTIGUOUS = "contiguous"    # best-fit: fewest pods, tightest fit


@dataclass
class Allocation:
    """A set of GPUs handed to one job."""

    job: str
    hosts: List[str]
    gpus_per_host: int

    @property
    def n_gpus(self) -> int:
        return len(self.hosts) * self.gpus_per_host

    def endpoints(self, rail: int = 0) -> List[Endpoint]:
        """Same-rank endpoints on one rail (rail-aligned collectives)."""
        return [Endpoint(host, rail) for host in self.hosts]

    def all_endpoints(self) -> List[Endpoint]:
        return [Endpoint(host, rail)
                for host in self.hosts
                for rail in range(self.gpus_per_host)]


class GpuAllocator:
    """Host-granular allocator over a topology."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._free: List[Host] = sorted(
            topology.hosts(), key=lambda h: (h.pod, h.block, h.rank))
        self._allocations: Dict[str, Allocation] = {}
        self._cordoned: Set[str] = set()

    @property
    def free_hosts(self) -> int:
        return len(self._free)

    @property
    def cordoned_hosts(self) -> List[str]:
        return sorted(self._cordoned)

    def cordon(self, hosts) -> List[str]:
        """Take hosts out of service (a fault's blast radius).

        Free hosts leave the pool immediately; allocated hosts are
        marked and withheld when their job releases them.  Returns the
        newly cordoned names.  Cordoning does not evict jobs — the
        recovery pipeline interrupts/requeues those separately.
        """
        newly = []
        for name in hosts:
            if name in self._cordoned:
                continue
            if not isinstance(self.topology.device(name), Host):
                raise AllocationError(
                    f"cannot cordon non-host device: {name!r}")
            self._cordoned.add(name)
            newly.append(name)
        self._free = [h for h in self._free
                      if h.name not in self._cordoned]
        return sorted(newly)

    def uncordon(self, hosts) -> List[str]:
        """Return repaired hosts to service; idle ones rejoin the free
        pool (allocated ones simply lose the mark).  Returns the names
        actually uncordoned."""
        returned = []
        allocated = {
            name for allocation in self._allocations.values()
            for name in allocation.hosts
        }
        for name in hosts:
            if name not in self._cordoned:
                continue
            self._cordoned.discard(name)
            returned.append(name)
            if name not in allocated:
                self._free.append(self.topology.device(name))
        self._free.sort(key=lambda h: (h.pod, h.block, h.rank))
        return sorted(returned)

    def allocate(self, job: str, n_hosts: int,
                 policy: PlacementPolicy = PlacementPolicy.PACKED
                 ) -> Allocation:
        if job in self._allocations:
            raise AllocationError(f"job {job!r} already has GPUs")
        if n_hosts < 1:
            raise AllocationError("must request at least one host")
        if n_hosts > len(self._free):
            raise AllocationError(
                f"requested {n_hosts} hosts, only {len(self._free)} "
                "free")
        if policy is PlacementPolicy.PACKED:
            chosen = self._free[:n_hosts]
        elif policy is PlacementPolicy.CONTIGUOUS:
            chosen = self._contiguous_best_fit(n_hosts)
        else:
            chosen = self._round_robin_pods(n_hosts)
        for host in chosen:
            self._free.remove(host)
        gpus_per_host = len(chosen[0].gpus) if chosen[0].gpus else 8
        allocation = Allocation(job=job,
                                hosts=[h.name for h in chosen],
                                gpus_per_host=gpus_per_host)
        self._allocations[job] = allocation
        return allocation

    def _round_robin_pods(self, n_hosts: int) -> List[Host]:
        by_pod: Dict[int, List[Host]] = {}
        for host in self._free:
            by_pod.setdefault(host.pod, []).append(host)
        pods = sorted(by_pod)
        chosen: List[Host] = []
        index = 0
        while len(chosen) < n_hosts:
            pod = pods[index % len(pods)]
            if by_pod[pod]:
                chosen.append(by_pod[pod].pop(0))
            elif all(not queue for queue in by_pod.values()):
                break
            index += 1
        return chosen

    def _contiguous_best_fit(self, n_hosts: int) -> List[Host]:
        """Best-fit placement that minimizes pods (then blocks) spanned."""
        chosen = self._best_fit_groups(
            self._group_free(lambda h: h.pod), n_hosts)
        return chosen

    def _group_free(self, key) -> Dict[int, List[Host]]:
        groups: Dict[int, List[Host]] = {}
        for host in self._free:
            groups.setdefault(key(host), []).append(host)
        return groups

    def _best_fit_groups(self, by_pod: Dict[int, List[Host]],
                         n_hosts: int) -> List[Host]:
        fitting = [(len(hosts), pod) for pod, hosts in by_pod.items()
                   if len(hosts) >= n_hosts]
        if fitting:
            _, pod = min(fitting)
            return self._best_fit_blocks(by_pod[pod], n_hosts)
        # No single pod fits: span as few pods as possible, taking the
        # fullest pods first so later requests find intact pods.
        chosen: List[Host] = []
        order = sorted(by_pod.items(),
                       key=lambda item: (-len(item[1]), item[0]))
        for _, hosts in order:
            chosen.extend(hosts[:n_hosts - len(chosen)])
            if len(chosen) == n_hosts:
                break
        return chosen

    @staticmethod
    def _best_fit_blocks(hosts: List[Host], n_hosts: int) -> List[Host]:
        by_block: Dict[int, List[Host]] = {}
        for host in hosts:
            by_block.setdefault(host.block, []).append(host)
        fitting = [(len(group), block)
                   for block, group in by_block.items()
                   if len(group) >= n_hosts]
        if fitting:
            _, block = min(fitting)
            return by_block[block][:n_hosts]
        chosen: List[Host] = []
        order = sorted(by_block.items(),
                       key=lambda item: (-len(item[1]), item[0]))
        for _, group in order:
            chosen.extend(group[:n_hosts - len(chosen)])
            if len(chosen) == n_hosts:
                break
        return chosen

    def free_hosts_by_pod(self) -> Dict[int, List[str]]:
        """Free host names grouped by pod — the fragmentation view the
        cluster scheduler scores placements against."""
        view: Dict[int, List[str]] = {}
        for host in self._free:
            view.setdefault(host.pod, []).append(host.name)
        return view

    def release(self, job: str) -> List[str]:
        """Free a job's hosts; returns the freed host names.

        Cordoned hosts stay out of the free pool until uncordoned.
        """
        allocation = self._allocations.pop(job, None)
        if allocation is None:
            raise AllocationError(f"no allocation for job {job!r}")
        names: Set[str] = set(allocation.hosts) - self._cordoned
        restored = [h for h in self.topology.hosts() if h.name in names]
        self._free.extend(restored)
        self._free.sort(key=lambda h: (h.pod, h.block, h.rank))
        return list(allocation.hosts)

    def allocation(self, job: str) -> Optional[Allocation]:
        return self._allocations.get(job)

    def pods_spanned(self, job: str) -> int:
        allocation = self._allocations[job]
        pods = {
            self.topology.devices[name].pod
            for name in allocation.hosts
        }
        return len(pods)

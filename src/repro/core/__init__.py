"""Public facade tying the Astral pillars together."""

from .infrastructure import AstralInfrastructure, CommissionReport
from .reliability import (
    CheckpointPolicy,
    FailureModel,
    GoodputReport,
    training_goodput,
)
from .placement import (
    Allocation,
    AllocationError,
    GpuAllocator,
    PlacementPolicy,
)

__all__ = [
    "Allocation",
    "AllocationError",
    "AstralInfrastructure",
    "CheckpointPolicy",
    "CommissionReport",
    "FailureModel",
    "GoodputReport",
    "training_goodput",
    "GpuAllocator",
    "PlacementPolicy",
]

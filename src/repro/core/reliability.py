"""Training goodput under failures: what MTTLF reductions buy.

The paper motivates the monitoring system with scale economics: "as LLM
training scales, failures become increasingly disruptive, slowing down
the entire job, possibly involving tens of thousands of GPUs."  This
module makes that argument quantitative:

* a :class:`FailureModel` composes per-component failure rates into a
  cluster-level MTBF that shrinks linearly with scale;
* a :class:`CheckpointPolicy` carries checkpoint/restart costs, with
  the Young/Daly optimal checkpoint interval;
* :func:`training_goodput` folds in the time a failure steals — lost
  work since the last checkpoint, *localization* (the MTTLF the
  hierarchical analyzer reduces from days to minutes), and restart —
  yielding the fraction of wall-clock spent making forward progress.

Comparing goodput with manual vs automated localization reproduces the
operational payoff of §3: at large scale, MTTLF dominates the failure
penalty, so the 12-25x reductions translate directly into training
throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..monitoring.faults import Manifestation
from ..monitoring.mttlf import MttlfModel

__all__ = [
    "FailureModel",
    "CheckpointPolicy",
    "GoodputReport",
    "failure_penalty_s",
    "training_goodput",
]


def failure_penalty_s(interval_s: float, locate_hours: float,
                      restart_s: float) -> float:
    """Expected wall-clock cost of one failure, in seconds.

    Lost work since the last checkpoint (half an interval in
    expectation) + fault localization + restart.  Single source of
    truth shared by the analytic :func:`training_goodput` model and the
    event-driven resilience campaigns, so measured and predicted
    penalties are directly comparable.
    """
    lost = 0.0 if math.isinf(interval_s) else interval_s / 2.0
    return lost + locate_hours * 3600.0 + restart_s


@dataclass(frozen=True)
class FailureModel:
    """Per-component failure rates composed into cluster MTBF.

    Defaults put a 10K-GPU job at roughly one failure every couple of
    days — the regime large production runs report.
    """

    gpu_failures_per_hour: float = 1.2e-6
    host_failures_per_hour: float = 4.0e-6      # CPU/mem/PCIe/env
    nic_failures_per_hour: float = 1.5e-6
    link_failures_per_hour: float = 0.8e-6      # optics, flaps
    switch_failures_per_hour: float = 2.0e-6

    def cluster_failure_rate_per_hour(self, n_gpus: int,
                                      gpus_per_host: int = 8,
                                      links_per_gpu: float = 2.0,
                                      gpus_per_switch: float = 64.0
                                      ) -> float:
        if n_gpus < 0:
            raise ValueError("GPU count cannot be negative")
        hosts = n_gpus / gpus_per_host
        links = n_gpus * links_per_gpu
        switches = n_gpus / gpus_per_switch
        return (n_gpus * self.gpu_failures_per_hour
                + hosts * self.host_failures_per_hour
                + n_gpus * self.nic_failures_per_hour
                + links * self.link_failures_per_hour
                + switches * self.switch_failures_per_hour)

    def mtbf_hours(self, n_gpus: int, **kwargs) -> float:
        rate = self.cluster_failure_rate_per_hour(n_gpus, **kwargs)
        return float("inf") if rate == 0 else 1.0 / rate


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint/restart economics."""

    checkpoint_write_s: float = 120.0
    restart_s: float = 600.0        # scheduling + load + NCCL re-init
    interval_s: Optional[float] = None   # None => Young/Daly optimal

    def optimal_interval_s(self, mtbf_hours: float) -> float:
        """Young's approximation: sqrt(2 * C * MTBF)."""
        if mtbf_hours <= 0:
            raise ValueError("MTBF must be positive")
        if math.isinf(mtbf_hours):
            return float("inf")
        return math.sqrt(2.0 * self.checkpoint_write_s
                         * mtbf_hours * 3600.0)

    def effective_interval_s(self, mtbf_hours: float) -> float:
        if self.interval_s is not None:
            if self.interval_s <= 0:
                raise ValueError("checkpoint interval must be positive")
            return self.interval_s
        return self.optimal_interval_s(mtbf_hours)


@dataclass
class GoodputReport:
    """Breakdown of where wall-clock time goes."""

    n_gpus: int
    mtbf_hours: float
    checkpoint_interval_s: float
    localization_hours_per_failure: float
    goodput_fraction: float
    checkpoint_overhead_fraction: float
    failure_overhead_fraction: float

    @property
    def wasted_fraction(self) -> float:
        return 1.0 - self.goodput_fraction


def training_goodput(n_gpus: int,
                     failure_model: Optional[FailureModel] = None,
                     checkpoint: Optional[CheckpointPolicy] = None,
                     mttlf: Optional[MttlfModel] = None,
                     localization: str = "automated") -> GoodputReport:
    """Fraction of wall-clock doing useful training at a given scale.

    ``localization`` selects the fault-localization regime: "automated"
    (the hierarchical analyzer, minutes) or "manual" (the
    pre-deployment workflows, hours to days).  The per-failure penalty
    is lost work (half a checkpoint interval in expectation) plus
    localization plus restart.
    """
    if localization not in ("automated", "manual"):
        raise ValueError(
            f"localization must be automated or manual: {localization}")
    failure_model = failure_model or FailureModel()
    checkpoint = checkpoint or CheckpointPolicy()
    mttlf = mttlf or MttlfModel(n_hosts=max(2, n_gpus // 8),
                                jitter_frac=0.0)

    mtbf_hours = failure_model.mtbf_hours(n_gpus)
    interval_s = checkpoint.effective_interval_s(mtbf_hours)

    # Failure mix from the paper's taxonomy; hang/slow faults dominate
    # localization cost, stop faults the count.
    mix = {
        Manifestation.FAIL_STOP: 0.66,
        Manifestation.FAIL_HANG: 0.17,
        Manifestation.FAIL_SLOW: 0.13,
        Manifestation.FAIL_ON_START: 0.04,
    }
    if localization == "automated":
        locate_hours = sum(
            weight * mttlf.automated_hours(manifestation)
            for manifestation, weight in mix.items())
    else:
        locate_hours = sum(
            weight * mttlf.manual_hours(manifestation)
            for manifestation, weight in mix.items())

    # Per failure: half an interval of lost work + locate + restart.
    per_failure_s = failure_penalty_s(interval_s, locate_hours,
                                      checkpoint.restart_s)
    failures_per_s = 0.0 if math.isinf(mtbf_hours) \
        else 1.0 / (mtbf_hours * 3600.0)
    failure_overhead = per_failure_s * failures_per_s

    checkpoint_overhead = 0.0 if math.isinf(interval_s) \
        else checkpoint.checkpoint_write_s / interval_s

    denominator = 1.0 + failure_overhead + checkpoint_overhead
    goodput = 1.0 / denominator
    return GoodputReport(
        n_gpus=n_gpus,
        mtbf_hours=mtbf_hours,
        checkpoint_interval_s=interval_s,
        localization_hours_per_failure=locate_hours,
        goodput_fraction=goodput,
        checkpoint_overhead_fraction=checkpoint_overhead / denominator,
        failure_overhead_fraction=failure_overhead / denominator,
    )

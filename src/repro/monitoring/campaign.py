"""Fault-injection campaigns with localization scoring.

The paper's Figure 10 summarizes one year of production faults.  A
:class:`FaultCampaign` compresses that year: it samples faults from the
Figure-7 taxonomy, runs a monitored training job per fault on a fresh
fabric, diagnoses each from telemetry alone, *scores* the diagnosis
against the injected ground truth, and rolls localization times into an
MTTLF report — giving both the Figure-10 series and a localization
accuracy the paper's narrative claims but does not plot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..network.collectives import Endpoint, ring_allreduce_flows
from ..network.fabric import Fabric
from ..network.flows import reset_flow_ids
from ..topology.astral import AstralParams, build_astral
from ..topology.elements import DeviceKind
from .analyzer.hierarchical import Diagnosis, HierarchicalAnalyzer
from .faults import (
    FaultSpec,
    Manifestation,
    RootCause,
    sample_faults,
)
from .jobsim import JobConfig, JobResult, MonitoredTrainingJob
from .mttlf import MttlfModel, MttlfReport

__all__ = ["CampaignRecord", "CampaignResult", "FaultCampaign"]

#: root causes whose diagnosis matches on the cause *label* rather than
#: a specific device (job-wide software problems).
_JOB_SCOPED = {RootCause.USER_CODE}


@dataclass
class CampaignRecord:
    """One injected fault and how the analyzer handled it."""

    fault: FaultSpec
    result: JobResult
    diagnosis: Diagnosis
    #: endpoint device names of the faulted link (for link faults).
    link_endpoints: tuple = ()

    @property
    def manifestation_detected(self) -> bool:
        return self.diagnosis.manifestation is self.fault.manifestation

    @property
    def localized_correctly(self) -> bool:
        """Did the drill-down land on the injected root cause?"""
        fault = self.fault
        diagnosis = self.diagnosis
        if fault.cause in _JOB_SCOPED:
            return diagnosis.inferred_cause == fault.cause.value
        cause_ok = diagnosis.inferred_cause == fault.cause.value
        if fault.cause is RootCause.CCL_BUG:
            # Library bugs have no per-device root; naming the hung
            # host among the abnormal set is the correct outcome
            # (the fix is an offline reproduction, §3.3).
            return cause_ok and (
                diagnosis.root_cause_device == fault.target
                or fault.target in diagnosis.abnormal_hosts)
        if fault.profile.target_kind == "link":
            # Blaming the link itself or either endpoint counts.
            acceptable = {fault.target, *self.link_endpoints}
            return cause_ok \
                and diagnosis.root_cause_device in acceptable
        return cause_ok \
            and diagnosis.root_cause_device == fault.target


@dataclass
class CampaignResult:
    """Aggregate of a whole campaign."""

    records: List[CampaignRecord] = field(default_factory=list)
    mttlf: MttlfReport = field(default_factory=MttlfReport)

    @property
    def n_faults(self) -> int:
        return len(self.records)

    @property
    def detection_rate(self) -> float:
        if not self.records:
            return 1.0
        return sum(r.manifestation_detected for r in self.records) \
            / len(self.records)

    @property
    def localization_accuracy(self) -> float:
        if not self.records:
            return 1.0
        return sum(r.localized_correctly for r in self.records) \
            / len(self.records)

    def by_manifestation(self) -> Dict[Manifestation, List[
            CampaignRecord]]:
        buckets: Dict[Manifestation, List[CampaignRecord]] = {}
        for record in self.records:
            buckets.setdefault(record.fault.manifestation,
                               []).append(record)
        return buckets


class FaultCampaign:
    """Run sampled faults through monitored jobs and score diagnoses."""

    def __init__(self, params: Optional[AstralParams] = None,
                 job_hosts: int = 6, iterations: int = 5,
                 mttlf_cluster_hosts: int = 64, seed: int = 0):
        self.params = params or AstralParams.small()
        self.job_hosts = job_hosts
        self.iterations = iterations
        self.seed = seed
        self.mttlf_model = MttlfModel(n_hosts=mttlf_cluster_hosts,
                                      jitter_frac=0.10, seed=seed)

    # -- target pools -----------------------------------------------------
    def _job_context(self):
        """Fresh fabric + job host list + fault target pools."""
        reset_flow_ids()
        topology = build_astral(self.params)
        fabric = Fabric(topology,
                        host_line_rate_gbps=self.params.nic_port_gbps,
                        solver=self.params.solver)
        # Interleave blocks so the ring has cross-block (ToR-Agg-ToR)
        # legs — otherwise no fabric link is ever on a job path.
        ordered = sorted(topology.hosts(),
                         key=lambda h: (h.rank, h.pod, h.block))
        hosts = [h.name for h in ordered][:self.job_hosts]
        flows = ring_allreduce_flows(
            [Endpoint(h, 0) for h in hosts], 8e9)
        switch_pool: List[str] = []
        link_pool: List[int] = []
        for flow in flows:
            path = fabric.router.path(flow)
            for device in path.devices[1:-1]:
                if topology.devices[device].kind in (DeviceKind.TOR,
                                                     DeviceKind.AGG):
                    switch_pool.append(device)
            for index, link_id in enumerate(path.link_ids):
                # Only switch-to-switch segments can "fail" as fabric
                # links; host links are NIC territory.
                if 0 < index < len(path.link_ids) - 1:
                    link_pool.append(link_id)
        reset_flow_ids()
        if not link_pool:
            link_pool = [path.link_ids[0]]
        return fabric, hosts, sorted(set(switch_pool)), \
            sorted(set(link_pool))

    # -- farm fan-out --------------------------------------------------------
    @staticmethod
    def farm_sweep(seeds, n_faults: int = 5, job_hosts: int = 6,
                   iterations: int = 5, workers: int = 1,
                   use_cache: bool = False,
                   cache_dir: Optional[str] = None
                   ) -> List[Dict[str, object]]:
        """Run one scored campaign per seed across farm workers.

        Each seed becomes a ``monitoring-campaign``
        :class:`~repro.farm.spec.TaskSpec`; results are summary dicts
        (detection rate, localization accuracy, per-record scoring) in
        seed order.  Parallel output is bit-identical to serial — the
        campaign threads every draw through its explicit seed.
        """
        from ..farm import ResultCache, run_sweep, seed_specs
        specs = seed_specs(
            "monitoring-campaign",
            base={"n_faults": n_faults, "job_hosts": job_hosts,
                  "iterations": iterations},
            seeds=list(seeds))
        cache = ResultCache(root=cache_dir) if cache_dir else None
        sweep = run_sweep(specs, workers=workers,
                          use_cache=use_cache, cache=cache)
        failed = [result for result in sweep.results if not result.ok]
        if failed:
            raise RuntimeError(
                f"monitoring campaigns failed: "
                f"{[r.spec.params['seed'] for r in failed]}; first "
                f"error: {failed[0].error}")
        return [result.result for result in sweep.results]

    # -- campaign ------------------------------------------------------------
    def run(self, n_faults: int) -> CampaignResult:
        result = CampaignResult()
        rng = random.Random(self.seed)
        for index in range(n_faults):
            fabric, hosts, switches, links = self._job_context()
            fault = sample_faults(
                1, seed=rng.randrange(1 << 30), hosts=hosts,
                switches=switches, link_ids=links,
                iterations=self.iterations)[0]
            config = JobConfig(hosts=tuple(hosts),
                               iterations=self.iterations,
                               seed=self.seed + index)
            job_result = MonitoredTrainingJob(fabric, config,
                                              fault=fault).run()
            analyzer = HierarchicalAnalyzer(
                job_result.store,
                expected_compute_s=job_result.expected_compute_s,
                expected_comm_s=job_result.expected_comm_s,
                nic_port_gbps=self.params.nic_port_gbps)
            diagnosis = analyzer.diagnose(config.name)
            link_endpoints = ()
            if fault.profile.target_kind == "link":
                link = fabric.topology.links[
                    int(fault.target.split(":", 1)[1])]
                link_endpoints = (link.a.device, link.b.device)
            result.records.append(CampaignRecord(
                fault=fault, result=job_result, diagnosis=diagnosis,
                link_endpoints=link_endpoints))
            result.mttlf.samples.append(self.mttlf_model.sample(
                fault.manifestation, diagnosis))
        return result

"""INT-armed pingmesh: active all-pairs probing (§3.2, network layer).

Astral combines passive sFlow with INT-armed ping packets that measure
hop-by-hop connectivity and latency (after Pingmesh [23] and
R-Pingmesh [31]).  :class:`Pingmesh` probes a (sampled) set of host
pairs over the simulated fabric: each probe resolves the ECMP path and
reads per-hop forwarding latency from the congestion state, yielding a
connectivity/latency matrix that flags black holes and hotspots
before any training job trips over them.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..network.congestion import CongestionModel
from ..network.fabric import Fabric, LinkDir
from ..network.flows import Flow, make_flow
from ..network.routing import RoutingError

__all__ = ["ProbeResult", "PingmeshReport", "Pingmesh"]


@dataclass(frozen=True)
class ProbeResult:
    """One src-rail->dst probe."""

    src: str
    dst: str
    rail: int
    reachable: bool
    rtt_us: float = float("inf")
    hops: int = 0
    worst_hop_us: float = 0.0
    worst_hop_device: Optional[str] = None


@dataclass
class PingmeshReport:
    """All probes of one sweep."""

    probes: List[ProbeResult] = field(default_factory=list)

    @property
    def unreachable(self) -> List[ProbeResult]:
        return [p for p in self.probes if not p.reachable]

    def hotspots(self, latency_threshold_us: float = 50.0
                 ) -> List[ProbeResult]:
        return sorted(
            (p for p in self.probes
             if p.reachable and p.worst_hop_us > latency_threshold_us),
            key=lambda p: -p.worst_hop_us)

    @property
    def reachability(self) -> float:
        if not self.probes:
            return 1.0
        return sum(p.reachable for p in self.probes) / len(self.probes)

    def mean_rtt_us(self) -> float:
        values = [p.rtt_us for p in self.probes if p.reachable]
        return sum(values) / len(values) if values else float("inf")


class Pingmesh:
    """Active prober over a fabric."""

    def __init__(self, fabric: Fabric,
                 congestion: Optional[CongestionModel] = None):
        self.fabric = fabric
        self.congestion = congestion or CongestionModel()

    def probe(self, src: str, dst: str, rail: int = 0,
              background: Optional[List[Flow]] = None) -> ProbeResult:
        """One INT ping; hop latencies reflect the background load."""
        flow = make_flow(src, dst, rail=rail, size_bits=1.0)
        try:
            path = self.fabric.router.path(flow)
        except RoutingError:
            return ProbeResult(src=src, dst=dst, rail=rail,
                               reachable=False)
        hop_states: Dict[LinkDir, float] = {}
        if background:
            loads = self.fabric.offered_loads(background)
            for key, state in self.congestion.evaluate_all(
                    loads).items():
                hop_states[key] = state.hop_latency_us
        base = self.congestion.config.base_hop_latency_us
        latencies = []
        worst_device = None
        worst = 0.0
        for device, link_id in zip(path.devices, path.link_ids):
            link = self.fabric.topology.links[link_id]
            key = (link_id, link.a.device == device)
            latency = hop_states.get(key, base)
            latencies.append(latency)
            if latency > worst:
                worst = latency
                worst_device = device
        return ProbeResult(
            src=src, dst=dst, rail=rail, reachable=True,
            rtt_us=2.0 * sum(latencies), hops=path.hops,
            worst_hop_us=worst, worst_hop_device=worst_device)

    def census(self, hosts: Optional[List[str]] = None
               ) -> Dict[str, int]:
        """Healthy fabric uplinks per host (NIC carrier sensing).

        A NIC whose link dies reports loss-of-carrier immediately —
        the host-side telemetry that, compared against a baseline
        census, is the recovery pipeline's first detection signal for
        structural faults (a dead ToR drops one uplink on every
        attached host at once; a dead NIC drops only its own).
        """
        topo = self.fabric.topology
        if hosts is None:
            hosts = [h.name for h in topo.hosts()]
        return {
            host: sum(1 for link in topo.links_of(host) if link.healthy)
            for host in hosts
        }

    def sweep(self, hosts: Optional[List[str]] = None, rail: int = 0,
              max_pairs: int = 200, seed: int = 0,
              background: Optional[List[Flow]] = None
              ) -> PingmeshReport:
        """Probe (a sample of) all host pairs."""
        if hosts is None:
            hosts = [h.name for h in self.fabric.topology.hosts()]
        pairs = [(a, b) for a, b in itertools.permutations(hosts, 2)]
        if len(pairs) > max_pairs:
            rng = random.Random(seed)
            pairs = rng.sample(pairs, max_pairs)
        report = PingmeshReport()
        for src, dst in pairs:
            report.probes.append(
                self.probe(src, dst, rail=rail, background=background))
        return report

"""Cross-host (horizontal) correlation analysis (§3.1, §3.3).

Threshold-based alerts on individual metrics are brittle across training
scenarios; the paper's system instead compares a metric *horizontally
across hosts*, flagging the nodes that deviate from the majority
pattern.  The implementation uses robust statistics (median and median
absolute deviation) so a single bad host cannot drag the baseline.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["robust_zscores", "find_outliers", "CrossHostComparison"]

#: scale factor making MAD a consistent sigma estimator for normals.
_MAD_SCALE = 1.4826


def robust_zscores(values_by_key: Dict[str, float]) -> Dict[str, float]:
    """Median/MAD z-scores; 0 everywhere when all values agree."""
    if not values_by_key:
        return {}
    keys = list(values_by_key)
    values = np.array([values_by_key[k] for k in keys], dtype=float)
    median = np.median(values)
    mad = np.median(np.abs(values - median)) * _MAD_SCALE
    if mad == 0.0:
        # Degenerate case: at least half the hosts agree exactly.  Fall
        # back to the mean absolute deviation — unlike the standard
        # deviation it is not dominated by the very outlier we are
        # trying to flag.
        mean_ad = float(np.mean(np.abs(values - median)))
        if mean_ad == 0.0:
            return {k: 0.0 for k in keys}
        mad = mean_ad
    return {k: float((values_by_key[k] - median) / mad) for k in keys}


def find_outliers(values_by_key: Dict[str, float],
                  threshold: float = 3.5,
                  direction: str = "high",
                  min_relative: float = 0.1) -> List[str]:
    """Keys whose robust z-score exceeds *threshold*.

    ``direction`` selects one-sided ("high"/"low") or two-sided ("both")
    testing — a lagging host is a *high* outlier in time metrics.
    ``min_relative`` additionally requires the deviation to be at least
    that fraction of the median: statistically significant but
    operationally irrelevant wobbles (e.g. 1% compute-time jitter with
    a tiny MAD) must not raise alarms.
    """
    scores = robust_zscores(values_by_key)
    values = values_by_key
    median = float(np.median(list(values.values()))) if values else 0.0
    floor = abs(median) * min_relative

    def big_enough(key: str) -> bool:
        return abs(values[key] - median) >= floor

    if direction == "high":
        flagged = {k for k, z in scores.items()
                   if z > threshold and big_enough(k)}
    elif direction == "low":
        flagged = {k for k, z in scores.items()
                   if z < -threshold and big_enough(k)}
    elif direction == "both":
        flagged = {k for k, z in scores.items()
                   if abs(z) > threshold and big_enough(k)}
    else:
        raise ValueError(f"unknown direction: {direction}")
    return sorted(flagged)


class CrossHostComparison:
    """Convenience wrapper for comparing one metric across hosts."""

    def __init__(self, threshold: float = 3.5):
        self.threshold = threshold

    def lagging_hosts(self, metric_by_host: Dict[str, float]
                      ) -> List[str]:
        """Hosts significantly *slower* than the majority."""
        return find_outliers(metric_by_host, self.threshold,
                             direction="high")

    def deviating_hosts(self, metric_by_host: Dict[str, float]
                        ) -> List[str]:
        return find_outliers(metric_by_host, self.threshold,
                             direction="both")

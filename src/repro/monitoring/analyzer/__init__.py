"""Cross-host and hierarchical correlation analysis."""

from .cross_host import CrossHostComparison, find_outliers, robust_zscores
from .hierarchical import Diagnosis, HierarchicalAnalyzer
from .int_hotspot import Hotspot, find_hotspots
from .path_overlap import best_failure_point, overlap_devices, overlap_links
from .timeseries import SlidingWindowDetector, TimeSeriesAlert

__all__ = [
    "CrossHostComparison",
    "Diagnosis",
    "HierarchicalAnalyzer",
    "Hotspot",
    "best_failure_point",
    "find_hotspots",
    "find_outliers",
    "overlap_devices",
    "overlap_links",
    "robust_zscores",
    "SlidingWindowDetector",
    "TimeSeriesAlert",
]

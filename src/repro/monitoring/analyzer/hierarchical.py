"""The hierarchical correlation algorithm (paper §3.3).

Starts at the application layer (closest to user perception), detects
and classifies the task-level anomaly, then drills down:

* **Branch #1 — computation anomalies**: a single abnormal host is
  correlated with its physical-layer logs; a fatal match triggers
  isolate/checkpoint/restart.  Anomalies on *multiple* hosts indicate
  software or user code, raising an alarm for manual intervention.
* **Branch #2 — communication anomalies**: errCQE events and QP rate
  samples are fetched through the maintained job metadata; the
  five-tuples lead to sFlow paths and INT pings, where two tools apply:
  path overlapping for failure points and INT per-hop delay for
  congestion hotspots, confirmed against switch counters (PFC/drops).

The analyzer consumes only the :class:`TelemetryStore` — never the
simulator's ground truth — so its verdicts can be scored against the
injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..evolving import DetectorRegistry, default_registry
from ..faults import Manifestation
from ..telemetry import Layer, TelemetryStore
from .cross_host import CrossHostComparison
from .int_hotspot import find_hotspots
from .path_overlap import best_failure_point
from .timeseries import SlidingWindowDetector

__all__ = ["Diagnosis", "HierarchicalAnalyzer"]

#: QP rate below this fraction of the NIC port rate is abnormal (§3.3
#: step 2: "QP rates below 50% of the designated link bandwidth").
_QP_RATE_FRACTION = 0.5


@dataclass
class Diagnosis:
    """Output of one analysis pass over a job's telemetry."""

    job: str
    manifestation: Optional[Manifestation] = None
    anomaly_kind: Optional[str] = None   # "computation" | "communication"
    abnormal_hosts: List[str] = field(default_factory=list)
    root_cause_device: Optional[str] = None
    root_cause_layer: Optional[Layer] = None
    inferred_cause: str = "unknown"
    recommended_action: str = "continue monitoring"
    evidence: List[str] = field(default_factory=list)
    drill_down_steps: int = 0

    @property
    def localized(self) -> bool:
        return self.root_cause_device is not None \
            or self.inferred_cause not in ("unknown",)

    def note(self, message: str) -> None:
        self.evidence.append(message)
        self.drill_down_steps += 1


#: Keyword -> inferred root-cause label, for fatal-log matching.
_LOG_SIGNATURES = {
    "Xid": "gpu-hardware",
    "ECC": "memory",
    "env-check": "host-env-config",
    "CQE error": "nic-error",
    "optical": "optical-fiber",
    "carrier transitions": "link-flap",
    "neighbor mismatch": "wire-connection",
    "mismatch on": "switch-config",
    "drop counter": "switch-bug",
    "nccl: WARN": "ccl-bug",
    "unhandled exception": "user-code",
}


class HierarchicalAnalyzer:
    """Cross-host + hierarchical correlation over a telemetry store."""

    def __init__(self, store: TelemetryStore,
                 expected_compute_s: float,
                 expected_comm_s: float,
                 nic_port_gbps: float = 200.0,
                 threshold_factor: float = 1.5,
                 outlier_z: float = 3.5,
                 detectors: Optional[DetectorRegistry] = None):
        self.store = store
        #: job-level thresholds from the Seer fast forecast (§3.3:
        #: "job-related thresholds obtained by fast forecasts").
        self.expected_compute_s = expected_compute_s
        self.expected_comm_s = expected_comm_s
        self.nic_port_gbps = nic_port_gbps
        self.threshold_factor = threshold_factor
        self.cross_host = CrossHostComparison(threshold=outlier_z)
        #: pluggable physical-layer detectors (Appendix D): new anomaly
        #: classes are patched in here without touching upper layers.
        self.detectors = detectors if detectors is not None \
            else default_registry()

    # -- entry point -------------------------------------------------------
    def diagnose(self, job: str) -> Diagnosis:
        diagnosis = Diagnosis(job=job)
        records = self.store.timeline_for(job)
        if not records:
            diagnosis.note("no application-layer telemetry for job")
            return diagnosis
        last_iteration = max(r.iteration for r in records)
        latest = [r for r in records if r.iteration == last_iteration]
        diagnosis.note(
            f"application layer: inspecting iteration {last_iteration} "
            f"({len(latest)} hosts)")

        self._detect_manifestation(diagnosis, job, latest)
        self._classify_anomaly(diagnosis, latest)

        if diagnosis.anomaly_kind == "computation":
            self._branch_computation(diagnosis, latest)
        elif diagnosis.anomaly_kind == "communication":
            self._branch_communication(diagnosis, job, latest)
        return diagnosis

    # -- step 1: application-layer detection ---------------------------------
    def _detect_manifestation(self, diagnosis: Diagnosis, job: str,
                              latest) -> None:
        reports = [r for r in self.store.iterations if r.job == job]
        if not reports:
            return
        last = max(reports, key=lambda r: r.iteration)
        # started == 0: the process died (crash); started > finished:
        # the collective never completed (hang) — §3.2 app layer.
        crashed = [r.host for r in latest if r.started == 0]
        hung = [r.host for r in latest if r.incomplete]
        if not last.completed and crashed:
            diagnosis.manifestation = (
                Manifestation.FAIL_ON_START if last.iteration == 0
                else Manifestation.FAIL_STOP)
            diagnosis.note(
                f"iteration {last.iteration} did not complete; "
                f"{len(crashed)} host(s) stopped")
        elif not last.completed and hung:
            diagnosis.manifestation = Manifestation.FAIL_HANG
            diagnosis.note(
                f"iteration {last.iteration} stalled: work requests "
                f"started but unfinished on {len(hung)} host(s)")
        elif not last.completed:
            diagnosis.manifestation = Manifestation.FAIL_STOP
            diagnosis.note(f"iteration {last.iteration} aborted")
        else:
            comp_thr = self.expected_compute_s * self.threshold_factor
            comm_thr = max(self.expected_comm_s * self.threshold_factor,
                           self.expected_comm_s + 0.05)
            slow = [r for r in latest
                    if r.compute_time_s > comp_thr
                    or r.comm_time_s > comm_thr]
            if slow:
                diagnosis.manifestation = Manifestation.FAIL_SLOW
                diagnosis.note(
                    f"{len(slow)} host(s) exceed Seer-derived "
                    f"thresholds (compute > {comp_thr:.3f}s or "
                    f"comm > {comm_thr:.3f}s)")
            else:
                # History-based check: catches drifts that stay under
                # the (generous) Seer threshold.
                series = [r.iteration_time_s
                          for r in sorted(reports,
                                          key=lambda r: r.iteration)]
                alert = SlidingWindowDetector().latest(series)
                if alert is not None:
                    diagnosis.manifestation = Manifestation.FAIL_SLOW
                    diagnosis.note(
                        "iteration time regressed "
                        f"{alert.slowdown:.2f}x vs its own trailing "
                        "window (within Seer threshold)")

    def _classify_anomaly(self, diagnosis: Diagnosis, latest) -> None:
        comp = {r.host: r.compute_time_s for r in latest}
        comm = {r.host: r.comm_time_s for r in latest}
        comp_thr = self.expected_compute_s * self.threshold_factor
        comm_thr = max(self.expected_comm_s * self.threshold_factor,
                       self.expected_comm_s + 0.05)

        comp_abnormal = sorted(
            set(self.cross_host.lagging_hosts(comp))
            | {h for h, v in comp.items() if v > comp_thr})
        hung_hosts = sorted(r.host for r in latest if r.incomplete)
        crashed_hosts = sorted(r.host for r in latest if r.started == 0)
        comm_abnormal = sorted(
            set(self.cross_host.lagging_hosts(comm))
            | {h for h, v in comm.items() if v > comm_thr}
            | set(hung_hosts))

        err_cqes = self.store.err_cqes_for_job(diagnosis.job)
        if crashed_hosts:
            # A dead process (no work requests at all) is a computation
            # anomaly even though peers see communication timeouts.
            diagnosis.anomaly_kind = "computation"
            diagnosis.abnormal_hosts = crashed_hosts
            diagnosis.note(
                "NCCL timeline: computation abnormal on "
                f"{diagnosis.abnormal_hosts}")
        elif hung_hosts:
            # A stuck collective (started > finished) is communication
            # territory regardless of any compute-time wobble.
            diagnosis.anomaly_kind = "communication"
            diagnosis.abnormal_hosts = hung_hosts
            diagnosis.note(
                "NCCL timeline: collective incomplete on "
                f"{hung_hosts}")
        elif comp_abnormal and not err_cqes and not comm_abnormal:
            diagnosis.anomaly_kind = "computation"
            diagnosis.abnormal_hosts = comp_abnormal
            diagnosis.note(
                "NCCL timeline: computation abnormal on "
                f"{diagnosis.abnormal_hosts}")
        elif err_cqes or comm_abnormal:
            diagnosis.anomaly_kind = "communication"
            diagnosis.abnormal_hosts = comm_abnormal or sorted(
                {e.host for e in err_cqes})
            diagnosis.note(
                "NCCL timeline: communication time abnormal on "
                f"{diagnosis.abnormal_hosts or 'err-CQE reporters'}")
        elif comp_abnormal:
            diagnosis.anomaly_kind = "computation"
            diagnosis.abnormal_hosts = comp_abnormal
            diagnosis.note(
                "NCCL timeline: computation abnormal on "
                f"{diagnosis.abnormal_hosts}")

    # -- branch 1: computation --------------------------------------------------
    def _branch_computation(self, diagnosis: Diagnosis, latest) -> None:
        hosts = diagnosis.abnormal_hosts
        if len(hosts) == 1:
            host = hosts[0]
            fatal = self.store.syslogs_for(host, fatal_only=True)
            diagnosis.note(
                f"physical layer: checking device logs on {host}")
            if fatal:
                diagnosis.root_cause_device = host
                diagnosis.root_cause_layer = Layer.PHYSICAL
                diagnosis.inferred_cause = self._match_signature(
                    fatal[-1].message)
                diagnosis.recommended_action = (
                    "isolate node, load checkpoint, restart job")
                diagnosis.note(
                    f"fatal log matched: {fatal[-1].message!r}")
            else:
                sensors = self.store.sensors_for(host)
                if sensors and (sensors[-1].ecc_errors
                                or sensors[-1].pcie_errors):
                    diagnosis.root_cause_device = host
                    diagnosis.root_cause_layer = Layer.PHYSICAL
                    diagnosis.inferred_cause = (
                        "memory" if sensors[-1].ecc_errors
                        else "pcie-anomaly")
                    diagnosis.recommended_action = (
                        "isolate node for offline hardware testing")
                    diagnosis.note("sensor counters abnormal on host")
                else:
                    diagnosis.inferred_cause = "unknown"
                    diagnosis.recommended_action = (
                        "run offline toolset on the node")
        else:
            # Multiple devices: empirically software / user code (§3.3).
            error_logs = [
                log for host in hosts
                for log in self.store.syslogs_for(host)
            ]
            diagnosis.root_cause_layer = Layer.APPLICATION
            diagnosis.inferred_cause = (
                self._match_signature(error_logs[-1].message)
                if error_logs else "user-code")
            diagnosis.recommended_action = (
                "software/user-code alarm: manual intervention to halt "
                "or continue")
            diagnosis.note(
                f"computation anomalies on {len(hosts)} devices: "
                "typical of software or user code")

    # -- branch 2: communication --------------------------------------------------
    def _branch_communication(self, diagnosis: Diagnosis, job: str,
                              latest) -> None:
        err_cqes = self.store.err_cqes_for_job(job)
        if err_cqes:
            diagnosis.note(
                f"transport layer: {len(err_cqes)} errCQE event(s) on "
                "job QPs")
            device_paths, link_paths = [], []
            for event in err_cqes:
                # Consult the path as it was when the error struck; the
                # flow may have been rerouted since.
                record = self.store.path_for(event.five_tuple,
                                             before_s=event.time_s)
                if record is not None:
                    device_paths.append(record.devices)
                    link_paths.append(record.link_ids)
            failure = self._overlap_failure(device_paths, link_paths)
            failure_cause = (self._device_cause(failure)
                             if failure is not None else None)
            # A log-confirmed shared network element outranks the
            # common-endpoint heuristic (one bad switch on a small
            # job's only path can masquerade as a host NIC problem).
            if failure is not None \
                    and failure_cause != "network-device-failure":
                diagnosis.root_cause_device = failure
                diagnosis.root_cause_layer = Layer.NETWORK
                diagnosis.inferred_cause = failure_cause
                diagnosis.recommended_action = (
                    "switch affected flows to alternate paths "
                    "(UDP source port change); repair device")
                diagnosis.note(
                    "path overlap of affected flows pinpoints "
                    f"{failure} (log-confirmed)")
                return
            # If every failed QP touches one common host endpoint, the
            # problem is that host's NIC, not a shared network element.
            common_host = self._common_endpoint(err_cqes)
            if common_host is not None:
                diagnosis.root_cause_device = common_host
                diagnosis.root_cause_layer = Layer.TRANSPORT
                fatal = self.store.syslogs_for(common_host,
                                               fatal_only=True)
                diagnosis.inferred_cause = (
                    self._match_signature(fatal[-1].message) if fatal
                    else "nic-error")
                diagnosis.recommended_action = (
                    "isolate node, replace NIC, restart job")
                diagnosis.note(
                    "all failed QPs share one endpoint: NIC on "
                    f"{common_host}")
                return
            if failure is not None:
                diagnosis.root_cause_device = failure
                diagnosis.root_cause_layer = Layer.NETWORK
                diagnosis.inferred_cause = "network-device-failure"
                diagnosis.recommended_action = (
                    "switch affected flows to alternate paths "
                    "(UDP source port change); repair device")
                diagnosis.note(
                    "path overlap of affected flows pinpoints "
                    f"{failure}")
                return
            diagnosis.inferred_cause = "network-device-failure"
            diagnosis.recommended_action = (
                "no dominant overlap: run offline link diagnostics")
            diagnosis.note("errCQE paths share no dominant element")
            return

        # No errors: inspect QP rates of the job's QPs.
        slow_tuples = self._slow_qps(job)
        if slow_tuples:
            diagnosis.note(
                f"transport layer: {len(slow_tuples)} QP(s) below "
                f"{_QP_RATE_FRACTION:.0%} of link bandwidth")
            int_records = [
                record for five_tuple in slow_tuples
                if (record := self.store.int_ping_for(five_tuple))
                is not None
            ]
            hotspots = find_hotspots(int_records)
            if hotspots:
                hotspot = hotspots[0]
                diagnosis.note(
                    "network layer: INT per-hop delay flags "
                    f"{hotspot.upstream} -> {hotspot.downstream} "
                    f"({hotspot.latency_us:.0f} us)")
                self._confirm_with_counters(diagnosis, hotspot)
                return
        if diagnosis.manifestation is Manifestation.FAIL_HANG:
            hung = [r.host for r in latest if r.incomplete]
            if hung:
                host = hung[0]
                fatal = self.store.syslogs_for(host, fatal_only=True)
                error_logs = [
                    log for hung_host in hung
                    for log in self.store.syslogs_for(hung_host)
                ]
                if fatal:
                    diagnosis.root_cause_device = host
                    diagnosis.root_cause_layer = Layer.PHYSICAL
                    diagnosis.inferred_cause = self._match_signature(
                        fatal[-1].message)
                    diagnosis.recommended_action = (
                        "isolate node, load checkpoint, restart job")
                elif len(hung) > 1 and error_logs:
                    # Hangs on several devices with application-level
                    # error logs: software/user code, same heuristic
                    # as Branch #1's multi-device rule.
                    diagnosis.root_cause_layer = Layer.APPLICATION
                    diagnosis.abnormal_hosts = hung
                    diagnosis.inferred_cause = self._match_signature(
                        error_logs[-1].message)
                    diagnosis.recommended_action = (
                        "software/user-code alarm: manual "
                        "intervention to halt or continue")
                else:
                    diagnosis.abnormal_hosts = hung
                    diagnosis.inferred_cause = "ccl-bug"
                    diagnosis.recommended_action = (
                        "no diagnostic logs: reproduce with offline "
                        "toolset (template model end-to-end test)")
                diagnosis.note(
                    f"hang localized to host(s) {hung} via work-request "
                    "progress counts")

    def _slow_qps(self, job: str) -> List:
        meta = self.store.jobs.get(job)
        if meta is None:
            return []
        threshold = self.nic_port_gbps * _QP_RATE_FRACTION
        slow = []
        for qp in meta.qps():
            samples = self.store.qp_rates_for(qp.five_tuple)
            if not samples:
                continue
            latest = samples[-1]
            if 0.0 < latest.rate_gbps < threshold:
                slow.append(qp.five_tuple)
        return slow

    def _confirm_with_counters(self, diagnosis: Diagnosis,
                               hotspot) -> None:
        counters = self.store.counters_for_device(hotspot.upstream)
        pfc = max((c.pfc_pause for c in counters), default=0.0)
        diagnosis.root_cause_device = hotspot.upstream
        diagnosis.root_cause_layer = Layer.PHYSICAL
        if pfc > 0:
            diagnosis.note(
                f"physical layer: PFC pause counters on "
                f"{hotspot.upstream} far above normal ({pfc:.0f})")
            diagnosis.inferred_cause = "persistent-congestion"
        else:
            diagnosis.inferred_cause = "congestion"
        # Consult the pluggable physical-layer detectors (Appendix D);
        # e.g. the PCIe-PFC-storm detector added after the §5 incident.
        for device in (hotspot.upstream, hotspot.downstream):
            finding = self.detectors.inspect(self.store, device)
            if finding is not None:
                diagnosis.root_cause_device = finding.device
                diagnosis.inferred_cause = finding.cause
                diagnosis.recommended_action = finding.action
                diagnosis.note(
                    f"physical-layer detector {finding.detector!r}: "
                    f"{finding.note}")
                return
        # Switch misconfiguration leaves a (non-fatal) log trail on one
        # of the congested link's endpoints.
        for device in (hotspot.upstream, hotspot.downstream):
            logs = self.store.syslogs_for(device)
            if logs:
                cause = self._match_signature(logs[-1].message)
                if cause != "unknown":
                    diagnosis.inferred_cause = cause
                    diagnosis.root_cause_device = device
                    diagnosis.note(
                        f"device log on {device} matches: "
                        f"{logs[-1].message!r}")
                    break
        diagnosis.recommended_action = (
            "global rerouting: modify UDP source ports of congested "
            "flows")

    # -- helpers --------------------------------------------------------------
    @staticmethod
    def _host_of_ip(ip: str) -> str:
        return ip.rsplit(".nic", 1)[0] if ".nic" in ip else ip

    def _common_endpoint(self, err_cqes) -> Optional[str]:
        """The single host every failed QP touches, if there is one."""
        common: Optional[set] = None
        for event in err_cqes:
            endpoints = {
                self._host_of_ip(event.five_tuple.src_ip),
                self._host_of_ip(event.five_tuple.dst_ip),
            }
            common = endpoints if common is None else common & endpoints
            if not common:
                return None
        if common is not None and len(common) == 1:
            return next(iter(common))
        return None

    def _overlap_failure(self, device_paths, link_paths
                         ) -> Optional[str]:
        """Most likely shared failure element, log-disambiguated.

        A failed *link* makes both its endpoints equally-shared devices;
        a failed *switch* is shared by more paths than any one of its
        links.  When several elements tie (e.g. a single affected flow,
        where every hop is "shared"), physical-layer logs break the tie:
        the element with a recognizable fault signature wins.
        """
        if not device_paths:
            return None
        from .path_overlap import overlap_devices, overlap_links
        device_ranked = overlap_devices(device_paths)
        link_ranked = overlap_links([p for p in link_paths if p])
        n = len(device_paths)

        candidates: List[str] = []
        if link_ranked:
            top = link_ranked[0][1]
            if top / n >= 0.6:
                candidates.extend(
                    f"link:{link_id}"
                    for link_id, count in link_ranked if count == top)
        if device_ranked:
            top = device_ranked[0][1]
            if top / n >= 0.6:
                candidates.extend(
                    device for device, count in device_ranked
                    if count == top)
        if not candidates:
            return None
        # Log-based disambiguation across the tied candidates.
        for candidate in candidates:
            if self._device_cause(candidate) != "network-device-failure":
                return candidate
        return candidates[0]

    @staticmethod
    def _match_signature(message: str) -> str:
        for keyword, cause in _LOG_SIGNATURES.items():
            if keyword in message:
                return cause
        return "unknown"

    def _device_cause(self, device: str) -> str:
        logs = self.store.syslogs_for(device)
        if logs:
            cause = self._match_signature(logs[-1].message)
            if cause != "unknown":
                return cause
        # Check logs on links' peer names embedded in messages.
        for record in self.store.syslogs:
            if device in record.message:
                cause = self._match_signature(record.message)
                if cause != "unknown":
                    return cause
        return "network-device-failure"

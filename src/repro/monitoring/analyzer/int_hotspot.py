"""Congestion-hotspot identification via INT per-hop delay (§3.3).

"If the QP rate is abnormal, INT ping detects the hop-by-hop delay and
pinpoints the abnormal link."  Given INT ping records for the affected
flows, find the hop(s) whose forwarding latency stands far above the
base forwarding delay — the Figure 9c heatmap logic (0.6 us normal vs
179/266 us congested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..telemetry import IntPingRecord

__all__ = ["Hotspot", "find_hotspots"]


@dataclass(frozen=True)
class Hotspot:
    """One congested hop: the directed link from ``upstream``."""

    upstream: str
    downstream: str
    latency_us: float
    five_tuple: object


def find_hotspots(records: Iterable[IntPingRecord],
                  latency_threshold_us: float = 50.0
                  ) -> List[Hotspot]:
    """All hops whose latency exceeds the threshold, worst first."""
    hotspots: List[Hotspot] = []
    for record in records:
        for index, latency in enumerate(record.hop_latencies_us):
            if latency < latency_threshold_us:
                continue
            hotspots.append(Hotspot(
                upstream=record.devices[index],
                downstream=record.devices[index + 1],
                latency_us=latency,
                five_tuple=record.five_tuple,
            ))
    hotspots.sort(key=lambda h: h.latency_us, reverse=True)
    return hotspots

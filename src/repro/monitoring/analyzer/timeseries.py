"""Task-level time-series anomaly detection (§3.3, step 1).

The hierarchical algorithm starts by alerting on task-level anomalies:
per-iteration compute/communication times are checked against
Seer-derived thresholds *and* against their own history.  This module
implements the history side — a sliding-window detector in the spirit
of the z-score methods the related monitoring systems use (Minder,
TRANSOM; §6) — so regressions are caught even when the Seer threshold
is generous (e.g. a slow drift that stays under 1.5x expected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["SlidingWindowDetector", "TimeSeriesAlert"]


@dataclass(frozen=True)
class TimeSeriesAlert:
    """One detected regression in a metric series."""

    index: int
    value: float
    baseline_mean: float
    zscore: float

    @property
    def slowdown(self) -> float:
        if self.baseline_mean <= 0:
            return float("inf")
        return self.value / self.baseline_mean


class SlidingWindowDetector:
    """Flag samples deviating from a trailing-window baseline.

    ``window`` iterations form the baseline; a sample whose z-score
    against the window exceeds ``threshold`` (one-sided: slower) raises
    an alert.  ``min_relative`` suppresses alerts for statistically
    significant but operationally irrelevant wobbles (e.g. +0.5%).
    """

    def __init__(self, window: int = 8, threshold: float = 4.0,
                 min_relative: float = 0.05):
        if window < 2:
            raise ValueError("window must be at least 2 samples")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.window = window
        self.threshold = threshold
        self.min_relative = min_relative

    def scan(self, values: Sequence[float]) -> List[TimeSeriesAlert]:
        """All alerts in a series (baseline excludes flagged samples)."""
        alerts: List[TimeSeriesAlert] = []
        baseline: List[float] = []
        for index, value in enumerate(values):
            alert = self._check(baseline, index, value)
            if alert is not None:
                alerts.append(alert)
            else:
                baseline.append(value)
                if len(baseline) > self.window:
                    baseline.pop(0)
        return alerts

    def latest(self, values: Sequence[float]
               ) -> Optional[TimeSeriesAlert]:
        """Alert for the newest sample only, if it regressed."""
        if not values:
            return None
        baseline = list(values[:-1])[-self.window:]
        return self._check(baseline, len(values) - 1, values[-1])

    def _check(self, baseline: List[float], index: int,
               value: float) -> Optional[TimeSeriesAlert]:
        if len(baseline) < 2:
            return None
        mean = float(np.mean(baseline))
        std = float(np.std(baseline))
        floor = max(std, self.min_relative * mean / self.threshold,
                    1e-12)
        zscore = (value - mean) / floor
        if zscore > self.threshold \
                and value > mean * (1.0 + self.min_relative):
            return TimeSeriesAlert(index=index, value=value,
                                   baseline_mean=mean, zscore=zscore)
        return None

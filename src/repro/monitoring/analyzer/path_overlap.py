"""Failure-point identification through path overlapping (§3.3).

"Network device failures typically impact multiple passing network
flows.  If a set of errCQE events occurs, the failure points can be
identified by locating the overlapping points of multiple affected flow
paths."  Given the sFlow-reconstructed paths of the affected flows,
rank interior devices (and links) by how many affected paths traverse
them; the top-ranked shared element is the candidate failure point.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Sequence, Tuple

__all__ = ["overlap_devices", "overlap_links", "best_failure_point"]


def overlap_devices(paths: Iterable[Sequence[str]]
                    ) -> List[Tuple[str, int]]:
    """Interior devices ranked by the number of affected paths crossing.

    End hosts are excluded: the overlap tool looks for shared *network*
    elements (a host shared by all its own flows is no signal).
    """
    counter: Counter = Counter()
    total = 0
    for path in paths:
        total += 1
        for device in set(path[1:-1]):
            counter[device] += 1
    return counter.most_common()


def overlap_links(link_paths: Iterable[Sequence[int]]
                  ) -> List[Tuple[int, int]]:
    """Link ids ranked by the number of affected paths crossing them."""
    counter: Counter = Counter()
    for path in link_paths:
        for link_id in set(path):
            counter[link_id] += 1
    return counter.most_common()


def best_failure_point(paths: Iterable[Sequence[str]],
                       min_coverage: float = 0.6) -> str | None:
    """The most-shared interior device, if it covers enough paths.

    ``min_coverage`` guards against spurious overlaps: a true failure
    point should appear on most affected paths.
    """
    paths = list(paths)
    if not paths:
        return None
    ranked = overlap_devices(paths)
    if not ranked:
        return None
    device, count = ranked[0]
    if count / len(paths) < min_coverage:
        return None
    return device

"""Simulated monitored training job: the telemetry generator.

Runs a training job on the flow-level fabric with optional fault
injection, and drives the full-stack collectors.  This plays the role
the *actual production cluster* plays for the real Astral monitoring
system: it is where root-cause perturbations (a dead optical link, a
misconfigured switch, a broken PCIe) turn into the layered symptoms the
analyzer has to untangle.

The job runs as a *process* on the shared simcore clock: each iteration
is a compute timeout followed by a collective submitted to the
event-driven :class:`~repro.network.engine.FabricEngine`, so several
tenants genuinely overlap in time and faults can strike at timestamps
(mid-collective), not just at iteration boundaries.

The simulator keeps ground truth (the injected fault) strictly apart
from what it writes into the :class:`TelemetryStore`; the analyzer sees
only the store, so localization accuracy can be scored honestly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..network.collectives import (
    CollectiveConfig,
    Endpoint,
    all_to_all_flows,
    ring_allreduce_flows,
)
from ..network.congestion import CongestionModel
from ..network.engine import FabricEngine
from ..network.fabric import Fabric
from ..network.flows import Flow
from ..network.routing import RoutingError
from ..simcore import Simulator
from .collectors.base import HostState, IterationSnapshot
from .collectors.layers import FullStackCollector
from .faults import Effect, FaultSpec, Manifestation
from .telemetry import CommGroup, JobMetadata, QpMetadata, TelemetryStore

__all__ = ["JobConfig", "JobResult", "MonitoredTrainingJob"]

#: NCCL-style collective timeout: a hung iteration is cut off here.
_HANG_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class JobConfig:
    """Shape of a simulated training job."""

    name: str = "job0"
    hosts: Tuple[str, ...] = ()
    rail: int = 0
    compute_time_s: float = 0.5
    comm_size_bits: float = 8e9
    iterations: int = 10
    collective: str = "allreduce"
    compute_noise_frac: float = 0.01
    seed: int = 0
    #: offset of the job's first iteration on the shared clock —
    #: tenants launched by the cluster scheduler start when it placed
    #: them, not in lockstep.
    start_time_s: float = 0.0


@dataclass
class JobResult:
    """Outcome of a simulated job run."""

    config: JobConfig
    store: TelemetryStore
    snapshots: List[IterationSnapshot]
    aborted: bool
    hung: bool
    completed_iterations: int
    expected_compute_s: float
    expected_comm_s: float
    fault: Optional[FaultSpec] = None

    @property
    def manifestation(self) -> Optional[Manifestation]:
        return self.fault.manifestation if self.fault else None


class MonitoredTrainingJob:
    """Run a (possibly faulty) training job and collect full telemetry."""

    def __init__(self, fabric: Fabric, config: JobConfig,
                 fault: Optional[FaultSpec] = None,
                 store: Optional[TelemetryStore] = None,
                 congestion: Optional[CongestionModel] = None):
        if not config.hosts:
            raise ValueError("job needs at least one host")
        if fault is not None:
            # Fail fast with the offending field named, rather than
            # deep inside an iteration when the fault activates.
            fault.validate(topology=fabric.topology, job=config.name)
        self.fabric = fabric
        self.config = config
        self.fault = fault
        self.store = store or TelemetryStore()
        self.congestion = congestion or CongestionModel()
        self._rng = random.Random(config.seed)
        self._fault_applied = False
        self._crashed_hosts: set = set()
        self._hung_hosts: set = set()
        self._slow_compute: Dict[str, float] = {}
        self._nic_error_hosts: set = set()
        self._drop_switches: set = set()
        self._pcie_hosts: set = set()
        #: five-tuples whose QPs die when a link goes down.
        self._link_down_victims: List[Flow] = []
        #: syslogs emitted by a timestamp fault between snapshots; they
        #: attach to the next collected snapshot.
        self._pending_syslogs: List[Tuple[str, str, str, bool]] = []
        # QPs are set up once per job (as NCCL does), so five-tuples are
        # stable across iterations — this is what makes the monitoring
        # join keys (QP <-> five-tuple <-> path) usable.
        self._flows = self._make_flows()

    # -- public API -----------------------------------------------------------
    def run(self) -> JobResult:
        """Run the job to completion on a private simulator clock."""
        expected_compute, expected_comm = self._expected_times()
        metadata = self._register_metadata()
        collector = FullStackCollector(self.fabric.topology)

        sim = Simulator()
        engine = FabricEngine(self.fabric, sim=sim)
        snapshots: List[IterationSnapshot] = []
        self._arm_timed_fault(sim, engine, metadata)
        sim.process(
            self.process(sim, engine, collector, metadata, snapshots),
            name=f"job-{self.config.name}")
        sim.run()
        return JobResult(
            config=self.config,
            store=self.store,
            snapshots=snapshots,
            aborted=any(snap.aborted for snap in snapshots),
            hung=any(not snap.completed and not snap.aborted
                     for snap in snapshots),
            completed_iterations=sum(
                1 for snap in snapshots
                if snap.completed and not snap.aborted),
            expected_compute_s=expected_compute,
            expected_comm_s=expected_comm,
            fault=self.fault,
        )

    def process(self, sim: Simulator, engine: FabricEngine,
                collector: FullStackCollector, metadata: JobMetadata,
                snapshots: List[IterationSnapshot],
                start_time_s: Optional[float] = None):
        """The job as a simcore process generator.

        Per iteration: compute phase (a timeout for the slowest host's
        compute), then the collective submitted to the shared
        :class:`FabricEngine` — so co-scheduled tenants' flows contend
        for bandwidth exactly while both are communicating.  Collected
        snapshots are appended to *snapshots* as they happen.
        """
        start = self.config.start_time_s if start_time_s is None \
            else start_time_s
        if start > sim.now:
            yield sim.timeout(start - sim.now)
        for iteration in range(self.config.iterations):
            snap = self._begin_iteration(iteration, sim.now, metadata)

            compute = max(
                (state.compute_time_s
                 for state in snap.hosts.values() if not state.crashed),
                default=0.0)
            if compute > 0:
                yield sim.timeout(compute)

            flows = self._flows
            for flow in flows:
                flow.rate_gbps = 0.0
            routable, failed = self._route_flows(flows, snap)
            if routable:
                comm_start = sim.now
                done = engine.submit_many(routable)
                guard = sim.timeout(_HANG_TIMEOUT_S)
                yield sim.any_of([done, guard])
                self._record_comm(engine, snap, routable, comm_start)
                if not done.triggered:
                    # Starved mid-collective (e.g. a dead link zeroed
                    # every path): NCCL's watchdog fires.
                    snap.completed = False
            self._apply_flow_faults(flows, failed, snap, now=sim.now)

            self._finish_iteration(snap)
            collector.collect(snap, self.store)
            snapshots.append(snap)
            if snap.aborted or not snap.completed:
                break

    def _record_comm(self, engine: FabricEngine,
                     snap: IterationSnapshot, routable: List[Flow],
                     comm_start: float) -> None:
        """Fold the engine's finish times back into the snapshot."""
        paths = {}
        for flow in routable:
            path = engine.path_of(flow.flow_id)
            if path is not None:
                paths[flow.flow_id] = path
        # Congestion is what the switches observe *now*: this job's
        # collective plus whatever other tenants still have in flight.
        others = [flow for flow in engine.active_flows()
                  if flow.flow_id not in paths]
        all_paths = dict(paths)
        for flow in others:
            path = engine.path_of(flow.flow_id)
            if path is not None:
                all_paths[flow.flow_id] = path
        loads = self.fabric._loads_for(
            routable + [flow for flow in others
                        if flow.flow_id in all_paths], all_paths)
        snap.congestion = self.congestion.evaluate_all(loads)
        snap.flows.extend(routable)
        snap.paths.update(paths)
        for flow in routable:
            finish = engine.finish_time(flow.flow_id)
            if finish is None:
                continue  # still in flight: the hang guard fired
            comm = finish - comm_start
            for host in (flow.src_host, flow.dst_host):
                if host in snap.hosts:
                    snap.hosts[host].comm_time_s = max(
                        snap.hosts[host].comm_time_s, comm)

    def _arm_timed_fault(self, sim: Simulator, engine: FabricEngine,
                         metadata: JobMetadata) -> None:
        """Schedule a timestamp fault (``at_time_s``) on the clock.

        The structural effects land the instant the fault strikes —
        possibly mid-collective; the engine re-reads link capacities
        and re-solves the in-flight allocation immediately.
        """
        fault = self.fault
        if fault is None or fault.at_time_s is None:
            return

        def _proc():
            yield sim.timeout(max(0.0, fault.at_time_s - sim.now))
            shim = IterationSnapshot(
                time_s=sim.now, iteration=-1, job=metadata, hosts={})
            self._apply_structural_effects(shim)
            self._pending_syslogs.extend(shim.syslogs)
            engine.notify_topology_changed()

        sim.process(_proc(), name=f"fault-{fault.target}")

    # -- setup ------------------------------------------------------------------
    def _endpoints(self) -> List[Endpoint]:
        return [Endpoint(host, self.config.rail)
                for host in self.config.hosts]

    def _make_flows(self) -> List[Flow]:
        config = CollectiveConfig(job=self.config.name)
        if self.config.collective == "all_to_all":
            return all_to_all_flows(self._endpoints(),
                                    self.config.comm_size_bits, config)
        return ring_allreduce_flows(self._endpoints(),
                                    self.config.comm_size_bits, config)

    def _expected_times(self) -> Tuple[float, float]:
        """Fault-free baseline (what Seer would forecast, §3.3).

        Flows that cannot route at all (the job was launched onto an
        already-broken fabric) are excluded from the expectation; the
        run itself will surface them as errCQE connectivity failures.
        """
        routable = []
        for flow in self._flows:
            try:
                self.fabric.router.path(flow)
            except RoutingError:
                continue
            routable.append(flow)
        if not routable:
            return self.config.compute_time_s, 0.0
        run = self.fabric.complete(routable)
        return self.config.compute_time_s, run.total_time_s

    def _register_metadata(self) -> JobMetadata:
        flows = self._flows
        group = CommGroup(
            name=f"{self.config.name}.{self.config.collective}",
            kind=self.config.collective,
            hosts=list(self.config.hosts),
            qps=[QpMetadata(flow.qp, flow.src_host, flow.dst_host,
                            flow.five_tuple) for flow in flows],
        )
        metadata = JobMetadata(job=self.config.name,
                               hosts=list(self.config.hosts),
                               comm_groups=[group])
        self.store.register_job(metadata)
        return metadata

    # -- fault machinery ---------------------------------------------------------
    def _fault_active(self, iteration: int,
                      now: Optional[float] = None) -> bool:
        if self.fault is None:
            return False
        if self.fault.at_time_s is not None:
            # Timestamp faults strike on the clock (possibly armed as a
            # separate process); iteration indices are irrelevant.
            return now is not None and now >= self.fault.at_time_s
        return iteration >= self.fault.at_iteration

    def _apply_structural_effects(self, snap: IterationSnapshot) -> None:
        """One-time topology/state mutations when the fault activates."""
        if self._fault_applied or self.fault is None:
            return
        self._fault_applied = True
        fault = self.fault
        topo = self.fabric.topology
        effect = fault.effect

        if effect in (Effect.LINK_DOWN, Effect.LINK_DEGRADE):
            link_id = int(fault.target.split(":", 1)[1])
            if effect is Effect.LINK_DOWN:
                # In-flight QPs whose (pre-failure) path crossed the
                # link die with retry-exceeded errors.
                for flow in self._flows:
                    try:
                        path = self.fabric.router.path(flow)
                    except RoutingError:
                        continue
                    if link_id in path.link_ids:
                        self._link_down_victims.append(flow)
                topo.fail_link(link_id)
            else:
                # A flapping/degraded optical link loses most of its
                # effective capacity to retransmissions and down time.
                topo.links[link_id].capacity_gbps *= 0.15
                topo.version += 1
            device = topo.links[link_id].a.device
            snap.syslogs.append((device, "err", fault.syslog_message(),
                                 fault.profile.fatal_log))
        elif effect is Effect.SWITCH_ECN_STORM:
            snap.syslogs.append((fault.target, "warn",
                                 fault.syslog_message(), False))
            if fault.manifestation is Manifestation.FAIL_STOP:
                # A blackholing misconfiguration (wrong VLAN/route):
                # crossing flows die rather than crawl.
                self._drop_switches.add(fault.target)
            elif fault.manifestation is Manifestation.FAIL_HANG:
                # The miswired queue wedges a crossing collective: the
                # first host whose traffic traverses the switch hangs.
                for flow in self._flows:
                    try:
                        path = self.fabric.router.path(flow)
                    except RoutingError:
                        continue
                    if fault.target in path.devices:
                        self._hung_hosts.add(flow.src_host)
                        break
            else:
                for link in topo.links_of(fault.target):
                    link.capacity_gbps *= 0.2
                topo.version += 1
        elif effect is Effect.SWITCH_DROPS:
            self._drop_switches.add(fault.target)
            snap.syslogs.append((fault.target, "warn",
                                 fault.syslog_message(), False))
        elif effect is Effect.NIC_ERRCQE:
            snap.syslogs.append((fault.target, "err",
                                 fault.syslog_message(), True))
            if fault.manifestation is Manifestation.FAIL_SLOW:
                # Flaky NIC: traffic still flows, at a crawl.
                for link in topo.links_of(fault.target):
                    link.capacity_gbps *= 0.2
                topo.version += 1
            elif fault.manifestation is Manifestation.FAIL_HANG:
                self._hung_hosts.add(fault.target)
            else:
                self._nic_error_hosts.add(fault.target)
        elif effect is Effect.PCIE_PFC_STORM:
            self._pcie_hosts.add(fault.target)
            for link in topo.links_of(fault.target):
                link.capacity_gbps *= 0.1
            topo.version += 1
            # A broken PCIe leaves no network-visible syslog at first —
            # the §5 incident took hours precisely because of that.
        elif effect is Effect.MISWIRE:
            self._apply_miswire(fault, snap)
        elif effect is Effect.HOST_HANG:
            if fault.manifestation is Manifestation.FAIL_STOP:
                self._crashed_hosts.add(fault.target)
            else:
                self._hung_hosts.add(fault.target)
        elif effect in (Effect.GPU_FATAL, Effect.ECC_FATAL):
            snap.syslogs.append((fault.target, "crit",
                                 fault.syslog_message(), True))
            if fault.manifestation is Manifestation.FAIL_STOP:
                self._crashed_hosts.add(fault.target)
            else:
                self._hung_hosts.add(fault.target)
        elif effect is Effect.CONFIG_ERROR:
            snap.syslogs.append((fault.target, "err",
                                 fault.syslog_message(), True))
            if fault.manifestation in (Manifestation.FAIL_ON_START,
                                       Manifestation.FAIL_STOP):
                self._crashed_hosts.add(fault.target)
            elif fault.manifestation is Manifestation.FAIL_HANG:
                self._hung_hosts.add(fault.target)
            else:
                self._slow_compute[fault.target] = 1.6
        elif effect is Effect.MULTI_HOST_SOFTWARE:
            affected = self._rng.sample(
                list(self.config.hosts),
                k=min(len(self.config.hosts),
                      max(2, len(self.config.hosts) // 2)))
            for host in affected:
                snap.syslogs.append((host, "error",
                                     fault.syslog_message(), False))
                if fault.manifestation is Manifestation.FAIL_SLOW:
                    self._slow_compute[host] = 1.8
                elif fault.manifestation is Manifestation.FAIL_HANG:
                    self._hung_hosts.add(host)
                else:
                    self._crashed_hosts.add(host)

    def _apply_miswire(self, fault: FaultSpec,
                       snap: IterationSnapshot) -> None:
        """Swap the switch ends of two host uplinks (cabling mistake)."""
        topo = self.fabric.topology
        link_id = int(fault.target.split(":", 1)[1])
        link = topo.links[link_id]
        # Find a partner link on the same host, different rail/switch.
        host = link.a.device if topo.devices[link.a.device].tier == 0 \
            else link.b.device
        link_rail = topo.devices[link.other(host)].rail
        partner = None
        for other in topo.links_of(host):
            if other.link_id == link.link_id:
                continue
            other_rail = topo.devices[other.other(host)].rail
            # A cross-rail swap is the observable cabling mistake; a
            # same-group swap within a rail is wiring-rule-equivalent.
            if other_rail != link_rail:
                partner = other
                break
        if partner is None:
            return
        # Swap the non-host endpoints.
        link_sw = link.endpoint(link.other(host))
        partner_sw = partner.endpoint(partner.other(host))
        for swapped, new_end in ((link, partner_sw), (partner, link_sw)):
            if swapped.a.device == host:
                swapped.b = new_end
            else:
                swapped.a = new_end
        topo._adjacency[link_sw.device].remove(link.link_id)
        topo._adjacency[link_sw.device].append(partner.link_id)
        topo._adjacency[partner_sw.device].remove(partner.link_id)
        topo._adjacency[partner_sw.device].append(link.link_id)
        topo.version += 1
        snap.syslogs.append((host, "warn", fault.syslog_message(), False))

    # -- per-iteration dynamics -------------------------------------------------
    def _begin_iteration(self, iteration: int, now: float,
                         metadata: JobMetadata) -> IterationSnapshot:
        """Snapshot scaffolding at iteration start: host states, fault
        activation, structural/sensor evidence — everything that
        precedes the compute phase."""
        hosts = {
            host: HostState(
                host=host,
                compute_time_s=self._compute_time(host),
                comm_time_s=0.0,
            )
            for host in self.config.hosts
        }
        snap = IterationSnapshot(
            time_s=now, iteration=iteration, job=metadata, hosts=hosts)
        if self._pending_syslogs:
            snap.syslogs.extend(self._pending_syslogs)
            self._pending_syslogs.clear()

        if self._fault_active(iteration, now):
            self._apply_structural_effects(snap)

        # Crashed hosts end the job (fail-stop / fail-on-start).  A dead
        # process issues no work requests at all — started == 0 is the
        # timeline signature distinguishing a crash from a hang.
        for host in self._crashed_hosts:
            if host in hosts:
                hosts[host].crashed = True
                hosts[host].gpu_util = 0.0
                hosts[host].started = 0
                hosts[host].finished = 0
        if self._crashed_hosts:
            snap.aborted = True
            snap.completed = False

        # Apply slow-compute multipliers.
        for host, factor in self._slow_compute.items():
            if host in hosts:
                hosts[host].compute_time_s *= factor

        # Sensor-level evidence.
        for host in self._pcie_hosts:
            if host in hosts:
                hosts[host].pcie_errors = 12
                hosts[host].nic_pfc_rx = 5000.0
        return snap

    def _finish_iteration(self, snap: IterationSnapshot) -> None:
        """Post-communication bookkeeping: hung hosts never finish."""
        for host in self._hung_hosts:
            if host in snap.hosts:
                state = snap.hosts[host]
                state.hung = True
                state.started = 1
                state.finished = 0
                state.comm_time_s = _HANG_TIMEOUT_S
                state.gpu_util = 0.99  # busy-spinning in NCCL
        if self._hung_hosts:
            snap.completed = False

    def _compute_time(self, host: str) -> float:
        noise = self._rng.gauss(0.0, self.config.compute_noise_frac)
        return self.config.compute_time_s * max(0.1, 1.0 + noise)

    def _route_flows(self, flows: List[Flow], snap: IterationSnapshot
                     ) -> Tuple[List[Flow], List[Flow]]:
        """Split flows into routable and connectivity-failed sets."""
        routable, failed = [], []
        for flow in flows:
            if (flow.src_host in self._crashed_hosts
                    or flow.dst_host in self._crashed_hosts
                    or flow.src_host in self._nic_error_hosts
                    or flow.dst_host in self._nic_error_hosts):
                failed.append(flow)
                continue
            try:
                self.fabric.router.path(flow)
            except RoutingError:
                failed.append(flow)
                continue
            routable.append(flow)
        return routable, failed

    def _apply_flow_faults(self, flows: List[Flow], failed: List[Flow],
                           snap: IterationSnapshot,
                           now: Optional[float] = None) -> None:
        fault = self.fault
        # Connectivity-failed flows raise errCQE retry-exceeded events.
        for flow in failed:
            flow.rate_gbps = 0.0
            snap.err_cqes.append((flow.src_host, flow.qp,
                                  flow.five_tuple,
                                  "IBV_WC_RETRY_EXC_ERR"))
        if fault is None or not self._fault_active(snap.iteration, now):
            return
        if fault.effect is Effect.NIC_ERRCQE \
                and fault.manifestation is Manifestation.FAIL_STOP \
                and failed:
            snap.aborted = True
            snap.completed = False
        if self._drop_switches:
            for flow in snap.flows:
                path = snap.paths.get(flow.flow_id)
                if path and any(switch in path.devices
                                for switch in self._drop_switches):
                    snap.err_cqes.append((flow.src_host, flow.qp,
                                          flow.five_tuple,
                                          "IBV_WC_WR_FLUSH_ERR"))
            if fault.manifestation is Manifestation.FAIL_STOP \
                    and snap.err_cqes:
                snap.aborted = True
                snap.completed = False
        if fault.effect is Effect.LINK_DOWN and self._link_down_victims:
            # The break is noticed as the crossing QPs time out, once.
            for flow in self._link_down_victims:
                snap.err_cqes.append((flow.src_host, flow.qp,
                                      flow.five_tuple,
                                      "IBV_WC_RETRY_EXC_ERR"))
            self._link_down_victims = []
            if fault.manifestation is Manifestation.FAIL_STOP:
                snap.aborted = True
                snap.completed = False

"""Maintenance-record change correlation (§5's driver war story).

"Through correlation with our monitoring system maintenance records, we
traced the issue to an NVIDIA driver update as the only suspicious
change."  When the hierarchical analyzer cannot pin a device root cause
(the fail-hang had no abnormal logs and did not reproduce at smaller
scale), the next tool is the fleet's change log: rank recent changes by
(a) how close they landed before the failure onset and (b) how well
their scope covers the affected hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["ChangeRecord", "ChangeSuspect", "MaintenanceLog"]


@dataclass(frozen=True)
class ChangeRecord:
    """One fleet change: rollout, config push, firmware, cabling."""

    time_s: float
    category: str          # "driver" | "nccl" | "firmware" | ...
    description: str
    hosts: Sequence[str] = ()    # empty = fleet-wide


@dataclass(frozen=True)
class ChangeSuspect:
    """A change ranked against a failure."""

    change: ChangeRecord
    recency_score: float   # 1.0 = immediately before onset
    coverage: float        # fraction of affected hosts in scope
    score: float

    def describe(self) -> str:
        return (f"{self.change.category}: {self.change.description} "
                f"(score {self.score:.2f}, coverage "
                f"{self.coverage:.0%})")


class MaintenanceLog:
    """Append-only record of fleet changes with suspect ranking."""

    def __init__(self, window_s: float = 14 * 86400.0):
        #: how far back a change stays suspicious (two weeks).
        self.window_s = window_s
        self._records: List[ChangeRecord] = []

    def record(self, change: ChangeRecord) -> None:
        self._records.append(change)

    def records(self) -> List[ChangeRecord]:
        return list(self._records)

    def suspects(self, onset_s: float,
                 affected_hosts: Optional[Sequence[str]] = None,
                 top: int = 5) -> List[ChangeSuspect]:
        """Changes that could explain a failure starting at *onset_s*.

        Only changes strictly before the onset and within the window
        qualify; scoring multiplies recency (linear decay over the
        window) by host-scope coverage (fleet-wide changes cover
        everything).
        """
        affected = set(affected_hosts or ())
        suspects: List[ChangeSuspect] = []
        for change in self._records:
            age = onset_s - change.time_s
            if age <= 0 or age > self.window_s:
                continue
            recency = 1.0 - age / self.window_s
            if not change.hosts:
                coverage = 1.0
            elif affected:
                coverage = len(affected & set(change.hosts)) \
                    / len(affected)
            else:
                coverage = 0.5
            score = recency * (0.25 + 0.75 * coverage)
            suspects.append(ChangeSuspect(
                change=change, recency_score=recency,
                coverage=coverage, score=score))
        suspects.sort(key=lambda s: -s.score)
        return suspects[:top]

    def only_suspicious_change(self, onset_s: float,
                               affected_hosts: Optional[
                                   Sequence[str]] = None
                               ) -> Optional[ChangeSuspect]:
        """The dominant suspect, if one clearly stands out.

        Returns the top suspect when it covers the affected hosts and
        outscores the runner-up decisively — the "only suspicious
        change" situation the §5 story ended in.
        """
        ranked = self.suspects(onset_s, affected_hosts, top=5)
        if not ranked:
            return None
        best = ranked[0]
        if best.coverage < 0.99:
            return None
        if len(ranked) > 1 and ranked[1].score > 0.7 * best.score:
            return None
        return best

"""Monitoring system overhead model (Appendix C).

The millisecond-level QP rate monitoring mirrors the first packet's
header of every RDMA message: ~0.8 Mbps per node on average, about
10 Gbps of monitoring traffic for a 100K-GPU cluster — roughly
0.00005% of the total link bandwidth, i.e. negligible.  INT ping adds
storage: ~173 GB per day for a 10K-GPU cluster, retained for 15 days.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MonitoringOverhead"]


@dataclass(frozen=True)
class MonitoringOverhead:
    """Bandwidth and storage overhead of the full-stack monitoring."""

    #: average mirrored-header traffic per node (Appendix C: 0.8 Mbps).
    mirror_mbps_per_node: float = 0.8
    gpus_per_node: int = 8
    #: per-GPU accounted bandwidth; the paper's 0.00005% figure implies
    #: 200 Gbps per GPU (one NIC port) in its denominator.
    nic_gbps_per_gpu: float = 200.0
    #: INT ping storage per GPU per day, derived from the paper's
    #: 173 GB/day at 10K GPUs.
    int_bytes_per_gpu_day: float = 173e9 / 10_000
    retention_days: int = 15

    # -- bandwidth ---------------------------------------------------------
    def nodes(self, n_gpus: int) -> int:
        if n_gpus < 0:
            raise ValueError("GPU count cannot be negative")
        return (n_gpus + self.gpus_per_node - 1) // self.gpus_per_node

    def mirror_traffic_gbps(self, n_gpus: int) -> float:
        """Total ms-level mirroring traffic for a cluster."""
        return self.nodes(n_gpus) * self.mirror_mbps_per_node / 1e3

    def total_fabric_gbps(self, n_gpus: int) -> float:
        return n_gpus * self.nic_gbps_per_gpu

    def mirror_fraction(self, n_gpus: int) -> float:
        """Mirroring traffic as a share of total link bandwidth."""
        total = self.total_fabric_gbps(n_gpus)
        if total == 0:
            return 0.0
        return self.mirror_traffic_gbps(n_gpus) / total

    # -- storage -----------------------------------------------------------
    def int_storage_bytes_per_day(self, n_gpus: int) -> float:
        return n_gpus * self.int_bytes_per_gpu_day

    def int_storage_bytes_retained(self, n_gpus: int) -> float:
        return self.int_storage_bytes_per_day(n_gpus) \
            * self.retention_days

    # -- the Appendix-C headline numbers ---------------------------------------
    def report(self, n_gpus: int) -> dict:
        return {
            "n_gpus": n_gpus,
            "mirror_gbps": self.mirror_traffic_gbps(n_gpus),
            "mirror_fraction": self.mirror_fraction(n_gpus),
            "int_gb_per_day":
                self.int_storage_bytes_per_day(n_gpus) / 1e9,
            "int_gb_retained":
                self.int_storage_bytes_retained(n_gpus) / 1e9,
        }

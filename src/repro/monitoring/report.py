"""Cluster health report: the operator-facing telemetry summary.

Rolls a :class:`~repro.monitoring.telemetry.TelemetryStore` up into the
snapshot an on-call engineer reads before drilling down: per-job
progress and anomaly state, the most congested links, devices with
fatal logs, and hosts with abnormal sensors.  ``render()`` produces the
plain-text report; the structured fields are available for tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .analyzer.timeseries import SlidingWindowDetector
from .telemetry import TelemetryStore

__all__ = ["JobHealth", "ClusterHealthReport", "build_health_report"]


@dataclass
class JobHealth:
    """Per-job roll-up."""

    job: str
    iterations_seen: int
    last_iteration_completed: bool
    mean_iteration_s: float
    regressed: bool

    @property
    def status(self) -> str:
        if not self.last_iteration_completed:
            return "STALLED"
        if self.regressed:
            return "DEGRADED"
        return "HEALTHY"


@dataclass
class ClusterHealthReport:
    """Structured snapshot plus text rendering."""

    jobs: List[JobHealth] = field(default_factory=list)
    congested_links: List[Tuple[str, int, float]] = \
        field(default_factory=list)   # (device, link, pfc or ecn)
    fatal_devices: List[Tuple[str, str]] = field(default_factory=list)
    abnormal_hosts: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return (all(job.status == "HEALTHY" for job in self.jobs)
                and not self.congested_links
                and not self.fatal_devices
                and not self.abnormal_hosts)

    def render(self) -> str:
        lines = ["=== Astral cluster health ==="]
        verdict = "ALL CLEAR" if self.healthy else "ATTENTION NEEDED"
        lines.append(f"overall: {verdict}")
        lines.append("jobs:")
        if not self.jobs:
            lines.append("  (none monitored)")
        for job in self.jobs:
            lines.append(
                f"  {job.job:<12} {job.status:<9} "
                f"{job.iterations_seen} iterations, "
                f"mean {job.mean_iteration_s:.3f} s")
        if self.congested_links:
            lines.append("congested links (PFC/ECN active):")
            for device, link, value in self.congested_links[:8]:
                lines.append(f"  {device} link {link}: {value:,.0f}")
        if self.fatal_devices:
            lines.append("fatal device logs:")
            for device, message in self.fatal_devices[:8]:
                lines.append(f"  {device}: {message}")
        if self.abnormal_hosts:
            lines.append("abnormal host sensors:")
            for host, reason in self.abnormal_hosts[:8]:
                lines.append(f"  {host}: {reason}")
        return "\n".join(lines)


def build_health_report(store: TelemetryStore,
                        pfc_threshold: float = 1.0
                        ) -> ClusterHealthReport:
    """Summarize everything currently in the store."""
    report = ClusterHealthReport()
    detector = SlidingWindowDetector()

    by_job: Dict[str, list] = {}
    for record in store.iterations:
        by_job.setdefault(record.job, []).append(record)
    for job, records in sorted(by_job.items()):
        records.sort(key=lambda r: r.iteration)
        series = [r.iteration_time_s for r in records]
        report.jobs.append(JobHealth(
            job=job,
            iterations_seen=len(records),
            last_iteration_completed=records[-1].completed,
            mean_iteration_s=sum(series) / len(series),
            regressed=detector.latest(series) is not None,
        ))

    # Latest counter per (device, link): report active PFC pause.
    latest_counter: Dict[Tuple[str, int], float] = {}
    for record in store.switch_counters:
        latest_counter[(record.device, record.link_id)] = \
            record.pfc_pause
    for (device, link), pfc in sorted(latest_counter.items()):
        if pfc >= pfc_threshold:
            report.congested_links.append((device, link, pfc))
    report.congested_links.sort(key=lambda row: -row[2])

    seen = set()
    for record in store.syslogs:
        if record.fatal and record.device not in seen:
            seen.add(record.device)
            report.fatal_devices.append((record.device,
                                         record.message))

    latest_sensor: Dict[str, object] = {}
    for record in store.host_sensors:
        latest_sensor[record.host] = record
    for host, sensor in sorted(latest_sensor.items()):
        reasons = []
        if sensor.ecc_errors:
            reasons.append(f"{sensor.ecc_errors} ECC errors")
        if sensor.pcie_errors:
            reasons.append(f"{sensor.pcie_errors} PCIe errors")
        if sensor.nic_pfc_rx > 0:
            reasons.append(f"{sensor.nic_pfc_rx:.0f} PFC frames rx")
        if reasons:
            report.abnormal_hosts.append((host, ", ".join(reasons)))
    return report

"""Evolving the monitoring system with pluggable detectors (Appendix D).

"To append the new anomaly to the automatic monitoring framework, we
just need to patch the new detector at the lower level (i.e., physical
layer).  With layer-by-layer abstraction, upper-level monitoring is
mainly responsible for identifying abnormal manifestations and locating
abnormal nodes, introducing minimal changes when dealing with new
failures."

A :class:`PhysicalDetector` inspects one device's physical-layer
telemetry and may produce a :class:`DetectorFinding`; the hierarchical
analyzer consults the registry when it has drilled down to a device but
needs a root-cause label.  The PCIe-induced PFC storm (§5) is the
canonical example: the incident took hours *before* the detector
existed and minutes after it was patched in — reproduced in the tests
by running the same scenario against registries with and without
:data:`pcie_pfc_detector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .telemetry import TelemetryStore

__all__ = [
    "DetectorFinding",
    "PhysicalDetector",
    "DetectorRegistry",
    "pcie_pfc_detector",
    "ecc_detector",
    "nvlink_detector",
    "default_registry",
    "pre_incident_registry",
]


@dataclass(frozen=True)
class DetectorFinding:
    """One detector's verdict on a device."""

    detector: str
    device: str
    cause: str
    action: str
    note: str


@dataclass(frozen=True)
class PhysicalDetector:
    """A named physical-layer inspection rule."""

    name: str
    inspect: Callable[[TelemetryStore, str],
                      Optional[DetectorFinding]]


def _pcie_inspect(store: TelemetryStore, device: str
                  ) -> Optional[DetectorFinding]:
    sensors = store.sensors_for(device)
    if not sensors:
        return None
    latest = sensors[-1]
    if latest.pcie_errors > 0 and latest.nic_pfc_rx > 0:
        return DetectorFinding(
            detector="pcie-pfc",
            device=device,
            cause="pcie-anomaly",
            action="isolate host: PCIe fault triggering PFC storm",
            note=(f"{latest.pcie_errors} PCIe errors with "
                  f"{latest.nic_pfc_rx:.0f} PFC frames received"),
        )
    return None


def _ecc_inspect(store: TelemetryStore, device: str
                 ) -> Optional[DetectorFinding]:
    sensors = store.sensors_for(device)
    if sensors and sensors[-1].ecc_errors > 0:
        return DetectorFinding(
            detector="ecc",
            device=device,
            cause="memory",
            action="isolate node for memory replacement",
            note=f"{sensors[-1].ecc_errors} uncorrectable ECC errors",
        )
    return None


def _nvlink_inspect(store: TelemetryStore, device: str
                    ) -> Optional[DetectorFinding]:
    sensors = store.sensors_for(device)
    if sensors and sensors[-1].nvlink_errors > 0:
        return DetectorFinding(
            detector="nvlink",
            device=device,
            cause="nvlink-degraded",
            action="run hostping; re-seat or isolate the GPU",
            note=f"{sensors[-1].nvlink_errors} NVLink CRC errors",
        )
    return None


pcie_pfc_detector = PhysicalDetector("pcie-pfc", _pcie_inspect)
ecc_detector = PhysicalDetector("ecc", _ecc_inspect)
nvlink_detector = PhysicalDetector("nvlink", _nvlink_inspect)


class DetectorRegistry:
    """Ordered collection of physical-layer detectors."""

    def __init__(self, detectors: Optional[List[PhysicalDetector]]
                 = None):
        self._detectors: List[PhysicalDetector] = list(detectors or [])

    def register(self, detector: PhysicalDetector) -> None:
        """Patch a new detector in (the Appendix-D evolution step)."""
        if any(d.name == detector.name for d in self._detectors):
            raise ValueError(
                f"detector {detector.name!r} already registered")
        self._detectors.append(detector)

    def names(self) -> List[str]:
        return [d.name for d in self._detectors]

    def inspect(self, store: TelemetryStore, device: str
                ) -> Optional[DetectorFinding]:
        """First matching finding for a device, if any."""
        for detector in self._detectors:
            finding = detector.inspect(store, device)
            if finding is not None:
                return finding
        return None


def pre_incident_registry() -> DetectorRegistry:
    """The registry as it stood before the §5 PCIe incident."""
    return DetectorRegistry([ecc_detector, nvlink_detector])


def default_registry() -> DetectorRegistry:
    """Today's registry: incident learnings patched in."""
    registry = pre_incident_registry()
    registry.register(pcie_pfc_detector)
    return registry

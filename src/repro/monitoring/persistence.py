"""Telemetry store persistence: JSON export/import.

Production telemetry outlives the job that produced it — the INT data
alone is retained for 15 days (Appendix C) — and offline analysis
(§3.1's fallback strategy) runs against stored logs.  This module
round-trips a :class:`~repro.monitoring.telemetry.TelemetryStore`
through JSON so campaigns can be archived and re-analyzed: a diagnosis
run on a reloaded store must reach the same verdict as on the live one.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List

from ..network.ecmp import FiveTuple
from .telemetry import (
    CommGroup,
    ErrCqeRecord,
    HostSensorRecord,
    IntPingRecord,
    IterationReport,
    JobMetadata,
    NcclTimelineRecord,
    QpMetadata,
    QpRateRecord,
    SflowPathRecord,
    SwitchCounterRecord,
    SyslogRecord,
    TelemetryStore,
)

__all__ = ["store_to_json", "store_from_json"]

_RECORD_TYPES = {
    "nccl_timeline": NcclTimelineRecord,
    "iterations": IterationReport,
    "qp_rates": QpRateRecord,
    "err_cqes": ErrCqeRecord,
    "sflow_paths": SflowPathRecord,
    "int_pings": IntPingRecord,
    "switch_counters": SwitchCounterRecord,
    "syslogs": SyslogRecord,
    "host_sensors": HostSensorRecord,
}


def _encode_value(value: Any) -> Any:
    if isinstance(value, FiveTuple):
        return {"__five_tuple__": dataclasses.asdict(value)}
    if isinstance(value, tuple):
        return list(value)
    return value


def _encode_record(record: Any) -> Dict[str, Any]:
    return {
        field.name: _encode_value(getattr(record, field.name))
        for field in dataclasses.fields(record)
    }


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__five_tuple__" in value:
        return FiveTuple(**value["__five_tuple__"])
    return value


def _decode_record(cls, payload: Dict[str, Any]):
    kwargs = {}
    for field in dataclasses.fields(cls):
        raw = _decode_value(payload[field.name])
        # Tuples round-trip as lists; restore by annotation name.
        if isinstance(raw, list) and "Tuple" in str(field.type):
            raw = tuple(raw)
        kwargs[field.name] = raw
    return cls(**kwargs)


def store_to_json(store: TelemetryStore, indent: int | None = None
                  ) -> str:
    """Serialize the full store (records + job metadata) to JSON."""
    payload: Dict[str, Any] = {
        bucket: [_encode_record(record)
                 for record in getattr(store, bucket)]
        for bucket in _RECORD_TYPES
    }
    payload["jobs"] = {
        name: {
            "job": meta.job,
            "hosts": list(meta.hosts),
            "comm_groups": [
                {
                    "name": group.name,
                    "kind": group.kind,
                    "hosts": list(group.hosts),
                    "qps": [
                        {
                            "qp": qp.qp,
                            "src_host": qp.src_host,
                            "dst_host": qp.dst_host,
                            "five_tuple": dataclasses.asdict(
                                qp.five_tuple),
                        }
                        for qp in group.qps
                    ],
                }
                for group in meta.comm_groups
            ],
        }
        for name, meta in store.jobs.items()
    }
    return json.dumps(payload, indent=indent)


def store_from_json(text: str) -> TelemetryStore:
    """Reconstruct a store previously written by :func:`store_to_json`."""
    payload = json.loads(text)
    store = TelemetryStore()
    for bucket, cls in _RECORD_TYPES.items():
        records: List[Any] = getattr(store, bucket)
        for item in payload.get(bucket, []):
            records.append(_decode_record(cls, item))
    for name, meta in payload.get("jobs", {}).items():
        groups = [
            CommGroup(
                name=group["name"],
                kind=group["kind"],
                hosts=list(group["hosts"]),
                qps=[
                    QpMetadata(
                        qp=qp["qp"],
                        src_host=qp["src_host"],
                        dst_host=qp["dst_host"],
                        five_tuple=FiveTuple(**qp["five_tuple"]),
                    )
                    for qp in group["qps"]
                ],
            )
            for group in meta["comm_groups"]
        ]
        store.register_job(JobMetadata(job=meta["job"],
                                       hosts=list(meta["hosts"]),
                                       comm_groups=groups))
    return store

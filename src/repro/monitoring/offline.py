"""Offline toolsets: pre-delivery checks and unhandled-failure fallback.

Paper §3.1/§5: 32% of failures stem from host environment and
configuration, so Astral runs systematic offline checks *before
delivering hosts to customers* and again when online monitoring cannot
resolve a failure.  Reproduced here:

* **Wiring verification** — collects each port's neighbor relationship
  (production: slot id + MAC + ARP via ``dmidecode``; here: the
  topology graph) and compares it with the architecture's wiring rules.
  This is the tool that ended the "stuck correcting wiring mistakes"
  phase of the deployment.
* **Configuration verification** — compares DCQCN/PFC parameters,
  NVIDIA driver and NCCL versions across hosts (production:
  ``nvidia-smi`` + NCCL logs); inconsistencies between customers'
  rented servers degraded training and caused failures.
* **Stress tests** — Hostping-style intra-host checks and GPU-burn
  runs against a host-health registry, reproducing hardware defects
  that online monitoring missed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..topology.astral import AstralParams
from ..topology.elements import DeviceKind, Topology

__all__ = [
    "WiringViolation",
    "verify_wiring",
    "HostConfig",
    "ConfigInconsistency",
    "verify_configs",
    "HostHealth",
    "StressTestReport",
    "OfflineToolset",
]


# --------------------------------------------------------------------------
# Wiring verification
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class WiringViolation:
    """One link wired against the architecture's rules."""

    host: str
    link_id: int
    actual_neighbor: str
    reason: str


def expected_wiring_table(params: Optional[AstralParams] = None
                          ) -> List[Tuple[str, int, str]]:
    """The (host, NIC port, ToR) table the on-site staff cable from.

    Rows are (host name, host port index, expected ToR name) for every
    host uplink of an Astral deployment — the "network topology rules"
    the wiring-verify tool compares collected slot/MAC/ARP data
    against (§5).
    """
    params = params or AstralParams()
    rows: List[Tuple[str, int, str]] = []
    for pod in range(params.pods):
        for block in range(params.blocks_per_pod):
            for host in range(params.hosts_per_block):
                host_name = f"p{pod}.b{block}.h{host}"
                for rail in range(params.rails):
                    for group in range(params.tor_groups):
                        port = rail * params.nic_ports + group
                        tor = (f"p{pod}.b{block}.r{rail}.g{group}"
                               ".tor")
                        rows.append((host_name, port, tor))
    return rows


def verify_wiring(topology: Topology,
                  params: Optional[AstralParams] = None
                  ) -> List[WiringViolation]:
    """Check every host uplink against the Astral wiring rules.

    Rules (from the architecture, §2.1): the NIC for rail ``r`` must
    connect only to ToRs of rail ``r`` in the host's own block and pod,
    one per ToR group (P3).
    """
    params = params or AstralParams()
    violations: List[WiringViolation] = []
    for host in topology.hosts():
        seen_groups: Dict[int, set] = {}
        for link in topology.links_of(host.name):
            neighbor = topology.devices[link.other(host.name)]
            if neighbor.kind is not DeviceKind.TOR:
                violations.append(WiringViolation(
                    host.name, link.link_id, neighbor.name,
                    "host uplink must terminate on a ToR switch"))
                continue
            port = link.endpoint(host.name).port
            expected_rail = port // params.nic_ports
            if neighbor.rail != expected_rail:
                violations.append(WiringViolation(
                    host.name, link.link_id, neighbor.name,
                    f"port {port} belongs to rail {expected_rail} but "
                    f"reaches a rail-{neighbor.rail} ToR"))
            if neighbor.block != host.block or neighbor.pod != host.pod:
                violations.append(WiringViolation(
                    host.name, link.link_id, neighbor.name,
                    "uplink leaves the host's own block"))
            groups = seen_groups.setdefault(expected_rail, set())
            if neighbor.group in groups:
                violations.append(WiringViolation(
                    host.name, link.link_id, neighbor.name,
                    f"duplicate ToR group {neighbor.group} on rail "
                    f"{expected_rail} (dual-ToR rule P3 violated)"))
            groups.add(neighbor.group)
    return violations


# --------------------------------------------------------------------------
# Configuration verification
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class HostConfig:
    """Delivery-relevant host software/NIC configuration."""

    nccl_version: str = "2.21.5"
    driver_version: str = "535.161.08"
    dcqcn_alpha_g: int = 1019
    dcqcn_rate_to_set_on_first_cnp: int = 85
    pfc_enabled: bool = True
    mtu: int = 4096


@dataclass(frozen=True)
class ConfigInconsistency:
    """A host disagreeing with the fleet majority on one field."""

    host: str
    fieldname: str
    value: object
    majority_value: object


def verify_configs(configs: Dict[str, HostConfig]
                   ) -> List[ConfigInconsistency]:
    """Majority-vote consistency check across hosts (§5 experience)."""
    if not configs:
        return []
    inconsistencies: List[ConfigInconsistency] = []
    fieldnames = [f for f in HostConfig.__dataclass_fields__]
    for fieldname in fieldnames:
        counts = Counter(getattr(cfg, fieldname)
                         for cfg in configs.values())
        majority, _ = counts.most_common(1)[0]
        for host, cfg in sorted(configs.items()):
            value = getattr(cfg, fieldname)
            if value != majority:
                inconsistencies.append(ConfigInconsistency(
                    host, fieldname, value, majority))
    return inconsistencies


# --------------------------------------------------------------------------
# Stress tests (Hostping / GPU Burn)
# --------------------------------------------------------------------------

@dataclass
class HostHealth:
    """Ground-truth hardware health used by the offline stress tools."""

    gpu_defect: bool = False
    memory_defect: bool = False
    pcie_degraded: bool = False
    nvlink_degraded: bool = False


@dataclass(frozen=True)
class StressTestReport:
    host: str
    tool: str
    passed: bool
    detail: str = ""


class OfflineToolset:
    """Pre-delivery / fallback test battery for a set of hosts."""

    def __init__(self, health: Optional[Dict[str, HostHealth]] = None):
        self.health = health or {}

    def _health(self, host: str) -> HostHealth:
        return self.health.get(host, HostHealth())

    def gpu_burn(self, host: str) -> StressTestReport:
        """Sustained-compute stress: catches GPU and memory defects."""
        health = self._health(host)
        if health.gpu_defect:
            return StressTestReport(host, "gpu-burn", False,
                                    "Xid error under sustained load")
        if health.memory_defect:
            return StressTestReport(host, "gpu-burn", False,
                                    "uncorrectable ECC during burn")
        return StressTestReport(host, "gpu-burn", True)

    def hostping(self, host: str) -> StressTestReport:
        """Intra-host interconnect check (PCIe/NVLink bandwidth)."""
        health = self._health(host)
        if health.pcie_degraded:
            return StressTestReport(host, "hostping", False,
                                    "GPU-NIC PCIe bandwidth below spec")
        if health.nvlink_degraded:
            return StressTestReport(host, "hostping", False,
                                    "NVLink lane degraded")
        return StressTestReport(host, "hostping", True)

    def run_all(self, hosts) -> List[StressTestReport]:
        reports = []
        for host in hosts:
            reports.append(self.gpu_burn(host))
            reports.append(self.hostping(host))
        return reports

    def defective_hosts(self, hosts) -> List[str]:
        return sorted({report.host for report in self.run_all(hosts)
                       if not report.passed})

    def template_model_test(self, fabric, hosts,
                            iterations: int = 3,
                            tolerance: float = 1.3
                            ) -> StressTestReport:
        """End-to-end template-model training on the suspect hosts.

        §3.2: "when encountering failures that cannot be resolved
        online, we conduct offline training on some template models to
        perform end-to-end testing."  A small training job runs on the
        isolated host set over the *current* fabric; its measured
        iteration time is compared against the Seer-style expectation
        computed for a healthy substrate, so silent degradations (a
        crawling NIC, a half-dead link) show up as a failed check even
        when every per-component probe passes.
        """
        from .jobsim import JobConfig, MonitoredTrainingJob
        config = JobConfig(name="template-test", hosts=tuple(hosts),
                           iterations=iterations,
                           compute_time_s=0.1, comm_size_bits=8e9)
        result = MonitoredTrainingJob(fabric, config).run()
        # Expectation for a *healthy* substrate: uncontended ring legs
        # at NIC line rate (the jobsim's own expectation would inherit
        # whatever degradation the fabric currently carries).
        n = max(2, len(hosts))
        wire_bits = 2.0 * (n - 1) / n * config.comm_size_bits
        expected = config.compute_time_s * 1.05 \
            + wire_bits / (fabric.host_line_rate_gbps * 1e9)
        measured = [snap.iteration_time_s for snap in result.snapshots]
        worst = max(measured) if measured else float("inf")
        label = ",".join(list(hosts)[:2]) + ("..." if len(hosts) > 2
                                             else "")
        if result.aborted or result.hung:
            return StressTestReport(
                label, "template-model", False,
                "template training did not complete")
        if result.store.err_cqes:
            return StressTestReport(
                label, "template-model", False,
                f"{len(result.store.err_cqes)} RDMA errors during "
                "template training (connectivity)")
        if worst > expected * tolerance:
            return StressTestReport(
                label, "template-model", False,
                f"iteration {worst:.3f}s vs expected "
                f"{expected:.3f}s")
        return StressTestReport(label, "template-model", True)

"""Layered telemetry collectors (application/transport/network/physical)."""

from .base import HostState, IterationSnapshot
from .layers import (
    AppCollector,
    FullStackCollector,
    NetworkCollector,
    PhysicalCollector,
    TransportCollector,
)

__all__ = [
    "AppCollector",
    "FullStackCollector",
    "HostState",
    "IterationSnapshot",
    "NetworkCollector",
    "PhysicalCollector",
    "TransportCollector",
]

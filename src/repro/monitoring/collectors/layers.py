"""Per-layer telemetry collectors (paper Figure 8).

Each collector turns an :class:`IterationSnapshot` into the records its
production counterpart would emit:

* :class:`AppCollector` — NCCL timeline (per-host compute/communication
  time and work-request progress) and the per-iteration report.
* :class:`TransportCollector` — millisecond-level QP rate samples
  (RETH-parsed throughput) and errCQE events.
* :class:`NetworkCollector` — sFlow path reconstruction and INT-armed
  ping hop latencies.
* :class:`PhysicalCollector` — switch internal counters, host sensor
  readings, and device syslogs.

Collectors only read the parts of the snapshot their layer could see;
the cross-layer join keys (QP <-> five-tuple <-> path <-> devices) are
what the analyzer later uses to stitch them back together.
"""

from __future__ import annotations

from typing import Iterable

from ...network.congestion import CongestionModel
from ..telemetry import (
    ErrCqeRecord,
    HostSensorRecord,
    IntPingRecord,
    IterationReport,
    NcclTimelineRecord,
    QpRateRecord,
    SflowPathRecord,
    SwitchCounterRecord,
    SyslogRecord,
    TelemetryStore,
)
from .base import IterationSnapshot

__all__ = [
    "AppCollector",
    "TransportCollector",
    "NetworkCollector",
    "PhysicalCollector",
    "FullStackCollector",
]


class AppCollector:
    """Application layer: training progress monitoring."""

    def collect(self, snap: IterationSnapshot,
                store: TelemetryStore) -> None:
        for state in snap.hosts.values():
            store.add(NcclTimelineRecord(
                time_s=snap.time_s,
                job=snap.job.job,
                host=state.host,
                iteration=snap.iteration,
                compute_time_s=state.compute_time_s,
                comm_time_s=state.comm_time_s,
                started=state.started,
                finished=state.finished,
            ))
        store.add(IterationReport(
            time_s=snap.time_s,
            job=snap.job.job,
            iteration=snap.iteration,
            iteration_time_s=snap.iteration_time_s,
            completed=snap.completed,
        ))


class TransportCollector:
    """Transport layer: ms-level QP rates and RDMA error events."""

    def collect(self, snap: IterationSnapshot,
                store: TelemetryStore) -> None:
        for flow in snap.flows:
            store.add(QpRateRecord(
                time_s=snap.time_s,
                host=flow.src_host,
                qp=flow.qp,
                five_tuple=flow.five_tuple,
                rate_gbps=flow.rate_gbps,
            ))
        for host, qp, five_tuple, error in snap.err_cqes:
            store.add(ErrCqeRecord(
                time_s=snap.time_s,
                host=host,
                qp=qp,
                five_tuple=five_tuple,
                error=error,
            ))


class NetworkCollector:
    """Network layer: sFlow path reconstruction + INT pingmesh."""

    def collect(self, snap: IterationSnapshot,
                store: TelemetryStore) -> None:
        for flow in snap.flows:
            path = snap.paths.get(flow.flow_id)
            if path is None:
                continue
            store.add(SflowPathRecord(
                time_s=snap.time_s,
                five_tuple=flow.five_tuple,
                devices=tuple(path.devices),
                link_ids=tuple(path.link_ids),
            ))
            latencies = []
            for device, link_id in zip(path.devices, path.link_ids):
                link_dir = self._link_dir(snap, device, link_id)
                state = snap.congestion.get(link_dir)
                latencies.append(
                    state.hop_latency_us if state is not None else 0.6)
            store.add(IntPingRecord(
                time_s=snap.time_s,
                five_tuple=flow.five_tuple,
                devices=tuple(path.devices),
                hop_latencies_us=tuple(latencies),
            ))

    @staticmethod
    def _link_dir(snap: IterationSnapshot, device: str, link_id: int):
        # Reconstruct the directed-hop key used by the fabric.
        for key in ((link_id, True), (link_id, False)):
            if key in snap.congestion:
                return key
        return (link_id, True)


class PhysicalCollector:
    """Physical layer: switch counters, host sensors, syslogs."""

    def __init__(self, topology) -> None:
        self.topology = topology

    def collect(self, snap: IterationSnapshot,
                store: TelemetryStore) -> None:
        for (link_id, forward), state in snap.congestion.items():
            link = self.topology.links[link_id]
            # The counter lives on the switch whose egress queue it is —
            # the upstream endpoint of the directed hop.
            device = link.a.device if forward else link.b.device
            store.add(SwitchCounterRecord(
                time_s=snap.time_s,
                device=device,
                link_id=link_id,
                ecn_marks=state.ecn_marks_per_poll,
                pfc_pause=state.pfc_pause_events,
                utilization=state.utilization,
            ))
        for state in snap.hosts.values():
            store.add(HostSensorRecord(
                time_s=snap.time_s,
                host=state.host,
                gpu_util=state.gpu_util,
                cpu_util=state.cpu_util,
                ecc_errors=state.ecc_errors,
                pcie_errors=state.pcie_errors,
                nic_pfc_rx=state.nic_pfc_rx,
            ))
        for device, severity, message, fatal in snap.syslogs:
            store.add(SyslogRecord(
                time_s=snap.time_s,
                device=device,
                severity=severity,
                message=message,
                fatal=fatal,
            ))


class FullStackCollector:
    """All four layers wired together (the Figure-8 stack)."""

    def __init__(self, topology) -> None:
        self.app = AppCollector()
        self.transport = TransportCollector()
        self.network = NetworkCollector()
        self.physical = PhysicalCollector(topology)

    def collect(self, snap: IterationSnapshot,
                store: TelemetryStore) -> None:
        self.app.collect(snap, store)
        self.transport.collect(snap, store)
        self.network.collect(snap, store)
        self.physical.collect(snap, store)

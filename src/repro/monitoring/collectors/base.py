"""Shared state handed from the job simulator to the layer collectors.

The production system's collectors observe a *running cluster*; here the
cluster is simulated, and each iteration produces an
:class:`IterationSnapshot` of ground truth.  Collectors translate the
snapshot into telemetry records — each one seeing only what its layer
could see in production (e.g. the transport collector sees QP rates but
not which switch is congested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...network.congestion import LinkCongestion
from ...network.fabric import LinkDir
from ...network.flows import Flow, FlowPath
from ..telemetry import JobMetadata

__all__ = ["HostState", "IterationSnapshot"]


@dataclass
class HostState:
    """Ground-truth per-host state for one iteration."""

    host: str
    compute_time_s: float
    comm_time_s: float
    started: int = 1
    finished: int = 1
    crashed: bool = False
    hung: bool = False
    gpu_util: float = 0.95
    cpu_util: float = 0.30
    ecc_errors: int = 0
    pcie_errors: int = 0
    nic_pfc_rx: float = 0.0


@dataclass
class IterationSnapshot:
    """Everything observable about one iteration of a simulated job."""

    time_s: float
    iteration: int
    job: JobMetadata
    hosts: Dict[str, HostState]
    flows: List[Flow] = field(default_factory=list)
    paths: Dict[int, FlowPath] = field(default_factory=dict)
    congestion: Dict[LinkDir, LinkCongestion] = field(default_factory=dict)
    #: (host, qp, five_tuple, error) tuples raised this iteration.
    err_cqes: List[Tuple[str, int, object, str]] = field(
        default_factory=list)
    #: (device, severity, message, fatal) log lines emitted.
    syslogs: List[Tuple[str, str, str, bool]] = field(default_factory=list)
    completed: bool = True
    aborted: bool = False

    @property
    def iteration_time_s(self) -> float:
        if not self.hosts:
            return 0.0
        return max(state.compute_time_s + state.comm_time_s
                   for state in self.hosts.values())

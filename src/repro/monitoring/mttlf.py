"""Mean Time To Locate Failure model (paper Figure 10).

Figure 10 compares fault-localization time before and after the
monitoring system's deployment: fail-stop and fail-hang MTTLF dropped
to minutes (up to 12x and 25x reductions) and fail-slow shortened by
nearly 5x.

The two regimes are modelled mechanistically:

* **Manual localization** reflects the pre-deployment workflows the
  paper recounts (§5): reading scattered logs across hosts for
  fail-stop; binary-search/batch machine replacement for fail-hang
  (the 26-hour driver-bug hunt, ~1 hour per replace-and-rerun round);
  long observation windows for fail-slow.  Costs grow with cluster
  size.
* **Automated localization** is the hierarchical analyzer: an alert
  latency plus a few minutes per drill-down step, plus a
  manifestation-dependent evidence-collection overhead (a hang only
  reveals itself after collective timeouts; fail-slow needs rate and
  INT samples accumulated over time).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from .analyzer.hierarchical import Diagnosis
from .faults import Manifestation

__all__ = ["MttlfModel", "LocalizationSample", "MttlfReport"]


@dataclass(frozen=True)
class LocalizationSample:
    """One fault's localization time under both regimes (hours)."""

    manifestation: Manifestation
    manual_hours: float
    automated_hours: float

    @property
    def speedup(self) -> float:
        if self.automated_hours <= 0:
            return float("inf")
        return self.manual_hours / self.automated_hours


@dataclass
class MttlfReport:
    """Aggregate Figure-10 style summary per manifestation."""

    samples: List[LocalizationSample] = field(default_factory=list)

    def mean_hours(self, manifestation: Manifestation,
                   regime: str = "manual") -> float:
        values = [
            (s.manual_hours if regime == "manual" else s.automated_hours)
            for s in self.samples if s.manifestation is manifestation
        ]
        return sum(values) / len(values) if values else 0.0

    def mean_speedup(self, manifestation: Manifestation) -> float:
        manual = self.mean_hours(manifestation, "manual")
        automated = self.mean_hours(manifestation, "automated")
        return manual / automated if automated > 0 else float("inf")


class MttlfModel:
    """Localization-cost model calibrated to the paper's reductions."""

    #: manual workflow constants (hours).
    MANUAL_BASE = {
        Manifestation.FAIL_STOP: 1.0,
        Manifestation.FAIL_HANG: 2.0,
        Manifestation.FAIL_SLOW: 4.0,
        Manifestation.FAIL_ON_START: 0.5,
    }
    #: per-halving cost of the manual search (hours): log-reading for
    #: stop, replace-and-rerun rounds (~1h each, several machines per
    #: round) for hang, observation windows for slow.
    MANUAL_PER_ROUND = {
        Manifestation.FAIL_STOP: 0.5,
        Manifestation.FAIL_HANG: 4.0,
        Manifestation.FAIL_SLOW: 1.0,
        Manifestation.FAIL_ON_START: 0.25,
    }
    #: automated evidence-collection overhead (hours).
    AUTO_OVERHEAD = {
        Manifestation.FAIL_STOP: 0.10,
        Manifestation.FAIL_HANG: 0.85,
        Manifestation.FAIL_SLOW: 1.80,
        Manifestation.FAIL_ON_START: 0.05,
    }
    ALERT_LATENCY_H = 1.0 / 30.0   # two minutes to alert
    STEP_HOURS = 0.05              # three minutes per drill-down step

    def __init__(self, n_hosts: int = 64, jitter_frac: float = 0.15,
                 seed: int = 0):
        if n_hosts < 2:
            raise ValueError("cluster needs at least 2 hosts")
        self.n_hosts = n_hosts
        self.jitter_frac = jitter_frac
        self._rng = random.Random(seed)

    # -- per-fault costs ----------------------------------------------------
    def manual_hours(self, manifestation: Manifestation) -> float:
        rounds = math.ceil(math.log2(self.n_hosts))
        base = self.MANUAL_BASE[manifestation]
        per_round = self.MANUAL_PER_ROUND[manifestation]
        return self._jitter(base + per_round * rounds)

    def automated_hours(self, manifestation: Manifestation,
                        diagnosis: Optional[Diagnosis] = None) -> float:
        steps = diagnosis.drill_down_steps if diagnosis is not None else 5
        localized = diagnosis.localized if diagnosis is not None else True
        hours = (self.ALERT_LATENCY_H
                 + steps * self.STEP_HOURS
                 + self.AUTO_OVERHEAD[manifestation])
        if not localized:
            # Unrecognized anomaly: fall back to offline analysis (§3.3,
            # Appendix D) — charge a manual-style investigation.
            hours += 0.5 * self.manual_hours(manifestation)
        return self._jitter(hours)

    def localization_delay_s(self, manifestation: Manifestation,
                             diagnosis: Optional[Diagnosis] = None,
                             automated: bool = True) -> float:
        """Localization time in *seconds* — the delay a recovery
        pipeline waits on the simulated clock between detecting a
        fault and acting on its root cause."""
        hours = (self.automated_hours(manifestation, diagnosis)
                 if automated else self.manual_hours(manifestation))
        return hours * 3600.0

    def sample(self, manifestation: Manifestation,
               diagnosis: Optional[Diagnosis] = None
               ) -> LocalizationSample:
        return LocalizationSample(
            manifestation=manifestation,
            manual_hours=self.manual_hours(manifestation),
            automated_hours=self.automated_hours(manifestation,
                                                 diagnosis),
        )

    def campaign(self, manifestations: List[Manifestation],
                 diagnoses: Optional[List[Optional[Diagnosis]]] = None
                 ) -> MttlfReport:
        report = MttlfReport()
        for index, manifestation in enumerate(manifestations):
            diagnosis = None
            if diagnoses is not None and index < len(diagnoses):
                diagnosis = diagnoses[index]
            report.samples.append(self.sample(manifestation, diagnosis))
        return report

    def _jitter(self, hours: float) -> float:
        factor = 1.0 + self._rng.uniform(-self.jitter_frac,
                                         self.jitter_frac)
        return hours * factor

"""Telemetry record types for the full-stack monitoring system (§3.2).

Each monitoring layer emits typed records; what makes the system *one*
system rather than four silos is the deliberately maintained join keys
(§3.2, last paragraph):

* application layer keeps the **host list** and **communication group
  info including QP data** per training task;
* QP data carries the **five-tuple**, linking down to transport-layer
  rate/error records;
* the five-tuple keys the sFlow **path database** and INT-pingmesh
  validation, linking down to hop-by-hop **devices**;
* devices key the physical-layer counters and syslogs.

All records share a ``time_s`` stamp and a ``layer`` tag so the
hierarchical analyzer can walk the stack top-down.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..network.ecmp import FiveTuple

__all__ = [
    "Layer",
    "NcclTimelineRecord",
    "IterationReport",
    "QpRateRecord",
    "ErrCqeRecord",
    "SflowPathRecord",
    "IntPingRecord",
    "SwitchCounterRecord",
    "SyslogRecord",
    "HostSensorRecord",
    "QpMetadata",
    "CommGroup",
    "JobMetadata",
    "TelemetryStore",
]


class Layer(enum.Enum):
    APPLICATION = "application"
    TRANSPORT = "transport"
    NETWORK = "network"
    PHYSICAL = "physical"


# --------------------------------------------------------------------------
# Application layer
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class NcclTimelineRecord:
    """Per-host, per-iteration NCCL operator timing.

    ``started``/``finished`` are work-request counts within the
    iteration; a hang shows as started > finished persisting over time.
    """

    time_s: float
    job: str
    host: str
    iteration: int
    compute_time_s: float
    comm_time_s: float
    started: int
    finished: int

    layer = Layer.APPLICATION

    @property
    def incomplete(self) -> bool:
        return self.finished < self.started


@dataclass(frozen=True)
class IterationReport:
    """Aggregate per-iteration progress of a whole job."""

    time_s: float
    job: str
    iteration: int
    iteration_time_s: float
    completed: bool

    layer = Layer.APPLICATION


# --------------------------------------------------------------------------
# Transport layer
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class QpRateRecord:
    """Millisecond-resolution QP throughput sample.

    Produced by filtering the first packet of each RDMA request and
    parsing the DMA length from the RETH header (§3.2) — here, sampled
    from the flow's allocated rate.
    """

    time_s: float
    host: str
    qp: int
    five_tuple: FiveTuple
    rate_gbps: float
    interval_ms: float = 1.0

    layer = Layer.TRANSPORT


@dataclass(frozen=True)
class ErrCqeRecord:
    """A Completion Queue Entry error event (failed RDMA transmission)."""

    time_s: float
    host: str
    qp: int
    five_tuple: FiveTuple
    error: str = "IBV_WC_RETRY_EXC_ERR"

    layer = Layer.TRANSPORT


# --------------------------------------------------------------------------
# Network layer
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SflowPathRecord:
    """Reconstructed flow path from sampled packets (§3.2 network layer).

    ``devices`` is the hop sequence including end hosts; ``egress_ports``
    is per-switch egress port info where sampled.
    """

    time_s: float
    five_tuple: FiveTuple
    devices: Tuple[str, ...]
    link_ids: Tuple[int, ...] = ()

    layer = Layer.NETWORK


@dataclass(frozen=True)
class IntPingRecord:
    """INT-armed ping: hop-by-hop latency along a validated path."""

    time_s: float
    five_tuple: FiveTuple
    devices: Tuple[str, ...]
    hop_latencies_us: Tuple[float, ...]

    layer = Layer.NETWORK

    def worst_hop(self) -> Tuple[int, float]:
        """(hop index, latency) of the slowest hop."""
        if not self.hop_latencies_us:
            raise ValueError("INT record has no hops")
        index = max(range(len(self.hop_latencies_us)),
                    key=lambda i: self.hop_latencies_us[i])
        return index, self.hop_latencies_us[index]


# --------------------------------------------------------------------------
# Physical layer
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SwitchCounterRecord:
    """Per-link switch-internal counters (SNMP/telemetry export)."""

    time_s: float
    device: str
    link_id: int
    ecn_marks: float = 0.0
    pfc_pause: float = 0.0
    drops: float = 0.0
    utilization: float = 0.0

    layer = Layer.PHYSICAL


@dataclass(frozen=True)
class SyslogRecord:
    """A device-internal log line (host or switch)."""

    time_s: float
    device: str
    severity: str
    message: str
    fatal: bool = False

    layer = Layer.PHYSICAL


@dataclass(frozen=True)
class HostSensorRecord:
    """End-host diagnostics: compute units, memory, interconnects."""

    time_s: float
    host: str
    gpu_util: float = 0.0
    cpu_util: float = 0.0
    ecc_errors: int = 0
    pcie_errors: int = 0
    nvlink_errors: int = 0
    nic_cnp: float = 0.0
    nic_pfc_rx: float = 0.0

    layer = Layer.PHYSICAL


# --------------------------------------------------------------------------
# Join-key metadata (maintained by the application layer)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class QpMetadata:
    """One QP of a communication group, with its five-tuple."""

    qp: int
    src_host: str
    dst_host: str
    five_tuple: FiveTuple


@dataclass
class CommGroup:
    """A communication group (e.g. one DP ring or EP all-to-all set)."""

    name: str
    kind: str                   # "allreduce" / "all_to_all" / ...
    hosts: List[str]
    qps: List[QpMetadata] = field(default_factory=list)

    def qp_for_five_tuple(self, five_tuple: FiveTuple
                          ) -> Optional[QpMetadata]:
        for qp in self.qps:
            if qp.five_tuple == five_tuple:
                return qp
        return None


@dataclass
class JobMetadata:
    """Everything the monitoring system maintains per training task."""

    job: str
    hosts: List[str]
    comm_groups: List[CommGroup] = field(default_factory=list)

    def qps(self) -> List[QpMetadata]:
        return [qp for group in self.comm_groups for qp in group.qps]

    def five_tuple_of_qp(self, qp: int) -> Optional[FiveTuple]:
        for meta in self.qps():
            if meta.qp == qp:
                return meta.five_tuple
        return None


# --------------------------------------------------------------------------
# Store
# --------------------------------------------------------------------------

class TelemetryStore:
    """In-memory store of all collected records, indexed per layer.

    This plays the role of the production log/metric warehouse; the
    analyzer only ever queries it through layer- and key-scoped reads,
    mirroring how the real system consolidates heterogeneous logs.
    """

    def __init__(self) -> None:
        self.nccl_timeline: List[NcclTimelineRecord] = []
        self.iterations: List[IterationReport] = []
        self.qp_rates: List[QpRateRecord] = []
        self.err_cqes: List[ErrCqeRecord] = []
        self.sflow_paths: List[SflowPathRecord] = []
        self.int_pings: List[IntPingRecord] = []
        self.switch_counters: List[SwitchCounterRecord] = []
        self.syslogs: List[SyslogRecord] = []
        self.host_sensors: List[HostSensorRecord] = []
        self.jobs: Dict[str, JobMetadata] = {}

    # -- writers ------------------------------------------------------------
    def register_job(self, metadata: JobMetadata) -> None:
        self.jobs[metadata.job] = metadata

    def add(self, record) -> None:
        """Dispatch a record to its layer's list by type."""
        buckets = {
            NcclTimelineRecord: self.nccl_timeline,
            IterationReport: self.iterations,
            QpRateRecord: self.qp_rates,
            ErrCqeRecord: self.err_cqes,
            SflowPathRecord: self.sflow_paths,
            IntPingRecord: self.int_pings,
            SwitchCounterRecord: self.switch_counters,
            SyslogRecord: self.syslogs,
            HostSensorRecord: self.host_sensors,
        }
        bucket = buckets.get(type(record))
        if bucket is None:
            raise TypeError(f"unknown telemetry type: {type(record)}")
        bucket.append(record)

    # -- scoped reads (the analyzer's query surface) ---------------------------
    def timeline_for(self, job: str, iteration: Optional[int] = None
                     ) -> List[NcclTimelineRecord]:
        records = [r for r in self.nccl_timeline if r.job == job]
        if iteration is not None:
            records = [r for r in records if r.iteration == iteration]
        return records

    def qp_rates_for(self, five_tuple: FiveTuple) -> List[QpRateRecord]:
        return [r for r in self.qp_rates if r.five_tuple == five_tuple]

    def err_cqes_for_job(self, job: str) -> List[ErrCqeRecord]:
        meta = self.jobs.get(job)
        if meta is None:
            return []
        tuples = {qp.five_tuple for qp in meta.qps()}
        return [r for r in self.err_cqes if r.five_tuple in tuples]

    def path_for(self, five_tuple: FiveTuple,
                 before_s: Optional[float] = None
                 ) -> Optional[SflowPathRecord]:
        """Latest reconstructed path for a flow.

        With ``before_s``, return the path as of *strictly before* that
        time — essential for failure analysis: after a link dies the
        flow reroutes, and only the historical record still shows the
        path that crossed the failed element.
        """
        fallback = None
        for record in reversed(self.sflow_paths):
            if record.five_tuple != five_tuple:
                continue
            if before_s is None or record.time_s < before_s:
                return record
            if fallback is None:
                fallback = record
        return fallback

    def int_ping_for(self, five_tuple: FiveTuple
                     ) -> Optional[IntPingRecord]:
        for record in reversed(self.int_pings):
            if record.five_tuple == five_tuple:
                return record
        return None

    def counters_for_device(self, device: str
                            ) -> List[SwitchCounterRecord]:
        return [r for r in self.switch_counters if r.device == device]

    def syslogs_for(self, device: str, fatal_only: bool = False
                    ) -> List[SyslogRecord]:
        records = [r for r in self.syslogs if r.device == device]
        if fatal_only:
            records = [r for r in records if r.fatal]
        return records

    def sensors_for(self, host: str) -> List[HostSensorRecord]:
        return [r for r in self.host_sensors if r.host == host]

    # -- wire format (shared by twin streams and offline analysis) -------
    _BUCKETS = (
        ("nccl_timeline", "nccl-timeline"),
        ("iterations", "iteration"),
        ("qp_rates", "qp-rate"),
        ("err_cqes", "err-cqe"),
        ("sflow_paths", "sflow-path"),
        ("int_pings", "int-ping"),
        ("switch_counters", "switch-counter"),
        ("syslogs", "syslog"),
        ("host_sensors", "host-sensor"),
    )

    def to_jsonl(self) -> str:
        """Serialize every record (and job metadata) as NDJSON.

        One type-tagged JSON object per line; job-metadata lines come
        first, then each layer bucket in declaration order, preserving
        insertion order within a bucket — so
        ``from_jsonl(store.to_jsonl()) == store`` exactly.
        """
        lines: List[str] = []
        for job in self.jobs.values():
            payload = asdict(job)
            payload["type"] = "job-metadata"
            lines.append(json.dumps(payload, sort_keys=True))
        for attr, tag in self._BUCKETS:
            for record in getattr(self, attr):
                payload = asdict(record)
                payload["type"] = tag
                lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "TelemetryStore":
        """Rebuild a store from :meth:`to_jsonl` output."""
        store = cls()
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"telemetry line {number} is not JSON: {exc}"
                ) from None
            if not isinstance(payload, dict) or "type" not in payload:
                raise ValueError(
                    f"telemetry line {number} has no 'type' tag")
            tag = payload.pop("type")
            if tag == "job-metadata":
                store.register_job(_job_from_wire(payload, number))
                continue
            store.add(_record_from_wire(tag, payload, number))
        return store

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TelemetryStore):
            return NotImplemented
        return (self.jobs == other.jobs
                and all(getattr(self, attr) == getattr(other, attr)
                        for attr, _ in self._BUCKETS))

    __hash__ = None  # mutable container


_WIRE_TYPES = {
    "nccl-timeline": NcclTimelineRecord,
    "iteration": IterationReport,
    "qp-rate": QpRateRecord,
    "err-cqe": ErrCqeRecord,
    "sflow-path": SflowPathRecord,
    "int-ping": IntPingRecord,
    "switch-counter": SwitchCounterRecord,
    "syslog": SyslogRecord,
    "host-sensor": HostSensorRecord,
}
#: record fields declared as tuples — JSON round-trips them as lists,
#: so rebuild coerces them back for frozen-dataclass equality.
_TUPLE_FIELDS = ("devices", "link_ids", "hop_latencies_us")


def _record_from_wire(tag: str, payload: Dict, number: int):
    record_cls = _WIRE_TYPES.get(tag)
    if record_cls is None:
        raise ValueError(
            f"telemetry line {number}: unknown record type {tag!r}; "
            f"expected one of {sorted(_WIRE_TYPES)} or 'job-metadata'")
    fields = dict(payload)
    if "five_tuple" in fields:
        fields["five_tuple"] = FiveTuple(**fields["five_tuple"])
    for name in _TUPLE_FIELDS:
        if name in fields:
            fields[name] = tuple(fields[name])
    try:
        return record_cls(**fields)
    except TypeError as exc:
        raise ValueError(f"telemetry line {number}: {exc}") from None


def _job_from_wire(payload: Dict, number: int) -> JobMetadata:
    try:
        groups = [
            CommGroup(
                name=group["name"], kind=group["kind"],
                hosts=list(group["hosts"]),
                qps=[QpMetadata(
                    qp=qp["qp"], src_host=qp["src_host"],
                    dst_host=qp["dst_host"],
                    five_tuple=FiveTuple(**qp["five_tuple"]))
                    for qp in group.get("qps", ())])
            for group in payload.get("comm_groups", ())
        ]
        return JobMetadata(job=payload["job"],
                           hosts=list(payload["hosts"]),
                           comm_groups=groups)
    except (KeyError, TypeError) as exc:
        raise ValueError(f"telemetry line {number}: malformed "
                         f"job-metadata: {exc}") from None

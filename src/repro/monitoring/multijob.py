"""Multiple tenants sharing one fabric: congestion blast radius (§5).

"PCIe issue causes PFC storms, halving the performance of the entire
cluster running multiple jobs."  The failure mechanism is the shared
fabric: one host's PFC storm backs congestion up into links that other
customers' jobs also traverse.  :class:`MultiJobRun` co-schedules
several monitored jobs on one fabric: each job runs as its own process
on one shared :class:`~repro.simcore.Simulator`, all of their
collectives land on one :class:`~repro.network.engine.FabricEngine`,
and whenever two tenants are communicating *at the same simulated
time* their flows contend for bandwidth — so a fault injected into one
tenant's job measurably degrades the innocent tenants, for exactly as
long as the storm lasts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..network.congestion import CongestionModel
from ..network.engine import FabricEngine
from ..network.fabric import Fabric
from ..simcore import Simulator
from .collectors.base import IterationSnapshot
from .collectors.layers import FullStackCollector
from .faults import FaultSpec
from .jobsim import JobConfig, MonitoredTrainingJob
from .telemetry import TelemetryStore

__all__ = ["MultiJobRun", "JobOutcome"]


@dataclass
class JobOutcome:
    """Per-job result of a co-scheduled run."""

    job: str
    iteration_times_s: List[float] = field(default_factory=list)
    expected_iteration_s: float = 0.0

    @property
    def mean_iteration_s(self) -> float:
        if not self.iteration_times_s:
            return 0.0
        return sum(self.iteration_times_s) \
            / len(self.iteration_times_s)

    @property
    def efficiency(self) -> float:
        """Achieved vs expected iteration throughput (1.0 = nominal)."""
        if self.mean_iteration_s <= 0:
            return 1.0
        return self.expected_iteration_s / self.mean_iteration_s


class MultiJobRun:
    """Co-schedule several monitored jobs on one shared fabric."""

    @classmethod
    def from_cluster(cls, fabric: Fabric, records,
                     iterations: int = 4,
                     compute_time_s: float = 0.5,
                     comm_size_bits: float = 8e9,
                     faults: Optional[Dict[str, FaultSpec]] = None,
                     seed: int = 0) -> "MultiJobRun":
        """Build a contention run from cluster-scheduler placements.

        ``records`` are :class:`repro.cluster.JobRecord`-shaped objects
        (anything with ``name``, ``final_hosts`` and optionally
        ``first_start_s``), typically ``ClusterReport.peak_concurrent()``:
        the tenants the scheduler actually packed onto the fabric
        together.  Single-host records are skipped — they generate no
        fabric flows.

        The scheduler's start times carry over onto the fabric clock as
        *iteration phase*: tenants that started at different wall-clock
        moments have de-phased iteration boundaries (offset modulo the
        nominal iteration period), so their collectives overlap
        partially rather than in artificial lockstep.  The multi-hour
        absolute offsets themselves are folded away — the contention run
        reproduces the peak-concurrency window, not the calendar.
        """
        kept = [record for record in records
                if len(record.final_hosts) >= 2]
        starts = [getattr(record, "first_start_s", None) or 0.0
                  for record in kept]
        base = min(starts) if starts else 0.0
        period = max(compute_time_s, 1e-9)
        configs = [
            JobConfig(name=record.name,
                      hosts=tuple(record.final_hosts),
                      iterations=iterations,
                      compute_time_s=compute_time_s,
                      comm_size_bits=comm_size_bits,
                      seed=seed,
                      start_time_s=(start - base) % period)
            for record, start in zip(kept, starts)
        ]
        if not configs:
            raise ValueError(
                "no multi-host placements to co-schedule; run the "
                "cluster scheduler first (or with larger jobs)")
        return cls(fabric, configs, faults=faults)

    def __init__(self, fabric: Fabric, configs: List[JobConfig],
                 faults: Optional[Dict[str, FaultSpec]] = None,
                 store: Optional[TelemetryStore] = None):
        if not configs:
            raise ValueError("need at least one job")
        names = [config.name for config in configs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")
        self.fabric = fabric
        self.store = store or TelemetryStore()
        self.congestion = CongestionModel()
        faults = faults or {}
        self._jobs = [
            MonitoredTrainingJob(fabric, config,
                                 fault=faults.get(config.name),
                                 store=self.store)
            for config in configs
        ]

    def run(self) -> Dict[str, JobOutcome]:
        """Run all jobs as processes on one shared clock and engine.

        PFC spreading is on and *dynamic*: the engine re-derives the
        backpressure multipliers from the flows actually in flight at
        each solve, so one tenant's storm backs up into the links the
        other tenants traverse exactly while the storm's traffic is on
        them (§5 incident).
        """
        collector = FullStackCollector(self.fabric.topology)
        sim = Simulator()
        engine = FabricEngine(self.fabric, sim=sim, pfc_spreading=True,
                              congestion=self.congestion)
        outcomes: Dict[str, JobOutcome] = {}
        snapshots: Dict[str, List[IterationSnapshot]] = {}
        metadata = {}
        for job in self._jobs:
            name = job.config.name
            outcomes[name] = JobOutcome(
                job=name,
                expected_iteration_s=(job.config.compute_time_s
                                      + job._expected_times()[1]))
            metadata[name] = job._register_metadata()
            snapshots[name] = []
        for job in self._jobs:
            name = job.config.name
            job._arm_timed_fault(sim, engine, metadata[name])
            sim.process(
                job.process(sim, engine, collector, metadata[name],
                            snapshots[name]),
                name=f"job-{name}")
        sim.run()
        for name, snaps in snapshots.items():
            outcomes[name].iteration_times_s = [
                snap.iteration_time_s for snap in snaps]
        return outcomes

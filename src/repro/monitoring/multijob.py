"""Multiple tenants sharing one fabric: congestion blast radius (§5).

"PCIe issue causes PFC storms, halving the performance of the entire
cluster running multiple jobs."  The failure mechanism is the shared
fabric: one host's PFC storm backs congestion up into links that other
customers' jobs also traverse.  :class:`MultiJobRun` co-schedules
several monitored jobs on one fabric — per iteration, all jobs' flows
contend for bandwidth together — so a fault injected into one tenant's
job measurably degrades the innocent tenants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..network.congestion import CongestionModel
from ..network.fabric import Fabric
from .collectors.base import HostState, IterationSnapshot
from .collectors.layers import FullStackCollector
from .faults import FaultSpec
from .jobsim import JobConfig, MonitoredTrainingJob
from .telemetry import TelemetryStore

__all__ = ["MultiJobRun", "JobOutcome"]


@dataclass
class JobOutcome:
    """Per-job result of a co-scheduled run."""

    job: str
    iteration_times_s: List[float] = field(default_factory=list)
    expected_iteration_s: float = 0.0

    @property
    def mean_iteration_s(self) -> float:
        if not self.iteration_times_s:
            return 0.0
        return sum(self.iteration_times_s) \
            / len(self.iteration_times_s)

    @property
    def efficiency(self) -> float:
        """Achieved vs expected iteration throughput (1.0 = nominal)."""
        if self.mean_iteration_s <= 0:
            return 1.0
        return self.expected_iteration_s / self.mean_iteration_s


class MultiJobRun:
    """Co-schedule several monitored jobs on one shared fabric."""

    @classmethod
    def from_cluster(cls, fabric: Fabric, records,
                     iterations: int = 4,
                     compute_time_s: float = 0.5,
                     comm_size_bits: float = 8e9,
                     faults: Optional[Dict[str, FaultSpec]] = None,
                     seed: int = 0) -> "MultiJobRun":
        """Build a contention run from cluster-scheduler placements.

        ``records`` are :class:`repro.cluster.JobRecord`-shaped objects
        (anything with ``name`` and ``final_hosts``), typically
        ``ClusterReport.peak_concurrent()``: the tenants the scheduler
        actually packed onto the fabric together.  Single-host records
        are skipped — they generate no fabric flows.
        """
        configs = [
            JobConfig(name=record.name,
                      hosts=tuple(record.final_hosts),
                      iterations=iterations,
                      compute_time_s=compute_time_s,
                      comm_size_bits=comm_size_bits,
                      seed=seed)
            for record in records
            if len(record.final_hosts) >= 2
        ]
        if not configs:
            raise ValueError(
                "no multi-host placements to co-schedule; run the "
                "cluster scheduler first (or with larger jobs)")
        return cls(fabric, configs, faults=faults)

    def __init__(self, fabric: Fabric, configs: List[JobConfig],
                 faults: Optional[Dict[str, FaultSpec]] = None,
                 store: Optional[TelemetryStore] = None):
        if not configs:
            raise ValueError("need at least one job")
        names = [config.name for config in configs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")
        self.fabric = fabric
        self.store = store or TelemetryStore()
        self.congestion = CongestionModel()
        faults = faults or {}
        self._jobs = [
            MonitoredTrainingJob(fabric, config,
                                 fault=faults.get(config.name),
                                 store=self.store)
            for config in configs
        ]

    def run(self) -> Dict[str, JobOutcome]:
        """Run all jobs in iteration lockstep with shared bandwidth."""
        collector = FullStackCollector(self.fabric.topology)
        outcomes = {
            job.config.name: JobOutcome(
                job=job.config.name,
                expected_iteration_s=(job.config.compute_time_s
                                      + job._expected_times()[1]))
            for job in self._jobs
        }
        metadata = {job.config.name: job._register_metadata()
                    for job in self._jobs}
        iterations = max(job.config.iterations for job in self._jobs)
        now = 0.0
        active = list(self._jobs)
        for iteration in range(iterations):
            if not active:
                break
            # Build each job's snapshot scaffolding + apply faults.
            snaps: Dict[str, IterationSnapshot] = {}
            for job in active:
                hosts = {
                    host: HostState(
                        host=host,
                        compute_time_s=job._compute_time(host),
                        comm_time_s=0.0)
                    for host in job.config.hosts
                }
                snap = IterationSnapshot(
                    time_s=now, iteration=iteration,
                    job=metadata[job.config.name], hosts=hosts)
                if job._fault_active(iteration):
                    job._apply_structural_effects(snap)
                for host in job._crashed_hosts:
                    if host in hosts:
                        hosts[host].crashed = True
                        hosts[host].started = 0
                        hosts[host].finished = 0
                if job._crashed_hosts:
                    snap.aborted = True
                    snap.completed = False
                for host, factor in job._slow_compute.items():
                    if host in hosts:
                        hosts[host].compute_time_s *= factor
                for host in job._pcie_hosts:
                    if host in hosts:
                        hosts[host].pcie_errors = 12
                        hosts[host].nic_pfc_rx = 5000.0
                snaps[job.config.name] = snap

            # Route every job's flows together: shared contention.
            all_flows = []
            flows_of: Dict[str, list] = {}
            for job in active:
                for flow in job._flows:
                    flow.rate_gbps = 0.0
                routable, failed = job._route_flows(job._flows,
                                                    snaps[
                                                        job.config.name])
                flows_of[job.config.name] = routable
                job._apply_flow_faults(job._flows, failed,
                                       snaps[job.config.name])
                all_flows.extend(routable)
            if all_flows:
                # PFC spreading on: one tenant's storm backs up into
                # links the other tenants traverse (§5 incident).
                run = self.fabric.complete(all_flows,
                                           pfc_spreading=True)
                loads = self.fabric.offered_loads(all_flows, run.paths)
                congestion = self.congestion.evaluate_all(loads)
                for job in active:
                    name = job.config.name
                    snap = snaps[name]
                    snap.congestion = congestion
                    snap.flows.extend(flows_of[name])
                    for flow in flows_of[name]:
                        snap.paths[flow.flow_id] = \
                            run.paths[flow.flow_id]
                        finish = run.finish_times_s[flow.flow_id]
                        for host in (flow.src_host, flow.dst_host):
                            if host in snap.hosts:
                                state = snap.hosts[host]
                                state.comm_time_s = max(
                                    state.comm_time_s, finish)

            # Hung hosts + collection + bookkeeping.
            still_active = []
            step = 0.0
            for job in active:
                name = job.config.name
                snap = snaps[name]
                for host in job._hung_hosts:
                    if host in snap.hosts:
                        state = snap.hosts[host]
                        state.hung = True
                        state.finished = 0
                        state.comm_time_s = 30.0
                if job._hung_hosts:
                    snap.completed = False
                collector.collect(snap, self.store)
                outcomes[name].iteration_times_s.append(
                    snap.iteration_time_s)
                step = max(step, snap.iteration_time_s)
                if snap.completed and not snap.aborted \
                        and iteration + 1 < job.config.iterations:
                    still_active.append(job)
            active = still_active
            now += step
        return outcomes

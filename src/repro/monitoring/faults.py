"""Failure taxonomy and fault injection (paper §3.1, Figure 7).

Figure 7 organizes production anomalies along three dimensions:

* **failure manifestations** — fail-stop (66%), fail-hang (17%),
  fail-slow (13%), fail-on-start (4%);
* **root causes** — host environment & configuration (32%), NIC errors
  (15%), user code (14%), switch configuration (14%), switch bugs (7%),
  optical fiber (7%), CCL bugs (3%), wire connection (3%), GPU hardware
  (2%), memory (2%), link flaps (2%);
* **diagnostic telemetry** — the layer where root-cause evidence shows.

Each root cause is given a *profile*: its manifestation mix, the
concrete effect it has on a simulated training job, the telemetry layer
where its evidence surfaces, and whether it leaves an explicit fatal
log (fail-on-start/fail-stop typically do; fail-slow/fail-hang do not —
§3.1).  :func:`sample_faults` draws fault campaigns matching the
published distribution.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from .telemetry import Layer

__all__ = [
    "Manifestation",
    "RootCause",
    "Effect",
    "CauseProfile",
    "CAUSE_PROFILES",
    "MANIFESTATION_PREVALENCE",
    "ROOT_CAUSE_PREVALENCE",
    "FaultSpec",
    "sample_faults",
]


class Manifestation(enum.Enum):
    FAIL_STOP = "fail-stop"
    FAIL_HANG = "fail-hang"
    FAIL_SLOW = "fail-slow"
    FAIL_ON_START = "fail-on-start"


#: Figure 7, outer ring.
MANIFESTATION_PREVALENCE: Dict[Manifestation, float] = {
    Manifestation.FAIL_STOP: 0.66,
    Manifestation.FAIL_HANG: 0.17,
    Manifestation.FAIL_SLOW: 0.13,
    Manifestation.FAIL_ON_START: 0.04,
}


class RootCause(enum.Enum):
    HOST_ENV_CONFIG = "host-env-config"
    NIC_ERROR = "nic-error"
    USER_CODE = "user-code"
    SWITCH_CONFIG = "switch-config"
    SWITCH_BUG = "switch-bug"
    OPTICAL_FIBER = "optical-fiber"
    CCL_BUG = "ccl-bug"
    WIRE_CONNECTION = "wire-connection"
    GPU_HARDWARE = "gpu-hardware"
    MEMORY = "memory"
    LINK_FLAP = "link-flap"


#: Figure 7, inner ring (normalized; the published figure rounds to 101%).
_RAW_CAUSE_PREVALENCE = {
    RootCause.HOST_ENV_CONFIG: 32.0,
    RootCause.NIC_ERROR: 15.0,
    RootCause.USER_CODE: 14.0,
    RootCause.SWITCH_CONFIG: 14.0,
    RootCause.SWITCH_BUG: 7.0,
    RootCause.OPTICAL_FIBER: 7.0,
    RootCause.CCL_BUG: 3.0,
    RootCause.WIRE_CONNECTION: 3.0,
    RootCause.GPU_HARDWARE: 2.0,
    RootCause.MEMORY: 2.0,
    RootCause.LINK_FLAP: 2.0,
}
_TOTAL = sum(_RAW_CAUSE_PREVALENCE.values())
ROOT_CAUSE_PREVALENCE: Dict[RootCause, float] = {
    cause: weight / _TOTAL
    for cause, weight in _RAW_CAUSE_PREVALENCE.items()
}


class Effect(enum.Enum):
    """Concrete perturbation a fault applies to the simulated cluster."""

    CONFIG_ERROR = "config-error"            # host env / delivery gap
    NIC_ERRCQE = "nic-errcqe"                # CQE errors, QP rate to zero
    MULTI_HOST_SOFTWARE = "multi-host-software"
    SWITCH_ECN_STORM = "switch-ecn-storm"    # misconfig => congestion
    SWITCH_DROPS = "switch-drops"            # ASIC bug => packet loss
    LINK_DOWN = "link-down"                  # optical module dead
    LINK_DEGRADE = "link-degrade"            # flapping / dirty optics
    HOST_HANG = "host-hang"                  # collective never completes
    MISWIRE = "miswire"                      # cabling to the wrong port
    GPU_FATAL = "gpu-fatal"                  # Xid-class fatal error
    ECC_FATAL = "ecc-fatal"                  # uncorrectable memory error
    PCIE_PFC_STORM = "pcie-pfc-storm"        # §5 case: broken PCIe


@dataclass(frozen=True)
class CauseProfile:
    """Behavioural profile of one root cause."""

    cause: RootCause
    manifestation_weights: Dict[Manifestation, float]
    effect: Effect
    evidence_layer: Layer
    syslog_template: str
    fatal_log: bool       # does it emit an explicit fatal log? (§3.1)
    target_kind: str      # "host" | "switch" | "link" | "job"


CAUSE_PROFILES: Dict[RootCause, CauseProfile] = {
    RootCause.HOST_ENV_CONFIG: CauseProfile(
        RootCause.HOST_ENV_CONFIG,
        {Manifestation.FAIL_ON_START: 0.12, Manifestation.FAIL_STOP: 0.78,
         Manifestation.FAIL_HANG: 0.05, Manifestation.FAIL_SLOW: 0.05},
        Effect.CONFIG_ERROR, Layer.PHYSICAL,
        "env-check: inconsistent {detail} on {target}", True, "host"),
    RootCause.NIC_ERROR: CauseProfile(
        RootCause.NIC_ERROR,
        {Manifestation.FAIL_STOP: 0.70, Manifestation.FAIL_SLOW: 0.15,
         Manifestation.FAIL_HANG: 0.15},
        Effect.NIC_ERRCQE, Layer.TRANSPORT,
        "mlx5: CQE error on {target}, syndrome 0x{detail}", True, "host"),
    RootCause.USER_CODE: CauseProfile(
        RootCause.USER_CODE,
        {Manifestation.FAIL_STOP: 0.60, Manifestation.FAIL_HANG: 0.30,
         Manifestation.FAIL_ON_START: 0.10},
        Effect.MULTI_HOST_SOFTWARE, Layer.APPLICATION,
        "python: unhandled exception in training step ({detail})",
        True, "job"),
    RootCause.SWITCH_CONFIG: CauseProfile(
        RootCause.SWITCH_CONFIG,
        {Manifestation.FAIL_SLOW: 0.50, Manifestation.FAIL_STOP: 0.35,
         Manifestation.FAIL_HANG: 0.15},
        Effect.SWITCH_ECN_STORM, Layer.PHYSICAL,
        "switchd: {detail} mismatch on {target}", False, "switch"),
    RootCause.SWITCH_BUG: CauseProfile(
        RootCause.SWITCH_BUG,
        {Manifestation.FAIL_STOP: 0.50, Manifestation.FAIL_HANG: 0.30,
         Manifestation.FAIL_SLOW: 0.20},
        Effect.SWITCH_DROPS, Layer.PHYSICAL,
        "asic: unexpected drop counter increase on {target}", False,
        "switch"),
    RootCause.OPTICAL_FIBER: CauseProfile(
        RootCause.OPTICAL_FIBER,
        {Manifestation.FAIL_STOP: 0.70, Manifestation.FAIL_SLOW: 0.30},
        Effect.LINK_DOWN, Layer.PHYSICAL,
        "link: optical rx power below threshold on {target}", True,
        "link"),
    RootCause.CCL_BUG: CauseProfile(
        RootCause.CCL_BUG,
        {Manifestation.FAIL_HANG: 0.60, Manifestation.FAIL_STOP: 0.40},
        Effect.HOST_HANG, Layer.APPLICATION,
        "nccl: WARN {detail}", False, "host"),
    RootCause.WIRE_CONNECTION: CauseProfile(
        RootCause.WIRE_CONNECTION,
        {Manifestation.FAIL_ON_START: 0.30, Manifestation.FAIL_STOP: 0.50,
         Manifestation.FAIL_SLOW: 0.20},
        Effect.MISWIRE, Layer.PHYSICAL,
        "lldp: neighbor mismatch on {target} ({detail})", False, "link"),
    RootCause.GPU_HARDWARE: CauseProfile(
        RootCause.GPU_HARDWARE,
        {Manifestation.FAIL_STOP: 0.80, Manifestation.FAIL_HANG: 0.20},
        Effect.GPU_FATAL, Layer.PHYSICAL,
        "NVRM: Xid ({detail}) fatal on {target}", True, "host"),
    RootCause.MEMORY: CauseProfile(
        RootCause.MEMORY,
        {Manifestation.FAIL_STOP: 0.90, Manifestation.FAIL_HANG: 0.10},
        Effect.ECC_FATAL, Layer.PHYSICAL,
        "EDAC: uncorrectable ECC error on {target}", True, "host"),
    RootCause.LINK_FLAP: CauseProfile(
        RootCause.LINK_FLAP,
        {Manifestation.FAIL_STOP: 0.50, Manifestation.FAIL_SLOW: 0.50},
        Effect.LINK_DEGRADE, Layer.PHYSICAL,
        "link: carrier transitions on {target}", False, "link"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault instance.

    ``effect_override`` selects a non-default concrete effect for the
    cause — the mechanism for incident classes that emerged later than
    the taxonomy (e.g. the §5 PCIe-induced PFC storm).
    """

    cause: RootCause
    manifestation: Manifestation
    target: str            # host/switch name or "link:<id>" or job name
    at_iteration: int = 1
    detail: str = ""
    effect_override: Optional[Effect] = None
    #: when set, the fault strikes at this simulated timestamp instead
    #: of an iteration index — the event-driven job loop arms it on the
    #: shared clock, so it can land mid-iteration (mid-collective).
    at_time_s: Optional[float] = None

    #: effects that only make sense against a ``link:<id>`` target.
    _LINK_EFFECTS = frozenset({Effect.LINK_DOWN, Effect.LINK_DEGRADE,
                               Effect.MISWIRE})

    def __post_init__(self) -> None:
        """Shape validation at construction — a malformed spec fails
        here with the offending field named, not deep inside jobsim."""
        if self.at_time_s is not None and self.at_time_s < 0:
            raise ValueError(
                f"at_time_s cannot be negative: {self.at_time_s}")
        if self.at_iteration < 0:
            raise ValueError(
                f"at_iteration cannot be negative: {self.at_iteration}")
        if not self.target:
            raise ValueError("target cannot be empty")
        is_link_target = self.target.startswith("link:")
        if is_link_target:
            try:
                int(self.target.split(":", 1)[1])
            except ValueError:
                raise ValueError(
                    f"target is not a valid link reference: "
                    f"{self.target!r} (expected 'link:<id>')") from None
        effect = self.effect
        if effect in self._LINK_EFFECTS and not is_link_target:
            raise ValueError(
                f"effect {effect.value} requires a 'link:<id>' target, "
                f"got target={self.target!r}")
        if is_link_target and effect not in self._LINK_EFFECTS:
            raise ValueError(
                f"effect {effect.value} cannot strike a link target "
                f"({self.target!r}); use a host/switch/job target")

    def validate(self, topology=None, job: Optional[str] = None
                 ) -> "FaultSpec":
        """Resolve the target against a topology (and job name).

        Raises ``ValueError`` naming the field when the target is an
        unknown device or link id.  Returns self for chaining.
        """
        kind = self.profile.target_kind
        if self.target.startswith("link:"):
            if topology is not None:
                link_id = int(self.target.split(":", 1)[1])
                if link_id not in topology.links:
                    raise ValueError(
                        f"target names unknown link id {link_id} "
                        f"(topology has {len(topology.links)} links)")
        elif kind == "job":
            if job is not None and self.target != job:
                raise ValueError(
                    f"target {self.target!r} does not match job "
                    f"{job!r} for a job-targeted cause")
        elif topology is not None:
            if self.target not in topology.devices:
                raise ValueError(
                    f"target names unknown device: {self.target!r}")
        return self

    @property
    def profile(self) -> CauseProfile:
        return CAUSE_PROFILES[self.cause]

    @property
    def effect(self) -> Effect:
        return self.effect_override or self.profile.effect

    def syslog_message(self) -> str:
        return self.profile.syslog_template.format(
            target=self.target, detail=self.detail or "deadbeef")

    @classmethod
    def pcie_storm(cls, host: str, at_iteration: int = 2) -> "FaultSpec":
        """The §5 incident: a broken PCIe triggers PFC storms that
        halve the whole cluster's training efficiency."""
        return cls(
            cause=RootCause.GPU_HARDWARE,
            manifestation=Manifestation.FAIL_SLOW,
            target=host,
            at_iteration=at_iteration,
            detail="pcie",
            effect_override=Effect.PCIE_PFC_STORM,
        )


def sample_faults(n: int, seed: Union[int, str] = 0,
                  hosts: Optional[List[str]] = None,
                  switches: Optional[List[str]] = None,
                  link_ids: Optional[List[int]] = None,
                  job: str = "job0",
                  iterations: int = 10) -> List[FaultSpec]:
    """Draw *n* faults matching the Figure-7 joint distribution.

    Targets are drawn from the supplied device pools (or placeholders
    when a pool is absent).  *seed* may be a string: ``random.Random``
    hashes strings with its own stable algorithm (not ``hash()``), so
    the same seed yields the identical campaign across processes and
    ``PYTHONHASHSEED`` values — the contract the resilience campaigns
    and their determinism tests rely on.
    """
    rng = random.Random(seed)
    causes = list(ROOT_CAUSE_PREVALENCE)
    cause_weights = [ROOT_CAUSE_PREVALENCE[c] for c in causes]
    faults = []
    for _ in range(n):
        cause = rng.choices(causes, weights=cause_weights)[0]
        profile = CAUSE_PROFILES[cause]
        manifestations = list(profile.manifestation_weights)
        weights = [profile.manifestation_weights[m]
                   for m in manifestations]
        manifestation = rng.choices(manifestations, weights=weights)[0]
        if profile.target_kind == "host":
            pool = hosts or ["host0"]
            target = rng.choice(pool)
        elif profile.target_kind == "switch":
            pool = switches or ["switch0"]
            target = rng.choice(pool)
        elif profile.target_kind == "link":
            pool = link_ids or [0]
            target = f"link:{rng.choice(pool)}"
        else:
            target = job
        at_iteration = (0 if manifestation is Manifestation.FAIL_ON_START
                        else rng.randrange(1, max(2, iterations)))
        faults.append(FaultSpec(
            cause=cause,
            manifestation=manifestation,
            target=target,
            at_iteration=at_iteration,
            detail=f"{rng.randrange(16**4):04x}",
        ))
    return faults

"""Optimized ECMP: source-port balancing plus a centralized controller.

Reproduces the two-step scheme of §2.1 footnote 1:

* **Step 1** (sender-side, :meth:`EcmpController.balance_source_ports`):
  when a collective's flows are created, each source-destination pair
  picks UDP source ports so its flows spread evenly over the equal-cost
  paths, exploiting hash linearity — the sender simulates the switch
  hash and searches ports until the desired index comes out.
* **Step 2** (controller-side, :meth:`EcmpController.reassignment_round`):
  switches report ECN counters every five seconds; the controller runs a
  hash simulator *identical to the production switches'* (here: the very
  same :class:`~repro.network.ecmp.EcmpHasher`) to find new source ports
  for flows crossing congested links, taking effect on the next round of
  collective communication.  Figure 17 shows ECN counters decreasing and
  stabilizing over rounds; ``run()`` reproduces that series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .congestion import CongestionModel
from .fabric import Fabric, LinkDir
from .flows import Flow, FlowPath
from .routing import RoutingError

__all__ = ["EcmpController", "ReassignmentReport"]


@dataclass
class ReassignmentReport:
    """Outcome of one controller round."""

    round_index: int
    total_ecn_marks_before: float
    total_ecn_marks_after: float
    congested_links_before: int
    congested_links_after: int
    flows_moved: int
    #: simulated time of the round (0.0 for untimed batch rounds).
    at_time_s: float = 0.0

    @property
    def improved(self) -> bool:
        return self.total_ecn_marks_after < self.total_ecn_marks_before


class EcmpController:
    """Centralized load-balancing controller over a :class:`Fabric`."""

    def __init__(self, fabric: Fabric,
                 congestion: Optional[CongestionModel] = None,
                 port_candidates: int = 64):
        self.fabric = fabric
        self.router = fabric.router
        self.hasher = fabric.router.hasher
        self.congestion = congestion or CongestionModel()
        #: how many candidate source ports the hash simulator tries per
        #: congested flow before giving up on improving it.
        self.port_candidates = port_candidates

    # -- step 1: sender-side even spreading ---------------------------------
    def balance_source_ports(self, flows: List[Flow],
                             search_ports: int = 512) -> int:
        """Spread each src-dst pair's flows over distinct end-to-end paths.

        For every flow whose hash lands on a path already used by an
        earlier flow of the same pair, the sender simulates the switch
        hash over candidate source ports until a fresh path comes out
        (hash linearity makes this cheap in hardware; here we replay the
        very same hash).  Returns the number of flows whose source port
        changed.  The spreading is best-effort from the *pair's*
        perspective (as the paper notes): collisions between different
        pairs remain, which is exactly why step 2 exists.
        """
        pairs: Dict[tuple, List[Flow]] = {}
        for flow in flows:
            pairs.setdefault((flow.src_host, flow.dst_host, flow.rail),
                             []).append(flow)
        changed = 0
        for pair_flows in pairs.values():
            used_paths: set = set()
            for flow in pair_flows:
                current = tuple(self.router.path(flow).link_ids)
                if current not in used_paths:
                    used_paths.add(current)
                    continue
                adopted = None
                for offset in range(search_ports):
                    port = 49152 + (flow.five_tuple.src_port + offset + 1) \
                        % 16384
                    trial = flow.five_tuple.with_src_port(port)
                    original = flow.five_tuple
                    flow.five_tuple = trial
                    try:
                        candidate = tuple(self.router.path(flow).link_ids)
                    finally:
                        flow.five_tuple = original
                    if candidate not in used_paths:
                        adopted = (port, candidate)
                        break
                if adopted is None:
                    used_paths.add(current)  # no free path left
                    continue
                flow.five_tuple = flow.five_tuple.with_src_port(adopted[0])
                used_paths.add(adopted[1])
                changed += 1
        return changed

    # -- step 2: ECN-driven reassignment -------------------------------------
    def _congestion_snapshot(self, flows: List[Flow]
                             ) -> Dict[LinkDir, float]:
        loads = self.fabric.offered_loads(flows)
        states = self.congestion.evaluate_all(loads)
        return {key: state.ecn_marks_per_poll
                for key, state in states.items()}

    def _directed_hops(self, path: FlowPath) -> List[LinkDir]:
        return self.fabric.directed_hops(path)

    def _is_fabric_hop(self, hop: LinkDir) -> bool:
        """True when both link endpoints are switches."""
        link = self.fabric.topology.links[hop[0]]
        devices = self.fabric.topology.devices
        return (devices[link.a.device].tier > 0
                and devices[link.b.device].tier > 0)

    def reassignment_round(self, flows: List[Flow], round_index: int = 0
                           ) -> ReassignmentReport:
        """One polling round: move flows off ECN-marked links.

        A running offered-load map is kept incrementally: each candidate
        move is evaluated against the map with the flow's own
        contribution removed, and accepted moves update it in place —
        matching a controller that reasons over its global view rather
        than re-measuring the fabric per decision.
        """
        # Flows that lost every path (mid-campaign fault) are not the
        # controller's to fix: drop them from this round.
        routable = []
        paths = {}
        for flow in flows:
            try:
                paths[flow.flow_id] = self.router.path(flow)
            except RoutingError:
                continue
            routable.append(flow)
        flows = routable

        marks = self._congestion_snapshot(flows)
        ecn_before = sum(marks.values())
        congested_before = sum(1 for value in marks.values() if value > 0)
        # Every marked link is a candidate: fabric collisions, host
        # egress-port collisions, and dual-ToR ingress imbalance are all
        # re-hashable.  Truly unavoidable congestion (aggregate demand
        # above the endpoint's total capacity) simply yields no
        # improving move.
        congested_links = {key for key, value in marks.items()
                           if value > 0}
        demand = self.fabric.host_line_rate_gbps
        # offered gbps per directed link, maintained incrementally.
        offered: Dict[LinkDir, float] = {}
        for flow in flows:
            for hop in self._directed_hops(paths[flow.flow_id]):
                offered[hop] = offered.get(hop, 0.0) + demand

        def capacity(hop: LinkDir) -> float:
            return self.fabric.topology.links[hop[0]].capacity_gbps

        def cost_of(hops: List[LinkDir]) -> float:
            """Worst utilization along *hops*, this flow's demand
            included, summed with a small total-load tiebreak so moves
            that relieve several hops win over single-hop swaps."""
            worst = max(
                (offered.get(hop, 0.0) + demand) / capacity(hop)
                for hop in hops
            )
            total = sum(
                (offered.get(hop, 0.0) + demand) / capacity(hop)
                for hop in hops
            )
            return worst + 1e-3 * total

        moved = 0
        for flow in flows:
            current_hops = self._directed_hops(paths[flow.flow_id])
            if not set(current_hops) & congested_links:
                continue
            # Remove this flow's contribution while evaluating.
            for hop in current_hops:
                offered[hop] -= demand
            best_port = None
            best_hops = current_hops
            best_cost = cost_of(current_hops)
            base_port = flow.five_tuple.src_port
            for offset in range(1, self.port_candidates + 1):
                port = 49152 + (base_port + offset * 131) % 16384
                original = flow.five_tuple
                flow.five_tuple = original.with_src_port(port)
                try:
                    trial_hops = self._directed_hops(
                        self.router.path(flow))
                finally:
                    flow.five_tuple = original
                trial_cost = cost_of(trial_hops)
                if trial_cost < best_cost - 1e-9:
                    best_cost = trial_cost
                    best_port = port
                    best_hops = trial_hops
            if best_port is not None:
                flow.five_tuple = flow.five_tuple.with_src_port(best_port)
                paths[flow.flow_id] = self.router.path(flow)
                moved += 1
            for hop in best_hops:
                offered[hop] = offered.get(hop, 0.0) + demand

        marks_after = self._congestion_snapshot(flows)
        return ReassignmentReport(
            round_index=round_index,
            total_ecn_marks_before=ecn_before,
            total_ecn_marks_after=sum(marks_after.values()),
            congested_links_before=congested_before,
            congested_links_after=sum(
                1 for value in marks_after.values() if value > 0),
            flows_moved=moved,
        )

    def run(self, flows: List[Flow], rounds: int = 8
            ) -> List[ReassignmentReport]:
        """Run several polling rounds; stop early once nothing moves."""
        reports = []
        for index in range(rounds):
            report = self.reassignment_round(flows, round_index=index)
            reports.append(report)
            if report.flows_moved == 0:
                break
        return reports

    def run_timed(self, engine, flows: List[Flow],
                  interval_s: float = 5.0, rounds: int = 8
                  ) -> List[ReassignmentReport]:
        """Polling rounds as timed events on a :class:`FabricEngine`.

        Every ``interval_s`` of simulated time (the switches' ECN poll
        period, §2.1) the controller re-hashes the still-in-flight flows
        and retargets them *mid-transfer* on the engine: the touched
        components re-solve, so a move changes the moved flow's finish
        time and relieves the flows it was colliding with.  Returns the
        (live, in-place growing) report list; final contents are ready
        once ``engine.run()`` / ``sim.run()`` has drained.
        """
        reports: List[ReassignmentReport] = []
        sim = engine.sim

        def _rounds():
            for index in range(rounds):
                yield sim.timeout(interval_s)
                live = [flow for flow in flows
                        if engine.is_active(flow.flow_id)]
                if not live:
                    break
                report = self.reassignment_round(live, round_index=index)
                report.at_time_s = sim.now
                engine.retarget(live)
                reports.append(report)
                if report.flows_moved == 0:
                    break

        sim.process(_rounds(), name="ecmp-controller")
        return reports

"""Packet-level single-queue simulator for validating the fluid model.

The paper rejects packet-level simulation for Seer's *goals* (too slow
at scale), not for its *physics*.  This module keeps a tiny slotted
packet simulator of one switch egress queue — Poisson packet arrivals
per flow, deterministic service at line rate, RED/ECN marking on the
instantaneous queue — whose steady-state statistics the fluid
:class:`~repro.network.congestion.CongestionModel` must agree with.
The validation tests compare queue occupancy, marking rate, and
latency between the two levels across utilization regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .congestion import CongestionConfig

__all__ = ["PacketQueueSim", "PacketQueueStats"]


@dataclass
class PacketQueueStats:
    """Steady-state statistics of the packet simulation."""

    mean_queue_bytes: float
    max_queue_bytes: float
    mark_fraction: float
    mean_sojourn_us: float
    packets: int
    drops: int

    @property
    def marked(self) -> bool:
        return self.mark_fraction > 0


class PacketQueueSim:
    """One egress queue at packet granularity.

    ``offered_gbps`` is the aggregate Poisson arrival rate;
    ``capacity_gbps`` the drain rate; marking follows the same
    RED parameters as the fluid model (kmin/kmax on queue *fill*).
    """

    def __init__(self, capacity_gbps: float, offered_gbps: float,
                 config: CongestionConfig | None = None,
                 seed: int = 0):
        if capacity_gbps <= 0:
            raise ValueError("capacity must be positive")
        if offered_gbps < 0:
            raise ValueError("offered load cannot be negative")
        self.capacity_gbps = capacity_gbps
        self.offered_gbps = offered_gbps
        self.config = config or CongestionConfig()
        self._rng = np.random.default_rng(seed)

    def run(self, duration_s: float = 0.02) -> PacketQueueStats:
        cfg = self.config
        packet_bytes = cfg.avg_packet_bytes
        service_s = packet_bytes * 8 / (self.capacity_gbps * 1e9)
        arrival_rate = self.offered_gbps * 1e9 / 8 / packet_bytes
        if arrival_rate <= 0:
            return PacketQueueStats(0.0, 0.0, 0.0, 0.0, 0, 0)

        # RED thresholds in bytes, mirroring the fluid model's fill
        # fractions of the shared buffer.
        kmin = cfg.ecn_kmin_frac * cfg.buffer_bytes
        kmax = cfg.ecn_kmax_frac * cfg.buffer_bytes

        now = 0.0
        next_arrival = float(self._rng.exponential(1.0 / arrival_rate))
        server_free_at = 0.0
        queue_bytes = 0.0
        queue_samples = []
        sojourns = []
        marked = 0
        packets = 0
        drops = 0

        while next_arrival < duration_s:
            now = next_arrival
            # Drain whatever the server completed since the last event.
            drained = max(0.0, min(now, duration_s) - max(
                0.0, server_free_at - service_s))
            del drained  # queue tracked via departure accounting below
            # Serve: compute this packet's departure.
            start_service = max(now, server_free_at)
            depart = start_service + service_s
            backlog_bytes = max(
                0.0, (server_free_at - now) / service_s * packet_bytes)
            queue_bytes = backlog_bytes
            packets += 1
            if queue_bytes + packet_bytes > cfg.buffer_bytes:
                drops += 1
            else:
                server_free_at = depart
                sojourns.append(depart - now)
                # RED marking on the instantaneous queue.
                if queue_bytes > kmax:
                    mark_p = cfg.ecn_pmax
                elif queue_bytes > kmin:
                    mark_p = cfg.ecn_pmax * (queue_bytes - kmin) \
                        / (kmax - kmin)
                else:
                    mark_p = 0.0
                if mark_p > 0 and self._rng.random() < mark_p:
                    marked += 1
            queue_samples.append(queue_bytes)
            next_arrival = now + float(
                self._rng.exponential(1.0 / arrival_rate))

        if not queue_samples:
            return PacketQueueStats(0.0, 0.0, 0.0, 0.0, 0, 0)
        return PacketQueueStats(
            mean_queue_bytes=float(np.mean(queue_samples)),
            max_queue_bytes=float(np.max(queue_samples)),
            mark_fraction=marked / packets if packets else 0.0,
            mean_sojourn_us=float(np.mean(sojourns)) * 1e6
            if sojourns else 0.0,
            packets=packets,
            drops=drops,
        )

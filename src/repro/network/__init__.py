"""Flow-level network simulation: ECMP, fabric, congestion, collectives."""

from .collectives import (
    CollectiveConfig,
    CollectiveResult,
    Endpoint,
    TimedCollectiveResult,
    all_gather_flows,
    all_to_all_flows,
    collective_schedule,
    reduce_scatter_flows,
    ring_allreduce_flows,
    run_collective,
    run_collective_timed,
    send_recv_chain,
    send_recv_flows,
    topology_ordered,
)
from .congestion import CongestionConfig, CongestionModel, LinkCongestion
from .controller import EcmpController, ReassignmentReport
from .dcqcn import (
    BottleneckResult,
    BottleneckSim,
    DcqcnFlowState,
    DcqcnParams,
)
from .ecmp import EcmpHasher, FiveTuple, crc16
from .engine import FabricEngine, SolverStats
from .fabric import Fabric, FabricRun, LinkLoad
from .flows import Flow, FlowPath, make_flow, reset_flow_ids
from .routing import EcmpRouter, RoutingError
from .solver import (
    BACKENDS,
    HAVE_NUMPY,
    available_backends,
    default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)

__all__ = [
    "BACKENDS",
    "BottleneckResult",
    "BottleneckSim",
    "CollectiveConfig",
    "DcqcnFlowState",
    "DcqcnParams",
    "CollectiveResult",
    "CongestionConfig",
    "CongestionModel",
    "EcmpController",
    "EcmpHasher",
    "EcmpRouter",
    "Endpoint",
    "Fabric",
    "FabricEngine",
    "FabricRun",
    "FiveTuple",
    "Flow",
    "FlowPath",
    "HAVE_NUMPY",
    "LinkCongestion",
    "LinkLoad",
    "ReassignmentReport",
    "RoutingError",
    "SolverStats",
    "TimedCollectiveResult",
    "all_gather_flows",
    "all_to_all_flows",
    "available_backends",
    "collective_schedule",
    "crc16",
    "default_backend",
    "make_flow",
    "reduce_scatter_flows",
    "reset_flow_ids",
    "resolve_backend",
    "ring_allreduce_flows",
    "run_collective",
    "run_collective_timed",
    "send_recv_chain",
    "send_recv_flows",
    "set_default_backend",
    "topology_ordered",
    "use_backend",
]

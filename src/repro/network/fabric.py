"""Flow-level fabric simulator.

Models the Astral fabric at flow granularity: every flow is pinned to a
hop-by-hop ECMP path (per-flow ECMP, Appendix A), link bandwidth is
shared max-min fairly among the flows crossing it, and transfers are
completed with a fluid progressive-filling loop.  This is the level of
detail the paper's own Seer operates at — packet-level behaviour enters
only through calibration — and it is sufficient to reproduce the
architecture studies (Figure 2, 17, 19): hash collisions and
oversubscription determine which links bottleneck, and max-min sharing
determines by how much.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..simcore import SimulationError
from ..topology.elements import Topology
from .flows import Flow, FlowPath
from .routing import EcmpRouter
from .solver import fill_rates_python, resolve_backend, solve_incidence_vector

__all__ = ["DONE_BITS", "Fabric", "FabricRun", "LinkDir", "LinkLoad"]

#: A directed traversal of a link: (link_id, forward) where forward means
#: the flow enters at endpoint ``a`` and exits at endpoint ``b``.
LinkDir = Tuple[int, bool]

#: A flow is complete once its residue drops below this many bits.
#: Shared by the event-driven engine and the batch loop: both integrate
#: in floats, so exact zero is unreachable, and using one threshold is a
#: precondition for their finish times being bit-identical.
DONE_BITS = 1e-6


@dataclass
class LinkLoad:
    """Aggregate load on one link direction."""

    link_dir: LinkDir
    capacity_gbps: float
    flow_ids: List[int] = field(default_factory=list)
    offered_gbps: float = 0.0
    carried_gbps: float = 0.0

    @property
    def utilization(self) -> float:
        return self.offered_gbps / self.capacity_gbps \
            if self.capacity_gbps > 0 else float("inf")


@dataclass
class FabricRun:
    """Result of completing a set of flows on the fabric."""

    total_time_s: float
    finish_times_s: Dict[int, float]
    paths: Dict[int, FlowPath]
    link_loads: Dict[LinkDir, LinkLoad]

    def throughput_gbps(self, total_bits: float) -> float:
        """Aggregate goodput of the whole transfer set."""
        if self.total_time_s <= 0:
            return float("inf")
        return total_bits / self.total_time_s / 1e9

    def max_link_utilization(self) -> float:
        if not self.link_loads:
            return 0.0
        return max(load.utilization for load in self.link_loads.values())


class Fabric:
    """Flow-level simulator over a :class:`Topology`."""

    def __init__(self, topology: Topology,
                 router: Optional[EcmpRouter] = None,
                 host_line_rate_gbps: float = 200.0,
                 solver: Optional[str] = None):
        self.topology = topology
        self.router = router or EcmpRouter(topology)
        #: per-port NIC line rate; flows never exceed this at the source.
        self.host_line_rate_gbps = host_line_rate_gbps
        #: max-min solver backend: "python", "vector", "auto", or None
        #: to follow the process default at each solve (so a scoped
        #: ``use_backend`` override applies to already-built fabrics).
        self.solver = solver
        #: directed-hop memo per flow id: (topology version, link ids,
        #: hops).  Invalidated when the topology is rewired or the flow
        #: is re-hashed onto a different path.
        self._hops_cache: Dict[
            int, Tuple[int, Tuple[int, ...], List[LinkDir]]] = {}
        self.hops_cache_hits = 0
        self.hops_cache_misses = 0

    # -- path resolution -----------------------------------------------------
    def resolve_paths(self, flows: Iterable[Flow]) -> Dict[int, FlowPath]:
        return {flow.flow_id: self.router.path(flow) for flow in flows}

    def directed_hops(self, path: FlowPath) -> List[LinkDir]:
        """Directed traversal of *path*, memoized per flow id.

        The hop list used to be recomputed from the topology for every
        flow on every fluid epoch; it only changes when the topology is
        rewired (version bump) or the flow is reassigned (different
        link ids), so it is cached against both.
        """
        version = self.topology.version
        link_ids = tuple(path.link_ids)
        cached = self._hops_cache.get(path.flow_id)
        if cached is not None and cached[0] == version \
                and cached[1] == link_ids:
            self.hops_cache_hits += 1
            return cached[2]
        self.hops_cache_misses += 1
        hops: List[LinkDir] = []
        for device, link_id in zip(path.devices, path.link_ids):
            link = self.topology.links[link_id]
            hops.append((link_id, link.a.device == device))
        self._hops_cache[path.flow_id] = (version, link_ids, hops)
        return hops

    # Backwards-compatible alias (pre-engine name).
    _directed_hops = directed_hops

    # -- bandwidth allocation --------------------------------------------------
    def max_min_rates(self, flows: List[Flow],
                      paths: Optional[Dict[int, FlowPath]] = None,
                      capacity_factors: Optional[Dict[LinkDir, float]]
                      = None, stats=None) -> Dict[int, float]:
        """Max-min fair rate (Gbps) per flow; also sets ``flow.rate_gbps``.

        Progressive filling: repeatedly find the tightest link (smallest
        fair share for its unfrozen flows), freeze its flows at that
        share, remove the consumed capacity, and continue.  The loop
        itself lives in :mod:`repro.network.solver`; this adapter
        builds the dict-shaped problem and dispatches to the backend
        selected by ``self.solver`` (both backends return bit-identical
        rates).  ``capacity_factors`` scales individual directed links
        (e.g. PFC backpressure shrinking a hop's effective capacity).
        *stats*, a :class:`~repro.network.solver.SolverStats`, counts
        the per-link work for comparison against the incremental
        engine.
        """
        if paths is None:
            paths = self.resolve_paths(flows)
        flow_by_id = {flow.flow_id: flow for flow in flows}
        hops_of: Dict[int, List[LinkDir]] = {
            fid: self.directed_hops(path) for fid, path in paths.items()
        }

        remaining: Dict[LinkDir, float] = {}
        members: Dict[LinkDir, set] = {}
        for fid, hops in hops_of.items():
            for hop in hops:
                if hop not in remaining:
                    link = self.topology.links[hop[0]]
                    factor = 1.0
                    if capacity_factors is not None:
                        factor = capacity_factors.get(hop, 1.0)
                    remaining[hop] = link.capacity_gbps * factor
                    members[hop] = set()
                members[hop].add(fid)
        if stats is not None:
            stats.solves += 1
            stats.flows_resolved += len(flow_by_id)
            # Memberships materialized + capacities loaded — the same
            # ruler the engine path uses (see repro.network.solver).
            stats.link_visits += sum(
                len(hops) for hops in hops_of.values())
            stats.link_visits += len(remaining)

        # Source line-rate cap is modelled as a virtual per-flow link.
        line_rate = self.host_line_rate_gbps
        backend = resolve_backend(self.solver)
        if backend == "vector":
            rates = solve_incidence_vector(
                hops_of, remaining, line_rate, stats)
        else:
            rates = fill_rates_python(
                remaining, members, hops_of, line_rate, stats)

        for fid, rate in rates.items():
            flow_by_id[fid].rate_gbps = rate
        return rates

    # -- completion ------------------------------------------------------------
    def complete(self, flows: List[Flow],
                 paths: Optional[Dict[int, FlowPath]] = None,
                 pfc_spreading: bool = False) -> FabricRun:
        """Fluid completion of *flows*, all starting at t=0.

        Thin batch wrapper over the event-driven
        :class:`~repro.network.engine.FabricEngine`: every flow is
        submitted at time zero onto a private simulator and run to
        completion.  For simultaneous starts this reproduces the
        classic epoch-global fluid loop (kept as
        :meth:`complete_batch`) exactly — same epochs and
        bit-identical finish times, a property the validation harness
        (``repro.validation.differential``) asserts on fuzzed
        scenarios — while sharing one code path with the timed
        simulator.

        With ``pfc_spreading``, PFC backpressure multipliers (computed
        from the initial offered loads) shrink effective link
        capacities — the lossless-fabric congestion-spreading effect.
        """
        from .engine import FabricEngine

        # The legacy loop keyed everything by flow id, so duplicate ids
        # collapsed (last wins); preserve that for the batch API.
        flows = list({flow.flow_id: flow for flow in flows}.values())
        if paths is None:
            paths = self.resolve_paths(flows)
        sized = [flow for flow in flows if flow.size_bits > 0]
        # Record peak loads for the congestion monitor (first epoch is
        # the most loaded: every flow still active).
        link_loads = self._loads_for(sized, paths)
        capacity_factors = None
        if pfc_spreading:
            from .congestion import CongestionModel
            capacity_factors = CongestionModel().pfc_capacity_factors(
                link_loads, self.topology)

        engine = FabricEngine(self, capacity_factors=capacity_factors)
        for flow in flows:
            engine.submit(flow, path=paths.get(flow.flow_id),
                          start_time_s=0.0)
        run = engine.run()
        return FabricRun(
            total_time_s=run.total_time_s,
            finish_times_s=run.finish_times_s,
            paths=paths,
            link_loads=link_loads,
        )

    def complete_batch(self, flows: List[Flow],
                       paths: Optional[Dict[int, FlowPath]] = None,
                       pfc_spreading: bool = False,
                       stats=None) -> FabricRun:
        """Epoch-global fluid loop: re-run max-min whenever a flow
        finishes.

        Reference implementation the event-driven engine is verified
        against (``tests/test_fabric_engine.py`` and the
        ``repro.validation`` differential oracles); *stats* counts its
        solver work for the incremental-vs-global benchmark.

        Integration uses the same absolute-deadline arithmetic as the
        engine: each flow's finish deadline ``fl(now + rem / rate)`` is
        computed once when its rate changes and only re-aimed on rate
        changes, never re-split per epoch.  Accumulating relative steps
        (``now += step``; ``rem -= rate * step``) instead drifts the
        finish times by 1-2 ulp from the engine's — float addition is
        not associative — which is exactly the epoch-tolerance bug the
        validation oracles surfaced.
        """
        if paths is None:
            paths = self.resolve_paths(flows)
        remaining_bits = {flow.flow_id: float(flow.size_bits)
                          for flow in flows}
        finish: Dict[int, float] = {}
        active = {flow.flow_id: flow for flow in flows
                  if flow.size_bits > 0}
        for flow in flows:
            if flow.size_bits <= 0:
                finish[flow.flow_id] = 0.0
        now = 0.0

        link_loads = self._loads_for(list(active.values()), paths)
        capacity_factors = None
        if pfc_spreading:
            from .congestion import CongestionModel
            capacity_factors = CongestionModel().pfc_capacity_factors(
                link_loads, self.topology)

        deadlines: Dict[int, float] = {}
        prev_rates: Dict[int, float] = {}
        stalls = 0
        while active:
            rates = self.max_min_rates(
                list(active.values()),
                {fid: paths[fid] for fid in active},
                capacity_factors=capacity_factors,
                stats=stats)
            if not any(rates[fid] > 0 for fid in active):
                starved = sorted(active)
                raise SimulationError(
                    "fluid completion starved: every active flow has "
                    f"rate 0 (flows {starved}); a capacity factor or "
                    "link failure zeroed every path")
            for fid in active:
                rate = rates[fid]
                if rate > 0 and rate != prev_rates.get(fid):
                    deadlines[fid] = now + \
                        remaining_bits[fid] / (rate * 1e9)
            prev_rates = dict(rates)
            t_next = min(deadlines[fid] for fid in active
                         if rates[fid] > 0)
            elapsed = t_next - now
            now = t_next
            done = []
            for fid in list(active):
                if rates[fid] > 0:
                    remaining_bits[fid] -= rates[fid] * 1e9 * elapsed
                if remaining_bits[fid] <= DONE_BITS:
                    finish[fid] = now
                    done.append(fid)
            for fid in done:
                del active[fid]
                deadlines.pop(fid, None)
                prev_rates.pop(fid, None)
            if done:
                stalls = 0
                continue
            # Advancing to the earliest deadline completed nothing:
            # subtracting rate*elapsed rounded the residue one ulp
            # above the done threshold.  Re-aim the expired deadlines
            # from the surviving residue; when the residual delay is
            # below the clock resolution (now + delay == now) the flow
            # completes here.  Repeated stalls indicate a real wedge.
            stalls += 1
            if stalls >= 8:
                raise RuntimeError(
                    "fluid completion made no progress")
            for fid in list(active):
                if rates[fid] > 0 and deadlines[fid] <= now:
                    delay = remaining_bits[fid] / (rates[fid] * 1e9)
                    if now + delay == now:
                        finish[fid] = now
                        del active[fid]
                        deadlines.pop(fid, None)
                        prev_rates.pop(fid, None)
                    else:
                        deadlines[fid] = now + delay

        return FabricRun(
            total_time_s=now,
            finish_times_s=finish,
            paths=paths,
            link_loads=link_loads,
        )

    # -- load accounting ---------------------------------------------------------
    def _loads_for(self, flows: List[Flow],
                   paths: Dict[int, FlowPath]) -> Dict[LinkDir, LinkLoad]:
        loads: Dict[LinkDir, LinkLoad] = {}
        for flow in flows:
            # Offered load is the *unthrottled* demand (the NIC line
            # rate): congestion-controlled senders keep pressure on a
            # bottleneck, so its queue and ECN/PFC signals persist even
            # though the carried rate is capped — the behaviour the
            # monitoring system observes in Figure 9.
            demand = self.host_line_rate_gbps
            for hop in self._directed_hops(paths[flow.flow_id]):
                load = loads.get(hop)
                if load is None:
                    link = self.topology.links[hop[0]]
                    load = LinkLoad(link_dir=hop,
                                    capacity_gbps=link.capacity_gbps)
                    loads[hop] = load
                load.flow_ids.append(flow.flow_id)
                load.offered_gbps += demand
        for load in loads.values():
            load.carried_gbps = min(load.offered_gbps, load.capacity_gbps)
        return loads

    def offered_loads(self, flows: List[Flow],
                      paths: Optional[Dict[int, FlowPath]] = None
                      ) -> Dict[LinkDir, LinkLoad]:
        """Offered (pre-allocation) load per link direction."""
        if paths is None:
            paths = self.resolve_paths(flows)
        return self._loads_for(flows, paths)

"""Flow-level fabric simulator.

Models the Astral fabric at flow granularity: every flow is pinned to a
hop-by-hop ECMP path (per-flow ECMP, Appendix A), link bandwidth is
shared max-min fairly among the flows crossing it, and transfers are
completed with a fluid progressive-filling loop.  This is the level of
detail the paper's own Seer operates at — packet-level behaviour enters
only through calibration — and it is sufficient to reproduce the
architecture studies (Figure 2, 17, 19): hash collisions and
oversubscription determine which links bottleneck, and max-min sharing
determines by how much.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..topology.elements import Topology
from .flows import Flow, FlowPath
from .routing import EcmpRouter

__all__ = ["Fabric", "FabricRun", "LinkDir", "LinkLoad"]

#: A directed traversal of a link: (link_id, forward) where forward means
#: the flow enters at endpoint ``a`` and exits at endpoint ``b``.
LinkDir = Tuple[int, bool]


@dataclass
class LinkLoad:
    """Aggregate load on one link direction."""

    link_dir: LinkDir
    capacity_gbps: float
    flow_ids: List[int] = field(default_factory=list)
    offered_gbps: float = 0.0
    carried_gbps: float = 0.0

    @property
    def utilization(self) -> float:
        return self.offered_gbps / self.capacity_gbps \
            if self.capacity_gbps > 0 else float("inf")


@dataclass
class FabricRun:
    """Result of completing a set of flows on the fabric."""

    total_time_s: float
    finish_times_s: Dict[int, float]
    paths: Dict[int, FlowPath]
    link_loads: Dict[LinkDir, LinkLoad]

    def throughput_gbps(self, total_bits: float) -> float:
        """Aggregate goodput of the whole transfer set."""
        if self.total_time_s <= 0:
            return float("inf")
        return total_bits / self.total_time_s / 1e9

    def max_link_utilization(self) -> float:
        if not self.link_loads:
            return 0.0
        return max(load.utilization for load in self.link_loads.values())


class Fabric:
    """Flow-level simulator over a :class:`Topology`."""

    def __init__(self, topology: Topology,
                 router: Optional[EcmpRouter] = None,
                 host_line_rate_gbps: float = 200.0):
        self.topology = topology
        self.router = router or EcmpRouter(topology)
        #: per-port NIC line rate; flows never exceed this at the source.
        self.host_line_rate_gbps = host_line_rate_gbps

    # -- path resolution -----------------------------------------------------
    def resolve_paths(self, flows: Iterable[Flow]) -> Dict[int, FlowPath]:
        return {flow.flow_id: self.router.path(flow) for flow in flows}

    def _directed_hops(self, path: FlowPath) -> List[LinkDir]:
        hops: List[LinkDir] = []
        for device, link_id in zip(path.devices, path.link_ids):
            link = self.topology.links[link_id]
            hops.append((link_id, link.a.device == device))
        return hops

    # -- bandwidth allocation --------------------------------------------------
    def max_min_rates(self, flows: List[Flow],
                      paths: Optional[Dict[int, FlowPath]] = None,
                      capacity_factors: Optional[Dict[LinkDir, float]]
                      = None) -> Dict[int, float]:
        """Max-min fair rate (Gbps) per flow; also sets ``flow.rate_gbps``.

        Progressive filling: repeatedly find the tightest link (smallest
        fair share for its unfrozen flows), freeze its flows at that
        share, remove the consumed capacity, and continue.
        ``capacity_factors`` scales individual directed links (e.g. PFC
        backpressure shrinking a hop's effective capacity).
        """
        if paths is None:
            paths = self.resolve_paths(flows)
        flow_by_id = {flow.flow_id: flow for flow in flows}
        hops_of: Dict[int, List[LinkDir]] = {
            fid: self._directed_hops(path) for fid, path in paths.items()
        }

        remaining: Dict[LinkDir, float] = {}
        members: Dict[LinkDir, set] = {}
        for fid, hops in hops_of.items():
            for hop in hops:
                if hop not in remaining:
                    link = self.topology.links[hop[0]]
                    factor = 1.0
                    if capacity_factors is not None:
                        factor = capacity_factors.get(hop, 1.0)
                    remaining[hop] = link.capacity_gbps * factor
                    members[hop] = set()
                members[hop].add(fid)

        rates: Dict[int, float] = {}
        unfrozen = set(flow_by_id)
        # Source line-rate cap is modelled as a virtual per-flow link.
        line_rate = self.host_line_rate_gbps

        while unfrozen:
            bottleneck_share = line_rate
            bottleneck: Optional[LinkDir] = None
            for hop, flow_ids in members.items():
                active = flow_ids & unfrozen
                if not active:
                    continue
                share = remaining[hop] / len(active)
                if share < bottleneck_share:
                    bottleneck_share = share
                    bottleneck = hop
            if bottleneck is None:
                # Every remaining flow is line-rate limited.
                for fid in unfrozen:
                    rates[fid] = line_rate
                    for hop in hops_of[fid]:
                        remaining[hop] -= line_rate
                break
            frozen_now = members[bottleneck] & unfrozen
            for fid in frozen_now:
                rates[fid] = bottleneck_share
                for hop in hops_of[fid]:
                    remaining[hop] -= bottleneck_share
            unfrozen -= frozen_now

        for fid, rate in rates.items():
            flow_by_id[fid].rate_gbps = rate
        return rates

    # -- completion ------------------------------------------------------------
    def complete(self, flows: List[Flow],
                 paths: Optional[Dict[int, FlowPath]] = None,
                 pfc_spreading: bool = False) -> FabricRun:
        """Fluid completion: re-run max-min whenever a flow finishes.

        With ``pfc_spreading``, PFC backpressure multipliers (computed
        from the initial offered loads) shrink effective link
        capacities — the lossless-fabric congestion-spreading effect.
        """
        if paths is None:
            paths = self.resolve_paths(flows)
        remaining_bits = {flow.flow_id: float(flow.size_bits)
                          for flow in flows}
        finish: Dict[int, float] = {}
        active = {flow.flow_id: flow for flow in flows
                  if flow.size_bits > 0}
        for flow in flows:
            if flow.size_bits <= 0:
                finish[flow.flow_id] = 0.0
        now = 0.0

        # Record peak loads for the congestion monitor (first epoch is the
        # most loaded: every flow still active).
        link_loads = self._loads_for(list(active.values()), paths)
        capacity_factors = None
        if pfc_spreading:
            from .congestion import CongestionModel
            capacity_factors = CongestionModel().pfc_capacity_factors(
                link_loads, self.topology)

        while active:
            rates = self.max_min_rates(
                list(active.values()),
                {fid: paths[fid] for fid in active},
                capacity_factors=capacity_factors)
            step = min(
                remaining_bits[fid] / (rates[fid] * 1e9)
                for fid in active if rates[fid] > 0
            )
            now += step
            done = []
            for fid in list(active):
                remaining_bits[fid] -= rates[fid] * 1e9 * step
                if remaining_bits[fid] <= 1e-6:
                    finish[fid] = now
                    done.append(fid)
            for fid in done:
                del active[fid]
            if not done:  # numerical safety; cannot normally happen
                raise RuntimeError("fluid completion made no progress")

        return FabricRun(
            total_time_s=now,
            finish_times_s=finish,
            paths=paths,
            link_loads=link_loads,
        )

    # -- load accounting ---------------------------------------------------------
    def _loads_for(self, flows: List[Flow],
                   paths: Dict[int, FlowPath]) -> Dict[LinkDir, LinkLoad]:
        loads: Dict[LinkDir, LinkLoad] = {}
        for flow in flows:
            # Offered load is the *unthrottled* demand (the NIC line
            # rate): congestion-controlled senders keep pressure on a
            # bottleneck, so its queue and ECN/PFC signals persist even
            # though the carried rate is capped — the behaviour the
            # monitoring system observes in Figure 9.
            demand = self.host_line_rate_gbps
            for hop in self._directed_hops(paths[flow.flow_id]):
                load = loads.get(hop)
                if load is None:
                    link = self.topology.links[hop[0]]
                    load = LinkLoad(link_dir=hop,
                                    capacity_gbps=link.capacity_gbps)
                    loads[hop] = load
                load.flow_ids.append(flow.flow_id)
                load.offered_gbps += demand
        for load in loads.values():
            load.carried_gbps = min(load.offered_gbps, load.capacity_gbps)
        return loads

    def offered_loads(self, flows: List[Flow],
                      paths: Optional[Dict[int, FlowPath]] = None
                      ) -> Dict[LinkDir, LinkLoad]:
        """Offered (pre-allocation) load per link direction."""
        if paths is None:
            paths = self.resolve_paths(flows)
        return self._loads_for(flows, paths)

"""Collective-communication traffic models.

NCCL-style collectives are mapped onto sets of concurrent flows, which
the fabric simulator then completes under max-min sharing.  This is the
granularity the paper's own analysis operates at: Figure 2 compares
all-to-all throughput under different placements/architectures; the
Seer communication operators (AllReduce from DP, Send/Recv from PP,
All-to-All from EP) are backed by the same traffic shapes.

PXN (NVLink-optimized rail transfer, [2, 46]) is modelled explicitly:
with PXN enabled, data destined to rail ``r`` of a remote host is first
staged over the intra-host interconnect to the local rail-``r`` GPU and
leaves through the rail-``r`` NIC, so *all inter-host traffic becomes
same-rail*.  Without PXN, flows cross rails and (on Astral) must climb
to the Core tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .fabric import Fabric, FabricRun
from .flows import Flow, make_flow

__all__ = [
    "Endpoint",
    "CollectiveConfig",
    "CollectiveResult",
    "TimedCollectiveResult",
    "repair_ring",
    "ring_allreduce_flows",
    "reduce_scatter_flows",
    "all_gather_flows",
    "all_to_all_flows",
    "send_recv_flows",
    "send_recv_chain",
    "collective_schedule",
    "run_collective",
    "run_collective_timed",
]


@dataclass(frozen=True)
class Endpoint:
    """One participating GPU, identified by host and rail (= GPU rank)."""

    host: str
    rail: int


@dataclass(frozen=True)
class CollectiveConfig:
    """Knobs shared by the collective generators."""

    pxn: bool = True
    #: intra-host interconnect per-GPU bandwidth, Gbps (NVLink-class:
    #: 400-900 GBps bidirectional per the paper => 3200+ Gbps each way).
    nvlink_gbps: float = 3200.0
    job: str = "job0"


@dataclass
class CollectiveResult:
    """Timing of one collective on the fabric."""

    name: str
    size_bits: float
    network_time_s: float
    intra_host_time_s: float
    run: Optional[FabricRun]
    n_endpoints: int

    @property
    def total_time_s(self) -> float:
        # Intra-host staging overlaps poorly with the network phase for
        # the same data, so the conservative model sums them.
        return self.network_time_s + self.intra_host_time_s

    @property
    def algo_bandwidth_gbps(self) -> float:
        """Algorithm bandwidth: collective size / completion time."""
        if self.total_time_s <= 0:
            return float("inf")
        return self.size_bits / self.total_time_s / 1e9


def _inter_host_pairs(endpoints: Sequence[Endpoint]
                      ) -> List[Tuple[Endpoint, Endpoint]]:
    return [
        (src, dst)
        for src in endpoints for dst in endpoints
        if src != dst
    ]


def topology_ordered(endpoints: Sequence[Endpoint],
                     topology) -> List[Endpoint]:
    """Order endpoints for topology-aware rings (NCCL ring ordering).

    Sorting by (pod, block, host rank, rail) keeps ring neighbours
    physically adjacent, so most ring legs ride single-ToR (1-switch)
    paths and only block/pod boundaries climb higher — the placement
    property Astral's packed allocation exists to provide.  Endpoints
    whose host is unknown to the topology sort last, by name.
    """
    def key(endpoint: Endpoint):
        device = topology.devices.get(endpoint.host)
        if device is None:
            return (1, 0, 0, 0, endpoint.host, endpoint.rail)
        return (0, device.pod or 0, device.block or 0,
                device.rank or 0, endpoint.host, endpoint.rail)

    return sorted(endpoints, key=key)


def repair_ring(endpoints: Sequence[Endpoint],
                dead_hosts: Sequence[str]) -> List[Endpoint]:
    """Splice dead members out of a ring, preserving survivor order.

    NCCL-style ring repair: when a member dies mid-collective its two
    neighbours connect directly, so the collective degrades (fewer
    shards, smaller aggregate bandwidth) instead of wedging.  Order is
    preserved, so the surviving ring keeps the topology-aware adjacency
    the original ordering provided.
    """
    dead = set(dead_hosts)
    return [ep for ep in endpoints if ep.host not in dead]


def ring_allreduce_flows(endpoints: Sequence[Endpoint], size_bits: float,
                         config: CollectiveConfig | None = None
                         ) -> List[Flow]:
    """Ring AllReduce: each rank ships ``2(n-1)/n * size`` to its neighbor.

    The ring is ordered as given; NCCL orders rings to keep neighbours
    topologically close, so callers should pass endpoints in placement
    order (the job-placement helpers do).
    """
    config = config or CollectiveConfig()
    n = len(endpoints)
    if n < 2:
        return []
    per_neighbor_bits = 2.0 * (n - 1) / n * size_bits
    flows = []
    for index, src in enumerate(endpoints):
        dst = endpoints[(index + 1) % n]
        if src.host == dst.host:
            continue  # NVLink leg, no fabric flow
        rail = dst.rail if config.pxn else src.rail
        flows.append(make_flow(
            src.host, dst.host, rail, per_neighbor_bits,
            dst_rail=dst.rail, job=config.job, collective="allreduce"))
    return flows


def reduce_scatter_flows(endpoints: Sequence[Endpoint], size_bits: float,
                         config: CollectiveConfig | None = None
                         ) -> List[Flow]:
    """Ring ReduceScatter: ``(n-1)/n * size`` per neighbor link."""
    config = config or CollectiveConfig()
    n = len(endpoints)
    if n < 2:
        return []
    per_neighbor_bits = (n - 1) / n * size_bits
    flows = []
    for index, src in enumerate(endpoints):
        dst = endpoints[(index + 1) % n]
        if src.host == dst.host:
            continue
        rail = dst.rail if config.pxn else src.rail
        flows.append(make_flow(
            src.host, dst.host, rail, per_neighbor_bits,
            dst_rail=dst.rail, job=config.job,
            collective="reduce_scatter"))
    return flows


def all_gather_flows(endpoints: Sequence[Endpoint], size_bits: float,
                     config: CollectiveConfig | None = None) -> List[Flow]:
    """Ring AllGather has the same traffic shape as ReduceScatter."""
    flows = reduce_scatter_flows(endpoints, size_bits, config)
    for flow in flows:
        flow.collective = "all_gather"
    return flows


def all_to_all_flows(endpoints: Sequence[Endpoint], size_bits: float,
                     config: CollectiveConfig | None = None) -> List[Flow]:
    """All-to-All: every pair exchanges ``size / n`` bits.

    With PXN the flow for (src -> dst) leaves the source host through the
    NIC on the *destination's* rail, so it stays same-rail end to end.
    """
    config = config or CollectiveConfig()
    n = len(endpoints)
    if n < 2:
        return []
    per_pair_bits = size_bits / n
    flows = []
    for src, dst in _inter_host_pairs(endpoints):
        if src.host == dst.host:
            continue
        rail = dst.rail if config.pxn else src.rail
        flows.append(make_flow(
            src.host, dst.host, rail, per_pair_bits,
            dst_rail=dst.rail, job=config.job, collective="all_to_all"))
    return flows


def send_recv_flows(pairs: Sequence[Tuple[Endpoint, Endpoint]],
                    size_bits: float,
                    config: CollectiveConfig | None = None) -> List[Flow]:
    """Point-to-point Send/Recv legs (pipeline parallelism)."""
    config = config or CollectiveConfig()
    flows = []
    for src, dst in pairs:
        if src.host == dst.host:
            continue
        rail = dst.rail if config.pxn else src.rail
        flows.append(make_flow(
            src.host, dst.host, rail, size_bits,
            dst_rail=dst.rail, job=config.job, collective="send_recv"))
    return flows


def send_recv_chain(stages: Sequence[Tuple[Endpoint, Endpoint]],
                    size_bits: float,
                    config: CollectiveConfig | None = None
                    ) -> List[List[Flow]]:
    """Pipeline-parallel chain: each stage's Send must finish before the
    next stage can forward — one single-flow wave per hop."""
    config = config or CollectiveConfig()
    waves: List[List[Flow]] = []
    for pair in stages:
        waves.append(send_recv_flows([pair], size_bits, config))
    return [wave for wave in waves if wave]


def collective_schedule(endpoints: Sequence[Endpoint], size_bits: float,
                        collective: str = "all_to_all",
                        config: CollectiveConfig | None = None
                        ) -> List[List[Flow]]:
    """Dependency-aware schedule: the collective as sequenced flow waves.

    Each wave is a list of flows that may run concurrently; wave *k+1*
    must not start before wave *k* has completed (the ring step
    dependency NCCL enforces).  Ring collectives decompose into their
    per-step shard exchanges — ``n-1`` waves of ``size/n`` per neighbor
    for ReduceScatter/AllGather, ``2(n-1)`` for AllReduce — while
    All-to-All stays a single flat wave (no inter-step dependency).
    The per-neighbor bits summed over waves equal the flat generators',
    so batch totals are preserved; only the temporal structure differs.
    """
    config = config or CollectiveConfig()
    n = len(endpoints)
    if n < 2:
        return []
    if collective == "all_to_all":
        return [all_to_all_flows(endpoints, size_bits, config)]
    if collective not in ("allreduce", "reduce_scatter", "all_gather"):
        raise ValueError(f"unknown collective: {collective}")
    steps = 2 * (n - 1) if collective == "allreduce" else n - 1
    # One ring step ships size/n per neighbor; reuse the ring generator
    # with the size that makes its per-neighbor payload exactly that.
    step_size = size_bits / (n - 1)
    waves = []
    for _step in range(steps):
        wave = reduce_scatter_flows(endpoints, step_size, config)
        for flow in wave:
            flow.collective = collective
        waves.append(wave)
    return [wave for wave in waves if wave]


def _intra_host_bits(endpoints: Sequence[Endpoint], size_bits: float,
                     collective: str, config: CollectiveConfig) -> float:
    """Bits staged over NVLink per GPU (PXN forwarding + local legs)."""
    n = len(endpoints)
    if n < 2 or not config.pxn:
        return 0.0
    if collective == "all_to_all":
        # Each GPU forwards the shards whose destination rail differs
        # from its own: (n-1)/n of its data in the worst case.
        return size_bits * (n - 1) / n
    # Ring collectives choose rings that keep PXN staging minimal; model
    # a single staging pass of the per-neighbor payload.
    return 0.0


def run_collective(fabric: Fabric, endpoints: Sequence[Endpoint],
                   size_bits: float, collective: str = "all_to_all",
                   config: CollectiveConfig | None = None,
                   scheduled: bool = False) -> CollectiveResult:
    """Generate, route, and complete one collective on the fabric.

    With ``scheduled`` the collective runs as its dependency-aware
    wave schedule (ring steps sequenced, each wave gated on the
    previous one) on a private :class:`~repro.network.engine.
    FabricEngine` instead of one flat flow set completed all at once —
    the same schedule :func:`run_collective_timed` uses on a shared
    clock.
    """
    config = config or CollectiveConfig()
    generators = {
        "allreduce": ring_allreduce_flows,
        "reduce_scatter": reduce_scatter_flows,
        "all_gather": all_gather_flows,
        "all_to_all": all_to_all_flows,
    }
    if collective not in generators:
        raise ValueError(f"unknown collective: {collective}")
    if scheduled:
        from ..simcore import Simulator
        from .engine import FabricEngine

        engine = FabricEngine(fabric, sim=Simulator())
        proc = run_collective_timed(engine, endpoints, size_bits,
                                    collective, config)
        run = engine.run()
        timed = proc.value
        return CollectiveResult(
            name=collective, size_bits=size_bits,
            network_time_s=timed.network_time_s,
            intra_host_time_s=timed.intra_host_time_s,
            run=run, n_endpoints=len(endpoints))
    flows = generators[collective](endpoints, size_bits, config)
    if not flows:
        return CollectiveResult(
            name=collective, size_bits=size_bits, network_time_s=0.0,
            intra_host_time_s=0.0, run=None, n_endpoints=len(endpoints))
    run = fabric.complete(flows)
    staged_bits = _intra_host_bits(endpoints, size_bits, collective,
                                   config)
    intra_time = staged_bits / (config.nvlink_gbps * 1e9) \
        if staged_bits else 0.0
    return CollectiveResult(
        name=collective,
        size_bits=size_bits,
        network_time_s=run.total_time_s,
        intra_host_time_s=intra_time,
        run=run,
        n_endpoints=len(endpoints),
    )


@dataclass
class TimedCollectiveResult:
    """Timing of one wave-scheduled collective on the shared clock."""

    name: str
    size_bits: float
    start_time_s: float
    network_time_s: float
    intra_host_time_s: float
    n_endpoints: int
    n_waves: int
    flow_ids: List[int]
    #: ring repairs performed mid-collective (members dropped because
    #: the ``alive`` predicate declared their host dead).
    repairs: int = 0

    @property
    def end_time_s(self) -> float:
        return self.start_time_s + self.network_time_s

    @property
    def total_time_s(self) -> float:
        return self.network_time_s + self.intra_host_time_s


def run_collective_timed(engine, endpoints: Sequence[Endpoint],
                         size_bits: float,
                         collective: str = "all_to_all",
                         config: CollectiveConfig | None = None,
                         start_time_s: float = 0.0,
                         alive=None):
    """Run one collective as sequenced waves on a :class:`FabricEngine`.

    Returns a :class:`repro.simcore.Process` whose value is a
    :class:`TimedCollectiveResult`; wave *k+1* is submitted only once
    every flow of wave *k* has completed, so ring steps serialize the
    way NCCL's do while other tenants' flows contend in between.

    ``alive`` (optional ``host -> bool`` predicate) enables graceful
    degradation: at every wave boundary members whose host died are
    spliced out (:func:`repair_ring`) and the *remaining* payload is
    re-scheduled over the survivor ring — a bandwidth-reduced wave
    schedule instead of a wedged collective.  The collective aborts
    (result records the waves that did run) if fewer than two members
    survive.
    """
    config = config or CollectiveConfig()
    sim = engine.sim

    def _proc():
        if start_time_s > sim.now:
            yield sim.timeout(start_time_s - sim.now)
        began = sim.now
        flow_ids: List[int] = []
        members = list(endpoints)
        waves = collective_schedule(members, size_bits, collective,
                                    config)
        total_waves = len(waves)
        index = 0
        repairs = 0
        while index < len(waves):
            if alive is not None:
                survivors = repair_ring(
                    members, [ep.host for ep in members
                              if not alive(ep.host)])
                if len(survivors) != len(members):
                    repairs += 1
                    remaining_frac = (len(waves) - index) \
                        / max(1, len(waves))
                    members = survivors
                    if len(members) < 2:
                        break
                    waves = collective_schedule(
                        members, size_bits * remaining_frac,
                        collective, config)
                    total_waves = index + len(waves)
                    index = 0
                    if not waves:
                        break
            wave = waves[index]
            index += 1
            flow_ids.extend(flow.flow_id for flow in wave)
            yield engine.submit_many(wave)
        staged_bits = _intra_host_bits(endpoints, size_bits, collective,
                                       config)
        intra_time = staged_bits / (config.nvlink_gbps * 1e9) \
            if staged_bits else 0.0
        return TimedCollectiveResult(
            name=collective,
            size_bits=size_bits,
            start_time_s=began,
            network_time_s=sim.now - began,
            intra_host_time_s=intra_time,
            n_endpoints=len(members),
            n_waves=total_waves,
            flow_ids=flow_ids,
            repairs=repairs,
        )

    return sim.process(_proc(), name=f"collective-{collective}")
